//! Ablation benches: time the design-choice sweeps from DESIGN.md §4.
//! The *results* of the ablations are printed by `repro ablation-*`; these
//! benches track their cost so the sweeps stay usable interactively.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pscp_core::{Lab, LabConfig};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("buffer_sizing", |b| {
        let mut lab = Lab::new(LabConfig::small(17));
        lab.service();
        b.iter(|| black_box(pscp_bench::ablation_buffer(&mut lab, 3).len()))
    });
    group.bench_function("visibility_caps", |b| {
        let lab = Lab::new(LabConfig::small(18));
        b.iter(|| black_box(pscp_bench::ablation_visibility(&lab).len()))
    });
    group.bench_function("picture_cache", |b| {
        let mut lab = Lab::new(LabConfig::small(19));
        lab.service();
        b.iter(|| black_box(pscp_bench::ablation_cache(&mut lab, 3).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
