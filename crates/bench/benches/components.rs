//! Component performance benches: the hot paths of the simulation —
//! protocol (de)framing, TS mux/demux, the encoder, and the statistics
//! kernels. These guard against regressions that would make paper-scale
//! figure regeneration impractically slow.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pscp_media::bitstream::{FrameKind, FramePayload};
use pscp_media::content::{ContentClass, ContentProcess};
use pscp_media::encoder::{Encoder, EncoderConfig};
use pscp_media::flv::VideoTag;
use pscp_media::ts::{demux_segment, TsMuxer, TsUnit};
use pscp_proto::json;
use pscp_proto::rtmp::{Chunker, Dechunker, Message};
use pscp_simnet::{Link, RngFactory, SimDuration, SimTime};
use pscp_stats::{welch_t_test, Ecdf};

fn frame(pts: u32, size: usize) -> FramePayload {
    FramePayload {
        kind: if pts.is_multiple_of(1200) { FrameKind::I } else { FrameKind::P },
        qp: 30,
        width: 320,
        height: 568,
        pts_ms: pts,
        ntp_s: None,
        size,
    }
}

fn bench_rtmp_chunking(c: &mut Criterion) {
    // One second of video: 30 frames of ~1 kB.
    let msgs: Vec<Message> = (0..30u32)
        .map(|i| Message::video(i * 33, VideoTag::for_frame(frame(i * 33, 1000)).encode()))
        .collect();
    let bytes: usize = msgs.iter().map(|m| m.payload.len()).sum();
    let mut group = c.benchmark_group("rtmp");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("chunk+dechunk 1s of video", |b| {
        b.iter(|| {
            let mut chunker = Chunker::new();
            let wire = chunker.encode_all(&msgs);
            let mut d = Dechunker::new();
            d.feed(&wire).unwrap();
            black_box(d.pop_all().len())
        })
    });
    group.finish();
}

fn bench_ts(c: &mut Criterion) {
    let units: Vec<TsUnit> = (0..108u32)
        .map(|i| TsUnit::Video { pts_ms: i * 33, data: frame(i * 33, 1200).encode() })
        .collect();
    let mut mux = TsMuxer::new();
    let segment = mux.mux_segment(&units);
    let mut group = c.benchmark_group("mpegts");
    group.throughput(Throughput::Bytes(segment.len() as u64));
    group.bench_function("mux 3.6s segment", |b| {
        b.iter(|| {
            let mut mux = TsMuxer::new();
            black_box(mux.mux_segment(&units).len())
        })
    });
    group.bench_function("demux 3.6s segment", |b| {
        b.iter(|| black_box(demux_segment(&segment).unwrap().len()))
    });
    group.finish();
}

fn bench_encoder(c: &mut Criterion) {
    c.bench_function("encoder 60s of video", |b| {
        b.iter(|| {
            let mut rng = RngFactory::new(1).stream("bench");
            let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
            let mut enc = Encoder::new(EncoderConfig::default(), content);
            let mut total = 0usize;
            for i in 0..1800 {
                if let Some(f) = enc.next_frame(i as f64 / 30.0, &mut rng) {
                    total += f.size();
                }
            }
            black_box(total)
        })
    });
}

fn bench_json(c: &mut Criterion) {
    let doc = {
        let items: Vec<String> = (0..100)
            .map(|i| format!(r#"{{"id":"brdcst{i:07}","lat":41.2,"lng":28.9,"n":{i}}}"#))
            .collect();
        format!(r#"{{"broadcasts":[{}]}}"#, items.join(","))
    };
    let mut group = c.benchmark_group("json");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("parse map-feed response", |b| {
        b.iter(|| black_box(json::parse(&doc).unwrap()))
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("link enqueue 1000 packets", |b| {
        b.iter(|| {
            let mut link = Link::unbounded(10e6, SimDuration::from_millis(20));
            let mut t = SimTime::ZERO;
            for i in 0..1000 {
                t += SimDuration::from_micros(100);
                black_box(link.enqueue(t, 1448 - (i % 3)));
            }
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = RngFactory::new(2).stream("stats-bench");
    let data: Vec<f64> =
        (0..10_000).map(|_| pscp_simnet::dist::lognormal(&mut rng, 0.0, 1.0)).collect();
    c.bench_function("ecdf build 10k samples", |b| {
        b.iter(|| black_box(Ecdf::new(&data).unwrap().len()))
    });
    let a = &data[..5000];
    let b2 = &data[5000..];
    c.bench_function("welch t-test 2x5k", |b| {
        b.iter(|| black_box(welch_t_test(a, b2).unwrap().p_value))
    });
}

fn bench_tls(c: &mut Criterion) {
    use pscp_proto::tls::TlsChannel;
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("tls");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("seal+open 100kB", |b| {
        b.iter(|| {
            let mut tx = TlsChannel::new(42);
            let mut rx = TlsChannel::new(42);
            let wire = tx.seal(&payload);
            black_box(rx.open_all(&wire).unwrap().len())
        })
    });
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    use pscp_client::rtmp_session;
    use pscp_client::session::SessionConfig;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::GeoPoint;
    use pscp_workload::broadcast::{Broadcast, BroadcastId, DeviceProfile};
    let broadcast = Broadcast {
        id: BroadcastId(5),
        location: GeoPoint::new(41.01, 28.98),
        city: "Istanbul",
        start: SimTime::from_secs(100),
        duration: SimDuration::from_secs(1800),
        content: ContentClass::Indoor,
        device: DeviceProfile::Modern,
        audio: AudioBitrate::Kbps32,
        avg_viewers: 25.0,
        replay_available: true,
        private: false,
        location_public: true,
        viewer_seed: 5,
        target_bitrate_bps: 300_000.0,
    };
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("rtmp 60s end-to-end", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let rngs = RngFactory::new(i).child("bench-session");
            black_box(
                rtmp_session::run(
                    &broadcast,
                    SimTime::from_secs(400),
                    &SessionConfig::default(),
                    &rngs,
                )
                .capture
                .total_bytes(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rtmp_chunking,
    bench_ts,
    bench_encoder,
    bench_json,
    bench_link,
    bench_stats,
    bench_tls,
    bench_session
);
criterion_main!(benches);
