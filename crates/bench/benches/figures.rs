//! One bench per paper figure/table: measures how long each experiment
//! takes to regenerate at small scale. Beyond performance tracking, this
//! doubles as a continuously-exercised guarantee that every figure still
//! regenerates (criterion runs each body several times).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pscp_core::{experiments, Lab, LabConfig};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for exp in experiments::all() {
        // The session-dataset experiments share a memoized dataset inside a
        // Lab; to measure each experiment honestly we give each its own lab
        // but keep it OUTSIDE the timed body (criterion measures the
        // experiment, not world generation).
        let mut lab = Lab::new(LabConfig::small(606));
        // Warm the memoized dataset for dataset-backed experiments.
        let _ = (exp.run)(&mut lab);
        group.bench_function(exp.id, |b| b.iter(|| black_box((exp.run)(&mut lab).render().len())));
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
