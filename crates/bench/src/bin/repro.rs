//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro list                      # show all experiment ids
//! repro all                       # run every experiment
//! repro fig5 table-usage          # run specific experiments
//! repro --scale medium all        # bigger datasets (slower)
//! repro --seed 7 fig3a            # different world
//! repro ablation-buffer           # design-choice ablations (DESIGN.md §4)
//! repro ablation-visibility
//! repro ablation-cache
//! repro ablation-threshold
//! repro --scale medium experiments-md > EXPERIMENTS.md   # regenerate the record
//! repro --scale medium export <dir>   # CSV dumps for external plotting
//! repro bench                     # time 1-thread vs N-thread generation
//! repro bench-components          # hot-path micro-benches → BENCH_components.json
//! repro bench-figures             # per-experiment timing → BENCH_figures.json
//! repro bench-ablations           # ablation sweep timing → BENCH_ablations.json
//! repro trace                     # traced run → TRACE_events.jsonl + TRACE_chrome.json
//! repro metrics                   # traced run → TRACE_metrics.json + TRACE_metrics.prom
//! repro slo                       # traced run → SLO_report.json (paper-derived SLOs)
//! repro explain session/3         # one session's causal join span tree
//! repro bench-diff <old> <new>    # regression gate over two BENCH_*.json files
//! repro chaos                     # three-way transport loss sweep → CHAOS_sweep.json
//! repro chaos --sessions 16 --transports rtmp,srt
//! repro watch                     # live SLO monitor → SLO_live.jsonl + SLO_live.prom
//! repro watch --once              # single snapshot batch (CI smoke)
//! repro watch --batches 10 --batch-sessions 100
//! repro watch --fail-on-violation # exit 1 on SLO violation / firing alert
//! repro scale                     # sharded 10K→100K→1M sweep → SCALE_report.json
//! repro scale --tier 10k --shards 4
//! repro incidents                 # alert/incident study → INCIDENTS.json
//! repro incidents --tier 10k --shards 4 --transports hls
//! ```
//!
//! `trace`, `metrics`, `slo` and `explain` share one traced simulation:
//! requesting several at once (`repro trace metrics slo`) runs the workload
//! a single time and writes every artifact from the same run.
//!
//! Any command also honors `PSCP_TRACE=1` to record the structured event
//! log and metrics while it runs (sim results are byte-identical either way).

use pscp_core::{experiments, Lab};

/// With `--features count-allocs`, every bench row also reports heap
/// allocations per iteration (the zero-copy hot paths should show 0).
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: pscp_obs::alloc_count::CountingAlloc = pscp_obs::alloc_count::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "small".to_string();
    let mut scale_explicit = false;
    let mut seed: u64 = 2016;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it.next().unwrap_or_else(|| usage("missing scale value"));
                scale_explicit = true;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad seed value"))
            }
            "--help" | "-h" => usage(""),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no experiments given");
    }
    if let Some(pos) = targets.iter().position(|t| t == "export") {
        let dir = targets.get(pos + 1).cloned().unwrap_or_else(|| "export".to_string());
        let config = pscp_bench::lab_config(&scale, seed).unwrap_or_else(|e| usage(&e));
        export_csvs(&mut Lab::new(config), &dir);
        return;
    }
    if targets.iter().any(|t| t == "bench") {
        // The parallel speedup is only visible on a dataset big enough to
        // amortize setup, so `bench` defaults to medium scale.
        let bench_scale = if scale_explicit { scale.clone() } else { "medium".to_string() };
        bench_parallel(&bench_scale, seed);
        return;
    }
    if targets.iter().any(|t| t == "bench-components") {
        println!("{}", pscp_bench::micro::bench_components(seed));
        return;
    }
    if targets.iter().any(|t| t == "bench-figures") {
        println!("{}", pscp_bench::micro::bench_figures(seed));
        return;
    }
    if targets.iter().any(|t| t == "bench-ablations") {
        println!("{}", pscp_bench::micro::bench_ablations(seed));
        return;
    }
    if targets.iter().any(|t| t == "chaos") {
        // Strict argument validation, matching `repro watch`: unknown
        // flags are an error, not silently ignored experiment ids.
        let mut i = 0;
        while i < targets.len() {
            match targets[i].as_str() {
                "chaos" => i += 1,
                "--sessions" | "--transports" => i += 2,
                other => usage(&format!("unknown chaos argument '{other}'")),
            }
        }
        let flag =
            |name: &str| targets.iter().position(|t| t == name).and_then(|p| targets.get(p + 1));
        let mut cfg = pscp_core::ChaosConfig::small(seed);
        if let Some(v) = flag("--sessions") {
            cfg.sessions = match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => usage(&format!("bad --sessions value '{v}'")),
            };
        }
        if let Some(v) = flag("--transports") {
            cfg.transports = pscp_core::chaos::parse_transports(v).unwrap_or_else(|e| usage(&e));
        }
        chaos_sweep(&scale, seed, &cfg);
        return;
    }
    if targets.iter().any(|t| t == "scale") {
        // Strict argument validation, matching `repro watch`.
        let mut i = 0;
        while i < targets.len() {
            match targets[i].as_str() {
                "scale" => i += 1,
                "--tier" | "--shards" | "--sessions" | "--threads" => i += 2,
                other => usage(&format!("unknown scale argument '{other}'")),
            }
        }
        let flag =
            |name: &str| targets.iter().position(|t| t == name).and_then(|p| targets.get(p + 1));
        let mut cfg = pscp_bench::scale::ScaleArgs { seed, ..Default::default() };
        if let Some(v) = flag("--tier") {
            if v != "all" {
                cfg.tiers = v
                    .split(',')
                    .map(|t| {
                        pscp_bench::scale::tier_by_name(t).unwrap_or_else(|| {
                            usage(&format!("unknown tier '{t}' (10k|100k|1m|all)"))
                        })
                    })
                    .collect();
            }
        }
        if let Some(v) = flag("--shards") {
            cfg.shards = match v.parse::<usize>() {
                Ok(n) if pscp_simnet::geo::quad_depth_for(n).is_some() => n,
                _ => usage(&format!("bad --shards value '{v}' — a power of four (1, 4, 16, ...)")),
            };
        }
        if let Some(v) = flag("--sessions") {
            cfg.sessions = match v.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => usage(&format!("bad --sessions value '{v}'")),
            };
        }
        if let Some(v) = flag("--threads") {
            cfg.threads = v.parse::<usize>().unwrap_or_else(|_| usage("bad --threads value"));
        }
        let report = pscp_bench::scale::run_scale_report(&cfg);
        std::fs::write("SCALE_report.json", &report).expect("write SCALE_report.json");
        println!("wrote SCALE_report.json ({} tiers, {} shards)", cfg.tiers.len(), cfg.shards);
        return;
    }
    if targets.iter().any(|t| t == "incidents") {
        // Strict argument validation, matching `repro watch`.
        let mut i = 0;
        while i < targets.len() {
            match targets[i].as_str() {
                "incidents" => i += 1,
                "--tier" | "--transports" | "--shards" | "--sessions" | "--loss-scale"
                | "--threads" => i += 2,
                other => usage(&format!("unknown incidents argument '{other}'")),
            }
        }
        let flag =
            |name: &str| targets.iter().position(|t| t == name).and_then(|p| targets.get(p + 1));
        let mut cfg = pscp_core::IncidentConfig::small(seed);
        let tier = flag("--tier").map(|v| {
            pscp_bench::scale::tier_by_name(v)
                .unwrap_or_else(|| usage(&format!("unknown tier '{v}' (10k|100k|1m)")))
        });
        if let Some(v) = flag("--transports") {
            cfg.transports = pscp_core::chaos::parse_transports(v).unwrap_or_else(|e| usage(&e));
        }
        if let Some(v) = flag("--shards") {
            cfg.shards = match v.parse::<usize>() {
                Ok(n) if pscp_simnet::geo::quad_depth_for(n).is_some() => n,
                _ => usage(&format!("bad --shards value '{v}' — a power of four (1, 4, 16, ...)")),
            };
        }
        if let Some(v) = flag("--sessions") {
            cfg.sessions = match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => usage(&format!("bad --sessions value '{v}'")),
            };
        }
        if let Some(v) = flag("--loss-scale") {
            cfg.loss_scale = match v.parse::<f64>() {
                Ok(x) if x.is_finite() && x >= 0.0 => x,
                _ => usage(&format!("bad --loss-scale value '{v}'")),
            };
        }
        if let Some(v) = flag("--threads") {
            cfg.threads = v.parse::<usize>().unwrap_or_else(|_| usage("bad --threads value"));
        }
        incidents_study(&scale, seed, tier, &cfg);
        return;
    }
    if targets.iter().any(|t| t == "watch") {
        let mut i = 0;
        while i < targets.len() {
            match targets[i].as_str() {
                "watch" | "--once" | "--fail-on-violation" => i += 1,
                "--batches" | "--batch-sessions" | "--transport" => i += 2,
                other => usage(&format!("unknown watch argument '{other}'")),
            }
        }
        let flag =
            |name: &str| {
                targets.iter().position(|t| t == name).and_then(|p| targets.get(p + 1)).map(|v| {
                    v.parse::<usize>().unwrap_or_else(|_| usage(&format!("bad {name} value")))
                })
            };
        let defaults = pscp_bench::watch::WatchConfig::default();
        let batches = if targets.iter().any(|t| t == "--once") {
            1
        } else {
            flag("--batches").unwrap_or(defaults.batches)
        };
        let batch_sessions = flag("--batch-sessions").unwrap_or(defaults.batch_sessions);
        let transport = targets
            .iter()
            .position(|t| t == "--transport")
            .map(|p| {
                let v = targets.get(p + 1).cloned().unwrap_or_default();
                match pscp_core::chaos::parse_transports(&v).as_deref() {
                    Ok([one]) => *one,
                    _ => usage(&format!("bad --transport value '{v}' — one of rtmp|hls|srt|auto")),
                }
            })
            .unwrap_or(None);
        let fail_on_violation = targets.iter().any(|t| t == "--fail-on-violation");
        watch_live(&scale, seed, batches, batch_sessions, transport, fail_on_violation);
        return;
    }
    if let Some(pos) = targets.iter().position(|t| t == "bench-diff") {
        let old = targets.get(pos + 1).cloned().unwrap_or_else(|| usage("bench-diff needs <old>"));
        let new = targets.get(pos + 2).cloned().unwrap_or_else(|| usage("bench-diff needs <new>"));
        bench_diff(&old, &new);
        return;
    }
    // The observability verbs (trace / metrics / slo / explain) all read
    // the same traced workload, so asking for several at once — e.g.
    // `repro trace metrics slo` — runs the simulation ONCE and emits every
    // requested artifact from that single run.
    let wants = |v: &str| targets.iter().any(|t| t == v);
    let explain_unit = targets.iter().position(|t| t == "explain").map(|pos| {
        targets
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| usage("explain needs a session unit, e.g. `explain session/3`"))
    });
    if wants("trace") || wants("metrics") || wants("slo") || explain_unit.is_some() {
        let mut lab = traced_lab(&scale, seed);
        let dataset = lab.session_dataset();
        let obs = lab.observer();
        if wants("trace") {
            std::fs::write("TRACE_events.jsonl", obs.events_jsonl())
                .expect("write TRACE_events.jsonl");
            println!("wrote TRACE_events.jsonl ({} events)", obs.event_count());
            let chrome = pscp_obs::chrome_trace(&obs.spans(), &obs.phases());
            std::fs::write("TRACE_chrome.json", chrome).expect("write TRACE_chrome.json");
            println!(
                "wrote TRACE_chrome.json ({} spans) — load it in Perfetto / chrome://tracing",
                obs.span_count()
            );
            println!("\nevent counts:");
            for (name, n) in obs.event_summary() {
                println!("  {name:<24} {n:>9}");
            }
            let phases = obs.phases();
            if !phases.is_empty() {
                println!("\n{}", pscp_obs::phases_table(&phases));
            }
        }
        if wants("metrics") {
            let metrics = obs.metrics();
            std::fs::write("TRACE_metrics.json", metrics.snapshot_json())
                .expect("write TRACE_metrics.json");
            let mut prom = pscp_obs::prometheus_text(&metrics);
            prom.push_str(&pscp_obs::prometheus_build_info(seed, &scale, 1, 0));
            std::fs::write("TRACE_metrics.prom", prom).expect("write TRACE_metrics.prom");
            println!("{}", metrics.snapshot_text());
            println!(
                "wrote TRACE_metrics.json + TRACE_metrics.prom ({} subsystems)",
                metrics.subsystems().len()
            );
        }
        if wants("slo") {
            let spans = obs.spans();
            let report = pscp_qoe::slo::evaluate(
                &pscp_qoe::SloSpec::paper(),
                &dataset,
                &spans,
                &format!("scale={scale} seed={seed}"),
            );
            std::fs::write("SLO_report.json", report.to_json()).expect("write SLO_report.json");
            println!("{}", report.table());
            println!(
                "wrote SLO_report.json — overall: {}",
                if report.pass() { "PASS" } else { "FAIL" }
            );
        }
        if let Some(unit) = explain_unit {
            let spans = obs.spans();
            match pscp_qoe::slo::explain_unit(&unit, &spans) {
                Some(tree) => println!("{tree}"),
                None => {
                    eprintln!(
                        "no join span tree for '{unit}' — sessions are session/<i>, \
                         sweep sessions limit-<mbps>/session/<i> (never-joined \
                         sessions record no tree)"
                    );
                    std::process::exit(2);
                }
            }
        }
        return;
    }
    if targets.iter().any(|t| t == "experiments-md") {
        write_experiments_md(
            &mut Lab::new(pscp_bench::lab_config(&scale, seed).unwrap_or_else(|e| usage(&e))),
            &scale,
            seed,
        );
        return;
    }
    if targets.iter().any(|t| t == "list") {
        println!("{:<16} {:<18} title", "id", "paper artifact");
        println!("{}", "-".repeat(90));
        for exp in experiments::all() {
            println!("{:<16} {:<18} {}", exp.id, exp.paper_ref, exp.title);
        }
        for ab in [
            "ablation-buffer",
            "ablation-visibility",
            "ablation-cache",
            "ablation-threshold",
            "ablation-mtu",
        ] {
            println!("{:<16} {:<18} design-choice ablation study", ab, "DESIGN.md §4");
        }
        println!(
            "{:<16} {:<18} serial vs parallel generation timing (BENCH_parallel.json)",
            "bench", "perf"
        );
        println!(
            "{:<16} {:<18} hot-path micro-benches (BENCH_components.json)",
            "bench-components", "perf"
        );
        println!(
            "{:<16} {:<18} per-experiment regeneration timing (BENCH_figures.json)",
            "bench-figures", "perf"
        );
        println!(
            "{:<16} {:<18} ablation sweep timing (BENCH_ablations.json)",
            "bench-ablations", "perf"
        );
        println!(
            "{:<16} {:<18} traced run: event log + Chrome trace (TRACE_events.jsonl, TRACE_chrome.json)",
            "trace", "observability"
        );
        println!(
            "{:<16} {:<18} traced run: per-subsystem metrics (TRACE_metrics.json, TRACE_metrics.prom)",
            "metrics", "observability"
        );
        println!(
            "{:<16} {:<18} traced run: SLO + phase attribution report (SLO_report.json)",
            "slo", "observability"
        );
        println!(
            "{:<16} {:<18} print one session's causal join span tree (explain session/3)",
            "explain", "observability"
        );
        println!(
            "{:<16} {:<18} regression gate over two BENCH_*.json artifacts",
            "bench-diff", "perf"
        );
        println!(
            "{:<16} {:<18} three-way RTMP/HLS/SRT loss sweep (CHAOS_sweep.json)",
            "chaos", "DESIGN.md §8+§12"
        );
        println!(
            "{:<16} {:<18} live SLO monitor: batched sketch snapshots (SLO_live.jsonl, SLO_live.prom)",
            "watch", "DESIGN.md §11"
        );
        println!(
            "{:<16} {:<18} sharded 10K→100K→1M broadcast sweep (SCALE_report.json)",
            "scale", "DESIGN.md §13"
        );
        println!(
            "{:<16} {:<18} burn-rate alert + ground-truth incident study (INCIDENTS.json)",
            "incidents", "DESIGN.md §14"
        );
        return;
    }
    let config = pscp_bench::lab_config(&scale, seed).unwrap_or_else(|e| usage(&e));
    let mut lab = Lab::new(config);
    // Wall-clock timing for the human-readable "(generated in …)" lines;
    // separate from the lab's own observer so it is always on.
    let profiler = pscp_obs::Observer::profile_only();
    let ids: Vec<String> = if targets.iter().any(|t| t == "all") {
        experiments::all().iter().map(|e| e.id.to_string()).collect()
    } else {
        targets
    };
    for id in ids {
        match id.as_str() {
            "ablation-buffer" => {
                banner(&id, "player buffer sizing");
                println!("{}", pscp_bench::ablation_buffer(&mut lab, 12));
            }
            "ablation-visibility" => {
                banner(&id, "map visibility caps");
                println!("{}", pscp_bench::ablation_visibility(&lab));
            }
            "ablation-cache" => {
                banner(&id, "profile picture caching");
                println!("{}", pscp_bench::ablation_cache(&mut lab, 8));
            }
            "ablation-threshold" => {
                banner(&id, "HLS viewer threshold");
                println!("{}", pscp_bench::ablation_threshold(seed, 20));
            }
            "ablation-mtu" => {
                banner(&id, "network packet granularity");
                println!("{}", pscp_bench::ablation_mtu(seed, 10));
            }
            _ => match experiments::by_id(&id) {
                Some(exp) => {
                    banner(exp.id, exp.title);
                    println!("reproduces: {}", exp.paper_ref);
                    let figure = profiler.phase(exp.id, || (exp.run)(&mut lab));
                    let secs = profiler.phases().last().map(|p| p.wall_secs).unwrap_or(0.0);
                    println!("(generated in {secs:.1} s)\n");
                    println!("{}", figure.render());
                }
                None => {
                    eprintln!("unknown experiment '{id}' — try `repro list`");
                    std::process::exit(2);
                }
            },
        }
    }
}

/// Times dataset generation at 1 thread and at the auto-resolved thread
/// count (`PSCP_THREADS` / available parallelism) and records the result
/// in `BENCH_parallel.json` in the working directory.
fn bench_parallel(scale: &str, seed: u64) {
    let threads = pscp_simnet::par::resolve_threads(0);
    let time_with = |n: usize| {
        let mut config = pscp_bench::lab_config(scale, seed).unwrap_or_else(|e| usage(&e));
        config.threads = n;
        // Phase spans (plan/execute/sweep) come for free from the profiler
        // and land in BENCH_parallel.json below.
        config.profile = true;
        let mut lab = Lab::new(config);
        let started = std::time::Instant::now();
        let dataset = lab.session_dataset();
        let len = dataset.len();
        (started.elapsed().as_secs_f64(), len, lab.observer().phases())
    };
    println!("benchmarking dataset generation: scale {scale}, seed {seed}");
    let (serial_secs, sessions, serial_phases) = time_with(1);
    println!("  1 thread : {serial_secs:.2} s ({sessions} sessions)");
    let (parallel_secs, sessions_par, parallel_phases) = time_with(threads);
    println!("  {threads} threads: {parallel_secs:.2} s ({sessions_par} sessions)");
    assert_eq!(sessions, sessions_par, "thread count changed the dataset size");
    println!("{}", pscp_obs::phases_table(&parallel_phases));
    let speedup = serial_secs / parallel_secs.max(1e-9);
    let json = format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"seed\": {seed},\n  \"sessions\": {sessions},\n  \
         \"threads\": {threads},\n  \"serial_secs\": {serial_secs:.3},\n  \
         \"parallel_secs\": {parallel_secs:.3},\n  \
         \"sessions_per_sec_serial\": {:.2},\n  \
         \"sessions_per_sec_parallel\": {:.2},\n  \"speedup\": {speedup:.2},\n  \
         \"phases_serial\": {},\n  \"phases_parallel\": {}\n}}\n",
        sessions as f64 / serial_secs.max(1e-9),
        sessions as f64 / parallel_secs.max(1e-9),
        pscp_obs::phases_json(&serial_phases),
        pscp_obs::phases_json(&parallel_phases),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("speedup: {speedup:.2}x — wrote BENCH_parallel.json");
}

/// Compares two `BENCH_*.json` artifacts and exits non-zero when any
/// shared timing regressed past the noise threshold (25 %, or
/// `PSCP_BENCH_THRESHOLD` as a fraction, e.g. `0.4`).
fn bench_diff(old_path: &str, new_path: &str) {
    let threshold = std::env::var("PSCP_BENCH_THRESHOLD")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(pscp_bench::diff::DEFAULT_THRESHOLD);
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("read {path}: {e}")))
    };
    let report = pscp_bench::diff::diff(&read(old_path), &read(new_path), threshold)
        .unwrap_or_else(|e| usage(&e));
    println!("bench-diff: {old_path} → {new_path} (threshold {:.0}%)", threshold * 100.0);
    print!("{}", report.table());
    if report.has_regressions() {
        // PSCP_BENCH_GATE=warn is the escape hatch for known-noisy runners:
        // the report still prints, but the exit code stays green.
        if std::env::var("PSCP_BENCH_GATE").is_ok_and(|v| v == "warn") {
            println!("bench-diff: regressions found, but PSCP_BENCH_GATE=warn — not failing");
            return;
        }
        std::process::exit(1);
    }
}

/// Runs the DESIGN.md §8/§12 three-way transport chaos sweep: the same
/// planned sessions per transport arm under the chaos fault preset at
/// increasing loss intensity, reporting stall-ratio and join-time ECDFs,
/// per-transport mean tables and fault/recovery counters plus one SLO
/// report per arm, and writing the machine-readable sweep to
/// `CHAOS_sweep.json`.
fn chaos_sweep(scale: &str, seed: u64, cfg: &pscp_core::ChaosConfig) {
    let config = pscp_bench::lab_config(scale, seed).unwrap_or_else(|e| usage(&e));
    let mut lab = Lab::new(config);
    let arms: Vec<&str> =
        cfg.transports.iter().map(|&t| pscp_core::chaos::transport_name(t)).collect();
    println!(
        "chaos sweep: scale {scale}, seed {seed}, {} sessions/point, loss scales {:?}, \
         transports {arms:?}",
        cfg.sessions, cfg.loss_scales
    );
    let sweep = pscp_core::run_chaos(&mut lab, cfg);
    for fig in sweep.figures() {
        println!("\n{}", fig.render());
    }
    for arm in &sweep.slo {
        println!("\n{}", arm.report.table());
    }
    std::fs::write("CHAOS_sweep.json", sweep.sweep_json()).expect("write CHAOS_sweep.json");
    println!(
        "\nwrote CHAOS_sweep.json ({} points, {} SLO arms)",
        sweep.points.len(),
        sweep.slo.len()
    );
}

/// Runs the live SLO monitor: batched session runs folded into streaming
/// sketches, one cumulative snapshot line per batch. Writes
/// `SLO_live.jsonl` (snapshots) and `SLO_live.prom` (merged metrics with
/// sketch quantile gauges). Deterministic at any thread count;
/// `PSCP_WATCH_SYS=1` adds wall-clock RSS/alloc facts to each line.
fn watch_live(
    scale: &str,
    seed: u64,
    batches: usize,
    batch_sessions: usize,
    transport: Option<pscp_service::select::Protocol>,
    fail_on_violation: bool,
) {
    let lab_cfg = pscp_bench::lab_config(scale, seed).unwrap_or_else(|e| usage(&e));
    let include_sys =
        std::env::var("PSCP_WATCH_SYS").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    println!(
        "watch: scale {scale}, seed {seed} — {batches} batch(es) × {batch_sessions} sessions\
         {}{}",
        if include_sys { " (+system facts)" } else { "" },
        transport.map(|t| format!(" (transport {})", t.name())).unwrap_or_default()
    );
    let out = pscp_bench::watch::run_watch(
        lab_cfg,
        &pscp_bench::watch::WatchConfig { batches, batch_sessions, include_sys, transport },
    );
    for line in out.jsonl.lines() {
        println!("{line}");
    }
    std::fs::write("SLO_live.jsonl", &out.jsonl).expect("write SLO_live.jsonl");
    let mut prom = out.prom.clone();
    prom.push_str(&pscp_obs::prometheus_build_info(seed, scale, 1, 0));
    std::fs::write("SLO_live.prom", &prom).expect("write SLO_live.prom");
    println!(
        "wrote SLO_live.jsonl ({} snapshots) + SLO_live.prom — {} sessions, {} sketch bytes",
        batches,
        out.telemetry.n_sessions(),
        out.telemetry.memory_bytes()
    );
    println!(
        "alerts: {} transition(s), firing now: {:?}, violations: {:?}",
        out.timeline.transitions.len(),
        out.firing,
        out.violations
    );
    if fail_on_violation && !out.healthy() {
        eprintln!("watch: SLO violation or firing alert in the final snapshot");
        std::process::exit(1);
    }
}

/// Runs the incident study (DESIGN.md §14): a fault-free control arm plus
/// one chaos arm per transport over the same planned sessions, burn-rate
/// alert timelines per arm, incident correlation, and the ground-truth
/// detector scorecard. Writes `INCIDENTS.json` and, for the first chaos
/// arm, `INCIDENTS_trace.json` — a Chrome trace whose alert transitions
/// appear as instant events over the span tracks.
fn incidents_study(
    scale: &str,
    seed: u64,
    tier: Option<&'static pscp_bench::scale::ScaleTier>,
    cfg: &pscp_core::IncidentConfig,
) {
    let mut lab_cfg = pscp_bench::lab_config(scale, seed).unwrap_or_else(|e| usage(&e));
    if let Some(t) = tier {
        // A scale-sweep world density over the standard four-hour window.
        lab_cfg.population.window = pscp_simnet::SimDuration::from_secs(4 * 3600);
        lab_cfg.population.arrivals_per_sec = t.arrivals_per_sec;
    }
    let arms: Vec<&str> =
        cfg.transports.iter().map(|&t| pscp_core::chaos::transport_name(t)).collect();
    println!(
        "incidents: scale {}, seed {seed}, {} sessions/arm, loss x{}, {} shard(s), \
         arms [control + {arms:?}]",
        tier.map(|t| t.name).unwrap_or(scale),
        cfg.sessions,
        cfg.loss_scale,
        cfg.shards
    );
    let mut lab = Lab::new(lab_cfg);
    let report = pscp_core::run_incidents(&mut lab, cfg);
    print!("{}", report.table());
    std::fs::write("INCIDENTS.json", report.to_json()).expect("write INCIDENTS.json");
    if let Some(arm) = report.arms.iter().find(|a| a.faulted) {
        let trace = pscp_obs::chrome_trace_with_alerts(&arm.spans, &[], &arm.timeline.transitions);
        std::fs::write("INCIDENTS_trace.json", trace).expect("write INCIDENTS_trace.json");
    }
    println!(
        "wrote INCIDENTS.json ({} incidents, {} scorecard rows) + INCIDENTS_trace.json",
        report.incidents.len(),
        report.scorecard.len()
    );
}

/// Builds a trace-enabled lab and runs the standard traced workload:
/// the QoE dataset (unlimited block + bandwidth sweep), one deep crawl,
/// and the Fig 7 energy scenarios. One such lab backs all of
/// `repro trace` / `metrics` / `slo` / `explain` in a single invocation.
fn traced_lab(scale: &str, seed: u64) -> Lab {
    let mut config = pscp_bench::lab_config(scale, seed).unwrap_or_else(|e| usage(&e));
    config.trace = true;
    let mut lab = Lab::new(config);
    lab.session_dataset();
    lab.deep_crawl_at(14.0);
    let model = pscp_energy::model::PowerModel::default();
    let mut trace = lab.observer().trace();
    pscp_energy::scenarios::figure7_traced(&model, &mut trace);
    lab.observer().absorb("energy", trace);
    lab
}

/// Writes sessions.csv and observations.csv into `dir`.
fn export_csvs(lab: &mut Lab, dir: &str) {
    std::fs::create_dir_all(dir).expect("create export dir");
    let dataset = lab.session_dataset();
    let sessions = pscp_qoe::export::sessions_csv(&dataset);
    let sessions_path = format!("{dir}/sessions.csv");
    std::fs::write(&sessions_path, sessions).expect("write sessions.csv");
    println!("wrote {sessions_path} ({} sessions)", dataset.len());
    let crawl = lab.targeted_crawl_at(12.0);
    let ended = crawl.ended_broadcasts();
    let obs = pscp_qoe::export::observations_csv(ended.iter().copied());
    let obs_path = format!("{dir}/observations.csv");
    std::fs::write(&obs_path, obs).expect("write observations.csv");
    println!("wrote {obs_path} ({} broadcasts)", ended.len());
}

/// Renders the whole EXPERIMENTS.md record to stdout: per-artifact sections
/// with the paper's claim and the regenerated data.
fn write_experiments_md(lab: &mut Lab, scale: &str, seed: u64) {
    println!("# EXPERIMENTS — paper vs. reproduction\n");
    println!(
        "Generated by `repro --scale {scale} --seed {seed} experiments-md`. \
         Regenerate after any model change. Absolute numbers are not expected \
         to match a 2016 production service measured from Finland; the *shape* \
         of each result — who wins, by what factor, where the knees fall — is \
         the reproduction target (see DESIGN.md §1 for the substitution \
         table).\n"
    );
    let profiler = pscp_obs::Observer::profile_only();
    for exp in experiments::all() {
        println!("## {} — `{}`\n", exp.paper_ref, exp.id);
        println!("{}\n", exp.title);
        let figure = profiler.phase(exp.id, || (exp.run)(&mut *lab));
        let secs = profiler.phases().last().map(|p| p.wall_secs).unwrap_or(0.0);
        println!("```text");
        print!("{}", figure.render());
        println!("```");
        println!(
            "\n*Regenerated in {secs:.1} s with `repro --scale {scale} --seed {seed} {}`.*\n",
            exp.id
        );
    }
    println!("## Known deviations and their causes\n");
    println!("{}", KNOWN_DEVIATIONS.trim());
    println!("\n## Chaos artifact — `CHAOS_sweep.json`\n");
    println!("{}", CHAOS_SCHEMA.trim());
    println!("\n## Scale artifact — `SCALE_report.json`\n");
    println!("{}", SCALE_SCHEMA.trim());
    println!("\n## Live-monitor artifact — `SLO_live.jsonl`\n");
    println!("{}", SLO_LIVE_SCHEMA.trim());
    println!("\n## Incident artifact — `INCIDENTS.json`\n");
    println!("{}", INCIDENTS_SCHEMA.trim());
}

/// Documented gaps between the paper's numbers and the reproduction.
const KNOWN_DEVIATIONS: &str = r#"
* **Observed broadcast counts** scale with the configured population window
  and crawl length; the paper's ~220K came from four 4–10 h crawls against
  the production service. Use `--scale paper` for the closest comparison.
* **Viewed-broadcast average duration** lands below the paper's 13 min at
  small scales because short crawl windows truncate the long tail (only
  broadcasts that *end during the crawl* count, §4) — the same estimator
  bias the paper had, amplified by shorter windows.
* **Fig 7 vs §5.3 body text**: the paper's own running text quotes
  1537/2102 mW (app on) and 2742/3599 mW (chat on) while its Figure 7 bars
  read 1673/2159 and 4169/4540. The power model is calibrated to the
  figure; the discrepancy is the paper's, not the model's.
* **Audio bitrate** is reported as a mean across streams (the paper lists
  the two discrete encoder settings, 32 and 64 kbps; the mean falls between
  them according to the 60/40 population mix).
* **HLS stall counts** benefit additionally from the closed-form TCP fetch
  model, which cannot reproduce self-induced congestion oscillations; the
  direction (HLS stalls rarer than RTMP) matches §5.1.
"#;

/// Schema of the three-way chaos artifact, rendered into EXPERIMENTS.md.
const CHAOS_SCHEMA: &str = r#"
`repro chaos [--sessions N] [--transports rtmp,hls,srt,auto]` runs the
three-way transport chaos study (DESIGN.md §12) and writes
`CHAOS_sweep.json` alongside the rendered figures. Schema:

* `seed` — fault-schedule seed (independent of the lab world seed).
* `transports` — arm names in sweep order (`"RTMP"`, `"HLS"`, `"SRT"`;
  `"auto"` = the paper's viewer-count selection policy).
* `points` — one object per (transport × loss scale), transport-major:
  * `transport`, `loss_scale` — the arm and the Gilbert–Elliott loss
    multiplier (`0` = loss off, other chaos fault classes still active);
  * `sessions`, `never_joined` — sessions run / sessions that never
    started playback;
  * `mean_stall_ratio` — mean over all sessions (never-joined count 1.0);
  * `mean_join_s` — mean join time over joined sessions (`-1` if none);
  * `counters` — every `fault/*`, `recovery/*` and `srt/*` counter the
    point's sessions emitted (e.g. `srt/nak_sent`, `srt/retransmits`,
    `srt/late_drops`, `srt/conceals`, `fault/lost_packets`).
* `slo` — one entry per transport arm, evaluated at the loss scale
  closest to ×1: `transport`, `loss_scale`, `pass`, and `failed` (names
  of violated objectives; empty when `pass` is true).

All arms replan the identical sessions from the same RNG namespace
(common random numbers), so any cross-arm difference is the transport
discipline, not sampling noise; the artifact is byte-identical at any
`PSCP_THREADS`.
"#;

/// Schema of the planet-scale sweep artifact, rendered into EXPERIMENTS.md.
const SCALE_SCHEMA: &str = r#"
`repro scale [--tier 10k|100k|1m|all] [--shards N] [--sessions N]
[--threads N]` runs the planet-scale sharded sweep (DESIGN.md §13) and
writes `SCALE_report.json`. Schema (`pscp-scale-report/v1`):

* `seed`, `shards`, `threads` — sweep configuration. `shards` must be a
  power of four (1/4/16/64: one quadtree cell per shard); `threads` `0`
  means auto.
* `tiers` — one object per tier in sweep order:
  * `tier`, `arrivals_per_sec` — tier name and the broadcast arrival
    rate that yields ~10K / ~100K / ~1M broadcasts over the default
    4 h window;
  * `broadcasts`, `minutes`, `shards`, `target_sessions` — world size,
    simulated minutes, plan shard count, session budget;
  * `stats` — the merged cross-shard roll-up: session counts
    (`sessions`, `primary`, `migrated_in`, `never_joined`, `skipped`),
    `join_s`/`stall_ppm` quantiles from mergeable sketches,
    `watch_hours`, `migrations` (`out`/`cross_cell`/`dropped`) and
    `chat` (`out`/`in`/`cross_cell`). Cross-cell counts are evaluated
    at a fixed reference depth, so they are identical at any shard
    count — including 1;
  * `qoe` — the merged constant-memory telemetry snapshot (same shape
    as a `repro watch` line, DESIGN.md §11);
  * `memory` — `plan_bytes`, `stats_bytes`, `telemetry_bytes`: the
    instrument footprint. The sketch footprint stays ~constant from
    10K to 1M broadcasts because no per-session vectors are ever
    materialized;
  * `census` — per-quadkey `broadcasts` and `peak_discoverable` at a
    fixed 16-cell reference partition: a pure population fact,
    independent of the configured shard count;
  * `sys` — present only under `PSCP_WATCH_SYS=1`: `wall_secs`,
    `sessions_per_sec`, `rss_bytes` (`null` where the platform cannot
    report RSS).

Everything outside `sys` is byte-identical across shard counts,
`PSCP_THREADS` and reruns (`tests/sharding.rs`); the quadtree partition
and roll-up merge algebra it rests on are property-tested in
`tests/shard_props.rs`.
"#;

/// Schema of the live-monitor snapshot stream, rendered into EXPERIMENTS.md.
const SLO_LIVE_SCHEMA: &str = r#"
`repro watch [--once|--batches N] [--batch-sessions N]
[--transport rtmp|hls|srt|auto] [--fail-on-violation]` writes one JSON
object per line to `SLO_live.jsonl`, cumulative over batches:

* `batch`, `sessions_total` — batch index and sessions folded so far.
* `rss_bytes`, `alloc_count` — wall-clock system facts, present only
  under `PSCP_WATCH_SYS=1` (the default artifact stays deterministic).
* `telemetry` — the constant-memory QoE snapshot (DESIGN.md §11): join
  quantiles, stall ratio, per-phase attribution, sketch footprint.
* `alerts` — burn-rate alert state as of the snapshot (DESIGN.md §14):
  * `transitions` — firing/resolved transitions on the cumulative
    timeline so far;
  * `firing` — rules firing at the data horizon (the end boundary of
    the latest ring window), sorted by name. Empty on every fault-free
    run.

The companion `SLO_live.prom` renders the merged batch metrics plus one
`pscp_alert_state{rule,shard}` gauge per rule and a `pscp_build_info`
gauge (seed/tier/shards/threads labels). `--fail-on-violation` exits 1
iff the final snapshot violates an SLO objective or an alert is firing.
Both artifacts are byte-identical at any `PSCP_THREADS`.
"#;

/// Schema of the incident-study artifact, rendered into EXPERIMENTS.md.
const INCIDENTS_SCHEMA: &str = r#"
`repro incidents [--tier 10k|100k|1m] [--transports rtmp,hls,srt,auto]
[--shards N] [--sessions N] [--loss-scale X] [--threads N]` runs the
burn-rate alert + ground-truth incident study (DESIGN.md §14): a
fault-free control arm plus one chaos arm per transport, all replanning
the identical sessions (common random numbers), and writes
`INCIDENTS.json`:

* `seed`, `loss_scale`, `sessions`, `shards`, `horizon_us` — study
  configuration; the horizon is the population window the ground-truth
  fault timeline is scanned over.
* `arms` — arm names in run order (`control` first).
* `incidents` — correlated incidents: per arm, firing intervals that
  overlap or start within one fast window (5 min) of the group's end
  are merged. Each carries `arm`, `start_us`, `end_us`, `attribution`
  (dominant join phase from the span forest), `rules` (contributing
  rule names, sorted) and `cells` (affected REF_DEPTH quadkeys from the
  per-cell burn rules, sorted).
* `scorecard` — one row per (chaos arm × CDN POP) for the
  `pop_outage/<hostname>` symptom rules, joined against the ground
  truth derived from the fault seed alone: `truth_windows` (injected),
  `observed` (windows with ≥ 1 probed minute — an outage no session
  polled is undetectable by construction), `detected`, `recall`
  (= 1.0 over observed windows on this instrumented system),
  `false_alarms` (firing intervals matching no truth window; 0 by
  construction), `precision`, and `median_detection_latency_s` from
  fault start to the alert boundary (−1 when nothing was detected).
  Ingest outages feed incidents but are aggregated across hostnames,
  so they get no per-unit scorecard row (DESIGN.md §14).
* `timelines` — the full per-arm alert timelines (rule, time, state,
  fast/slow burn rates, attribution). The control arm's timeline is
  empty: no faults, no alerts.

The companion `INCIDENTS_trace.json` is a Chrome trace of the first
chaos arm whose alert transitions appear as instant events over the
span tracks (open in Perfetto). `INCIDENTS.json` is byte-identical
across `PSCP_THREADS` 1/2/8 and `--shards` 1/4/16
(`tests/observability.rs`).
"#;

fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("== {id}: {title}");
    println!("{}", "=".repeat(78));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--scale small|medium|paper|planet] [--seed N] \
         <ids...|all|list|bench|bench-components|bench-figures|bench-ablations|\
         bench-diff <old> <new>|trace|metrics|slo|explain <unit>|\
         chaos [--sessions N] [--transports rtmp,hls,srt,auto]|\
         watch [--once|--batches N] [--batch-sessions N] [--transport rtmp|hls|srt|auto] \
         [--fail-on-violation]|\
         scale [--tier 10k|100k|1m|all] [--shards N] [--sessions N] [--threads N]|\
         incidents [--tier 10k|100k|1m] [--transports rtmp,hls,srt,auto] [--shards N] \
         [--sessions N] [--loss-scale X] [--threads N]>\n\
         trace/metrics/slo/explain share one traced run when requested together"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
