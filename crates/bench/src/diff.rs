//! Bench-regression gate: compare two `BENCH_*.json` artifacts.
//!
//! `repro bench-diff <old> <new>` parses both files with the in-tree JSON
//! parser and compares every timing they share — `results[].per_iter_secs`
//! from the micro-bench suites and `phases[].wall_secs` (plus the
//! `phases_serial`/`phases_parallel` pair and `serial_secs`/`parallel_secs`
//! totals that `BENCH_parallel.json` carries). A timing that grew by more
//! than the noise threshold (default 25 %) is a regression — except the
//! micro-suite `phase/…` wall-clocks, which are calibration-budget-bound
//! and only informational. CI enforces the gate for the component suite
//! against the committed `BENCH_baseline.json`; `PSCP_BENCH_GATE=warn`
//! downgrades a failure to a report for intentional perf changes.

use pscp_proto::json::{parse, Value};
use pscp_stats::table::{fnum, TextTable};

/// Relative slowdown above which a timing counts as a regression.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// One timing present in both artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Qualified metric name, e.g. `result/stats.quantile` or
    /// `phase/dataset.plan`.
    pub name: String,
    /// Seconds in the old (baseline) artifact.
    pub old_secs: f64,
    /// Seconds in the new artifact.
    pub new_secs: f64,
}

impl DiffEntry {
    /// `new/old` — 1.0 means unchanged, 2.0 means twice as slow.
    pub fn ratio(&self) -> f64 {
        self.new_secs / self.old_secs.max(1e-12)
    }

    /// Reported but never gated. A micro-suite `phase/…` timing is the
    /// wall-clock of the whole calibrated bench loop — it tracks however
    /// many iterations fit the `PSCP_BENCH_SECS` budget, not per-iteration
    /// speed, so a faster bench can make the phase *longer*. The
    /// `phase-serial`/`phase-parallel` and `total/…` timings from
    /// `BENCH_parallel.json` measure fixed workloads and do gate.
    pub fn is_informational(&self) -> bool {
        self.name.starts_with("phase/")
    }

    /// Whether this entry slowed down past the threshold.
    pub fn is_regression(&self, threshold: f64) -> bool {
        !self.is_informational() && self.ratio() > 1.0 + threshold
    }
}

/// The comparison of two bench artifacts.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Timings present in both artifacts, in the old artifact's order.
    pub entries: Vec<DiffEntry>,
    /// Metric names only the old artifact has (removed benches).
    pub only_old: Vec<String>,
    /// Metric names only the new artifact has (added benches).
    pub only_new: Vec<String>,
    /// Noise threshold the gate was run with.
    pub threshold: f64,
}

impl BenchDiff {
    /// Entries that slowed down past the threshold, worst first.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        let mut out: Vec<&DiffEntry> =
            self.entries.iter().filter(|e| e.is_regression(self.threshold)).collect();
        out.sort_by(|a, b| b.ratio().total_cmp(&a.ratio()));
        out
    }

    /// Whether any shared timing regressed past the threshold.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.is_regression(self.threshold))
    }

    /// Human-readable report: every shared timing with its ratio, flagged
    /// when past the threshold, plus added/removed benches.
    pub fn table(&self) -> String {
        let mut table = TextTable::new(["metric", "old (s)", "new (s)", "ratio", "verdict"]);
        for e in &self.entries {
            let verdict = if e.is_regression(self.threshold) {
                "REGRESSION"
            } else if e.is_informational() && e.ratio() > 1.0 + self.threshold {
                "slower (info)"
            } else if e.ratio() < 1.0 - self.threshold {
                "improved"
            } else {
                "ok"
            };
            table.row([
                e.name.clone(),
                format!("{:.6}", e.old_secs),
                format!("{:.6}", e.new_secs),
                fnum(e.ratio(), 2),
                verdict.to_string(),
            ]);
        }
        let mut out = table.render();
        if !self.only_old.is_empty() {
            out.push_str(&format!("only in old: {}\n", self.only_old.join(", ")));
        }
        if !self.only_new.is_empty() {
            out.push_str(&format!("only in new: {}\n", self.only_new.join(", ")));
        }
        let n = self.regressions().len();
        out.push_str(&format!(
            "{} shared timings, {} regression(s) past {:.0}%\n",
            self.entries.len(),
            n,
            self.threshold * 100.0
        ));
        out
    }
}

/// Pulls every `(name, seconds)` timing out of a parsed bench artifact.
///
/// Understands both artifact shapes in the repo: the micro-bench suites
/// (`results` + `phases`) and `BENCH_parallel.json` (`serial_secs`,
/// `parallel_secs`, `phases_serial`, `phases_parallel`).
fn extract_timings(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(results) = v.get("results").and_then(Value::as_array) {
        for r in results {
            if let (Some(name), Some(secs)) = (
                r.get("name").and_then(Value::as_str),
                r.get("per_iter_secs").and_then(Value::as_f64),
            ) {
                out.push((format!("result/{name}"), secs));
            }
        }
    }
    let phase_list = |key: &str, prefix: &str| {
        let mut acc = Vec::new();
        if let Some(phases) = v.get(key).and_then(Value::as_array) {
            for p in phases {
                if let (Some(name), Some(secs)) = (
                    p.get("name").and_then(Value::as_str),
                    p.get("wall_secs").and_then(Value::as_f64),
                ) {
                    acc.push((format!("{prefix}/{name}"), secs));
                }
            }
        }
        acc
    };
    out.extend(phase_list("phases", "phase"));
    out.extend(phase_list("phases_serial", "phase-serial"));
    out.extend(phase_list("phases_parallel", "phase-parallel"));
    for (key, name) in [("serial_secs", "total/serial"), ("parallel_secs", "total/parallel")] {
        if let Some(secs) = v.get(key).and_then(Value::as_f64) {
            out.push((name.to_string(), secs));
        }
    }
    out
}

/// Compares two bench artifacts (raw JSON text) under a noise threshold.
pub fn diff(old_json: &str, new_json: &str, threshold: f64) -> Result<BenchDiff, String> {
    let old = parse(old_json).map_err(|e| format!("old artifact: {e:?}"))?;
    let new = parse(new_json).map_err(|e| format!("new artifact: {e:?}"))?;
    let old_timings = extract_timings(&old);
    let new_timings = extract_timings(&new);
    if old_timings.is_empty() {
        return Err("old artifact has no recognizable timings".to_string());
    }
    if new_timings.is_empty() {
        return Err("new artifact has no recognizable timings".to_string());
    }
    let mut entries = Vec::new();
    let mut only_old = Vec::new();
    for (name, old_secs) in &old_timings {
        match new_timings.iter().find(|(n, _)| n == name) {
            Some((_, new_secs)) => entries.push(DiffEntry {
                name: name.clone(),
                old_secs: *old_secs,
                new_secs: *new_secs,
            }),
            None => only_old.push(name.clone()),
        }
    }
    let only_new = new_timings
        .iter()
        .filter(|(n, _)| !old_timings.iter().any(|(o, _)| o == n))
        .map(|(n, _)| n.clone())
        .collect();
    Ok(BenchDiff { entries, only_old, only_new, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
      "suite": "components", "seed": 2016, "target_secs": 0.2,
      "results": [
        {"name":"rtmp.frame","iters":100,"per_iter_secs":0.000010,"mb_per_sec":12.0},
        {"name":"stats.quantile","iters":100,"per_iter_secs":0.000020,"mb_per_sec":null},
        {"name":"gone.bench","iters":10,"per_iter_secs":0.001,"mb_per_sec":null}
      ],
      "phases": [{"name":"suite","wall_secs":0.5,"workers":1,"items":3,"busy_secs":0.5,"idle_secs":0.0}]
    }"#;

    const NEW: &str = r#"{
      "suite": "components", "seed": 2016, "target_secs": 0.2,
      "results": [
        {"name":"rtmp.frame","iters":100,"per_iter_secs":0.000010,"mb_per_sec":12.0},
        {"name":"stats.quantile","iters":100,"per_iter_secs":0.000031,"mb_per_sec":null},
        {"name":"new.bench","iters":10,"per_iter_secs":0.001,"mb_per_sec":null}
      ],
      "phases": [{"name":"suite","wall_secs":0.4,"workers":1,"items":3,"busy_secs":0.4,"idle_secs":0.0}]
    }"#;

    #[test]
    fn flags_only_the_regressed_timing() {
        let d = diff(OLD, NEW, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(d.entries.len(), 3, "two shared results plus the suite phase");
        let regs = d.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "result/stats.quantile");
        assert!(d.has_regressions());
        assert!(d.table().contains("REGRESSION"));
    }

    #[test]
    fn phase_wall_clock_slowdowns_never_gate() {
        // The suite phase runs 0.2 s → 0.5 s (e.g. more iterations fit the
        // budget after a speedup): reported as informational, not gated.
        let new = NEW.replace("\"wall_secs\":0.4", "\"wall_secs\":0.5");
        let old = OLD.replace("\"wall_secs\":0.5", "\"wall_secs\":0.2");
        let d = diff(&old, &new, DEFAULT_THRESHOLD).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1, "only the result/ regression gates");
        assert_eq!(regs[0].name, "result/stats.quantile");
        assert!(d.table().contains("slower (info)"));
    }

    #[test]
    fn tracks_added_and_removed_benches() {
        let d = diff(OLD, NEW, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(d.only_old, vec!["result/gone.bench".to_string()]);
        assert_eq!(d.only_new, vec!["result/new.bench".to_string()]);
    }

    #[test]
    fn a_slack_threshold_suppresses_the_flag() {
        let d = diff(OLD, NEW, 0.60).unwrap();
        assert!(!d.has_regressions());
    }

    #[test]
    fn parallel_artifact_shape_is_understood() {
        let old = r#"{"scale":"medium","seed":2016,"sessions":100,"threads":8,
          "serial_secs":10.0,"parallel_secs":2.0,
          "phases_serial":[{"name":"dataset.plan","wall_secs":1.0,"workers":1,"items":1,"busy_secs":1.0,"idle_secs":0.0}],
          "phases_parallel":[{"name":"dataset.plan","wall_secs":1.0,"workers":8,"items":1,"busy_secs":1.0,"idle_secs":0.0}]}"#;
        let new = r#"{"scale":"medium","seed":2016,"sessions":100,"threads":8,
          "serial_secs":10.1,"parallel_secs":3.5,
          "phases_serial":[{"name":"dataset.plan","wall_secs":1.0,"workers":1,"items":1,"busy_secs":1.0,"idle_secs":0.0}],
          "phases_parallel":[{"name":"dataset.plan","wall_secs":1.1,"workers":8,"items":1,"busy_secs":1.1,"idle_secs":0.0}]}"#;
        let d = diff(old, new, DEFAULT_THRESHOLD).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "total/parallel");
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(diff("{not json", "{}", 0.25).is_err());
        assert!(diff("{}", "{}", 0.25).is_err(), "no timings at all");
    }
}
