//! Benchmark/reproduction harness support: scale parsing and the ablation
//! studies DESIGN.md §4 calls out.
//!
//! The `repro` binary regenerates every paper figure/table
//! (`repro all`, `repro fig5`, `repro list`); the functions here back its
//! `ablation-*` subcommands, quantifying the design decisions the paper
//! speculates about (player buffer sizing, map visibility, picture
//! caching), the [`micro`] module backs its `bench-*` micro-benchmark
//! subcommands, the [`diff`] module backs the `bench-diff`
//! regression gate, and the [`watch`] module backs the `watch` live SLO
//! monitor (DESIGN.md §11).

pub mod diff;
pub mod micro;
pub mod scale;
pub mod watch;

use pscp_client::player::PlayerConfig;
use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_core::{Lab, LabConfig};
use pscp_energy::model::{PowerModel, Radio};
use pscp_service::directory::VisibilityConfig;
use pscp_service::select::Protocol;
use pscp_simnet::SimTime;
use pscp_stats::table::{fnum, TextTable};

/// Parses a `--scale` argument into a [`LabConfig`].
pub fn lab_config(scale: &str, seed: u64) -> Result<LabConfig, String> {
    match scale {
        "small" => Ok(LabConfig::small(seed)),
        "medium" => Ok(LabConfig::medium(seed)),
        "paper" => Ok(LabConfig::paper(seed)),
        "planet" => Ok(LabConfig::planet(seed)),
        other => Err(format!("unknown scale '{other}' (small|medium|paper|planet)")),
    }
}

/// Ablation: HLS/RTMP player buffer thresholds vs stalls and latency.
///
/// §5.1 closes with "It is possible that the buffer sizing strategy causes
/// the difference in the number of stall events between the two protocols
/// but we cannot confirm this at the moment." Here we can: sweep the
/// initial/resume thresholds and watch the stall-vs-latency trade-off.
pub fn ablation_buffer(lab: &mut Lab, sessions: usize) -> String {
    let mut table = TextTable::new([
        "player",
        "initial(s)",
        "resume(s)",
        "sessions",
        "mean stalls",
        "mean latency(s)",
    ]);
    let rngs = *lab.rngs();
    let svc = lab.service();
    for (label, initial, resume) in [
        ("rtmp-tiny", 0.5, 0.4),
        ("rtmp-default", 1.6, 1.0),
        ("rtmp-deep", 4.0, 2.5),
        ("hls-like", 6.0, 3.6),
        ("hls-deep", 10.0, 7.2),
    ] {
        let tp = Teleport::new(svc, rngs.child(&format!("ablation-buffer-{label}")));
        let player = PlayerConfig { initial_buffer_s: initial, resume_buffer_s: resume };
        let outcomes = tp.run_dataset(&TeleportConfig {
            sessions,
            session: SessionConfig {
                player_rtmp: player,
                player_hls: player,
                ..Default::default()
            },
            ..Default::default()
        });
        let n = outcomes.len().max(1);
        let stalls: f64 = outcomes.iter().map(|o| o.meta.n_stalls as f64).sum::<f64>() / n as f64;
        let latency: f64 = {
            let xs: Vec<f64> = outcomes.iter().filter_map(|o| o.player.mean_latency_s()).collect();
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        table.row([
            label.to_string(),
            fnum(initial, 1),
            fnum(resume, 1),
            outcomes.len().to_string(),
            fnum(stalls, 2),
            fnum(latency, 2),
        ]);
    }
    format!(
        "Deeper buffers trade stalls for latency — the paper's §5.1 speculation:\n{}",
        table.render()
    )
}

/// Ablation: map visibility caps vs deep-crawl effectiveness (DESIGN §4:
/// the zoom-dependent cap is what forces deep crawls).
pub fn ablation_visibility(lab: &Lab) -> String {
    let mut table =
        TextTable::new(["base cap", "cap/zoom", "queries", "broadcasts found", "found per query"]);
    for (base, per_zoom) in [(10, 4), (30, 16), (60, 40), (400, 400)] {
        let mut svc = lab.service_at_hour(14.0);
        // Rebuild the service with a different visibility model.
        let config = pscp_service::ServiceConfig {
            visibility: VisibilityConfig { base_cap: base, cap_per_zoom: per_zoom, max_cap: 2000 },
            ..Default::default()
        };
        let mut svc2 = pscp_service::PeriscopeService::new(
            std::mem::replace(
                &mut svc,
                pscp_service::PeriscopeService::new(
                    pscp_workload::population::Population::generate(
                        pscp_workload::population::PopulationConfig::small(),
                        &lab.rngs().child("ablation-throwaway"),
                    ),
                    Default::default(),
                ),
            )
            .population,
            config,
        );
        let crawl = pscp_crawler::DeepCrawl::run(
            &mut svc2,
            &pscp_crawler::DeepCrawlConfig::default(),
            SimTime::from_secs(120),
        );
        let queries = crawl.steps.len();
        let found = crawl.discovered.len();
        table.row([
            base.to_string(),
            per_zoom.to_string(),
            queries.to_string(),
            found.to_string(),
            fnum(found as f64 / queries.max(1) as f64, 1),
        ]);
    }
    format!("Tighter visibility caps force more queries for the same coverage:\n{}", table.render())
}

/// Ablation: profile-picture caching vs traffic and power — the mitigation
/// §5.3 proposes ("The energy overhead of chat could be mitigated by
/// caching profile pictures").
pub fn ablation_cache(lab: &mut Lab, sessions: usize) -> String {
    let mut table = TextTable::new([
        "picture cache",
        "sessions",
        "mean rate (kbps)",
        "mean power WiFi (mW)",
        "mean power LTE (mW)",
    ]);
    let rngs = *lab.rngs();
    let svc = lab.service();
    let model = PowerModel::default();
    for cache in [false, true] {
        let tp = Teleport::new(svc, rngs.child(&format!("ablation-cache-{cache}")));
        let outcomes = tp.run_dataset(&TeleportConfig {
            sessions,
            session: SessionConfig { chat_on: true, picture_cache: cache, ..Default::default() },
            ..Default::default()
        });
        let n = outcomes.len().max(1) as f64;
        let rate: f64 = outcomes
            .iter()
            .map(|o| {
                o.capture.rate_of_kinds(&[
                    pscp_media::capture::FlowKind::Rtmp,
                    pscp_media::capture::FlowKind::HlsHttp,
                    pscp_media::capture::FlowKind::Chat,
                    pscp_media::capture::FlowKind::PictureHttp,
                ]) / 1e3
            })
            .sum::<f64>()
            / n;
        let power = |radio: Radio| {
            outcomes
                .iter()
                .map(|o| pscp_energy::session::session_power_mw(&model, o, radio, true))
                .sum::<f64>()
                / n
        };
        table.row([
            if cache { "on" } else { "off (the app's behaviour)" }.to_string(),
            outcomes.len().to_string(),
            fnum(rate, 0),
            fnum(power(Radio::Wifi), 0),
            fnum(power(Radio::Lte), 0),
        ]);
    }
    format!("The paper's proposed mitigation, quantified:\n{}", table.render())
}

/// Ablation: network packet granularity (MTU) vs the latency metrics.
///
/// DESIGN.md §4 calls the flow/packet hybrid a design decision: this sweep
/// shows how much the packetization grain actually moves the measured
/// delivery latency and join time (answer: little at Ethernet-scale MTUs,
/// which is what justifies the hybrid).
pub fn ablation_mtu(seed: u64, sessions: usize) -> String {
    use pscp_client::device::NetworkSetup;
    let mut table =
        TextTable::new(["mtu (bytes)", "sessions", "mean join (s)", "mean delivery RTMP (s)"]);
    for mtu in [368usize, 1448, 9000] {
        let mut lab = Lab::new(LabConfig::small(seed));
        let rngs = *lab.rngs();
        let svc = lab.service();
        let tp = Teleport::new(svc, rngs.child("ablation-mtu"));
        let network = NetworkSetup { mtu, ..NetworkSetup::finland_unlimited() };
        let outcomes = tp.run_dataset(&TeleportConfig {
            sessions,
            session: SessionConfig { network, ..Default::default() },
            ..Default::default()
        });
        let joins: Vec<f64> = outcomes.iter().filter_map(|o| o.join_time_s()).collect();
        let deliveries: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.protocol == Protocol::Rtmp)
            .take(8)
            .filter_map(pscp_qoe::delivery::delivery_latency_s)
            .collect();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        table.row([
            mtu.to_string(),
            outcomes.len().to_string(),
            fnum(mean(&joins), 3),
            fnum(mean(&deliveries), 3),
        ]);
    }
    format!(
        "Packetization grain barely moves the figures at realistic MTUs:
{}",
        table.render()
    )
}

/// Ablation: HLS viewer threshold vs the protocol mix and QoE split.
pub fn ablation_threshold(seed: u64, sessions: usize) -> String {
    let mut table = TextTable::new([
        "HLS threshold",
        "RTMP sessions",
        "HLS sessions",
        "mean delivery RTMP(s)",
        "mean delivery HLS(s)",
    ]);
    for threshold in [10u32, 100, 1000] {
        let mut config = LabConfig::small(seed);
        config.service.selection.hls_viewer_threshold = threshold;
        let mut lab = Lab::new(config);
        let rngs = *lab.rngs();
        let svc = lab.service();
        let tp = Teleport::new(svc, rngs.child("ablation-threshold"));
        let outcomes = tp.run_dataset(&TeleportConfig { sessions, ..Default::default() });
        let split = |p: Protocol| outcomes.iter().filter(|o| o.protocol == p).count();
        let delivery = |p: Protocol| {
            let xs: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.protocol == p)
                .take(8)
                .filter_map(pscp_qoe::delivery::delivery_latency_s)
                .collect();
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        table.row([
            threshold.to_string(),
            split(Protocol::Rtmp).to_string(),
            split(Protocol::Hls).to_string(),
            fnum(delivery(Protocol::Rtmp), 2),
            fnum(delivery(Protocol::Hls), 2),
        ]);
    }
    format!(
        "Lower thresholds push more sessions onto the high-latency CDN path:\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert!(lab_config("small", 1).is_ok());
        assert!(lab_config("paper", 1).is_ok());
        assert!(lab_config("huge", 1).is_err());
    }

    #[test]
    fn buffer_ablation_produces_rows() {
        let mut lab = Lab::new(LabConfig::small(9));
        let out = ablation_buffer(&mut lab, 4);
        assert!(out.contains("rtmp-default"));
        assert!(out.contains("hls-deep"));
    }

    #[test]
    fn cache_ablation_produces_rows() {
        let mut lab = Lab::new(LabConfig::small(10));
        let out = ablation_cache(&mut lab, 4);
        assert!(out.contains("off (the app's behaviour)"));
        assert!(out.contains("on"));
    }
}
