//! Micro-benchmarks on the phase-span harness.
//!
//! These replace the former criterion benches (`components`, `figures`,
//! `ablations`) with a dependency-free timing loop: each bench body runs
//! under a [`pscp_obs::Observer`] phase span, iteration counts are
//! auto-calibrated to a per-bench time budget (`PSCP_BENCH_SECS`, default
//! 0.2 s), and every suite writes a `BENCH_<suite>.json` artifact in the
//! same phase-span JSON format `repro bench` uses for
//! `BENCH_parallel.json`. Beyond performance tracking, the `figures` suite
//! doubles as a continuously-exercised guarantee that every figure still
//! regenerates.

use pscp_core::{experiments, Lab, LabConfig};
use pscp_obs::Observer;
use std::hint::black_box;
use std::time::Instant;

/// One timed bench: name, calibrated iteration count, and per-iteration
/// wall time (optionally with a bytes-processed throughput).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name (`suite/case`).
    pub name: String,
    /// Measured iterations (excludes warmup and calibration runs).
    pub iters: u64,
    /// Total measured wall time.
    pub total_secs: f64,
    /// Bytes processed per iteration, when the bench is throughput-shaped.
    pub bytes_per_iter: Option<u64>,
    /// Heap allocations per iteration (rounded down), when the counting
    /// allocator is registered (`--features count-allocs` on the `repro`
    /// binary). `None` when it is not measuring.
    pub allocs_per_iter: Option<u64>,
}

impl BenchResult {
    /// Wall time of one iteration.
    pub fn per_iter_secs(&self) -> f64 {
        self.total_secs / self.iters.max(1) as f64
    }

    /// Throughput in MB/s, when bytes were declared.
    pub fn mb_per_sec(&self) -> Option<f64> {
        self.bytes_per_iter.map(|b| b as f64 * self.iters as f64 / self.total_secs.max(1e-12) / 1e6)
    }
}

/// A bench suite: runs bodies under phase spans and renders the artifact.
pub struct MicroBench {
    suite: String,
    seed: u64,
    target_secs: f64,
    observer: Observer,
    results: Vec<BenchResult>,
    facts: Vec<(String, u64)>,
}

impl MicroBench {
    /// A suite writing `BENCH_<suite>.json`; `seed` is recorded for
    /// provenance.
    pub fn new(suite: &str, seed: u64) -> Self {
        let target_secs =
            std::env::var("PSCP_BENCH_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(0.2);
        MicroBench {
            suite: suite.to_string(),
            seed,
            target_secs,
            observer: Observer::profile_only(),
            results: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// Records a suite-level numeric fact (e.g. a memory footprint) in the
    /// artifact's `facts` object. The `bench-diff` gate only reads timings,
    /// so facts ride along without affecting the regression check.
    pub fn fact(&mut self, key: &str, value: u64) {
        self.facts.push((key.to_string(), value));
    }

    /// Times `f` (which must return a value derived from its work, to keep
    /// the optimizer honest): one warmup, one calibration run to pick the
    /// iteration count for the time budget, then the measured loop.
    pub fn run(&mut self, name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut() -> u64) {
        let mut sink = f(); // warmup
        let calib_start = Instant::now();
        sink ^= f();
        let once = calib_start.elapsed().as_secs_f64();
        let iters = ((self.target_secs / once.max(1e-9)).ceil() as u64).clamp(1, 100_000);
        let allocs_before = pscp_obs::alloc_count::current();
        let start = Instant::now();
        self.observer.phase(name, || {
            for _ in 0..iters {
                sink ^= f();
            }
        });
        let total_secs = start.elapsed().as_secs_f64();
        let allocs = pscp_obs::alloc_count::current() - allocs_before;
        black_box(sink);
        self.results.push(BenchResult {
            name: name.to_string(),
            iters,
            total_secs,
            bytes_per_iter,
            // Floor division: the phase-span bookkeeping itself allocates a
            // handful of times per *bench*, which rounds to 0 per iteration.
            allocs_per_iter: pscp_obs::alloc_count::installed().then(|| allocs / iters.max(1)),
        });
    }

    /// Human-readable results table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>8} {:>14} {:>10} {:>12}\n{}\n",
            "bench",
            "iters",
            "per-iter",
            "MB/s",
            "allocs/iter",
            "-".repeat(83)
        ));
        for r in &self.results {
            let per = r.per_iter_secs();
            let per_h = if per >= 1.0 {
                format!("{per:.2} s")
            } else if per >= 1e-3 {
                format!("{:.2} ms", per * 1e3)
            } else {
                format!("{:.2} µs", per * 1e6)
            };
            let tp = r.mb_per_sec().map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into());
            let al = r.allocs_per_iter.map(|a| a.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<34} {:>8} {:>14} {:>10} {:>12}\n",
                r.name, r.iters, per_h, tp, al
            ));
        }
        out
    }

    /// The machine-readable artifact body (`BENCH_<suite>.json`).
    pub fn json(&self) -> String {
        let results: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                let tp = r.mb_per_sec().map(|t| format!("{t:.2}")).unwrap_or_else(|| "null".into());
                let al = r.allocs_per_iter.map(|a| a.to_string()).unwrap_or_else(|| "null".into());
                format!(
                    "    {{\"name\":\"{}\",\"iters\":{},\"per_iter_secs\":{:.9},\
                     \"mb_per_sec\":{},\"allocs_per_iter\":{}}}",
                    r.name,
                    r.iters,
                    r.per_iter_secs(),
                    tp,
                    al
                )
            })
            .collect();
        let facts = if self.facts.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> =
                self.facts.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("  \"facts\": {{{}}},\n", entries.join(","))
        };
        format!(
            "{{\n  \"suite\": \"{}\",\n  \"seed\": {},\n  \"target_secs\": {},\n{facts}  \
             \"results\": [\n{}\n  ],\n  \"phases\": {}\n}}\n",
            self.suite,
            self.seed,
            self.target_secs,
            results.join(",\n"),
            pscp_obs::phases_json(&self.observer.phases()),
        )
    }

    /// Writes the artifact and prints the table plus the artifact path.
    pub fn finish(self) -> String {
        let path = format!("BENCH_{}.json", self.suite);
        std::fs::write(&path, self.json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        format!("{}\nwrote {path} ({} benches)", self.table(), self.results.len())
    }
}

/// Component hot paths: protocol (de)framing, TS mux/demux, the encoder,
/// stats kernels, TLS record framing, and one full RTMP session. These
/// guard against regressions that would make paper-scale figure
/// regeneration impractically slow.
pub fn bench_components(seed: u64) -> String {
    use pscp_media::bitstream::{FrameKind, FramePayload};
    use pscp_media::content::{ContentClass, ContentProcess};
    use pscp_media::encoder::{Encoder, EncoderConfig};
    use pscp_media::flv::VideoTag;
    use pscp_media::ts::{TsDemuxer, TsMuxer, TsUnit};
    use pscp_proto::json;
    use pscp_proto::rtmp::{Chunker, Dechunker, Message};
    use pscp_simnet::{Link, RngFactory, SimDuration, SimTime};
    use pscp_stats::{welch_t_test, Ecdf};

    fn frame(pts: u32, size: usize) -> FramePayload {
        FramePayload {
            kind: if pts.is_multiple_of(1200) { FrameKind::I } else { FrameKind::P },
            qp: 30,
            width: 320,
            height: 568,
            pts_ms: pts,
            ntp_s: None,
            size,
        }
    }

    let mut suite = MicroBench::new("components", seed);

    // One second of video: 30 frames of ~1 kB.
    let msgs: Vec<Message> = (0..30u32)
        .map(|i| Message::video(i * 33, VideoTag::for_frame(frame(i * 33, 1000)).encode()))
        .collect();
    let rtmp_bytes: usize = msgs.iter().map(|m| m.payload.len()).sum();
    // Steady-state shape: the wire buffer and the dechunker's arenas are
    // reused across iterations, as the session loop reuses them across
    // messages; only the chunker restarts so each iteration emits the same
    // bytes.
    let mut wire: Vec<u8> = Vec::new();
    let mut d = Dechunker::new();
    suite.run("rtmp/chunk+dechunk 1s of video", Some(rtmp_bytes as u64), || {
        wire.clear();
        let mut chunker = Chunker::new();
        for m in &msgs {
            chunker.write_ref(m.as_ref(), &mut wire);
        }
        d.feed(&wire).expect("dechunk");
        let mut n = 0u64;
        while let Some(msg) = d.next_view() {
            n += msg.payload.len() as u64;
        }
        n
    });

    let units: Vec<TsUnit> = (0..108u32)
        .map(|i| TsUnit::Video { pts_ms: i * 33, data: frame(i * 33, 1200).encode() })
        .collect();
    let segment = TsMuxer::new().mux_segment(&units);
    let mut seg_out: Vec<u8> = Vec::new();
    suite.run("mpegts/mux 3.6s segment", Some(segment.len() as u64), || {
        seg_out.clear();
        TsMuxer::new().mux_into(units.iter().map(|u| u.as_ref()), &mut seg_out);
        seg_out.len() as u64
    });
    let mut demux = TsDemuxer::new();
    suite.run("mpegts/demux 3.6s segment", Some(segment.len() as u64), || {
        demux.reset();
        demux.push(&segment).expect("demux");
        demux.finish().expect("demux");
        demux.units().count() as u64
    });

    suite.run("encoder/60s of video", None, || {
        let mut rng = RngFactory::new(1).stream("bench");
        let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
        let mut enc = Encoder::new(EncoderConfig::default(), content);
        let mut total = 0usize;
        for i in 0..1800 {
            if let Some(f) = enc.next_frame(i as f64 / 30.0, &mut rng) {
                total += f.size();
            }
        }
        total as u64
    });

    let doc = {
        let items: Vec<String> = (0..100)
            .map(|i| format!(r#"{{"id":"brdcst{i:07}","lat":41.2,"lng":28.9,"n":{i}}}"#))
            .collect();
        format!(r#"{{"broadcasts":[{}]}}"#, items.join(","))
    };
    suite.run("json/parse map-feed response", Some(doc.len() as u64), || {
        json::parse(&doc).expect("parse");
        doc.len() as u64
    });

    // 1000 MTU-ish packets offered as bursts of 100 (one burst per
    // simulated send), so `enqueue_batch` amortizes the queue bookkeeping
    // the way the session packet pump does.
    let pkt_sizes: Vec<usize> = (0..1000usize).map(|i| 1448 - (i % 3)).collect();
    let pkt_bytes: u64 = pkt_sizes.iter().map(|&s| s as u64).sum();
    suite.run("link/enqueue 1000 packets", Some(pkt_bytes), || {
        let mut link = Link::unbounded(10e6, SimDuration::from_millis(20));
        let mut t = SimTime::ZERO;
        let mut n = 0u64;
        for burst in pkt_sizes.chunks(100) {
            t += SimDuration::from_millis(10);
            link.enqueue_batch(t, burst.iter().copied(), |d| {
                n += d.time().is_some() as u64;
            });
        }
        black_box(link.busy_until());
        n
    });

    let mut rng = RngFactory::new(2).stream("stats-bench");
    let data: Vec<f64> =
        (0..10_000).map(|_| pscp_simnet::dist::lognormal(&mut rng, 0.0, 1.0)).collect();
    suite
        .run("stats/ecdf build 10k samples", None, || Ecdf::new(&data).expect("ecdf").len() as u64);
    let (a, b) = data.split_at(5000);
    suite.run("stats/welch t-test 2x5k", None, || {
        welch_t_test(a, b).expect("welch").p_value.to_bits()
    });

    {
        use pscp_stats::sketch::QuantileSketch;
        // Constant-memory telemetry vs the full-sample path it replaces at
        // scale: fold synthetic join times (integer µs, lognormal like the
        // real distribution) into a sketch, against building the exact ECDF
        // over the same samples (DESIGN.md §11).
        let mut rng = RngFactory::new(3).stream("sketch-bench");
        let join_us: Vec<u64> = (0..100_000)
            .map(|_| (pscp_simnet::dist::lognormal(&mut rng, 0.0, 1.0) * 1e6) as u64)
            .collect();
        for n in [10_000usize, 100_000] {
            let slice = &join_us[..n];
            suite.run(&format!("stats/sketch fold {}k sessions", n / 1000), None, || {
                let mut s = QuantileSketch::new();
                for &v in slice {
                    s.observe(v);
                }
                s.quantile(0.9).unwrap_or(0)
            });
        }
        let secs: Vec<f64> = join_us.iter().map(|&v| v as f64 / 1e6).collect();
        suite.run("stats/ecdf build 100k samples", None, || {
            Ecdf::new(&secs).expect("ecdf").len() as u64
        });
        let mut full = QuantileSketch::new();
        for &v in &join_us {
            full.observe(v);
        }
        suite.fact("sketch_bytes_per_metric_100k_sessions", full.memory_bytes() as u64);
        suite.fact("sketch_bytes_empty", QuantileSketch::new().memory_bytes() as u64);
        // A QoeTelemetry accumulator carries four quantile sketches (join,
        // stall, RTMP latency, join breakdown); moments and top-k add a few
        // hundred bytes more. This bounds the watch loop's QoE state.
        suite.fact("sketch_bytes_telemetry_100k_sessions", 4 * full.memory_bytes() as u64);
    }

    {
        use pscp_core::shard::{ShardPlan, ShardStats};
        use pscp_simnet::rng::Rng as _;
        use pscp_workload::population::{Population, PopulationConfig};
        // The sharded engine's bookkeeping overhead (DESIGN.md §13): build
        // the 16-cell quadtree plan over a medium world and fold 16
        // per-shard roll-ups into one — everything `run_scale` does beyond
        // running the sessions themselves.
        let pop =
            Population::generate(PopulationConfig::medium(), &RngFactory::new(4).child("world"));
        let mut leaves: Vec<ShardStats> = Vec::new();
        let mut rng = RngFactory::new(4).stream("shard-bench");
        for _ in 0..16 {
            let mut st = ShardStats::new();
            for _ in 0..500 {
                st.sessions += 1;
                st.join_us.observe((pscp_simnet::dist::lognormal(&mut rng, 0.0, 1.0) * 1e6) as u64);
                st.stall_ppm.observe((rng.gen::<f64>() * 1e5) as u64);
            }
            leaves.push(st);
        }
        suite.run("shard/plan+fold 16 cells medium world", None, || {
            let plan = ShardPlan::build(&pop, 16);
            let mut acc = ShardStats::new();
            for leaf in &leaves {
                acc.merge(leaf);
            }
            plan.discoverable_broadcast_minutes() + acc.join_us.count()
        });
        let plan = ShardPlan::build(&pop, 16);
        suite.fact("shard_plan_bytes_medium_world", plan.memory_bytes() as u64);
    }

    {
        use pscp_proto::tls::TlsChannel;
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        suite.run("tls/seal+open 100kB", Some(payload.len() as u64), || {
            let mut tx = TlsChannel::new(42);
            let mut rx = TlsChannel::new(42);
            let wire = tx.seal(&payload);
            rx.open_all(&wire).expect("open").len() as u64
        });
    }

    {
        use pscp_client::rtmp_session;
        use pscp_client::session::SessionConfig;
        use pscp_media::audio::AudioBitrate;
        use pscp_simnet::GeoPoint;
        use pscp_workload::broadcast::{Broadcast, BroadcastId, DeviceProfile};
        let broadcast = Broadcast {
            id: BroadcastId(5),
            location: GeoPoint::new(41.01, 28.98),
            city: "Istanbul",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(1800),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 25.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: 5,
            target_bitrate_bps: 300_000.0,
        };
        // Nominal throughput denominator: the capture size of one
        // representative run (per-seed variation is ~1%, fine for a MB/s
        // indicator).
        let nominal_bytes = rtmp_session::run(
            &broadcast,
            SimTime::from_secs(400),
            &SessionConfig::default(),
            &RngFactory::new(1).child("bench-session"),
        )
        .capture
        .total_bytes() as u64;
        let mut i = 0u64;
        suite.run("session/rtmp 60s end-to-end", Some(nominal_bytes), || {
            i += 1;
            let rngs = RngFactory::new(i).child("bench-session");
            rtmp_session::run(&broadcast, SimTime::from_secs(400), &SessionConfig::default(), &rngs)
                .capture
                .total_bytes() as u64
        });

        // The SRT twin of the RTMP bench (DESIGN.md §12): same broadcast,
        // same seeds (common random numbers), so the per-iteration delta
        // between the two benches is the transport machinery itself —
        // handshake, per-packet datagram accounting, ARQ bookkeeping.
        use pscp_client::srt_session;
        let srt_nominal_bytes = srt_session::run(
            &broadcast,
            SimTime::from_secs(400),
            &SessionConfig::default(),
            &RngFactory::new(1).child("bench-session"),
        )
        .capture
        .total_bytes() as u64;
        let mut j = 0u64;
        suite.run("session/srt 60s end-to-end", Some(srt_nominal_bytes), || {
            j += 1;
            let rngs = RngFactory::new(j).child("bench-session");
            srt_session::run(&broadcast, SimTime::from_secs(400), &SessionConfig::default(), &rngs)
                .capture
                .total_bytes() as u64
        });
    }

    suite.finish()
}

/// One bench per paper figure/table: how long each experiment takes to
/// regenerate at small scale (world generation is warmed outside the timed
/// body, so the numbers isolate the experiment itself).
pub fn bench_figures(seed: u64) -> String {
    let mut suite = MicroBench::new("figures", seed);
    for exp in experiments::all() {
        // The session-dataset experiments share a memoized dataset inside a
        // Lab; warming it here keeps world generation out of the timing.
        let mut lab = Lab::new(LabConfig::small(seed));
        let _ = (exp.run)(&mut lab);
        suite.run(exp.id, None, || (exp.run)(&mut lab).render().len() as u64);
    }
    suite.finish()
}

/// Times the DESIGN.md §4 design-choice sweeps. The *results* of the
/// ablations are printed by `repro ablation-*`; these track their cost so
/// the sweeps stay usable interactively.
pub fn bench_ablations(seed: u64) -> String {
    let mut suite = MicroBench::new("ablations", seed);
    {
        let mut lab = Lab::new(LabConfig::small(seed ^ 17));
        lab.service();
        suite.run("buffer_sizing", None, || crate::ablation_buffer(&mut lab, 3).len() as u64);
    }
    {
        let lab = Lab::new(LabConfig::small(seed ^ 18));
        suite.run("visibility_caps", None, || crate::ablation_visibility(&lab).len() as u64);
    }
    {
        let mut lab = Lab::new(LabConfig::small(seed ^ 19));
        lab.service();
        suite.run("picture_cache", None, || crate::ablation_cache(&mut lab, 3).len() as u64);
    }
    suite.finish()
}
