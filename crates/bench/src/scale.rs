//! `repro scale` — the planet-tier sweep over the sharded engine
//! (DESIGN.md §13).
//!
//! Sweeps world density 10K → 100K → 1M broadcasts (all in the paper's
//! four-hour window), runs each tier through [`pscp_core::shard::run_scale`],
//! and assembles `SCALE_report.json`: QoE distributions, shard traffic,
//! census, and the sketch/plan memory footprint per tier. The default
//! report is deterministic — byte-identical at any shard count and thread
//! count. Wall-clock facts (sessions/sec, peak RSS) are non-deterministic
//! by nature, so they ride in a `sys` object only when `PSCP_WATCH_SYS`
//! asks for them, exactly like `repro watch`.

use pscp_core::shard::{run_scale, ScaleConfig, ScaleRun};
use pscp_service::{PeriscopeService, ServiceConfig};
use pscp_simnet::RngFactory;
use pscp_workload::population::{Population, PopulationConfig};
use std::fmt::Write as _;

/// One tier of the sweep: a world density plus a default session budget.
#[derive(Debug, Clone, Copy)]
pub struct ScaleTier {
    /// Tier id (`10k`, `100k`, `1m`).
    pub name: &'static str,
    /// Broadcast arrival rate over the four-hour window.
    pub arrivals_per_sec: f64,
    /// Default primary-session target for the tier.
    pub default_sessions: usize,
}

/// The sweep tiers: ~10K, ~100K and ~1M broadcasts.
pub const TIERS: &[ScaleTier] = &[
    ScaleTier { name: "10k", arrivals_per_sec: 0.7, default_sessions: 400 },
    ScaleTier { name: "100k", arrivals_per_sec: 7.0, default_sessions: 800 },
    ScaleTier { name: "1m", arrivals_per_sec: 70.0, default_sessions: 1600 },
];

/// Looks a tier up by id.
pub fn tier_by_name(name: &str) -> Option<&'static ScaleTier> {
    TIERS.iter().find(|t| t.name == name)
}

/// `repro scale` settings.
#[derive(Debug, Clone)]
pub struct ScaleArgs {
    /// Master seed.
    pub seed: u64,
    /// Shard count (a power of four).
    pub shards: usize,
    /// Worker threads (`0` = auto).
    pub threads: usize,
    /// Session-target override applied to every tier.
    pub sessions: Option<usize>,
    /// Tiers to run, in order.
    pub tiers: Vec<&'static ScaleTier>,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        ScaleArgs {
            seed: 2016,
            shards: 16,
            threads: 0,
            sessions: None,
            tiers: TIERS.iter().collect(),
        }
    }
}

/// Runs one tier and renders its report object.
fn run_tier(args: &ScaleArgs, tier: &ScaleTier) -> (ScaleRun, String) {
    let pop_cfg =
        PopulationConfig { arrivals_per_sec: tier.arrivals_per_sec, ..PopulationConfig::default() };
    let rngs = RngFactory::new(args.seed);
    let population = Population::generate(pop_cfg, &rngs.child("world"));
    let service = PeriscopeService::new(population, ServiceConfig::default());
    let cfg = ScaleConfig {
        shards: args.shards,
        threads: args.threads,
        target_sessions: args.sessions.unwrap_or(tier.default_sessions),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let run = run_scale(&service, &rngs, &cfg);
    let wall_secs = started.elapsed().as_secs_f64();

    let mut s = String::with_capacity(2048);
    let _ = write!(
        s,
        "    {{\"tier\":\"{}\",\"arrivals_per_sec\":{},\"broadcasts\":{},\"minutes\":{},\
         \"shards\":{},\"target_sessions\":{}",
        tier.name,
        tier.arrivals_per_sec,
        run.broadcasts,
        run.minutes,
        run.shards,
        cfg.target_sessions
    );
    let _ = write!(s, ",\n     \"stats\":{}", run.stats.json());
    let _ = write!(s, ",\n     \"qoe\":{}", run.telemetry.snapshot_json());
    let _ = write!(
        s,
        ",\n     \"memory\":{{\"plan_bytes\":{},\"stats_bytes\":{},\"telemetry_bytes\":{}}}",
        run.plan_bytes,
        run.stats.memory_bytes(),
        run.telemetry.memory_bytes()
    );
    let _ = write!(s, ",\n     \"census\":[");
    for (i, row) in run.census.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"cell\":\"{}\",\"broadcasts\":{},\"peak_discoverable\":{}}}",
            row.quadkey, row.broadcasts, row.peak_discoverable
        );
    }
    s.push(']');
    // Wall-clock facts only on request: they would break byte-comparable
    // reports (and CI caching) if they were always present.
    if std::env::var("PSCP_WATCH_SYS").is_ok_and(|v| !v.is_empty() && v != "0") {
        let _ = write!(
            s,
            ",\n     \"sys\":{{\"wall_secs\":{:.3},\"sessions_per_sec\":{:.1}",
            wall_secs,
            run.stats.sessions as f64 / wall_secs.max(1e-9)
        );
        match crate::watch::rss_bytes() {
            Some(rss) => {
                let _ = write!(s, ",\"rss_bytes\":{rss}}}");
            }
            None => s.push_str(",\"rss_bytes\":null}"),
        }
    }
    s.push('}');
    (run, s)
}

/// Runs the sweep and returns the full `SCALE_report.json` text; progress
/// lines go to stdout as tiers finish.
pub fn run_scale_report(args: &ScaleArgs) -> String {
    let mut out = String::with_capacity(8192);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"pscp-scale-report/v1\",\n  \"seed\": {},\n  \"shards\": {},\n  \
         \"threads\": {},\n  \"tiers\": [\n",
        args.seed, args.shards, args.threads
    );
    for (i, tier) in args.tiers.iter().enumerate() {
        let (run, json) = run_tier(args, tier);
        println!(
            "tier {:>4}: {:>7} broadcasts, {} shards, {} sessions \
             ({} migrations, {} chat msgs; sketches {} B)",
            tier.name,
            run.broadcasts,
            run.shards,
            run.stats.sessions,
            run.stats.migrations_out,
            run.stats.chat_out,
            run.stats.memory_bytes() + run.telemetry.memory_bytes(),
        );
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&json);
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_lookup() {
        assert_eq!(tier_by_name("10k").unwrap().default_sessions, 400);
        assert_eq!(tier_by_name("1m").unwrap().arrivals_per_sec, 70.0);
        assert!(tier_by_name("huge").is_none());
    }

    #[test]
    fn report_is_deterministic_and_shard_invariant() {
        let base = ScaleArgs {
            seed: 9,
            shards: 1,
            threads: 1,
            sessions: Some(40),
            tiers: vec![tier_by_name("10k").unwrap()],
        };
        let a = run_scale_report(&base);
        let b = run_scale_report(&ScaleArgs { shards: 4, threads: 0, ..base.clone() });
        // The configured shard count and the plan's own footprint are
        // config facts and differ by design; every simulation output —
        // stats, QoE, census — must match byte for byte.
        let section = |s: &str, key: &str| {
            let start = s.find(key).unwrap_or_else(|| panic!("report missing {key}"));
            s[start..].split("\n").next().unwrap().to_string()
        };
        for key in ["\"stats\":", "\"qoe\":", "\"census\":"] {
            assert_eq!(section(&a, key), section(&b, key), "section {key} diverged");
        }
        assert!(a.contains("\"schema\": \"pscp-scale-report/v1\""));
        // Same config twice → the whole report is byte-identical.
        assert_eq!(a, run_scale_report(&base));
    }
}
