//! `repro watch` — a live SLO monitor over batched simulation runs.
//!
//! Each batch runs a fresh block of viewing sessions under its own
//! `watch-{i}` RNG namespace and a local tracing observer, folds the
//! outcomes and span breakdowns into one cumulative
//! [`QoeTelemetry`] accumulator, and emits one `SLO_live.jsonl` line: a
//! constant-memory snapshot of the QoE state so far (join p50/p90, stall
//! ratio, per-phase attribution, sketch footprint). The deterministic
//! fields are a pure function of the plan, so the JSONL stream is
//! byte-identical at any `PSCP_THREADS`. Wall-clock facts — RSS and
//! allocation counts — are *off* by default and only appear when
//! `PSCP_WATCH_SYS` asks for them, keeping the default artifact stable.
//!
//! The merged metrics registries of every batch are also rendered to
//! `SLO_live.prom` (Prometheus text, including the sketch quantile
//! gauges from `pscp_obs::export`).
//!
//! Each batch additionally re-evaluates the burn-rate alert rules
//! (DESIGN.md §14) over the *cumulative* registry and span forest, so
//! every JSONL line carries the alert state as of that snapshot —
//! transition count plus the rules firing at the data horizon — and the
//! Prometheus artifact gains one `pscp_alert_state` gauge per rule.
//! `repro watch --fail-on-violation` turns the final snapshot into an
//! exit code: nonzero when an objective is violated or an alert is still
//! firing.

use std::fmt::Write as _;

use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_core::{Lab, LabConfig};
use pscp_obs::{AlertTimeline, MetricsRegistry, Observer, Span, RING_WINDOW_US};
use pscp_qoe::slo::fold_breakdowns;
use pscp_qoe::{alert_rules, QoeTelemetry, SloSpec};
use pscp_service::select::Protocol;

/// Watch-loop shape: how many batches, how big, how parallel.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Snapshot batches to run (1 for `--once`).
    pub batches: usize,
    /// Viewing sessions per batch.
    pub batch_sessions: usize,
    /// Include wall-clock system facts (RSS, allocation count) in each
    /// snapshot line. Non-deterministic; gated behind `PSCP_WATCH_SYS`.
    pub include_sys: bool,
    /// Force every session onto one transport (`repro watch --transport`).
    /// `None` — the default, and the only golden-artifact configuration —
    /// runs the paper's selection policy. `Some(Srt)` makes the monitor
    /// surface SRT health: the `srt/retx_queue_pkts` and
    /// `srt/late_drop_ppm` sketch quantiles land in `SLO_live.prom` and
    /// the `srt` join phases in the snapshot attribution.
    pub transport: Option<Protocol>,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig { batches: 5, batch_sessions: 40, include_sys: false, transport: None }
    }
}

/// Everything one watch run produces.
#[derive(Debug)]
pub struct WatchOutput {
    /// One JSON line per batch (`SLO_live.jsonl`).
    pub jsonl: String,
    /// Prometheus rendering of the merged batch metrics plus the final
    /// alert-state gauges (`SLO_live.prom`).
    pub prom: String,
    /// The final cumulative telemetry.
    pub telemetry: QoeTelemetry,
    /// The final cumulative alert timeline.
    pub timeline: AlertTimeline,
    /// Rules firing at the final snapshot's data horizon.
    pub firing: Vec<String>,
    /// Objectives the final telemetry violates.
    pub violations: Vec<&'static str>,
}

impl WatchOutput {
    /// `--fail-on-violation` verdict: healthy iff the final snapshot
    /// violates no objective and no alert is firing.
    pub fn healthy(&self) -> bool {
        self.firing.is_empty() && self.violations.is_empty()
    }
}

/// Resident set size in bytes from `/proc/self/statm`, if readable.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Runs the watch loop over a lab built from `lab_cfg`. Tracing is
/// forced on (the breakdown fold needs spans); the caller's thread
/// setting is preserved — snapshots are byte-identical regardless.
pub fn run_watch(mut lab_cfg: LabConfig, cfg: &WatchConfig) -> WatchOutput {
    lab_cfg.trace = true;
    let threads = lab_cfg.threads;
    let mut lab = Lab::new(lab_cfg);
    let rngs = *lab.rngs();
    let svc = lab.service();

    let spec = SloSpec::paper();
    let rules = alert_rules(&spec);
    let mut telemetry = QoeTelemetry::new();
    let mut registry = MetricsRegistry::new();
    let mut spans: Vec<(String, Span)> = Vec::new();
    let mut timeline = AlertTimeline::default();
    let mut firing: Vec<String> = Vec::new();
    let mut jsonl = String::with_capacity(cfg.batches * 512);
    for i in 0..cfg.batches {
        let local = Observer::with_flags(true, false);
        let tp = Teleport::new(svc, rngs.child(&format!("watch-{i}")));
        let outcomes = tp.run_dataset_observed(
            &TeleportConfig {
                sessions: cfg.batch_sessions,
                threads,
                session: SessionConfig { transport: cfg.transport, ..Default::default() },
                ..Default::default()
            },
            &local,
        );
        for o in &outcomes {
            telemetry.fold_outcome(o);
        }
        let batch_spans = local.spans();
        for b in fold_breakdowns(&batch_spans) {
            telemetry.fold_breakdown(&b);
        }
        spans.extend(batch_spans);
        registry.merge(&local.metrics());
        // Re-evaluating from scratch each batch keeps the state a pure
        // function of the cumulative registry — no incremental drift.
        timeline = AlertTimeline::evaluate(&rules, &registry, &spans);
        firing = timeline.firing_at(ring_horizon_us(&registry));

        let _ = write!(jsonl, "{{\"batch\":{i},\"sessions_total\":{}", telemetry.n_sessions());
        if cfg.include_sys {
            let _ = write!(
                jsonl,
                ",\"rss_bytes\":{},\"alloc_count\":{}",
                rss_bytes().unwrap_or(0),
                pscp_obs::alloc_count::current()
            );
        }
        let _ = write!(jsonl, ",\"telemetry\":{}", telemetry.snapshot_json());
        let _ = write!(
            jsonl,
            ",\"alerts\":{{\"transitions\":{},\"firing\":[",
            timeline.transitions.len()
        );
        for (j, rule) in firing.iter().enumerate() {
            if j > 0 {
                jsonl.push(',');
            }
            let _ = write!(jsonl, "\"{rule}\"");
        }
        jsonl.push_str("]}}\n");
    }
    let mut prom = pscp_obs::prometheus_text(&registry);
    let states: Vec<(String, String, bool)> = rules
        .iter()
        .map(|r| (r.name.clone(), "all".to_string(), firing.contains(&r.name)))
        .collect();
    prom.push_str(&pscp_obs::prometheus_alert_state(&states));
    let violations = telemetry.violations(&spec);
    WatchOutput { jsonl, prom, telemetry, timeline, firing, violations }
}

/// The cumulative data horizon: the end boundary of the latest ring
/// window in the registry (0 when no ring was ever written).
fn ring_horizon_us(registry: &MetricsRegistry) -> u64 {
    registry
        .rings()
        .filter_map(|(_, _, r)| r.span())
        .map(|(_, last)| (last + 1) * RING_WINDOW_US)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchConfig {
        WatchConfig { batches: 2, batch_sessions: 4, include_sys: false, transport: None }
    }

    fn lab_cfg(threads: usize) -> LabConfig {
        let mut c = LabConfig::small(2016);
        c.threads = threads;
        c
    }

    #[test]
    fn snapshots_are_byte_identical_across_thread_counts() {
        let serial = run_watch(lab_cfg(1), &cfg());
        for threads in [2, 8] {
            let parallel = run_watch(lab_cfg(threads), &cfg());
            assert_eq!(parallel.jsonl, serial.jsonl, "JSONL differs at {threads} threads");
            assert_eq!(parallel.prom, serial.prom, "prom differs at {threads} threads");
        }
    }

    #[test]
    fn each_batch_emits_one_cumulative_line() {
        let out = run_watch(lab_cfg(1), &cfg());
        let lines: Vec<&str> = out.jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"batch\":0,\"sessions_total\":4,"));
        assert!(lines[1].starts_with("{\"batch\":1,\"sessions_total\":8,"));
        assert!(lines[1].contains("\"join_p90_s\":"));
        assert!(lines[1].contains("\"sketch_bytes\":"));
        assert!(!lines[0].contains("rss_bytes"), "sys facts are off by default");
        assert_eq!(out.telemetry.n_sessions(), 8);
        assert!(out.prom.contains("pscp_sketch_quantile"), "sketch gauges exported:\n{}", out.prom);
    }

    #[test]
    fn srt_watch_surfaces_transport_health_sketches() {
        let mut c = cfg();
        c.transport = Some(Protocol::Srt);
        let out = run_watch(lab_cfg(1), &c);
        // The SRT ARQ health sketches (DESIGN.md §12) must reach the
        // Prometheus artifact so a live monitor can alert on them.
        for name in ["retx_queue_pkts", "late_drop_ppm"] {
            assert!(
                out.prom.contains(&format!("subsystem=\"srt\",name=\"{name}\"")),
                "srt/{name} sketch missing from SLO_live.prom:\n{}",
                out.prom
            );
        }
        // And the default (selection-policy) watch must NOT know SRT
        // exists — its artifacts stay byte-identical to a pre-SRT build.
        let default_out = run_watch(lab_cfg(1), &cfg());
        assert!(!default_out.prom.contains("subsystem=\"srt\""));
        assert!(!default_out.jsonl.contains("\"srt\""));
    }

    #[test]
    fn fault_free_watch_is_healthy_and_carries_alert_state() {
        let out = run_watch(lab_cfg(1), &cfg());
        for line in out.jsonl.lines() {
            assert!(line.ends_with("}"), "line is one JSON object: {line}");
            assert!(line.contains(",\"alerts\":{\"transitions\":"), "alert state on: {line}");
        }
        // No faults are injected, so nothing may fire and the snapshot
        // must be healthy — the `--fail-on-violation` happy path.
        assert!(out.jsonl.lines().all(|l| l.contains("\"firing\":[]")));
        assert!(out.timeline.is_empty(), "fault-free watch fired: {:?}", out.timeline);
        assert!(out.healthy(), "violations: {:?}, firing: {:?}", out.violations, out.firing);
        // Every rule lands in the prom artifact as a gauge at 0.
        for rule in ["join_burn", "stall_burn", "ingest_outage"] {
            assert!(
                out.prom.contains(&format!("pscp_alert_state{{rule=\"{rule}\",shard=\"all\"}} 0")),
                "missing {rule} gauge:\n{}",
                out.prom
            );
        }
    }

    #[test]
    fn sys_facts_appear_only_when_asked() {
        let mut c = cfg();
        c.batches = 1;
        c.include_sys = true;
        let out = run_watch(lab_cfg(1), &c);
        assert!(out.jsonl.contains("\"rss_bytes\":"));
        assert!(out.jsonl.contains("\"alloc_count\":"));
    }
}
