//! Generator combinators.
//!
//! A generator is any `Fn(&mut Gen) -> T`; these helpers build and compose
//! them functionally. Because generation draws through the choice tape,
//! every combinator — including `map`, `filter` and `flat_map` — shrinks
//! automatically: the shrinker edits the tape and replays the whole
//! composition.

use crate::gen::Gen;
use std::ops::{Range, RangeBounds};
use std::rc::Rc;

/// A heap-allocated generator, for recursion and heterogeneous lists
/// (`one_of`, `weighted`).
pub type BoxGen<T> = Rc<dyn Fn(&mut Gen) -> T>;

/// Boxes a generator into a [`BoxGen`].
pub fn boxed<T>(g: impl Fn(&mut Gen) -> T + 'static) -> BoxGen<T> {
    Rc::new(g)
}

/// Always generates a clone of `v` (proptest's `Just`).
pub fn just<T: Clone>(v: T) -> impl Fn(&mut Gen) -> T + Clone {
    move |_| v.clone()
}

/// Uniform signed integers in `range`.
pub fn ints(range: impl RangeBounds<i64> + Clone) -> impl Fn(&mut Gen) -> i64 + Clone {
    move |g| g.i64(range.clone())
}

/// Uniform unsigned integers in `range`.
pub fn u64s(range: impl RangeBounds<u64> + Clone) -> impl Fn(&mut Gen) -> u64 + Clone {
    move |g| g.u64(range.clone())
}

/// Uniform floats in `[range.start, range.end)`.
pub fn floats(range: Range<f64>) -> impl Fn(&mut Gen) -> f64 + Clone {
    move |g| g.f64(range.clone())
}

/// Uniform booleans.
pub fn bools() -> impl Fn(&mut Gen) -> bool + Clone {
    |g| g.bool()
}

/// Vectors of `elem` with lengths in `len`.
pub fn vecs<T>(
    elem: impl Fn(&mut Gen) -> T + Clone,
    len: impl RangeBounds<usize> + Clone,
) -> impl Fn(&mut Gen) -> Vec<T> + Clone {
    move |g| g.vec(len.clone(), |g| elem(g))
}

/// Strings over `charset` with lengths in `len`.
pub fn strings(
    charset: &'static [char],
    len: impl RangeBounds<usize> + Clone,
) -> impl Fn(&mut Gen) -> String + Clone {
    move |g| g.string(charset, len.clone())
}

/// Applies `f` to every generated value (proptest's `prop_map`).
pub fn map<A, B>(
    g: impl Fn(&mut Gen) -> A + Clone,
    f: impl Fn(A) -> B + Clone,
) -> impl Fn(&mut Gen) -> B + Clone {
    move |gen| f(g(gen))
}

/// Keeps only values satisfying `pred` (proptest's `prop_filter`): retries
/// a few times with fresh draws, then rejects the case.
pub fn filter<T>(
    g: impl Fn(&mut Gen) -> T + Clone,
    pred: impl Fn(&T) -> bool + Clone,
) -> impl Fn(&mut Gen) -> T + Clone {
    move |gen| {
        for _ in 0..4 {
            let v = g(gen);
            if pred(&v) {
                return v;
            }
        }
        gen.accept_if(false);
        unreachable!("accept_if(false) rejects the case")
    }
}

/// Generates with `g`, then with the generator `f` builds from its value
/// (proptest's `prop_flat_map`).
pub fn flat_map<A, B, GB>(
    g: impl Fn(&mut Gen) -> A + Clone,
    f: impl Fn(A) -> GB + Clone,
) -> impl Fn(&mut Gen) -> B + Clone
where
    GB: Fn(&mut Gen) -> B,
{
    move |gen| {
        let a = g(gen);
        f(a)(gen)
    }
}

/// Picks one of the alternatives uniformly (proptest's `prop_oneof`). Put
/// the simplest alternative first: it is what failures shrink toward.
pub fn one_of<T>(alternatives: Vec<BoxGen<T>>) -> impl Fn(&mut Gen) -> T + Clone {
    assert!(!alternatives.is_empty(), "one_of needs at least one alternative");
    move |g| {
        let i = g.choice(alternatives.len());
        (alternatives[i])(g)
    }
}

/// Picks an alternative according to integer weights.
pub fn weighted<T>(alternatives: Vec<(u32, BoxGen<T>)>) -> impl Fn(&mut Gen) -> T + Clone {
    assert!(!alternatives.is_empty(), "weighted needs at least one alternative");
    let weights: Vec<u32> = alternatives.iter().map(|(w, _)| *w).collect();
    move |g| {
        let i = g.weighted(&weights);
        (alternatives[i].1)(g)
    }
}

/// `None` a quarter of the time, otherwise `Some` of the inner generator
/// (proptest's `prop::option::of`).
pub fn option_of<T>(g: impl Fn(&mut Gen) -> T + Clone) -> impl Fn(&mut Gen) -> Option<T> + Clone {
    move |gen| gen.option(|gen| g(gen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Tape;

    fn run<T>(seed: u64, g: impl Fn(&mut Gen) -> T) -> T {
        g(&mut Gen::new(Tape::recording(seed)))
    }

    #[test]
    fn map_transforms() {
        let g = map(u64s(0..10), |x| x * 2);
        for s in 0..50 {
            let v = run(s, &g);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn filter_respects_predicate() {
        let g = filter(u64s(0..100), |&x| x % 3 == 0);
        for s in 0..50 {
            // A 1-in-3 predicate virtually never exhausts 4 retries.
            let v = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(s, &g)));
            if let Ok(v) = v {
                assert_eq!(v % 3, 0);
            }
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        // Length drawn first, then a vec of exactly that length.
        let g = flat_map(u64s(1..10), |n| {
            move |gen: &mut Gen| gen.vec(n as usize..=n as usize, |g| g.bool())
        });
        for s in 0..50 {
            let v = run(s, &g);
            assert!((1..10).contains(&v.len()));
        }
    }

    #[test]
    fn one_of_covers_all_alternatives() {
        let g = one_of(vec![boxed(just(1u8)), boxed(just(2u8)), boxed(just(3u8))]);
        let mut seen = [false; 4];
        for s in 0..100 {
            seen[run(s, &g) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn weighted_prefers_heavy_alternatives() {
        let g = weighted(vec![(1, boxed(just(0u8))), (9, boxed(just(1u8)))]);
        let ones: usize = (0..500).map(|s| run(s, &g) as usize).sum();
        assert!(ones > 350, "ones={ones}");
    }

    #[test]
    fn option_of_mixes() {
        let g = option_of(u64s(0..5));
        let nones = (0..200).filter(|&s| run(s, &g).is_none()).count();
        assert!((10..120).contains(&nones), "nones={nones}");
    }
}
