//! The choice tape and the [`Gen`] draw handle.
//!
//! Every primitive draw consumes one 64-bit word. In *recording* mode the
//! word comes from a SplitMix64 stream and is appended to the tape; in
//! *replay* mode (shrinking, regression replay) words are read back from
//! the tape, and an exhausted tape yields zeros — which every draw maps to
//! its minimal value, so truncating a tape always produces a simpler case.

use crate::splitmix64;
use std::ops::{Bound, RangeBounds};

/// A recorded (or replayed) sequence of raw draw words.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    words: Vec<u64>,
    /// Stream state for recording mode; `None` replays only.
    rng_state: Option<u64>,
}

impl Tape {
    /// A fresh tape that records draws from the stream seeded by `seed`.
    pub fn recording(seed: u64) -> Self {
        Tape { words: Vec::new(), rng_state: Some(splitmix64(seed ^ 0x0007_ca5e_2016)) }
    }

    /// A tape that replays `words` and yields zeros past the end.
    pub fn replaying(words: Vec<u64>) -> Self {
        Tape { words, rng_state: None }
    }

    /// The recorded words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Hard cap on tape growth: a runaway generator stops drawing entropy here
/// (draws return minimal values) instead of exhausting memory.
const MAX_TAPE_WORDS: usize = 1 << 21;

/// The draw handle passed to generator closures.
#[derive(Debug)]
pub struct Gen {
    tape: Tape,
    pos: usize,
}

impl Gen {
    /// Wraps a tape in a draw handle (exposed for harness internals and for
    /// deterministic one-off draws in tests).
    pub fn new(tape: Tape) -> Self {
        Gen { tape, pos: 0 }
    }

    pub(crate) fn into_tape(self) -> Tape {
        self.tape
    }

    /// One raw word: replayed from the tape if available, freshly drawn and
    /// recorded otherwise, zero once the tape is exhausted in replay mode.
    fn word(&mut self) -> u64 {
        let w = if self.pos < self.tape.words.len() {
            self.tape.words[self.pos]
        } else if let Some(state) = self.tape.rng_state.as_mut() {
            if self.tape.words.len() >= MAX_TAPE_WORDS {
                0
            } else {
                *state = splitmix64(*state);
                self.tape.words.push(*state);
                *state
            }
        } else {
            0
        };
        self.pos += 1;
        w
    }

    /// Rejects the whole case unless `cond` holds (the engine discards it
    /// and draws a fresh one; see `Config::max_reject_ratio`).
    pub fn accept_if(&self, cond: bool) {
        if !cond {
            std::panic::panic_any(crate::Rejected);
        }
    }

    /// Uniform `u64` in the given range (word 0 maps to the low bound).
    pub fn u64(&mut self, range: impl RangeBounds<u64>) -> u64 {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.checked_sub(1).expect("empty range"),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.word();
        }
        lo + self.word() % (span + 1)
    }

    /// Uniform `i64` in the given range.
    pub fn i64(&mut self, range: impl RangeBounds<i64>) -> i64 {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v - 1,
            Bound::Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.word() as i64;
        }
        lo.wrapping_add((self.word() % (span + 1)) as i64)
    }

    /// Uniform `f64` in `[lo, hi)` — word 0 maps to `lo`. Inclusive ranges
    /// are accepted and treated as half-open (a measure-zero distinction).
    pub fn f64(&mut self, range: impl RangeBounds<f64>) -> f64 {
        let lo = match range.start_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => -1e308,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 1e308,
        };
        assert!(lo <= hi, "empty range {lo}..{hi}");
        let frac = (self.word() >> 11) as f64 / (1u64 << 53) as f64;
        lo + frac * (hi - lo)
    }

    /// Uniform `bool` (word 0 maps to `false`).
    pub fn bool(&mut self) -> bool {
        self.word() & 1 == 1
    }

    /// `Some` with the given probability-ish bias (3 in 4 by default draw).
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.word().is_multiple_of(4) {
            None
        } else {
            Some(f(self))
        }
    }

    /// Index into `n` equally-weighted alternatives (word 0 maps to 0).
    pub fn choice(&mut self, n: usize) -> usize {
        assert!(n > 0, "choice needs at least one alternative");
        (self.word() % n as u64) as usize
    }

    /// Index drawn according to integer `weights` (word 0 maps to 0, so
    /// list the simplest alternative first for the best shrinking).
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut u = self.word() % total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w as u64 {
                return i;
            }
            u -= w as u64;
        }
        weights.len() - 1
    }

    /// A vector with a length in `len` and elements drawn by `f`.
    ///
    /// Encoding is length-prefix-free: after the mandatory minimum, each
    /// element is preceded by a continue/stop word, so deleting an element's
    /// span from the tape (or zeroing its continue word) shortens the vector
    /// without desynchronizing later draws — this is what makes structural
    /// shrinking work.
    pub fn vec<T>(
        &mut self,
        len: impl RangeBounds<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let min = match len.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let max = match len.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.saturating_sub(1),
            Bound::Unbounded => min + 64,
        };
        assert!(min <= max, "empty length range");
        let mut v = Vec::with_capacity(min);
        while v.len() < min {
            v.push(f(self));
        }
        // Continue with probability extra/(extra+1): expected extra length
        // ≈ half the span, occasionally reaching max.
        let extra = ((max - min) / 2).max(1) as u64;
        while v.len() < max {
            if self.word().is_multiple_of(extra + 1) {
                break;
            }
            v.push(f(self));
        }
        v
    }

    /// A string of `len` chars drawn uniformly from `charset`.
    pub fn string(&mut self, charset: &[char], len: impl RangeBounds<usize>) -> String {
        assert!(!charset.is_empty(), "empty charset");
        self.vec(len, |g| charset[g.choice(charset.len())]).into_iter().collect()
    }

    /// A byte vector with a length in `len`.
    pub fn bytes(&mut self, len: impl RangeBounds<usize>) -> Vec<u8> {
        self.vec(len, |g| g.u64(0..=255) as u8)
    }
}

macro_rules! narrow_uint {
    ($($name:ident: $t:ty),*) => {$(
        impl Gen {
            #[doc = concat!("Uniform `", stringify!($t), "` in the given range.")]
            pub fn $name(&mut self, range: impl RangeBounds<$t>) -> $t {
                let lo = match range.start_bound() {
                    Bound::Included(&v) => v as u64,
                    Bound::Excluded(&v) => v as u64 + 1,
                    Bound::Unbounded => 0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&v) => v as u64,
                    Bound::Excluded(&v) => (v as u64).checked_sub(1).expect("empty range"),
                    Bound::Unbounded => <$t>::MAX as u64,
                };
                self.u64(lo..=hi) as $t
            }
        }
    )*};
}
narrow_uint!(u8: u8, u16: u16, u32: u32, usize: usize);

#[cfg(test)]
mod tests {
    use super::*;

    fn g(seed: u64) -> Gen {
        Gen::new(Tape::recording(seed))
    }

    #[test]
    fn draws_respect_ranges() {
        let mut g = g(1);
        for _ in 0..2000 {
            assert!((5..10).contains(&g.u64(5..10)));
            assert!((0..=51).contains(&g.u8(0..=51)));
            assert!((-3..=7).contains(&g.i64(-3..=7)));
            let f = g.f64(2.5..3.5);
            assert!((2.5..3.5).contains(&f), "f={f}");
        }
    }

    #[test]
    fn exhausted_replay_yields_minimal_values() {
        let mut g = Gen::new(Tape::replaying(vec![]));
        assert_eq!(g.u64(7..100), 7);
        assert_eq!(g.f64(1.5..9.0), 1.5);
        assert!(!g.bool());
        assert_eq!(g.vec(0..10, |g| g.u64(0..5)), Vec::<u64>::new());
        assert_eq!(g.weighted(&[1, 2, 3]), 0);
    }

    #[test]
    fn replay_reproduces_recording() {
        let record = |seed| {
            let mut g = g(seed);
            let v = (g.u64(0..1000), g.vec(1..10, |g| g.f64(0.0..1.0)), g.bool());
            (v, g.into_tape())
        };
        let (v1, tape) = record(42);
        let mut g2 = Gen::new(Tape::replaying(tape.words().to_vec()));
        let v2 = (g2.u64(0..1000), g2.vec(1..10, |g| g.f64(0.0..1.0)), g2.bool());
        assert_eq!(v1, v2);
    }

    #[test]
    fn vec_lengths_cover_range() {
        let mut g = g(7);
        let mut seen_min = false;
        let mut seen_long = false;
        for _ in 0..300 {
            let v = g.vec(1..40, |g| g.u64(0..2));
            assert!((1..40).contains(&v.len()));
            seen_min |= v.len() == 1;
            seen_long |= v.len() > 20;
        }
        assert!(seen_min && seen_long, "length distribution too narrow");
    }

    #[test]
    fn string_uses_charset() {
        let mut g = g(9);
        let s = g.string(&['a', 'b', 'c'], 10..20);
        assert!((10..20).contains(&s.len()));
        assert!(s.chars().all(|c| "abc".contains(c)));
    }
}
