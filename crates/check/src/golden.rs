//! Golden-value assertion helpers: exact comparisons with readable diffs.
//!
//! Used by the snapshot tests (`tests/golden_figures.rs`) that pin the
//! regenerated EXPERIMENTS.md headline numbers, and by any test comparing
//! multi-line rendered output.

/// Line-oriented diff between two texts, `None` when identical. The format
/// is a compact unified-style listing of the first differing region.
pub fn diff_text(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let common_prefix = exp.iter().zip(&act).take_while(|(a, b)| a == b).count();
    let common_suffix = exp
        .iter()
        .rev()
        .zip(act.iter().rev())
        .take_while(|(a, b)| a == b)
        .count()
        .min(exp.len().saturating_sub(common_prefix))
        .min(act.len().saturating_sub(common_prefix));
    let mut out = String::new();
    out.push_str(&format!(
        "text differs at line {} ({} expected / {} actual lines)\n",
        common_prefix + 1,
        exp.len(),
        act.len()
    ));
    for line in &exp[common_prefix..exp.len() - common_suffix] {
        out.push_str(&format!("  - {line}\n"));
    }
    for line in &act[common_prefix..act.len() - common_suffix] {
        out.push_str(&format!("  + {line}\n"));
    }
    Some(out)
}

/// Panics with a line diff when `actual` differs from `expected`.
#[track_caller]
pub fn assert_text_eq(expected: &str, actual: &str) {
    if let Some(diff) = diff_text(expected, actual) {
        panic!("[pscp-check] golden text mismatch\n{diff}");
    }
}

/// Panics unless `actual` is within `tol` of `expected` (absolute). Exact
/// golden floats should use `tol = 0.0`: the whole stack is deterministic.
#[track_caller]
pub fn assert_close(expected: f64, actual: f64, tol: f64) {
    let ok = if tol == 0.0 {
        expected == actual || (expected.is_nan() && actual.is_nan())
    } else {
        (expected - actual).abs() <= tol
    };
    assert!(
        ok,
        "[pscp-check] golden value mismatch: expected {expected}, got {actual} (tol {tol})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_has_no_diff() {
        assert_eq!(diff_text("a\nb\n", "a\nb\n"), None);
        assert_text_eq("same", "same");
    }

    #[test]
    fn diff_localizes_change() {
        let d = diff_text("a\nb\nc\nd", "a\nX\nc\nd").unwrap();
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- b"), "{d}");
        assert!(d.contains("+ X"), "{d}");
        assert!(!d.contains("- a"), "common prefix must not appear: {d}");
        assert!(!d.contains("- d"), "common suffix must not appear: {d}");
    }

    #[test]
    fn diff_handles_insertions() {
        let d = diff_text("a\nc", "a\nb\nc").unwrap();
        assert!(d.contains("+ b"), "{d}");
    }

    #[test]
    #[should_panic(expected = "golden value mismatch")]
    fn close_rejects_out_of_tolerance() {
        assert_close(1.0, 1.2, 0.1);
    }

    #[test]
    fn close_exact_and_nan() {
        assert_close(1.5, 1.5, 0.0);
        assert_close(f64::NAN, f64::NAN, 0.0);
        assert_close(1.0, 1.05, 0.1);
    }
}
