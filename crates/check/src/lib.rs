#![warn(missing_docs)]

//! `pscp-check` — a zero-dependency, seed-deterministic property-testing
//! harness for the Periscope reproduction.
//!
//! The workspace's correctness story is bit-for-bit determinism, so its test
//! harness must be deterministic too: every run of a property draws its
//! cases from a fixed master seed (overridable with `PSCP_CHECK_SEED`), and
//! a failing case prints both the shrunk input and the seed that produced
//! it, so failures replay exactly on any machine with zero network access.
//!
//! # Model
//!
//! Generators are plain functions `Fn(&mut Gen) -> T`. A [`Gen`] hands out
//! primitive draws (integers, floats, booleans, collection sizes) and
//! records every draw on a *choice tape*. Shrinking never touches values
//! directly: it edits the tape — deleting spans (structural shrinking, which
//! drops collection elements cleanly thanks to length-prefix-free encoding)
//! and binary-searching individual words toward zero — and re-runs the
//! generator, so `map`/`filter`/`flat_map` compose with shrinking for free.
//!
//! ```
//! use pscp_check::{check, Config, Gen};
//!
//! fn prop_sorted_idempotent(xs: &Vec<u32>) -> Result<(), String> {
//!     let mut once = xs.clone();
//!     once.sort();
//!     let mut twice = once.clone();
//!     twice.sort();
//!     pscp_check::ensure!(once == twice, "sort must be idempotent");
//!     Ok(())
//! }
//!
//! check("sort_idempotent", |g: &mut Gen| g.vec(0..50, |g| g.u32(0..1000)), prop_sorted_idempotent);
//! ```
//!
//! Regression cases that proptest used to keep in `*.proptest-regressions`
//! files live as committed constants: the shrunk input is pasted into an
//! ordinary `#[test]` that calls the property function directly.

mod combine;
mod gen;
mod golden;
mod shrink;

pub use combine::{
    bools, boxed, filter, flat_map, floats, ints, just, map, one_of, option_of, strings, u64s,
    vecs, weighted, BoxGen,
};
pub use gen::{Gen, Tape};
pub use golden::{assert_close, assert_text_eq, diff_text};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Marker payload used by [`Gen::reject`] to discard a case (e.g. a filter
/// that found no satisfying value).
pub(crate) struct Rejected;

/// Per-property run budgets. The defaults keep a full suite in seconds while
/// still exploring enough of the space to have caught every historical
/// regression; see `PSCP_CHECK_CASES` to raise them globally.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (default 96, env `PSCP_CHECK_CASES`).
    pub cases: u64,
    /// Master seed for the case sequence (default fixed, env
    /// `PSCP_CHECK_SEED` — set it to the seed a failure report printed to
    /// replay that exact case first).
    pub seed: u64,
    /// Maximum property executions spent shrinking one failure.
    pub shrink_iters: u64,
    /// Give up if more than `cases × max_reject_ratio` cases are rejected.
    pub max_reject_ratio: u64,
    /// Extra case seeds always run before the random sweep — commit the
    /// seed a failure printed here to pin it as a regression.
    pub regression_seeds: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        let cases =
            std::env::var("PSCP_CHECK_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96);
        let seed = std::env::var("PSCP_CHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x5eed_2016_c8ec_0001);
        Config { cases, seed, shrink_iters: 4096, max_reject_ratio: 16, regression_seeds: vec![] }
    }
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u64) -> Self {
        Config { cases, ..Config::default() }
    }

    /// Adds committed regression seeds, run before the random sweep.
    pub fn regressions(mut self, seeds: &[u64]) -> Self {
        self.regression_seeds.extend_from_slice(seeds);
        self
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// SplitMix64 step — the harness's only source of randomness.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of running generator + property against one tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Outcome {
    Pass,
    Rejected,
    Fail(String),
}

/// Checks `prop` against values drawn from `gen` with the default
/// [`Config`]. Panics with a replayable report on the first (shrunk)
/// counterexample.
pub fn check<T, G, P>(name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(Config::default(), name, gen, prop)
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<T, G, P>(config: Config, name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    quiet_panics::install();

    let mut rejected = 0u64;
    let max_rejects = config.cases.saturating_mul(config.max_reject_ratio).max(64);
    let mut passed = 0u64;
    let mut attempt = 0u64;
    let mut seeds: Vec<u64> = config.regression_seeds.clone();
    while passed < seeds.len() as u64 + config.cases {
        let case_seed = seeds
            .get(passed as usize)
            .copied()
            .unwrap_or_else(|| splitmix64(config.seed ^ (0x1000 + attempt)));
        attempt += 1;
        let mut tape = Tape::recording(case_seed);
        match execute(&gen, &prop, &Tape::recording(case_seed), Some(&mut tape)) {
            Outcome::Pass => passed += 1,
            Outcome::Rejected => {
                rejected += 1;
                // A pinned seed that no longer parses to a valid case is
                // counted as covered, not retried forever.
                if (passed as usize) < seeds.len() {
                    seeds.remove(passed as usize);
                }
                if rejected > max_rejects {
                    panic!(
                        "[pscp-check] property '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} accepted) — loosen the filter"
                    );
                }
            }
            Outcome::Fail(first_msg) => {
                let minimal = shrink::shrink(tape.words().to_vec(), config.shrink_iters, |words| {
                    execute(&gen, &prop, &Tape::replaying(words.to_vec()), None)
                });
                let replay = Tape::replaying(minimal.clone());
                let (value, msg) = describe_failure(&gen, &prop, &replay, &first_msg);
                panic!(
                    "[pscp-check] property '{name}' failed\n  \
                     case seed: {case_seed:#018x} (replay first with \
                     PSCP_CHECK_SEED={case_seed:#x}, or pin it via \
                     Config::regressions)\n  \
                     minimal input: {value}\n  \
                     error: {msg}"
                );
            }
        }
    }
}

/// Runs generator + property on `tape`. When `record` is given, the words
/// actually consumed are written into it (used for the initial random case).
fn execute<T, G, P>(gen: &G, prop: &P, tape: &Tape, record: Option<&mut Tape>) -> Outcome
where
    T: std::fmt::Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut g = Gen::new(tape.clone());
    let value = {
        let caught = quiet_panics::quietly(|| catch_unwind(AssertUnwindSafe(|| gen(&mut g))));
        match caught {
            Ok(v) => v,
            Err(payload) => {
                return if payload.downcast_ref::<Rejected>().is_some() {
                    Outcome::Rejected
                } else {
                    Outcome::Fail(format!(
                        "generator panicked: {}",
                        panic_message(payload.as_ref())
                    ))
                };
            }
        }
    };
    if let Some(rec) = record {
        *rec = g.into_tape();
    }
    let result = quiet_panics::quietly(|| catch_unwind(AssertUnwindSafe(|| prop(&value))));
    match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(msg)) => Outcome::Fail(msg),
        Err(payload) => {
            if payload.downcast_ref::<Rejected>().is_some() {
                Outcome::Rejected
            } else {
                Outcome::Fail(format!("property panicked: {}", panic_message(payload.as_ref())))
            }
        }
    }
}

/// Regenerates the minimal failing value for the report.
fn describe_failure<T, G, P>(gen: &G, prop: &P, tape: &Tape, fallback: &str) -> (String, String)
where
    T: std::fmt::Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut g = Gen::new(tape.clone());
    let value = quiet_panics::quietly(|| catch_unwind(AssertUnwindSafe(|| gen(&mut g))));
    match value {
        Ok(v) => {
            let msg = quiet_panics::quietly(|| catch_unwind(AssertUnwindSafe(|| prop(&v))));
            let msg = match msg {
                Ok(Ok(())) => fallback.to_string(),
                Ok(Err(m)) => m,
                Err(p) => format!("property panicked: {}", panic_message(p.as_ref())),
            };
            (format!("{v:#?}"), msg)
        }
        Err(p) => {
            ("<generator failed on minimal tape>".into(), panic_message(p.as_ref()).to_string())
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Early-returns `Err(message)` from a property when `cond` is false.
/// The message is formatted lazily, only on failure.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Early-returns `Err` when the two sides are not equal, showing both.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// Suppresses the default panic hook's output while the harness probes
/// tapes expecting failures (a shrink run may panic thousands of times).
mod quiet_panics {
    use std::cell::Cell;
    use std::sync::Once;

    thread_local! {
        static QUIET: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();

    pub fn install() {
        INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !QUIET.with(|q| q.get()) {
                    prev(info);
                }
            }));
        });
    }

    pub fn quietly<R>(f: impl FnOnce() -> R) -> R {
        QUIET.with(|q| q.set(true));
        let r = f();
        QUIET.with(|q| q.set(false));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = std::cell::Cell::new(0u64);
        check_with(
            Config::with_cases(10),
            "counts",
            |g| g.u64(0..100),
            |_| {
                n.set(n.get() + 1);
                Ok(())
            },
        );
        assert_eq!(n.get(), 10);
    }

    #[test]
    fn failure_shrinks_to_boundary() {
        // Property: all values < 50. Minimal counterexample is exactly 50.
        let result = std::panic::catch_unwind(|| {
            check(
                "boundary",
                |g: &mut Gen| g.u64(0..1000),
                |&x| if x < 50 { Ok(()) } else { Err(format!("{x} >= 50")) },
            )
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("minimal input: 50"), "report was: {msg}");
    }

    #[test]
    fn vec_failure_shrinks_structurally() {
        // Property: vecs have < 3 elements. Minimal counterexample: [0,0,0].
        let result = std::panic::catch_unwind(|| {
            check(
                "short-vecs",
                |g: &mut Gen| g.vec(0..20, |g| g.u64(0..1000)),
                |v: &Vec<u64>| {
                    if v.len() < 3 {
                        Ok(())
                    } else {
                        Err(format!("len {}", v.len()))
                    }
                },
            )
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        let expected = format!("{:#?}", vec![0u64, 0, 0]);
        assert!(msg.contains(&expected), "report was: {msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        // The same config draws the same cases: a property that records its
        // inputs sees identical sequences.
        use std::cell::RefCell;
        let mut runs: Vec<Vec<u64>> = vec![];
        for _ in 0..2 {
            let this_run = RefCell::new(vec![]);
            check_with(
                Config::with_cases(5),
                "det",
                |g| g.u64(0..1_000_000),
                |&x| {
                    this_run.borrow_mut().push(x);
                    Ok(())
                },
            );
            runs.push(this_run.into_inner());
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn regression_seeds_run_first() {
        let first = std::cell::Cell::new(None);
        check_with(
            Config::with_cases(1).regressions(&[0xdead_beef]),
            "regression-first",
            |g| g.u64(0..u64::MAX),
            |&x| {
                if first.get().is_none() {
                    first.set(Some(x));
                }
                Ok(())
            },
        );
        // The first case must match a fresh draw from the pinned seed.
        let mut g = Gen::new(Tape::recording(0xdead_beef));
        assert_eq!(first.get().unwrap(), g.u64(0..u64::MAX));
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn impossible_filter_reports_rejection() {
        check(
            "impossible",
            |g: &mut Gen| {
                let x = g.u64(0..10);
                g.accept_if(false);
                x
            },
            |_| Ok(()),
        );
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let result = std::panic::catch_unwind(|| {
            check(
                "panics",
                |g: &mut Gen| g.u64(0..1000),
                |&x| {
                    assert!(x < 100, "boom at {x}");
                    Ok(())
                },
            )
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("minimal input: 100"), "report was: {msg}");
        assert!(msg.contains("boom at 100"), "report was: {msg}");
    }
}
