//! Tape shrinking: structural span deletion plus per-word binary search.
//!
//! The shrinker never sees values — it edits the raw choice tape and asks
//! the harness to re-run generator + property. A candidate is kept only if
//! the property still fails on it (rejected candidates — e.g. a filter no
//! longer satisfied — are abandoned). Because draws map word 0 to their
//! minimal value and collections are length-prefix-free encoded, deleting
//! spans shortens collections and zeroing words minimizes scalars.

use crate::Outcome;

/// Shrinks `tape` within a budget of `max_iters` property executions.
/// Returns the smallest failing tape found (at worst the input itself).
pub(crate) fn shrink(
    tape: Vec<u64>,
    max_iters: u64,
    mut run: impl FnMut(&[u64]) -> Outcome,
) -> Vec<u64> {
    let mut best = tape;
    let mut iters = 0u64;
    let mut try_candidate = |candidate: &[u64], best: &mut Vec<u64>, iters: &mut u64| -> bool {
        if *iters >= max_iters {
            return false;
        }
        *iters += 1;
        if matches!(run(candidate), Outcome::Fail(_)) {
            *best = candidate.to_vec();
            true
        } else {
            false
        }
    };

    loop {
        let before = best.clone();

        // Pass 1 — structural: delete spans, halving the span size down to
        // single words. Scanning back-to-front keeps indices stable.
        let mut size = (best.len() / 2).max(1);
        while size >= 1 && iters < max_iters {
            let mut start = best.len().saturating_sub(size);
            loop {
                if start + size <= best.len() {
                    let mut candidate = best.clone();
                    candidate.drain(start..start + size);
                    try_candidate(&candidate, &mut best, &mut iters);
                }
                if start == 0 || iters >= max_iters {
                    break;
                }
                start = start.saturating_sub(size);
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 2 — zero whole spans (collapses runs of draws to minimal
        // values without changing the parse shape).
        let mut size = (best.len() / 2).max(1);
        while size > 1 && iters < max_iters {
            let mut start = 0;
            while start + size <= best.len() && iters < max_iters {
                if best[start..start + size].iter().any(|&w| w != 0) {
                    let mut candidate = best.clone();
                    candidate[start..start + size].fill(0);
                    try_candidate(&candidate, &mut best, &mut iters);
                }
                start += size;
            }
            size /= 2;
        }

        // Pass 3 — per-word binary search toward zero.
        for i in 0..best.len() {
            if iters >= max_iters {
                break;
            }
            if best[i] == 0 {
                continue;
            }
            // Fast path: straight to zero.
            let mut candidate = best.clone();
            candidate[i] = 0;
            if try_candidate(&candidate, &mut best, &mut iters) {
                continue;
            }
            // Binary search the smallest failing replacement in (0, w).
            let (mut lo, mut hi) = (1u64, best[i]);
            while lo < hi && iters < max_iters {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if try_candidate(&candidate, &mut best, &mut iters) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }

        if best == before || iters >= max_iters {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail_if(cond: bool) -> Outcome {
        if cond {
            Outcome::Fail("x".into())
        } else {
            Outcome::Pass
        }
    }

    #[test]
    fn scalar_shrinks_to_boundary() {
        // Fails when word[0] >= 137: minimum failing tape is [137].
        let out = shrink(vec![90_000], 4096, |w| fail_if(w.first().copied().unwrap_or(0) >= 137));
        assert_eq!(out, vec![137]);
    }

    #[test]
    fn spans_are_deleted() {
        // Fails as long as the tape sums to >= 3 — minimal is 3 words of 1
        // or fewer words with larger values; zeros pass shrinks first, so
        // expect a short tape.
        let tape: Vec<u64> = (0..64).map(|i| i % 5).collect();
        let out = shrink(tape, 8192, |w| fail_if(w.iter().sum::<u64>() >= 3));
        assert!(out.len() <= 3, "tape still {} words", out.len());
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn rejected_candidates_are_not_kept() {
        // Reject every tape shorter than 4 words; fail on word[3] > 10.
        let out = shrink(vec![99, 99, 99, 99, 99], 4096, |w| {
            if w.len() < 4 {
                Outcome::Rejected
            } else if w[3] > 10 {
                Outcome::Fail("x".into())
            } else {
                Outcome::Pass
            }
        });
        assert!(out.len() >= 4);
        assert_eq!(out[3], 11);
    }

    #[test]
    fn budget_is_respected() {
        let mut calls = 0u64;
        let _ = shrink((0..1000).collect(), 50, |_| {
            calls += 1;
            Outcome::Fail("x".into())
        });
        assert!(calls <= 50, "calls={calls}");
    }
}
