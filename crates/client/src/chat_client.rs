//! Client-side chat traffic.
//!
//! §5.1: "the JSON encoded chat messages are received even when chat is
//! off, but when the chat is on, image downloads from Amazon S3 servers
//! appear in the traffic. The reason is that the app downloads profile
//! pictures of chatting users and displays them next to their messages ...
//! We also noticed that some pictures were downloaded multiple times, which
//! indicates that the app does not cache them." Both behaviours (and the
//! cache the app *should* have had) are modeled here. The session drivers
//! merge these events into the shared bottleneck link in time order, so
//! heavy chat genuinely crowds out video — the paper's explanation for the
//! 2 Mbps QoE boundary.

use crate::session::SessionConfig;
use pscp_media::capture::{Capture, FlowKind};
use pscp_proto::http::Response;
use pscp_proto::ws::Frame;
use pscp_service::chat::{ChatConfig, ChatRoom};
use pscp_simnet::fault::in_windows;
use pscp_simnet::link::MTU_BYTES;
use pscp_simnet::rng::CounterRng;
use pscp_simnet::{Link, SimDuration, SimTime, WallClock};
use pscp_workload::broadcast::Broadcast;

/// Gap an injected WebSocket chat drop leaves before the client's
/// reconnect completes (DESIGN.md §8). Shared by the RTMP and HLS paths.
pub(crate) const CHAT_RECONNECT_GAP: SimDuration = SimDuration::from_secs(6);

/// One chat-related downstream transmission.
#[derive(Debug, Clone)]
pub struct ChatSend {
    /// Server-side send instant.
    pub at: SimTime,
    /// Which flow it belongs to.
    pub kind: FlowKind,
    /// Wire bytes (WS frame or HTTP response).
    pub bytes: Vec<u8>,
}

/// Produces the chat-related sends of one session, in time order.
///
/// WS JSON messages always flow; picture downloads only when the chat pane
/// is on, deduplicated only if `picture_cache` is set.
pub fn events(
    broadcast: &Broadcast,
    from: SimTime,
    to: SimTime,
    config: &SessionConfig,
    rng: &mut CounterRng,
) -> Vec<ChatSend> {
    let mut room = ChatRoom::new(ChatConfig::default());
    let viewers = broadcast.viewers_at(from);
    let messages = room.messages_between(from, to, viewers, rng);
    let mut out = Vec::with_capacity(messages.len() * 2);
    let mut cached: std::collections::HashSet<String> = std::collections::HashSet::new();
    for msg in messages {
        let frame = Frame::text(msg.to_json().to_json());
        out.push(ChatSend { at: msg.at, kind: FlowKind::Chat, bytes: frame.encode(None) });
        if !config.chat_on {
            continue;
        }
        if let Some(pic) = &msg.picture {
            if config.picture_cache && cached.contains(&pic.url) {
                continue;
            }
            cached.insert(pic.url.clone());
            let resp = Response::ok_bytes("image/jpeg", vec![0xD8; pic.bytes]);
            out.push(ChatSend { at: msg.at, kind: FlowKind::PictureHttp, bytes: resp.encode() });
        }
    }
    // Hearts: tiny batched pushes on the same WebSocket (§3's emoticons).
    for heart in room.hearts_between(from, to, viewers, rng) {
        let body = format!("{{\"kind\":\"heart\",\"n\":{}}}", heart.count);
        debug_assert!(body.len() >= heart.wire_len().saturating_sub(4));
        let frame = Frame::text(body);
        out.push(ChatSend { at: heart.at, kind: FlowKind::Chat, bytes: frame.encode(None) });
    }
    // The merge in the session driver sorts by time; keep this list sorted
    // too for the dedicated-link path.
    out.sort_by_key(|e| e.at);
    out
}

/// Legacy path used by sessions whose chat travels on a dedicated link
/// (the HLS fetch path models its video transfer in closed form): plays
/// the [`events`] through `link` and records them into `capture`.
#[allow(clippy::too_many_arguments)]
pub fn generate(
    broadcast: &Broadcast,
    from: SimTime,
    to: SimTime,
    config: &SessionConfig,
    link: &mut Link,
    capture_clock: &WallClock,
    capture: &mut Capture,
    rng: &mut CounterRng,
) {
    generate_with_faults(broadcast, from, to, config, link, capture_clock, capture, rng, &[]);
}

/// [`generate`] with injected chat-drop windows (DESIGN.md §8): sends that
/// fall inside a window are lost with the dropped WebSocket and never reach
/// the wire. With no windows this is exactly [`generate`].
#[allow(clippy::too_many_arguments)]
pub fn generate_with_faults(
    broadcast: &Broadcast,
    from: SimTime,
    to: SimTime,
    config: &SessionConfig,
    link: &mut Link,
    capture_clock: &WallClock,
    capture: &mut Capture,
    rng: &mut CounterRng,
    drop_windows: &[(SimTime, SimTime)],
) {
    let sends = events(broadcast, from, to, config, rng);
    if sends.is_empty() {
        return;
    }
    let ws_flow = capture.open_flow(FlowKind::Chat, "chatman.periscope.tv");
    let pic_flow =
        config.chat_on.then(|| capture.open_flow(FlowKind::PictureHttp, "s3.amazonaws.com"));
    for send in sends {
        if !drop_windows.is_empty() && in_windows(drop_windows, send.at) {
            continue;
        }
        let flow = match send.kind {
            FlowKind::Chat => ws_flow,
            FlowKind::PictureHttp => match pic_flow {
                Some(f) => f,
                None => continue,
            },
            _ => continue,
        };
        for chunk in send.bytes.chunks(MTU_BYTES) {
            if let Some(arr) = link.enqueue(send.at, chunk.len()).time() {
                let wall = capture_clock.read(arr, rng);
                capture.record(flow, arr, wall, chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::{GeoPoint, RngFactory, SimDuration};
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn broadcast(viewers: f64) -> Broadcast {
        Broadcast {
            id: BroadcastId(1),
            location: GeoPoint::new(0.0, 0.0),
            city: "x",
            start: SimTime::ZERO,
            duration: SimDuration::from_secs(3600),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: viewers,
            replay_available: false,
            private: false,
            location_public: true,
            viewer_seed: 5,
            target_bitrate_bps: 300_000.0,
        }
    }

    fn session_config(chat_on: bool, cache: bool) -> SessionConfig {
        SessionConfig { chat_on, picture_cache: cache, ..Default::default() }
    }

    fn run(chat_on: bool, cache: bool, viewers: f64) -> Capture {
        let mut capture = Capture::new();
        let mut link = Link::unbounded(100e6, SimDuration::from_millis(10));
        let clock = WallClock::perfect();
        let mut rng = RngFactory::new(2).stream("chat-client-test");
        generate(
            &broadcast(viewers),
            SimTime::from_secs(10),
            SimTime::from_secs(70),
            &session_config(chat_on, cache),
            &mut link,
            &clock,
            &mut capture,
            &mut rng,
        );
        capture
    }

    #[test]
    fn chat_off_still_receives_json_but_no_pictures() {
        let cap = run(false, false, 80.0);
        assert!(cap.flow_of_kind(FlowKind::Chat).unwrap().byte_count() > 500);
        assert!(cap.flow_of_kind(FlowKind::PictureHttp).is_none());
    }

    #[test]
    fn chat_on_downloads_pictures() {
        let cap = run(true, false, 80.0);
        let pics = cap.flow_of_kind(FlowKind::PictureHttp).unwrap();
        assert!(pics.byte_count() > 20_000, "bytes={}", pics.byte_count());
        // Pictures dominate the chat JSON by an order of magnitude.
        assert!(pics.byte_count() > 10 * cap.flow_of_kind(FlowKind::Chat).unwrap().byte_count());
    }

    #[test]
    fn cache_cuts_picture_traffic() {
        let uncached = run(true, false, 120.0);
        let cached = run(true, true, 120.0);
        let bytes = |c: &Capture| {
            c.flow_of_kind(FlowKind::PictureHttp).map(|f| f.byte_count()).unwrap_or(0)
        };
        assert!(
            bytes(&cached) < bytes(&uncached),
            "cached={} uncached={}",
            bytes(&cached),
            bytes(&uncached)
        );
    }

    #[test]
    fn no_viewers_no_chat() {
        let cap = run(true, false, 0.0);
        assert!(cap.flows.is_empty());
    }

    #[test]
    fn events_are_time_ordered() {
        let mut rng = RngFactory::new(4).stream("chat-events");
        let sends = events(
            &broadcast(60.0),
            SimTime::from_secs(5),
            SimTime::from_secs(65),
            &session_config(true, false),
            &mut rng,
        );
        assert!(!sends.is_empty());
        for w in sends.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        assert!(sends.iter().any(|s| s.kind == FlowKind::PictureHttp));
    }

    #[test]
    fn ws_frames_decode() {
        let cap = run(false, false, 50.0);
        let flow = cap.flow_of_kind(FlowKind::Chat).unwrap();
        let stream = flow.byte_stream();
        let mut pos = 0;
        let mut n = 0;
        while pos < stream.len() {
            let (frame, used) = Frame::decode(&stream[pos..]).unwrap();
            assert!(frame.as_text().unwrap().contains("\"kind\":\"chat\""));
            pos += used;
            n += 1;
        }
        assert!(n > 0);
    }
}
