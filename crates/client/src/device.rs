//! Viewer devices and the tethered network setup.
//!
//! §2: "we used two different phones: Samsung Galaxy S3 and S4. The phones
//! were located in Finland and connected to the Internet by means of
//! reverse tethering through a USB connection to a Linux desktop machine
//! providing them with over 100Mbps of available bandwidth both up and down
//! stream. In some experiments, we imposed artificial bandwidth limits with
//! the tc command." §5's Welch t-tests found the two phones differ only in
//! achieved frame rate.

use pscp_simnet::{GeoPoint, SimDuration};

/// The measurement phones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewerDevice {
    /// Samsung Galaxy S3 — older SoC, renders at a lower achieved rate.
    GalaxyS3,
    /// Samsung Galaxy S4.
    GalaxyS4,
}

impl ViewerDevice {
    /// Maximum frame rate the device sustains while decoding + displaying.
    /// This is the *only* QoE-relevant difference between the two phones
    /// (the paper's t-test result E16).
    pub fn render_fps_cap(self) -> f64 {
        match self {
            ViewerDevice::GalaxyS3 => 26.0,
            ViewerDevice::GalaxyS4 => 30.0,
        }
    }

    /// Display name used in dataset labels.
    pub fn name(self) -> &'static str {
        match self {
            ViewerDevice::GalaxyS3 => "Galaxy S3",
            ViewerDevice::GalaxyS4 => "Galaxy S4",
        }
    }
}

/// The viewer-side network path.
#[derive(Debug, Clone)]
pub struct NetworkSetup {
    /// Viewer location (Finland in the paper).
    pub location: GeoPoint,
    /// Tether/access capacity in bits/second (>100 Mbps in the paper).
    pub access_bps: f64,
    /// Optional `tc` bandwidth limit in bits/second, applied on the Linux
    /// host in front of the phone.
    pub tc_limit_bps: Option<f64>,
    /// Last-mile round-trip time (USB tether + campus network).
    pub access_rtt: SimDuration,
    /// Packet size the path carries (the network-granularity knob of the
    /// `ablation-mtu` study; 1448 = Ethernet MSS).
    pub mtu: usize,
}

impl NetworkSetup {
    /// The paper's unthrottled setup in Finland.
    pub fn finland_unlimited() -> Self {
        NetworkSetup {
            location: GeoPoint::new(60.19, 24.83), // Aalto campus
            access_bps: 100e6,
            tc_limit_bps: None,
            access_rtt: SimDuration::from_millis(4),
            mtu: 1448,
        }
    }

    /// Same, with a `tc` limit in Mbps (the Fig 3b/4 sweep points).
    pub fn finland_limited(mbps: f64) -> Self {
        assert!(mbps > 0.0);
        NetworkSetup { tc_limit_bps: Some(mbps * 1e6), ..Self::finland_unlimited() }
    }

    /// Effective bottleneck rate of the viewer path.
    pub fn bottleneck_bps(&self) -> f64 {
        match self.tc_limit_bps {
            Some(limit) => limit.min(self.access_bps),
            None => self.access_bps,
        }
    }

    /// End-to-end RTT to a server at `server_loc`.
    pub fn rtt_to(&self, server_loc: &GeoPoint) -> SimDuration {
        // Propagation each way plus the access RTT.
        self.location.propagation_to(server_loc) * 2 + self.access_rtt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_differ_only_in_fps() {
        assert!(ViewerDevice::GalaxyS3.render_fps_cap() < ViewerDevice::GalaxyS4.render_fps_cap());
        assert_eq!(ViewerDevice::GalaxyS3.name(), "Galaxy S3");
    }

    #[test]
    fn unlimited_bottleneck_is_access() {
        let n = NetworkSetup::finland_unlimited();
        assert_eq!(n.bottleneck_bps(), 100e6);
    }

    #[test]
    fn tc_limit_overrides() {
        let n = NetworkSetup::finland_limited(2.0);
        assert_eq!(n.bottleneck_bps(), 2e6);
    }

    #[test]
    fn rtt_scales_with_distance() {
        let n = NetworkSetup::finland_unlimited();
        let frankfurt = GeoPoint::new(50.11, 8.68);
        let california = GeoPoint::new(37.35, -121.96);
        assert!(n.rtt_to(&california) > n.rtt_to(&frankfurt));
        assert!(n.rtt_to(&frankfurt).as_millis() >= 10);
    }
}
