//! End-to-end HLS viewing session.
//!
//! The §5.1 fallback path: the broadcast still reaches an ingest server
//! over the broadcaster's uplink, but is then transcoded/repackaged into
//! 3–6 s MPEG-TS segments and served via a Fastly-like CDN POP near the
//! viewer. The client polls the playlist and pulls each segment over HTTP;
//! segment granularity plus packaging delay is what pushes delivery latency
//! beyond 5 s (Fig 5), while the deep segment buffer is what makes stalls
//! rarer than RTMP (Fig 3 discussion).

use crate::chat_client;
use crate::player::{run_playback, MediaArrival};
use crate::retry::RetryPolicy;
use crate::rtmp_session::rendered_fps;
use crate::session::{PlaybackMetaReport, SessionConfig, SessionOutcome};
use crate::uplink::Uplink;
use pscp_media::audio::AudioEncoder;
use pscp_media::capture::{Capture, FlowKind};
use pscp_media::content::ContentProcess;
use pscp_media::encoder::{Encoder, EncoderConfig};
use pscp_media::ts::segment_video_frames;
use pscp_proto::http::Response;
use pscp_service::cdn;
use pscp_service::ingest::assign_server;
use pscp_service::segmenter::{Segmenter, SegmenterConfig};
use pscp_service::select::Protocol;
use pscp_simnet::fault::{self, FaultRng, LinkFaults};
use pscp_simnet::tcp::{TcpModel, INIT_CWND_SEGMENTS};
use pscp_simnet::{Link, RngFactory, SimDuration, SimTime, WallClock};
use pscp_workload::broadcast::Broadcast;

/// Encode-side latency on the broadcaster phone.
const ENCODE_LATENCY: SimDuration = SimDuration::from_millis(120);
/// History simulated before the join so the playlist is warm.
const WARMUP: SimDuration = SimDuration::from_secs(25);
/// Playlist poll interval while waiting for the next segment.
const POLL: SimDuration = SimDuration::from_millis(1500);
/// How many segments behind the live edge playback starts.
const EDGE_OFFSET: u64 = 2;

/// Runs one HLS session.
pub fn run(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
) -> SessionOutcome {
    run_traced(broadcast, join_at, config, rngs, &mut pscp_obs::Trace::disabled())
}

/// [`run`] plus per-session instrumentation into `trace` (no-ops when the
/// trace is disabled; the simulation itself is identical either way —
/// tracing draws no randomness and moves no timestamps).
pub fn run_traced(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
    trace: &mut pscp_obs::Trace,
) -> SessionOutcome {
    let mut enc_rng = rngs.stream("hls/encoder");
    let mut net_rng = rngs.stream("hls/net");
    let mut clock_rng = rngs.stream("hls/clocks");

    let broadcaster_clock = WallClock::ntp_synced(&mut clock_rng);
    let capture_clock = WallClock::ntp_synced(&mut clock_rng);

    let ingest = assign_server(&broadcast.location, broadcast.id.0);
    let prop_up = broadcast.location.propagation_to(&ingest.location());
    let pop = cdn::pop_for_session(
        &config.network.location,
        broadcast.id.0 ^ (join_at.as_micros() / 60_000_000),
    );
    let rtt = config.network.rtt_to(&pop.location());
    crate::session::trace_session_start(
        trace,
        "hls",
        broadcast.id,
        broadcast.viewers_at(join_at),
        join_at.as_micros(),
        config,
    );

    // --- broadcaster → ingest → segmenter ---
    let enc_cfg = EncoderConfig {
        fps: broadcast.device.fps(),
        gop: broadcast.device.gop(),
        target_bitrate_bps: broadcast.target_bitrate_bps,
        ..Default::default()
    };
    let fps = enc_cfg.fps;
    let content = ContentProcess::new(broadcast.content, &mut enc_rng);
    let mut encoder = Encoder::new(enc_cfg, content);
    let mut audio = AudioEncoder::new(broadcast.audio);
    let sim_start = join_at - WARMUP;
    let end = join_at + config.watch + SimDuration::from_secs(3);
    let mut uplink = Uplink::draw(&config.uplink, sim_start, end, &mut enc_rng);
    let mut segmenter = Segmenter::new(SegmenterConfig::default());
    // pts → broadcaster capture wall, for latency anchors.
    let mut capture_wall_by_pts: std::collections::HashMap<u32, f64> =
        std::collections::HashMap::new();
    let total_frames = (end.saturating_since(sim_start).as_secs_f64() * fps) as u64;
    let mut next_audio_pts = 0.0;
    for i in 0..total_frames {
        let t_cap = sim_start + SimDuration::from_secs_f64(i as f64 / fps);
        let wall = broadcaster_clock.read(t_cap, &mut clock_rng);
        if let Some(frame) = encoder.next_frame(wall, &mut enc_rng) {
            let sent = uplink.upload(t_cap + ENCODE_LATENCY, frame.bytes.len());
            let a_in = sent + prop_up;
            capture_wall_by_pts.insert(frame.pts_ms, broadcaster_clock.read_exact(t_cap));
            segmenter.push_frame(&frame, a_in);
        }
        while next_audio_pts <= i as f64 * 1000.0 / fps {
            let af = audio.next_frame(&mut enc_rng);
            segmenter.push_audio(af.pts_ms, vec![0xAA; af.size]);
            next_audio_pts += pscp_media::audio::frame_duration_ms();
        }
    }

    // --- client: playlist polls + sequential segment fetches ---
    let mut capture = Capture::new();
    let flow = capture.open_flow(FlowKind::HlsHttp, pop.hostname());
    // Chat cross-traffic shares the bottleneck with segment fetches; the
    // closed-form TCP model cannot interleave flows, so the coupling is the
    // long-run average: chat's expected rate is subtracted from the
    // capacity the fetches see.
    let chat_rate = if config.chat_on {
        pscp_service::chat::expected_chat_rate_bps(
            &pscp_service::chat::ChatConfig::default(),
            broadcast.viewers_at(join_at),
        )
    } else {
        0.0
    };
    let fetch_capacity =
        (config.network.bottleneck_bps() - chat_rate).max(config.network.bottleneck_bps() * 0.15);
    let tcp = TcpModel::new(config.network.mtu.max(256), rtt, fetch_capacity);
    let mut cwnd = INIT_CWND_SEGMENTS;
    let mut arrivals: Vec<MediaArrival> = Vec::new();
    let session_end = join_at + config.watch;

    // --- fault injection (DESIGN.md §8), every class gated on its own
    // rate so a disabled layer draws no variate and changes no byte ---
    let faults = &config.faults;
    let fault_seed = faults.seed ^ rngs.seed();
    let mut link_faults =
        LinkFaults::active(faults).then(|| LinkFaults::new(faults, rngs.seed(), "hls/link"));
    let mut seg_rng = FaultRng::from_label(fault_seed, "hls/segment");
    let pop_host = pop.hostname().to_string();

    // App bootstrap traffic first: metadata, thumbnails, chat backlog.
    let overhead_bytes = pscp_simnet::dist::lognormal(&mut net_rng, (900_000f64).ln(), 0.7)
        .clamp(150_000.0, 4_000_000.0) as usize;
    let misc_flow = capture.open_flow(FlowKind::AppMisc, "api.periscope.tv");
    let boot = tcp.transfer(join_at, overhead_bytes, &mut cwnd, true);
    let mut boot_extra = SimDuration::ZERO;
    for &(at, n) in &boot.chunks {
        let at = match link_faults.as_mut() {
            Some(lf) => {
                // Cumulative extra keeps intra-transfer chunk order intact.
                boot_extra += lf.packet_extra();
                at + boot_extra
            }
            None => at,
        };
        let wall = capture_clock.read(at, &mut net_rng);
        capture.record_zeros(misc_flow, at, wall, n);
    }
    let boot_done = boot.completion + boot_extra;
    trace.count("tcp", "transfers", 1);
    trace.count("tcp", "bytes", overhead_bytes as u64);
    if trace.is_enabled() {
        let boot_ms = (boot_done.saturating_since(join_at).as_secs_f64() * 1000.0) as u64;
        trace.event(
            boot_done.as_micros(),
            "tcp",
            "tcp.bootstrap",
            vec![
                ("bytes", pscp_obs::Field::U(overhead_bytes as u64)),
                ("ms", pscp_obs::Field::U(boot_ms)),
            ],
        );
    }
    // Initial playlist fetch after bootstrap completes.
    let mut now = boot_done + rtt;
    let mut next_seq: Option<u64> = None;
    let mut media_end_s = 0.0_f64;
    let mut fetched = 0u64;
    // When the first segment fetch began — the boundary between the
    // playlist-discovery phase and the segment-download phase of the join.
    let mut first_fetch_start: Option<SimTime> = None;
    let seg_cfg = SegmenterConfig::default();
    while now < session_end {
        // Every pass is one playlist-edge probe of this POP: the alerting
        // layer's coverage signal. Keyed by the POP's static hostname so
        // per-POP outage rules can be scored against per-POP ground truth.
        trace.ring("probe", pop.hostname(), now.as_micros(), 1);
        if faults.pop_outage.is_active() && faults.pop_outage.in_outage(faults.seed, &pop_host, now)
        {
            // The POP is down (outage schedules are keyed on the fault seed
            // alone, so every session agrees on when this POP was out). The
            // playlist poll fails; the client re-polls until it is back.
            trace.count("fault", "pop_outage_polls", 1);
            trace.count("recovery", "playlist_repolls", 1);
            // Symptom ring: written only when an injected outage was
            // actually observed, which is what makes the POP-outage alert
            // rule provably inert on fault-free runs.
            trace.ring("outage", pop.hostname(), now.as_micros(), 1);
            if trace.is_enabled() {
                trace.event(now.as_micros(), "fault", "fault.pop_outage", vec![]);
            }
            let up = faults.pop_outage.outage_end(faults.seed, &pop_host, now);
            now = up.max(now + POLL);
            continue;
        }
        let playlist = segmenter.playlist_at(now);
        let record_playlist =
            |capture: &mut Capture, at: SimTime, rng: &mut pscp_simnet::rng::CounterRng| {
                let resp = Response::ok_bytes(
                    "application/vnd.apple.mpegurl",
                    playlist.render().into_bytes(),
                );
                let wall = capture_clock.read(at, rng);
                capture.record(flow, at, wall, &resp.encode());
            };
        let Some(last) = playlist.last_sequence() else {
            record_playlist(&mut capture, now, &mut net_rng);
            trace.count("hls", "playlist_polls", 1);
            now += POLL;
            continue;
        };
        let want = match next_seq {
            Some(seq) => seq,
            None => {
                // Join at the live edge minus EDGE_OFFSET segments.
                let start = last.saturating_sub(EDGE_OFFSET.saturating_sub(1));
                let start = start.max(playlist.media_sequence);
                next_seq = Some(start);
                start
            }
        };
        if want > last {
            // Live edge reached: poll the playlist until a new segment
            // appears (costs an RTT and a tiny response).
            record_playlist(&mut capture, now + rtt, &mut net_rng);
            trace.count("hls", "playlist_polls", 1);
            if trace.is_enabled() {
                trace.event((now + rtt).as_micros(), "hls", "hls.playlist_poll", vec![]);
            }
            now += POLL.max(rtt);
            continue;
        }
        let uri = format!("seg_{want}.ts");
        let Some(segment) = segmenter.segment_by_uri(&uri, now) else {
            // Advertised but not yet uploaded to the POP: brief wait.
            now += POLL;
            continue;
        };
        if first_fetch_start.is_none() {
            first_fetch_start = Some(now);
        }
        if faults.segment_error_rate > 0.0 {
            // Injected segment-fetch errors: each failed attempt costs an
            // RTT plus a capped backoff, then the fetch is retried; after
            // the policy's budget the fetch goes through regardless (the
            // CDN has more than one disk).
            let policy = RetryPolicy::segment_fetch();
            let mut attempt = 0;
            while attempt + 1 < policy.max_attempts && seg_rng.chance(faults.segment_error_rate) {
                trace.count("fault", "segment_errors", 1);
                trace.count("recovery", "segment_refetches", 1);
                now += rtt + policy.backoff(attempt, &mut seg_rng);
                attempt += 1;
            }
        }
        let fetch_started = now;
        let resp = Response::ok_bytes("video/mp2t", segment.bytes.clone());
        let body = resp.encode();
        let schedule = tcp.transfer(now, body.len(), &mut cwnd, fetched == 0);
        // Record the response bytes sliced along the arrival schedule.
        let mut off = 0usize;
        let mut extra_total = SimDuration::ZERO;
        for &(at, n) in &schedule.chunks {
            let at = match link_faults.as_mut() {
                Some(lf) => {
                    extra_total += lf.packet_extra();
                    at + extra_total
                }
                None => at,
            };
            let end_off = (off + n).min(body.len());
            let wall = capture_clock.read(at, &mut net_rng);
            capture.record(flow, at, wall, &body[off..end_off]);
            off = end_off;
        }
        let completion = schedule.completion + extra_total;
        media_end_s += segment.duration_s;
        // Latency anchor: the capture wall time of the segment's last frame.
        let last_frame_wall = segment_video_frames(&segment.bytes)
            .ok()
            .and_then(|frames| frames.last().map(|f| f.pts_ms))
            .and_then(|pts| capture_wall_by_pts.get(&pts).copied());
        arrivals.push(MediaArrival {
            at: completion,
            media_end_s,
            capture_wall_s: last_frame_wall,
        });
        let fetch_ms = (completion.saturating_since(now).as_secs_f64() * 1000.0) as u64;
        // Service/CDN side-channel spans: transcode+packaging of this
        // segment (ends when the POP can serve it) and the CDN delivery.
        // Parentless on purpose — the join tree's children must tile the
        // root exactly, and these overlap it.
        trace.span(
            (segment.available_at - seg_cfg.packaging_delay).as_micros(),
            segment.available_at.as_micros(),
            "service",
            "service.transcode",
            None,
        );
        trace.span(fetch_started.as_micros(), completion.as_micros(), "cdn", "cdn.fetch", None);
        trace.count("hls", "segments_fetched", 1);
        trace.count("tcp", "transfers", 1);
        trace.count("tcp", "bytes", body.len() as u64);
        trace.observe("hls", "segment_bytes", &pscp_obs::BYTE_BUCKETS, body.len() as u64);
        trace.observe("tcp", "fetch_ms", &pscp_obs::MS_BUCKETS, fetch_ms);
        if trace.is_enabled() {
            trace.event(
                completion.as_micros(),
                "hls",
                "hls.segment_fetch",
                vec![
                    ("seq", pscp_obs::Field::U(want)),
                    ("bytes", pscp_obs::Field::U(body.len() as u64)),
                    ("fetch_ms", pscp_obs::Field::U(fetch_ms)),
                ],
            );
        }
        now = completion;
        next_seq = Some(want + 1);
        fetched += 1;
    }
    if let Some(lf) = link_faults {
        trace.count("fault", "lost_packets", lf.lost);
        trace.count("fault", "latency_spikes", lf.spiked);
        trace.count("recovery", "retransmits", lf.lost);
    }

    // Chat traffic: on HLS sessions the popular broadcasts have busy, often
    // full chats. Modeled on its own link with the same shaping rate (the
    // HTTP fetch path above is a closed-form TCP model, so cross-traffic
    // coupling is approximated — see DESIGN.md).
    let mut chat_link = Link::unbounded(
        config.network.bottleneck_bps(),
        pop.location().propagation_to(&config.network.location),
    );
    let chat_windows = if faults.chat_drop_per_min > 0.0 {
        fault::drop_windows(
            fault_seed,
            "hls/chat",
            join_at,
            session_end,
            faults.chat_drop_per_min,
            chat_client::CHAT_RECONNECT_GAP,
        )
    } else {
        Vec::new()
    };
    if !chat_windows.is_empty() {
        trace.count("fault", "chat_drops", chat_windows.len() as u64);
        trace.count("recovery", "chat_reconnects", chat_windows.len() as u64);
    }
    chat_client::generate_with_faults(
        broadcast,
        join_at,
        session_end,
        config,
        &mut chat_link,
        &capture_clock,
        &mut capture,
        &mut net_rng,
        &chat_windows,
    );

    let log = run_playback(join_at, config.watch, config.player_hls, &arrivals);
    // Join decomposition (paper Fig 11 analogue): app bootstrap, playlist
    // discovery (first poll round-trips and POP re-polls), then segment
    // downloads until the initial buffer fills. The three child spans tile
    // [join_at, first_frame] exactly, so they sum to the join time; the
    // parent is the teleport driver's session root when one is open.
    if let Some(j) = log.join_time {
        let parent = trace.current_span();
        let first_frame = join_at + j;
        let boot_end = boot_done.min(first_frame);
        let fetch_start = first_fetch_start.unwrap_or(first_frame).clamp(boot_end, first_frame);
        trace.span(join_at.as_micros(), boot_end.as_micros(), "tcp", "tcp.bootstrap", parent);
        trace.span(boot_end.as_micros(), fetch_start.as_micros(), "hls", "hls.playlist", parent);
        trace.span(fetch_start.as_micros(), first_frame.as_micros(), "hls", "hls.segments", parent);
    }
    log.record_events(join_at, trace);
    crate::session::trace_session_end(trace, session_end.as_micros(), &log, &capture);
    // §2: "after an HTTP Live Streaming (HLS) session, the app reports only
    // the number of stall events."
    let meta = PlaybackMetaReport {
        n_stalls: log.n_stalls(),
        avg_stall_time_s: None,
        playback_latency_s: None,
    };
    let rendered = rendered_fps(fps, config.device, &log);
    SessionOutcome {
        broadcast_id: broadcast.id,
        protocol: Protocol::Hls,
        device: config.device,
        bandwidth_limit_bps: config.network.tc_limit_bps,
        player: log,
        capture,
        meta,
        viewers_at_join: broadcast.viewers_at(join_at),
        rendered_fps: rendered,
        server: pop.hostname().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NetworkSetup;
    use pscp_media::analysis::analyze_hls_flow;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::GeoPoint;
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn popular_broadcast(seed: u64) -> Broadcast {
        Broadcast {
            id: BroadcastId(seed),
            location: GeoPoint::new(40.71, -74.01), // NYC
            city: "New York",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(3600),
            content: ContentClass::SportsTv,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps64,
            avg_viewers: 800.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: seed,
            target_bitrate_bps: 300_000.0,
        }
    }

    fn run_session(seed: u64, config: SessionConfig) -> SessionOutcome {
        let b = popular_broadcast(seed);
        let rngs = RngFactory::new(seed).child("hls-session");
        run(&b, SimTime::from_secs(500), &config, &rngs)
    }

    #[test]
    fn session_plays_and_reports_hls_meta() {
        let out = run_session(1, SessionConfig::default());
        assert_eq!(out.protocol, Protocol::Hls);
        assert!(out.join_time_s().is_some());
        // HLS meta omits stall durations and latency (§2).
        assert!(out.meta.avg_stall_time_s.is_none());
        assert!(out.meta.playback_latency_s.is_none());
        assert!(out.server.contains("fastly"));
    }

    #[test]
    fn delivery_latency_exceeds_rtmp_scale() {
        let out = run_session(2, SessionConfig::default());
        // Playback latency (capture→render) on HLS: several seconds.
        let lat = out.player.mean_latency_s().expect("latency sampled");
        assert!(lat > 4.0, "lat={lat}");
    }

    #[test]
    fn stalls_rare_without_limit() {
        let mut stall_free = 0;
        for seed in 0..8 {
            let out = run_session(seed + 10, SessionConfig::default());
            if out.meta.n_stalls == 0 {
                stall_free += 1;
            }
        }
        assert!(stall_free >= 6, "stall_free={stall_free}/8");
    }

    #[test]
    fn capture_analyzable() {
        let out = run_session(3, SessionConfig::default());
        let flow = out.capture.flow_of_kind(FlowKind::HlsHttp).unwrap();
        let report = analyze_hls_flow(flow).unwrap();
        assert!(report.n_frames > 300, "frames={}", report.n_frames);
        assert!(!report.segment_durations_s.is_empty());
        for d in &report.segment_durations_s {
            assert!((3.0..6.5).contains(d), "segment duration {d}");
        }
        let mean = report.mean_delivery_latency_s().unwrap();
        assert!(mean > 3.0, "delivery latency {mean}");
    }

    #[test]
    fn bandwidth_limit_slows_join() {
        let fast = run_session(4, SessionConfig::default());
        let slow = run_session(
            4,
            SessionConfig { network: NetworkSetup::finland_limited(0.5), ..Default::default() },
        );
        match (fast.join_time_s(), slow.join_time_s()) {
            (Some(f), Some(s)) => assert!(s > f, "fast={f} slow={s}"),
            (Some(_), None) => {} // so slow it never joined — acceptable
            other => panic!("unexpected join times {other:?}"),
        }
    }

    #[test]
    fn determinism() {
        let a = run_session(5, SessionConfig::default());
        let b = run_session(5, SessionConfig::default());
        assert_eq!(a.capture.total_bytes(), b.capture.total_bytes());
        assert_eq!(a.meta, b.meta);
    }
}
