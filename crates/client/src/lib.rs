#![warn(missing_docs)]

//! The mobile viewing client and the automated measurement harness.
//!
//! §2 of the paper describes the setup this crate reproduces: Galaxy S3/S4
//! phones reverse-tethered to a Linux desktop with >100 Mbps connectivity,
//! optional `tc` bandwidth limits, a script pushing the "Teleport" button to
//! watch a random broadcast for exactly 60 seconds while tcpdump captures
//! traffic and a mitmproxy tap records playbackMeta uploads.
//!
//! * [`device`] — viewer phone profiles and the tethered network path;
//! * [`player`] — the playback buffer model: join time, stalls, playback
//!   latency (the quantities of Figures 3–4);
//! * [`uplink`] — the *broadcaster's* mobile uplink, whose glitches are what
//!   make even unthrottled viewers stall occasionally (Fig 3a);
//! * [`rtmp_session`] / [`hls_session`] — end-to-end session simulation
//!   producing wire-accurate captures;
//! * [`srt_session`] — the what-if unreliable-transport study: SRT-style
//!   NAK/ARQ ingest with a latency window (DESIGN.md §12), selected only by
//!   [`SessionConfig::transport`](session::SessionConfig::transport);
//! * [`replay_session`] — VOD playback of recorded broadcasts (§5.3's
//!   "Video on (not live)" scenario);
//! * [`chat_client`] — chat-on traffic: WebSocket messages plus uncached
//!   profile-picture downloads (§5.1's 0.5 → 3.5 Mbps blow-up);
//! * [`retry`] — capped-exponential-backoff policies driving API retries,
//!   stream reconnects, and HLS segment re-fetches under injected faults;
//! * [`teleport`] — the automation loop generating a session dataset.

pub mod chat_client;
pub mod device;
pub mod hls_session;
pub mod player;
pub mod replay_session;
pub mod retry;
pub mod rtmp_session;
pub mod session;
pub mod srt_session;
pub mod teleport;
pub mod uplink;

pub use device::{NetworkSetup, ViewerDevice};
pub use player::{PlayerConfig, PlayerLog};
pub use retry::{RetryClass, RetryPolicy};
pub use session::{SessionConfig, SessionOutcome};
pub use teleport::{Teleport, TeleportConfig};
