//! The playback buffer model.
//!
//! Feeding it media arrivals yields the three §5.1 QoE quantities:
//!
//! * **join time** — "We calculate the join time, often also called startup
//!   latency, by subtracting the summed up playback and stall time from
//!   60s" — here computed directly as time-to-first-rendered-frame, which
//!   is the same quantity;
//! * **stalls** — count and durations, hence the stall ratio of Fig 3;
//! * **playback latency** — end-to-end capture-to-render delay (Fig 4b),
//!   computed per frame as render time minus capture wall time.
//!
//! The RTMP and HLS players share this core and differ in their thresholds:
//! RTMP starts after a small media buffer; HLS needs whole segments, whose
//! coarse granularity is exactly why it stalls less but lags more (§5.1's
//! closing speculation about buffer sizing, exposed here as parameters for
//! the `ablation_buffer` bench).

use pscp_simnet::{SimDuration, SimTime};

/// Player buffering thresholds, in media seconds.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Media buffered before initial play-out starts.
    pub initial_buffer_s: f64,
    /// Media buffered before play-out resumes after a stall.
    pub resume_buffer_s: f64,
}

impl PlayerConfig {
    /// The RTMP player: aggressive, sub-second-to-seconds buffer.
    pub fn rtmp() -> Self {
        PlayerConfig { initial_buffer_s: 1.6, resume_buffer_s: 1.0 }
    }

    /// The HLS player: starts after two segments' worth of media.
    pub fn hls() -> Self {
        PlayerConfig { initial_buffer_s: 6.0, resume_buffer_s: 3.6 }
    }

    /// The SRT player: same thresholds as RTMP, so the three-way chaos
    /// sweep compares transports, not buffer tuning — any stall-ratio gap
    /// between the two is loss-recovery behaviour alone.
    pub fn srt() -> Self {
        PlayerConfig::rtmp()
    }
}

/// One media arrival: at wall instant `at`, the contiguous buffered media
/// extends to `media_end_s` (seconds of media since the first byte the
/// server chose to send), and the newly arrived span was captured by the
/// broadcaster at wall time `capture_wall_s` (for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaArrival {
    /// Arrival instant at the player.
    pub at: SimTime,
    /// Buffered media horizon after this arrival, media-seconds.
    pub media_end_s: f64,
    /// Broadcaster wall-clock capture time of the newest media in this
    /// arrival, seconds (None when unknown).
    pub capture_wall_s: Option<f64>,
}

/// A completed stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stall {
    /// When playback froze.
    pub start: SimTime,
    /// How long it lasted.
    pub duration: SimDuration,
}

/// The play-out log of one session.
#[derive(Debug, Clone)]
pub struct PlayerLog {
    /// Time from session start to first rendered frame; `None` if playback
    /// never started within the session.
    pub join_time: Option<SimDuration>,
    /// Completed stalls (join-time buffering is not a stall).
    pub stalls: Vec<Stall>,
    /// Total media seconds actually played.
    pub played_s: f64,
    /// Per-sample (render wall time − capture wall time), seconds.
    pub latency_samples: Vec<f64>,
    /// Session length used for ratio computations.
    pub session_s: f64,
}

impl PlayerLog {
    /// Summed stall time in seconds.
    pub fn total_stall_s(&self) -> f64 {
        self.stalls.iter().map(|s| s.duration.as_secs_f64()).sum()
    }

    /// Stall ratio: stall time / (stall + played) — §5.1's definition
    /// "summed up stall time divided by the total stream duration including
    /// stall and playback time".
    pub fn stall_ratio(&self) -> f64 {
        let denom = self.total_stall_s() + self.played_s;
        if denom <= 0.0 {
            // Never played: all stall by convention (join never completed).
            return 1.0;
        }
        (self.total_stall_s() / denom).max(0.0)
    }

    /// Mean playback latency, if sampled.
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.latency_samples.is_empty() {
            return None;
        }
        Some(self.latency_samples.iter().sum::<f64>() / self.latency_samples.len() as f64)
    }

    /// Number of stall events.
    pub fn n_stalls(&self) -> u32 {
        self.stalls.len() as u32
    }

    /// Mean stall event duration (what the RTMP player reports in
    /// playbackMeta).
    pub fn avg_stall_s(&self) -> Option<f64> {
        if self.stalls.is_empty() {
            return None;
        }
        Some(self.total_stall_s() / self.stalls.len() as f64)
    }

    /// Records the player's QoE events and metrics into a per-session
    /// trace: a `session.join` event at first render (or a `never_joined`
    /// counter), one `player.stall` event per stall, and the matching
    /// join-time/stall-duration histograms. `session_start` anchors the
    /// join event on the sim-time axis.
    pub fn record_events(&self, session_start: SimTime, trace: &mut pscp_obs::Trace) {
        use pscp_obs::{Field, MS_BUCKETS};
        match self.join_time {
            Some(join) => {
                let ms = (join.as_secs_f64() * 1000.0) as u64;
                trace.count("player", "joined", 1);
                trace.observe("player", "join_time_ms", &MS_BUCKETS, ms);
                if trace.is_enabled() {
                    trace.event(
                        (session_start + join).as_micros(),
                        "player",
                        "session.join",
                        vec![("join_ms", Field::U(ms))],
                    );
                }
            }
            None => trace.count("player", "never_joined", 1),
        }
        for stall in &self.stalls {
            let ms = (stall.duration.as_secs_f64() * 1000.0) as u64;
            trace.count("player", "stalls", 1);
            trace.observe("player", "stall_ms", &MS_BUCKETS, ms);
            if trace.is_enabled() {
                trace.event(
                    stall.start.as_micros(),
                    "player",
                    "player.stall",
                    vec![("duration_ms", Field::U(ms))],
                );
            }
            // Stall intervals as parentless spans: they happen *after* the
            // join, so they live beside the join tree, not inside it.
            trace.span(
                stall.start.as_micros(),
                (stall.start + stall.duration).as_micros(),
                "player",
                "player.stall",
                None,
            );
        }
    }
}

/// Runs the buffer simulation over arrivals (must be time-ordered) for a
/// session `[start, start+session)`.
pub fn run_playback(
    start: SimTime,
    session: SimDuration,
    config: PlayerConfig,
    arrivals: &[MediaArrival],
) -> PlayerLog {
    let end = start + session;
    let mut log = PlayerLog {
        join_time: None,
        stalls: Vec::new(),
        played_s: 0.0,
        latency_samples: Vec::new(),
        session_s: session.as_secs_f64(),
    };
    // State machine over wall time.
    #[derive(PartialEq)]
    enum State {
        Buffering,
        Playing,
        Stalled(SimTime),
    }
    let mut state = State::Buffering;
    let mut buffered_end_s = 0.0_f64; // media horizon
    let mut play_pos_s = 0.0_f64; // media position being rendered
    let mut last_wall = start;
    // Capture-time anchors for latency: (media position, capture wall).
    let mut anchors: Vec<(f64, f64)> = Vec::new();

    let advance = |state: &mut State,
                   play_pos_s: &mut f64,
                   buffered_end_s: f64,
                   from: SimTime,
                   to: SimTime,
                   log: &mut PlayerLog,
                   anchors: &mut Vec<(f64, f64)>| {
        if to <= from {
            return;
        }
        if let State::Playing = state {
            let wall_dt = to.saturating_since(from).as_secs_f64();
            let media_avail = buffered_end_s - *play_pos_s;
            if wall_dt < media_avail {
                // Plays through the whole interval.
                let new_pos = *play_pos_s + wall_dt;
                emit_latency(anchors, *play_pos_s, new_pos, from, log);
                *play_pos_s = new_pos;
                log.played_s += wall_dt;
            } else {
                // Plays until the buffer runs dry, then stalls.
                let stall_at = from + SimDuration::from_secs_f64(media_avail);
                emit_latency(anchors, *play_pos_s, buffered_end_s, from, log);
                log.played_s += media_avail;
                *play_pos_s = buffered_end_s;
                *state = State::Stalled(stall_at);
            }
        }
    };

    for a in arrivals {
        if a.at >= end {
            break;
        }
        let at = a.at.max(start);
        // Move wall time forward under the old buffer state.
        advance(&mut state, &mut play_pos_s, buffered_end_s, last_wall, at, &mut log, &mut anchors);
        last_wall = at;
        if a.media_end_s > buffered_end_s {
            if let Some(cw) = a.capture_wall_s {
                anchors.push((a.media_end_s, cw));
            }
            buffered_end_s = a.media_end_s;
        }
        // State transitions on new data.
        match state {
            State::Buffering => {
                if buffered_end_s - play_pos_s >= config.initial_buffer_s {
                    state = State::Playing;
                    log.join_time = Some(at.saturating_since(start));
                }
            }
            State::Stalled(since) => {
                if buffered_end_s - play_pos_s >= config.resume_buffer_s {
                    log.stalls.push(Stall { start: since, duration: at.saturating_since(since) });
                    state = State::Playing;
                }
            }
            State::Playing => {}
        }
    }
    // Run out the clock to session end.
    advance(&mut state, &mut play_pos_s, buffered_end_s, last_wall, end, &mut log, &mut anchors);
    // A stall still open at the end counts up to the session boundary.
    if let State::Stalled(since) = state {
        log.stalls.push(Stall { start: since, duration: end.saturating_since(since) });
    }
    log
}

/// Emits latency samples for anchors crossed while playing media from
/// `from_pos` to `to_pos` starting at wall `wall_from`.
fn emit_latency(
    anchors: &mut Vec<(f64, f64)>,
    from_pos: f64,
    to_pos: f64,
    wall_from: SimTime,
    log: &mut PlayerLog,
) {
    let mut kept = Vec::new();
    for &(pos, cap_wall) in anchors.iter() {
        if pos > from_pos && pos <= to_pos {
            let render_wall = wall_from.as_secs_f64() + (pos - from_pos);
            log.latency_samples.push(render_wall - cap_wall);
        } else if pos > to_pos {
            kept.push((pos, cap_wall));
        }
    }
    *anchors = kept;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_micros((s * 1e6) as u64)
    }

    fn arrival(at: f64, media: f64) -> MediaArrival {
        MediaArrival { at: t(at), media_end_s: media, capture_wall_s: None }
    }

    const SESSION: SimDuration = SimDuration::from_secs(60);

    #[test]
    fn smooth_stream_no_stalls() {
        // Media arrives 2 s ahead of real time, covering the whole session.
        let arrivals: Vec<MediaArrival> =
            (0..130).map(|i| arrival(i as f64 * 0.5, i as f64 * 0.5 + 2.0)).collect();
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        assert_eq!(log.n_stalls(), 0);
        assert!(log.stall_ratio() < 1e-9);
        let join = log.join_time.unwrap().as_secs_f64();
        assert!(join < 0.1, "join={join}");
        assert!((log.played_s - 60.0).abs() < 1.0, "played={}", log.played_s);
    }

    #[test]
    fn join_waits_for_initial_buffer() {
        // Media trickles in at real-time rate: buffer reaches 1.6 s of
        // media only at wall ~1.6+.
        let arrivals: Vec<MediaArrival> =
            (0..700).map(|i| arrival(i as f64 * 0.1, i as f64 * 0.1)).collect();
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        let join = log.join_time.unwrap().as_secs_f64();
        assert!((1.5..2.0).contains(&join), "join={join}");
    }

    #[test]
    fn gap_in_arrivals_causes_one_stall() {
        let mut arrivals = Vec::new();
        // 10 s of media delivered promptly...
        for i in 0..100 {
            arrivals.push(arrival(i as f64 * 0.1, i as f64 * 0.1 + 2.0));
        }
        // ...then silence until t=18 (buffer holds ~12 s media: dry at ~12),
        // then delivery resumes with plenty.
        for i in 0..420 {
            let at = 18.0 + i as f64 * 0.1;
            arrivals.push(arrival(at, at + 2.0));
        }
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        assert_eq!(log.n_stalls(), 1, "stalls={:?}", log.stalls);
        let stall = log.stalls[0];
        assert!((stall.start.as_secs_f64() - 12.0).abs() < 0.3, "start={}", stall.start);
        let dur = stall.duration.as_secs_f64();
        assert!((5.5..6.5).contains(&dur), "dur={dur}");
        // Ratio ≈ 6 / 60.
        assert!((log.stall_ratio() - 0.1).abs() < 0.02, "ratio={}", log.stall_ratio());
    }

    #[test]
    fn open_stall_truncated_at_session_end() {
        let arrivals: Vec<MediaArrival> =
            (0..30).map(|i| arrival(i as f64 * 0.1, i as f64 * 0.1 + 2.0)).collect();
        // Delivery stops at t=3 with ~5 s media buffered; dry at ~5; stalled
        // until 60.
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        assert_eq!(log.n_stalls(), 1);
        let dur = log.stalls[0].duration.as_secs_f64();
        assert!(dur > 50.0, "dur={dur}");
        assert!(log.stall_ratio() > 0.85);
    }

    #[test]
    fn never_joined_is_full_stall_ratio() {
        let arrivals = [arrival(59.0, 0.5)];
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        assert!(log.join_time.is_none());
        assert_eq!(log.stall_ratio(), 1.0);
        assert_eq!(log.played_s, 0.0);
    }

    #[test]
    fn hls_larger_buffer_joins_later_but_absorbs_gaps() {
        // Segments of 3.6 s arriving every 3.6 s with one late segment.
        let mut arrivals = Vec::new();
        let mut media = 0.0;
        let mut wall = 0.5;
        for i in 0..20 {
            media += 3.6;
            arrivals.push(arrival(wall, media));
            wall += if i == 4 { 6.5 } else { 3.6 }; // one delayed fetch
        }
        let hls = run_playback(SimTime::ZERO, SESSION, PlayerConfig::hls(), &arrivals);
        let rtmp_like = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        assert!(hls.join_time.unwrap() > rtmp_like.join_time.unwrap());
        assert!(hls.n_stalls() <= rtmp_like.n_stalls());
    }

    #[test]
    fn latency_samples_from_anchors() {
        // Media captured at wall time equal to its media position (zero
        // encoding delay), delivered 0.3 s later, played with a 1.6 s
        // initial buffer: latency ≈ initial threshold + delivery.
        let arrivals: Vec<MediaArrival> = (0..600)
            .map(|i| {
                let m = i as f64 * 0.1;
                MediaArrival { at: t(m + 0.3), media_end_s: m, capture_wall_s: Some(m) }
            })
            .collect();
        let log = run_playback(SimTime::ZERO, SESSION, PlayerConfig::rtmp(), &arrivals);
        let lat = log.mean_latency_s().unwrap();
        assert!((1.5..2.5).contains(&lat), "lat={lat}");
        assert!(log.latency_samples.len() > 100);
    }

    #[test]
    fn stall_ratio_definition_matches_paper() {
        // stall / (stall + played), not stall / session.
        let log = PlayerLog {
            join_time: Some(SimDuration::from_secs(10)),
            stalls: vec![Stall { start: t(20.0), duration: SimDuration::from_secs(10) }],
            played_s: 40.0,
            latency_samples: vec![],
            session_s: 60.0,
        };
        assert!((log.stall_ratio() - 0.2).abs() < 1e-9);
        assert_eq!(log.avg_stall_s(), Some(10.0));
    }
}
