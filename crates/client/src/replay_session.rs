//! Replay (VOD) viewing session.
//!
//! §5.3: "Playing back old recorded videos with the application consume an
//! equal amount of power as playing back live videos." A replay session
//! fetches an ended playlist from the CDN and pulls segments ahead of
//! playback up to a buffer cap — VOD semantics: no live edge, no waiting
//! for new segments, no delivery-latency notion (the NTP timestamps in the
//! recording are hours stale and excluded from latency analysis).

use crate::chat_client;
use crate::player::{run_playback, MediaArrival};
use crate::rtmp_session::rendered_fps;
use crate::session::{PlaybackMetaReport, SessionConfig, SessionOutcome};
use pscp_media::capture::{Capture, FlowKind};
use pscp_proto::http::Response;
use pscp_service::cdn;
use pscp_service::replay::ReplayVod;
use pscp_service::select::Protocol;
use pscp_simnet::tcp::{TcpModel, INIT_CWND_SEGMENTS};
use pscp_simnet::{RngFactory, SimTime, WallClock};
use pscp_workload::broadcast::Broadcast;

/// Media the player may buffer ahead in a VOD session, seconds.
const VOD_BUFFER_AHEAD_S: f64 = 20.0;

/// Runs one replay session: fetches the recording of `broadcast` starting
/// at `start_at` and watches for `config.watch`. Returns `None` when no
/// replay exists.
pub fn run(
    broadcast: &Broadcast,
    start_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
) -> Option<SessionOutcome> {
    // Materialize a bit more media than the watch window.
    let vod = ReplayVod::build(broadcast, config.watch.as_secs_f64() + 30.0, rngs)?;
    let mut net_rng = rngs.stream("replay/net");
    let capture_clock = WallClock::ntp_synced(&mut net_rng);
    let pop = cdn::pop_for_session(&config.network.location, broadcast.id.0);
    let rtt = config.network.rtt_to(&pop.location());
    let tcp = TcpModel::new(config.network.mtu.max(256), rtt, config.network.bottleneck_bps());
    let mut cwnd = INIT_CWND_SEGMENTS;

    let mut capture = Capture::new();
    let flow = capture.open_flow(FlowKind::HlsHttp, pop.hostname());

    // Playlist fetch (connect + request).
    let playlist = vod.playlist();
    let playlist_resp =
        Response::ok_bytes("application/vnd.apple.mpegurl", playlist.render().into_bytes());
    let boot = tcp.transfer(start_at, playlist_resp.encode().len(), &mut cwnd, true);
    {
        let body = playlist_resp.encode();
        let mut off = 0;
        for &(at, n) in &boot.chunks {
            let end = (off + n).min(body.len());
            let wall = capture_clock.read(at, &mut net_rng);
            capture.record(flow, at, wall, &body[off..end]);
            off = end;
        }
    }

    // Segment fetch loop: pull ahead of playback up to the buffer cap.
    let session_end = start_at + config.watch;
    let mut now = boot.completion;
    let mut media_end_s = 0.0f64;
    let mut arrivals: Vec<MediaArrival> = Vec::new();
    for segment in &vod.segments {
        if now >= session_end {
            break;
        }
        // VOD pacing: don't buffer more than the cap beyond the play head
        // (approximated by wall time since session start).
        let play_head = now.saturating_since(start_at).as_secs_f64();
        if media_end_s - play_head > VOD_BUFFER_AHEAD_S {
            // Wait until the play head catches up before the next fetch.
            let wait_s = media_end_s - play_head - VOD_BUFFER_AHEAD_S;
            now += pscp_simnet::SimDuration::from_secs_f64(wait_s);
            if now >= session_end {
                break;
            }
        }
        let resp = Response::ok_bytes("video/mp2t", segment.bytes.clone());
        let body = resp.encode();
        let schedule = tcp.transfer(now, body.len(), &mut cwnd, false);
        let mut off = 0;
        for &(at, n) in &schedule.chunks {
            let end = (off + n).min(body.len());
            let wall = capture_clock.read(at, &mut net_rng);
            capture.record(flow, at, wall, &body[off..end]);
            off = end;
        }
        media_end_s += segment.duration_s;
        // VOD: stale capture timestamps are not latency anchors.
        arrivals.push(MediaArrival { at: schedule.completion, media_end_s, capture_wall_s: None });
        now = schedule.completion;
    }

    // Replay pages still show chat history but the room is closed: no live
    // messages. Only the video traffic flows.
    let _ = chat_client::events; // (documented no-op for replays)

    let log = run_playback(start_at, config.watch, config.player_hls, &arrivals);
    let meta = PlaybackMetaReport {
        n_stalls: log.n_stalls(),
        avg_stall_time_s: None,
        playback_latency_s: None,
    };
    let fps = broadcast.device.fps();
    let rendered = rendered_fps(fps, config.device, &log);
    Some(SessionOutcome {
        broadcast_id: broadcast.id,
        protocol: Protocol::Hls,
        device: config.device,
        bandwidth_limit_bps: config.network.tc_limit_bps,
        player: log,
        capture,
        meta,
        viewers_at_join: 0,
        rendered_fps: rendered,
        server: format!("{} (replay)", pop.hostname()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NetworkSetup;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::{GeoPoint, SimDuration};
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn broadcast(replay: bool) -> Broadcast {
        Broadcast {
            id: BroadcastId(77),
            location: GeoPoint::new(48.86, 2.35),
            city: "Paris",
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(600),
            content: ContentClass::StaticTalk,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 9.0,
            replay_available: replay,
            private: false,
            location_public: true,
            viewer_seed: 8,
            target_bitrate_bps: 300_000.0,
        }
    }

    #[test]
    fn no_replay_no_session() {
        let out = run(
            &broadcast(false),
            SimTime::from_secs(5000),
            &SessionConfig::default(),
            &RngFactory::new(1),
        );
        assert!(out.is_none());
    }

    #[test]
    fn replay_plays_smoothly_on_fast_link() {
        let out = run(
            &broadcast(true),
            SimTime::from_secs(5000),
            &SessionConfig::default(),
            &RngFactory::new(2),
        )
        .unwrap();
        assert!(out.join_time_s().unwrap() < 10.0);
        assert_eq!(out.meta.n_stalls, 0, "VOD on 100 Mbps should not stall");
        assert!(out.server.contains("replay"));
        // No latency notion for VOD.
        assert!(out.player.latency_samples.is_empty());
    }

    #[test]
    fn replay_traffic_close_to_live_rate() {
        // §5.3: replay playback power equals live — because the traffic and
        // decode load are the same. Check the stream rate is in the same
        // band as the encoder target.
        let out = run(
            &broadcast(true),
            SimTime::from_secs(5000),
            &SessionConfig::default(),
            &RngFactory::new(3),
        )
        .unwrap();
        let rate = out.capture.rate_of_kinds(&[FlowKind::HlsHttp]);
        assert!((100_000.0..900_000.0).contains(&rate), "rate={rate}");
    }

    #[test]
    fn replay_on_slow_link_stalls_or_joins_late() {
        let cfg =
            SessionConfig { network: NetworkSetup::finland_limited(0.2), ..Default::default() };
        let out =
            run(&broadcast(true), SimTime::from_secs(5000), &cfg, &RngFactory::new(4)).unwrap();
        let late = out.join_time_s().map(|j| j > 10.0).unwrap_or(true);
        assert!(late || out.meta.n_stalls > 0);
    }

    #[test]
    fn capture_is_hls_analyzable() {
        let out = run(
            &broadcast(true),
            SimTime::from_secs(5000),
            &SessionConfig::default(),
            &RngFactory::new(5),
        )
        .unwrap();
        let flow = out.capture.flow_of_kind(FlowKind::HlsHttp).unwrap();
        let report = pscp_media::analysis::analyze_hls_flow(flow).unwrap();
        assert!(report.n_frames > 300);
        assert!(!report.segment_durations_s.is_empty());
    }

    #[test]
    fn deterministic() {
        let run_once = || {
            run(
                &broadcast(true),
                SimTime::from_secs(5000),
                &SessionConfig::default(),
                &RngFactory::new(6),
            )
            .unwrap()
            .capture
            .total_bytes()
        };
        assert_eq!(run_once(), run_once());
    }
}
