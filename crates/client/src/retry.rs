//! Client retry policy: capped exponential backoff with deterministic
//! jitter (DESIGN.md §8).
//!
//! Real Periscope clients retry transient API failures (429 rate limits,
//! 5xx backend errors) and re-fetch failed HLS segments; the measured join
//! times and stall tails include those waits. [`RetryPolicy`] reproduces
//! that behaviour on the simulation clock: delays are `base · 2^attempt`
//! capped at `cap`, jittered multiplicatively with a draw from a
//! [`FaultRng`] stream, so the full retry timeline is a pure function of
//! the fault seed.

use pscp_simnet::fault::FaultRng;
use pscp_simnet::time::SimDuration;

/// How an HTTP status should be handled by a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// 2xx — the request succeeded.
    Success,
    /// 429 — rate limited; back off and retry.
    RetryRateLimited,
    /// 5xx — transient server failure; back off and retry.
    RetryBackoff,
    /// Anything else — retrying will not help.
    Fatal,
}

/// Classifies an HTTP status code for the retry loop.
pub fn classify(status: u16) -> RetryClass {
    match status {
        200..=299 => RetryClass::Success,
        429 => RetryClass::RetryRateLimited,
        500..=599 => RetryClass::RetryBackoff,
        _ => RetryClass::Fatal,
    }
}

/// A capped-exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Hard ceiling on any single backoff delay (jitter included).
    pub cap: SimDuration,
    /// Total attempts allowed (first try included).
    pub max_attempts: u32,
    /// Multiplicative jitter half-width: the delay is scaled by a uniform
    /// factor in `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Policy for API calls (follow/search-style verbs and playback
    /// bootstrap requests).
    pub fn api() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(400),
            cap: SimDuration::from_secs(5),
            max_attempts: 4,
            jitter_frac: 0.25,
        }
    }

    /// Policy for stream reconnects (RTMP ingest, chat WebSocket).
    pub fn reconnect() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(15),
            max_attempts: 5,
            jitter_frac: 0.25,
        }
    }

    /// Policy for HLS segment re-fetches, where waiting long is worse than
    /// giving the playlist another poll.
    pub fn segment_fetch() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(250),
            cap: SimDuration::from_secs(2),
            max_attempts: 3,
            jitter_frac: 0.25,
        }
    }

    /// Backoff delay before retry number `attempt` (0-based: the delay
    /// after the first failure is `backoff(0, ..)`). Always consumes
    /// exactly one jitter variate, and the returned delay never exceeds
    /// [`RetryPolicy::cap`].
    pub fn backoff(&self, attempt: u32, rng: &mut FaultRng) -> SimDuration {
        let exp = self.base.as_micros().saturating_mul(1u64 << attempt.min(32));
        let capped = exp.min(self.cap.as_micros());
        let u = rng.next_f64();
        let factor = 1.0 + self.jitter_frac * (2.0 * u - 1.0);
        let jittered = (capped as f64 * factor).round().max(0.0) as u64;
        SimDuration::from_micros(jittered.min(self.cap.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_verbs() {
        assert_eq!(classify(200), RetryClass::Success);
        assert_eq!(classify(204), RetryClass::Success);
        assert_eq!(classify(429), RetryClass::RetryRateLimited);
        assert_eq!(classify(500), RetryClass::RetryBackoff);
        assert_eq!(classify(503), RetryClass::RetryBackoff);
        assert_eq!(classify(404), RetryClass::Fatal);
        assert_eq!(classify(301), RetryClass::Fatal);
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::api();
        let mut a = FaultRng::from_label(9, "retry");
        let mut b = FaultRng::from_label(9, "retry");
        for attempt in 0..4 {
            assert_eq!(p.backoff(attempt, &mut a), p.backoff(attempt, &mut b));
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy { jitter_frac: 0.0, ..RetryPolicy::api() };
        let mut rng = FaultRng::new(1);
        let d0 = p.backoff(0, &mut rng);
        let d1 = p.backoff(1, &mut rng);
        let d9 = p.backoff(9, &mut rng);
        assert_eq!(d0, p.base);
        assert_eq!(d1, p.base * 2);
        assert_eq!(d9, p.cap);
    }

    #[test]
    fn cap_is_strict_even_with_jitter() {
        let p = RetryPolicy::reconnect();
        let mut rng = FaultRng::new(7);
        for attempt in 0..40 {
            assert!(p.backoff(attempt, &mut rng) <= p.cap);
        }
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::api();
        let mut rng = FaultRng::new(3);
        assert!(p.backoff(u32::MAX, &mut rng) <= p.cap);
    }

    #[test]
    fn jitter_stays_within_band() {
        let p = RetryPolicy { jitter_frac: 0.25, ..RetryPolicy::api() };
        let mut rng = FaultRng::new(5);
        let lo = (p.base.as_micros() as f64 * 0.75) as u64;
        let hi = (p.base.as_micros() as f64 * 1.25) as u64;
        for _ in 0..200 {
            let d = p.backoff(0, &mut rng).as_micros();
            assert!(d >= lo && d <= hi + 1, "d={d}");
        }
    }

    #[test]
    fn max_attempts_is_exhaustion_budget() {
        // The retry loop contract: attempts 1..=max_attempts run, then the
        // caller gives up. Encode it here so the constant is load-bearing.
        let p = RetryPolicy::api();
        let mut rng = FaultRng::new(2);
        let mut waited = SimDuration::ZERO;
        let mut attempts = 0;
        while attempts < p.max_attempts {
            attempts += 1;
            if attempts < p.max_attempts {
                waited += p.backoff(attempts - 1, &mut rng);
            }
        }
        assert_eq!(attempts, 4);
        assert!(waited < p.cap * 4);
    }
}
