//! End-to-end RTMP viewing session.
//!
//! The full §3/§5.1 pipeline: the broadcaster's phone encodes and uploads
//! over a glitchy mobile uplink to the nearest EC2 ingest server, which
//! pushes every message to the viewer the moment it has it ("The RTMP
//! servers can push the video data directly to viewers right after
//! receiving it from the broadcasting client"); the viewer's tethered phone
//! receives through the optional `tc` shaper, tcpdump records every packet,
//! and the player buffers ~1.6 s before rendering.

use crate::chat_client;
use crate::device::ViewerDevice;
use crate::player::{run_playback, MediaArrival};
use crate::session::{PlaybackMetaReport, SessionConfig, SessionOutcome};
use crate::uplink::Uplink;
use pscp_media::audio::AudioEncoder;
use pscp_media::bitstream::FrameKind;
use pscp_media::capture::{Capture, FlowKind};
use pscp_media::content::ContentProcess;
use pscp_media::encoder::{Encoder, EncoderConfig};
use pscp_media::flv::{AudioTag, VideoTag};
use pscp_proto::amf::{encode_command, Amf0};
use pscp_proto::rtmp::{
    handshake_c0c1, handshake_s0s1s2, Chunker, Message, MessageRef, MessageType,
};
use pscp_service::ingest::assign_server;
use pscp_service::select::Protocol;
use pscp_simnet::fault::{self, LinkFaults};
use pscp_simnet::{BufPool, Link, RngFactory, SimDuration, SimTime, WallClock};
use pscp_workload::broadcast::Broadcast;
use std::collections::HashMap;

/// Encode-side latency on the broadcaster phone (capture → packet out).
const ENCODE_LATENCY: SimDuration = SimDuration::from_millis(120);
/// Small per-message server forwarding delay.
const SERVER_FORWARD: SimDuration = SimDuration::from_millis(5);
/// How much already-uploaded media the server replays from (at most one
/// GOP back to the latest keyframe, so playback can start immediately).
const WARMUP: SimDuration = SimDuration::from_secs(6);
/// Gap an injected mid-stream RTMP disconnect leaves before the client's
/// reconnect completes (DESIGN.md §8).
const RTMP_RECONNECT_GAP: SimDuration = SimDuration::from_secs(4);

/// Runs one RTMP session: the viewer joins `broadcast` at absolute time
/// `join_at` and watches for `config.watch`.
pub fn run(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
) -> SessionOutcome {
    run_traced(broadcast, join_at, config, rngs, &mut pscp_obs::Trace::disabled())
}

/// [`run`] plus per-session instrumentation into `trace` (no-ops when the
/// trace is disabled; the simulation itself is identical either way —
/// tracing draws no randomness and moves no timestamps).
pub fn run_traced(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
    trace: &mut pscp_obs::Trace,
) -> SessionOutcome {
    let mut enc_rng = rngs.stream("rtmp/encoder");
    let mut net_rng = rngs.stream("rtmp/net");
    let mut clock_rng = rngs.stream("rtmp/clocks");

    let broadcaster_clock = WallClock::ntp_synced(&mut clock_rng);
    let capture_clock = WallClock::ntp_synced(&mut clock_rng);

    let server = assign_server(&broadcast.location, broadcast.id.0);
    let prop_up = broadcast.location.propagation_to(&server.location());
    let rtt = config.network.rtt_to(&server.location());
    crate::session::trace_session_start(
        trace,
        "rtmp",
        broadcast.id,
        broadcast.viewers_at(join_at),
        join_at.as_micros(),
        config,
    );

    // --- broadcaster side: encode + upload ---
    let enc_cfg = EncoderConfig {
        fps: broadcast.device.fps(),
        gop: broadcast.device.gop(),
        target_bitrate_bps: broadcast.target_bitrate_bps,
        ..Default::default()
    };
    let fps = enc_cfg.fps;
    let content = ContentProcess::new(broadcast.content, &mut enc_rng);
    let mut encoder = Encoder::new(enc_cfg, content);
    let mut audio = AudioEncoder::new(broadcast.audio);

    let sim_start = join_at - WARMUP;
    let end = join_at + config.watch + SimDuration::from_secs(2);
    let mut uplink = Uplink::draw(&config.uplink, sim_start, end, &mut enc_rng);

    // (capture time, arrival at ingest, frame) for video; audio separately.
    struct IngestFrame {
        t_cap: SimTime,
        a_in: SimTime,
        frame: pscp_media::encoder::EncodedFrame,
    }
    let mut video_in: Vec<IngestFrame> = Vec::new();
    let mut audio_in: Vec<(SimTime, u32, usize)> = Vec::new(); // (arrival, pts, size)
    let total_frames = (end.saturating_since(sim_start).as_secs_f64() * fps) as u64;
    let mut next_audio_pts = 0.0;
    for i in 0..total_frames {
        let t_cap = sim_start + SimDuration::from_secs_f64(i as f64 / fps);
        let wall = broadcaster_clock.read(t_cap, &mut clock_rng);
        if let Some(frame) = encoder.next_frame(wall, &mut enc_rng) {
            let sent = uplink.upload(t_cap + ENCODE_LATENCY, frame.bytes.len());
            video_in.push(IngestFrame { t_cap, a_in: sent + prop_up, frame });
        }
        // Audio frames tick at their own 23.22 ms cadence.
        while next_audio_pts <= i as f64 * 1000.0 / fps {
            let af = audio.next_frame(&mut enc_rng);
            let t_a = sim_start + SimDuration::from_secs_f64(next_audio_pts / 1000.0);
            let sent = uplink.upload(t_a + ENCODE_LATENCY, af.size);
            audio_in.push((sent + prop_up, af.pts_ms, af.size));
            next_audio_pts += pscp_media::audio::frame_duration_ms();
        }
    }

    // --- server side: choose the replay start (latest keyframe already
    // ingested when the play command lands) ---
    let tls_rtts = if broadcast.private { pscp_proto::tls::HANDSHAKE_RTTS as u64 } else { 0 };
    // TCP connect + (TLS handshake for private streams) + RTMP handshake.
    let play_cmd_at = join_at + rtt + rtt / 2 + rtt * tls_rtts;
    if trace.is_enabled() {
        trace.event((join_at + rtt).as_micros(), "rtmp", "rtmp.handshake", vec![]);
        trace.event(play_cmd_at.as_micros(), "rtmp", "rtmp.play_start", vec![]);
    }
    let cached: Vec<usize> = video_in
        .iter()
        .enumerate()
        .filter(|(_, f)| f.a_in <= play_cmd_at)
        .map(|(i, _)| i)
        .collect();
    let start_idx = cached
        .iter()
        .rev()
        .find(|&&i| video_in[i].frame.kind == FrameKind::I)
        .copied()
        .unwrap_or_else(|| cached.last().copied().unwrap_or(0));

    // --- wire: every transmission (bootstrap, handshake, media, chat,
    // pictures) is merged into send-time order before hitting the shared
    // bottleneck link, so cross-traffic genuinely delays video — the FIFO
    // contention behind the paper's 2 Mbps QoE boundary. ---
    let mut capture = Capture::new();
    let flow_rtmp = capture.open_flow(FlowKind::Rtmp, server.reverse_dns());
    let flow_misc = capture.open_flow(FlowKind::AppMisc, "api.periscope.tv");
    let flow_chat = capture.open_flow(FlowKind::Chat, "chatman.periscope.tv");
    let flow_pics =
        config.chat_on.then(|| capture.open_flow(FlowKind::PictureHttp, "s3.amazonaws.com"));
    let bottleneck = config.network.bottleneck_bps();
    let one_way_down =
        server.location().propagation_to(&config.network.location) + config.network.access_rtt / 2;
    let mut link = Link::unbounded(bottleneck, one_way_down);

    // Last-chunk metadata for video messages feeding the player.
    struct Meta {
        media_end_s: f64,
        capture_wall_s: f64,
    }
    // All outbound bytes for the session live in one arena (`send_data`);
    // each `Send` is a range into it. Sorting by time moves small records,
    // not payloads, and the transmit loop borrows MTU-sized windows straight
    // out of the arena — no per-message or per-packet Vec.
    struct Send {
        at: SimTime,
        flow: usize,
        start: usize,
        end: usize,
        meta: Option<Meta>,
    }
    let mut sends: Vec<Send> = Vec::new();
    let mut send_data: Vec<u8> = Vec::with_capacity(
        video_in.iter().map(|f| f.frame.bytes.len() + 32).sum::<usize>()
            + audio_in.iter().map(|&(_, _, size)| size + 32).sum::<usize>()
            + 64 * 1024,
    );

    // App bootstrap: before (and while) the stream starts, the app pulls
    // broadcast metadata, thumbnails and the recent chat backlog. On a fast
    // link this is invisible; under a tc limit it is what makes join times
    // explode (Fig 4a).
    let overhead_bytes = pscp_simnet::dist::lognormal(&mut net_rng, (900_000f64).ln(), 0.7)
        .clamp(150_000.0, 4_000_000.0) as usize;
    let start = send_data.len();
    send_data.resize(start + overhead_bytes, 0);
    sends.push(Send {
        at: join_at + config.network.access_rtt,
        flow: flow_misc,
        start,
        end: send_data.len(),
        meta: None,
    });

    // Handshake: S0+S1+S2 arrive right after connect, then the control
    // burst (SetChunkSize + onStatus).
    let c0c1 = handshake_c0c1(0, 0x7e);
    let s_bytes = handshake_s0s1s2(&c0c1, 0).expect("own C0C1 is valid");
    let start = send_data.len();
    send_data.extend_from_slice(&s_bytes);
    sends.push(Send {
        at: join_at + rtt,
        flow: flow_rtmp,
        start,
        end: send_data.len(),
        meta: None,
    });
    let mut chunker = Chunker::new();
    let start = send_data.len();
    chunker.write(&Message::set_chunk_size(4096), &mut send_data);
    chunker.write(
        &Message::command(encode_command(
            "onStatus",
            0.0,
            &[Amf0::Null, Amf0::object([("code", Amf0::String("NetStream.Play.Start".into()))])],
        )),
        &mut send_data,
    );
    sends.push(Send { at: play_cmd_at, flow: flow_rtmp, start, end: send_data.len(), meta: None });

    // Media messages: backlog burst + live push, interleaved with audio.
    // One pooled scratch buffer holds each FLV tag body while the chunker
    // copies it into the arena; it is reused for every message in the
    // session (and recycled across sessions sharing the pool).
    let pool = BufPool::default();
    let mut scratch = pool.take(8 * 1024);
    let first_pts = video_in.get(start_idx).map(|f| f.frame.pts_ms).unwrap_or(0);
    let frame_dur_s = 1.0 / fps;
    let mut ai =
        audio_in.iter().position(|&(_, pts, _)| pts >= first_pts).unwrap_or(audio_in.len());
    for f in &video_in[start_idx..] {
        let send_at = f.a_in.max(play_cmd_at) + SERVER_FORWARD;
        if send_at >= end {
            break;
        }
        // Interleave any audio due before this frame (chunker state follows
        // the same order the bytes go on the wire).
        while ai < audio_in.len() && audio_in[ai].1 <= f.frame.pts_ms {
            let (a_arr, pts, size) = audio_in[ai];
            ai += 1;
            let a_send = a_arr.max(play_cmd_at) + SERVER_FORWARD;
            if a_send >= end {
                continue;
            }
            scratch.clear();
            AudioTag::encode_into(size, &mut scratch);
            let start = send_data.len();
            chunker.write_ref(
                MessageRef {
                    chunk_stream_id: 4,
                    timestamp: pts.saturating_sub(first_pts),
                    kind: MessageType::Audio,
                    stream_id: 1,
                    payload: &scratch,
                },
                &mut send_data,
            );
            sends.push(Send {
                at: a_send,
                flow: flow_rtmp,
                start,
                end: send_data.len(),
                meta: None,
            });
            trace.count("rtmp", "audio_msgs", 1);
        }
        // The encoder output *is* the coded frame body: prepend the 5-byte
        // FLV tag header and chunk it directly, instead of the old
        // decode → re-wrap → re-encode roundtrip (byte-identical because
        // `FramePayload::encode` is deterministic).
        scratch.clear();
        VideoTag::write_header(
            f.frame.kind == FrameKind::I,
            if f.frame.kind == FrameKind::B { 33 } else { 0 },
            &mut scratch,
        );
        scratch.extend_from_slice(&f.frame.bytes);
        let start = send_data.len();
        chunker.write_ref(
            MessageRef {
                chunk_stream_id: 6,
                timestamp: f.frame.pts_ms.saturating_sub(first_pts),
                kind: MessageType::Video,
                stream_id: 1,
                payload: &scratch,
            },
            &mut send_data,
        );
        sends.push(Send {
            at: send_at,
            flow: flow_rtmp,
            start,
            end: send_data.len(),
            meta: Some(Meta {
                media_end_s: (f.frame.pts_ms - first_pts) as f64 / 1000.0 + frame_dur_s,
                capture_wall_s: broadcaster_clock.read_exact(f.t_cap),
            }),
        });
        trace.count("rtmp", "video_msgs", 1);
    }

    // Chat + pictures (§5.1: JSON flows even with chat off; pictures only
    // with chat on). The chat *pane* — and with it the avatar downloads —
    // only renders once the stream view is up, so picture fetches cannot
    // precede the app bootstrap finishing; the WebSocket connects earlier.
    let bootstrap_done = join_at
        + config.network.access_rtt
        + SimDuration::from_secs_f64(overhead_bytes as f64 * 8.0 / bottleneck);
    for ev in chat_client::events(broadcast, join_at, join_at + config.watch, config, &mut net_rng)
    {
        let (flow, at) = match ev.kind {
            FlowKind::Chat => (flow_chat, ev.at),
            FlowKind::PictureHttp => match flow_pics {
                Some(f) => (f, ev.at.max(bootstrap_done)),
                None => continue,
            },
            _ => continue,
        };
        let start = send_data.len();
        send_data.extend_from_slice(&ev.bytes);
        sends.push(Send { at, flow, start, end: send_data.len(), meta: None });
    }

    // Private broadcasts travel over RTMPS (§3): the RTMP bytes are sealed
    // in TLS records. The app decrypts them fine (arrival times and media
    // progression are unchanged up to the record overhead), but the
    // tcpdump capture holds only ciphertext — the wall the paper hit,
    // which is why it studied public streams.
    if broadcast.private {
        let mut tls = pscp_proto::tls::TlsChannel::new(broadcast.viewer_seed);
        // Re-build the arena with RTMP ranges sealed (in push order, which
        // is the order the plaintext ranges were laid down — the TLS record
        // sequence must match the chunker byte order).
        let mut sealed = Vec::with_capacity(send_data.len() + send_data.len() / 8);
        for send in &mut sends {
            let start = sealed.len();
            if send.flow == flow_rtmp {
                let record = tls.seal(&send_data[send.start..send.end]);
                sealed.extend_from_slice(&record);
            } else {
                sealed.extend_from_slice(&send_data[send.start..send.end]);
            }
            send.start = start;
            send.end = sealed.len();
        }
        send_data = sealed;
    }

    // --- fault injection (DESIGN.md §8): deterministic drop windows for
    // mid-stream disconnects and chat drops, plus per-packet link faults
    // during transmission. Every class is gated on its own rate, so with
    // faults off none of this executes and no variate is drawn. ---
    let faults = &config.faults;
    let fault_seed = faults.seed ^ rngs.seed();
    let dc_windows = if faults.rtmp_disconnect_per_min > 0.0 {
        fault::drop_windows(
            fault_seed,
            "rtmp/disconnect",
            join_at,
            end,
            faults.rtmp_disconnect_per_min,
            RTMP_RECONNECT_GAP,
        )
    } else {
        Vec::new()
    };
    let chat_windows = if faults.chat_drop_per_min > 0.0 {
        fault::drop_windows(
            fault_seed,
            "rtmp/chat",
            join_at,
            join_at + config.watch,
            faults.chat_drop_per_min,
            chat_client::CHAT_RECONNECT_GAP,
        )
    } else {
        Vec::new()
    };
    if !dc_windows.is_empty() {
        trace.count("fault", "rtmp_disconnects", dc_windows.len() as u64);
        trace.count("recovery", "rtmp_reconnects", dc_windows.len() as u64);
    }
    if !chat_windows.is_empty() {
        trace.count("fault", "chat_drops", chat_windows.len() as u64);
        trace.count("recovery", "chat_reconnects", chat_windows.len() as u64);
    }
    let mut link_faults =
        LinkFaults::active(faults).then(|| LinkFaults::new(faults, rngs.seed(), "rtmp/link"));
    // Losses surface as retransmission delay, which can reorder packets
    // relative to the fault-free FIFO; the capture stays per-flow monotone
    // by flooring each arrival at its flow's previous one.
    let mut flow_floor: HashMap<usize, SimTime> = HashMap::new();

    // Merge by send time (stable: equal-time sends keep their push order,
    // which keeps the RTMP chunker byte order intact) and transmit. Per
    // flow, FIFO enqueueing keeps arrival order non-decreasing.
    sends.sort_by_key(|s| s.at);
    let mtu = config.network.mtu.max(256);
    // Pre-size the capture: the arena ranges say exactly how many payload
    // bytes each flow records, and chunking bounds the packet count.
    {
        let mut flow_bytes = vec![0usize; capture.flows.len()];
        let mut flow_pkts = vec![0usize; capture.flows.len()];
        for s in &sends {
            flow_bytes[s.flow] += s.end - s.start;
            flow_pkts[s.flow] += (s.end - s.start).div_ceil(mtu);
        }
        for (i, f) in capture.flows.iter_mut().enumerate() {
            f.reserve(flow_bytes[i], flow_pkts[i]);
        }
    }
    let mut arrivals: Vec<MediaArrival> = Vec::new();
    for send in &sends {
        if (send.flow == flow_rtmp && fault::in_windows(&dc_windows, send.at))
            || (send.flow == flow_chat && fault::in_windows(&chat_windows, send.at))
        {
            continue; // the connection is down; these bytes never leave
        }
        let mut last = None;
        let payload = &send_data[send.start..send.end];
        let mut chunks = payload.chunks(mtu);
        link.enqueue_batch(send.at, payload.chunks(mtu).map(<[u8]>::len), |delivery| {
            let chunk = chunks.next().expect("one chunk per offered size");
            if let Some(arr) = delivery.time() {
                let arr = match link_faults.as_mut() {
                    Some(lf) => {
                        let floor = flow_floor.entry(send.flow).or_insert(SimTime::ZERO);
                        let a = (arr + lf.packet_extra()).max(*floor);
                        *floor = a;
                        a
                    }
                    None => arr,
                };
                let wall = capture_clock.read(arr, &mut clock_rng);
                capture.record(send.flow, arr, wall, chunk);
                last = Some(arr);
            }
        });
        if let (Some(meta), Some(arr)) = (send.meta.as_ref(), last) {
            arrivals.push(MediaArrival {
                at: arr,
                media_end_s: meta.media_end_s,
                capture_wall_s: Some(meta.capture_wall_s),
            });
        }
    }
    if let Some(lf) = link_faults {
        trace.count("fault", "lost_packets", lf.lost);
        trace.count("fault", "latency_spikes", lf.spiked);
        trace.count("recovery", "retransmits", lf.lost);
    }

    let log = run_playback(join_at, config.watch, config.player_rtmp, &arrivals);
    // Join decomposition (paper Fig 11 analogue): TCP/TLS/RTMP handshakes
    // until the play command, then buffer fill until first render. The two
    // child spans tile [join_at, first_frame] exactly, so they sum to the
    // session's join time; the parent is the teleport driver's session
    // root when one is open.
    if let Some(j) = log.join_time {
        let parent = trace.current_span();
        let first_frame = join_at + j;
        let handshake_end = play_cmd_at.min(first_frame);
        trace.span(
            join_at.as_micros(),
            handshake_end.as_micros(),
            "rtmp",
            "rtmp.handshake",
            parent,
        );
        trace.span(
            handshake_end.as_micros(),
            first_frame.as_micros(),
            "rtmp",
            "rtmp.buffering",
            parent,
        );
    }
    log.record_events(join_at, trace);
    crate::session::trace_session_end(trace, (join_at + config.watch).as_micros(), &log, &capture);
    let meta = PlaybackMetaReport {
        n_stalls: log.n_stalls(),
        avg_stall_time_s: log.avg_stall_s(),
        playback_latency_s: log.mean_latency_s(),
    };
    let rendered_fps = rendered_fps(fps, config.device, &log);
    SessionOutcome {
        broadcast_id: broadcast.id,
        protocol: Protocol::Rtmp,
        device: config.device,
        bandwidth_limit_bps: config.network.tc_limit_bps,
        player: log,
        capture,
        meta,
        viewers_at_join: broadcast.viewers_at(join_at),
        rendered_fps,
        server: if broadcast.private {
            format!("rtmps://{}", server.hostname())
        } else {
            server.hostname()
        },
    }
}

/// Achieved render rate: the stream rate capped by the device, discounted
/// by stall overhead.
pub(crate) fn rendered_fps(
    stream_fps: f64,
    device: ViewerDevice,
    log: &crate::player::PlayerLog,
) -> f64 {
    let base = stream_fps.min(device.render_fps_cap());
    let active = log.played_s / log.session_s.max(1e-9);
    base * active.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NetworkSetup;
    use pscp_media::analysis::analyze_rtmp_flow;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::GeoPoint;
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn test_broadcast(seed: u64) -> Broadcast {
        Broadcast {
            id: BroadcastId(seed),
            location: GeoPoint::new(41.01, 28.98), // Istanbul
            city: "Istanbul",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(1800),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 15.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: seed,
            target_bitrate_bps: 300_000.0,
        }
    }

    fn run_session(seed: u64, config: SessionConfig) -> SessionOutcome {
        let b = test_broadcast(seed);
        let rngs = RngFactory::new(seed).child("session");
        run(&b, SimTime::from_secs(400), &config, &rngs)
    }

    #[test]
    fn unlimited_session_starts_fast_and_mostly_smooth() {
        let mut clean = 0;
        for seed in 0..10 {
            let out = run_session(seed, SessionConfig::default());
            let join = out.join_time_s().expect("playback starts");
            assert!(join < 8.0, "join={join}");
            if out.stall_ratio() < 0.01 {
                clean += 1;
            }
        }
        // Most unthrottled sessions play smoothly (Fig 3a).
        assert!(clean >= 6, "clean={clean}/10");
    }

    #[test]
    fn playback_latency_is_a_few_seconds() {
        let out = run_session(3, SessionConfig::default());
        let lat = out.meta.playback_latency_s.unwrap();
        assert!((1.0..8.0).contains(&lat), "latency={lat}");
    }

    #[test]
    fn tight_bandwidth_stalls() {
        let config = SessionConfig {
            network: NetworkSetup::finland_limited(0.2), // below video bitrate
            ..Default::default()
        };
        let out = run_session(4, config);
        assert!(
            out.stall_ratio() > 0.2 || out.join_time_s().is_none(),
            "ratio={} join={:?}",
            out.stall_ratio(),
            out.join_time_s()
        );
    }

    #[test]
    fn capture_analyzable_end_to_end() {
        let out = run_session(5, SessionConfig::default());
        let flow = out.capture.flow_of_kind(FlowKind::Rtmp).unwrap();
        // Strip the handshake like wireshark does before dissecting.
        let mut stripped = pscp_media::capture::Flow::new(FlowKind::Rtmp, flow.server.clone());
        let mut skipped = 0usize;
        let skip = 1 + 2 * 1536;
        for p in flow.packets() {
            if skipped >= skip {
                stripped.record(p.at, p.wall_ts, p.payload);
            } else if skipped + p.payload.len() > skip {
                let cut = skip - skipped;
                stripped.record(p.at, p.wall_ts, &p.payload[cut..]);
                skipped = skip;
            } else {
                skipped += p.payload.len();
            }
        }
        let report = analyze_rtmp_flow(&stripped).unwrap();
        assert!(report.n_frames > 1000, "frames={}", report.n_frames);
        assert!((100_000.0..600_000.0).contains(&report.bitrate_bps));
        // Delivery latency from NTP stamps: sub-second for RTMP (Fig 5).
        let mean = report.mean_delivery_latency_s().unwrap();
        assert!(mean < 1.5, "delivery latency {mean}");
    }

    #[test]
    fn meta_report_has_rtmp_fields() {
        let out = run_session(6, SessionConfig::default());
        assert!(out.meta.playback_latency_s.is_some());
        assert_eq!(out.protocol, Protocol::Rtmp);
        assert!(out.server.starts_with("vidman-eu-"), "server={}", out.server);
    }

    #[test]
    fn chat_on_adds_picture_traffic() {
        let base = run_session(7, SessionConfig { chat_on: false, ..Default::default() });
        let chatty = run_session(7, SessionConfig::default());
        let pic_bytes = |o: &SessionOutcome| {
            o.capture
                .flows_of_kind(FlowKind::PictureHttp)
                .iter()
                .map(|f| f.byte_count())
                .sum::<usize>()
        };
        assert_eq!(pic_bytes(&base), 0);
        assert!(pic_bytes(&chatty) > 50_000, "pic bytes={}", pic_bytes(&chatty));
        // Chat JSON flows in both cases.
        assert!(base.capture.flow_of_kind(FlowKind::Chat).is_some());
    }

    #[test]
    fn determinism() {
        let a = run_session(8, SessionConfig::default());
        let b = run_session(8, SessionConfig::default());
        assert_eq!(a.player.stalls, b.player.stalls);
        assert_eq!(a.capture.total_bytes(), b.capture.total_bytes());
    }

    #[test]
    fn private_broadcast_capture_is_opaque() {
        let mut b = test_broadcast(31);
        b.private = true;
        let rngs = RngFactory::new(31).child("session");
        let out = run(&b, SimTime::from_secs(400), &SessionConfig::default(), &rngs);
        assert!(out.server.starts_with("rtmps://"), "server={}", out.server);
        // Playback works: the app has the keys.
        assert!(out.join_time_s().is_some());
        // But the capture cannot be dissected: it is TLS records, not RTMP.
        let flow = out.capture.flow_of_kind(FlowKind::Rtmp).unwrap();
        let report = pscp_media::analysis::analyze_rtmp_flow(flow);
        assert!(report.is_err(), "ciphertext must not parse as RTMP");
        // It is, however, decryptable with the session key, record by
        // record (sizes + timing preserved).
        let mut tls = pscp_proto::tls::TlsChannel::new(b.viewer_seed);
        let stream = flow.byte_stream();
        let plain = tls.open_all(stream).unwrap();
        assert!(plain.len() < stream.len());
    }

    #[test]
    fn s3_renders_slower_than_s4() {
        let s3 =
            run_session(9, SessionConfig { device: ViewerDevice::GalaxyS3, ..Default::default() });
        let s4 = run_session(9, SessionConfig::default());
        assert!(s3.rendered_fps < s4.rendered_fps);
    }
}
