//! Session types shared by the RTMP and HLS paths.

use crate::device::{NetworkSetup, ViewerDevice};
use crate::player::{PlayerConfig, PlayerLog};
use crate::uplink::UplinkConfig;
use pscp_media::capture::Capture;
use pscp_service::select::Protocol;
use pscp_simnet::SimDuration;
use pscp_workload::broadcast::BroadcastId;

/// Configuration of one automated viewing session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Viewing phone.
    pub device: ViewerDevice,
    /// Network path (tether + optional tc limit).
    pub network: NetworkSetup,
    /// Watch duration — exactly 60 s in the paper's automation.
    pub watch: SimDuration,
    /// Whether the chat pane is enabled (profile-picture traffic). The app
    /// shows chat by default while viewing, and §5.1 blames exactly that
    /// side traffic for the 2 Mbps QoE boundary — so the default is `true`;
    /// the energy experiments toggle it explicitly.
    pub chat_on: bool,
    /// Whether the app caches profile pictures (it did not; toggle exists
    /// for the ablation the paper suggests in §5.3).
    pub picture_cache: bool,
    /// Broadcaster uplink model.
    pub uplink: UplinkConfig,
    /// RTMP player thresholds.
    pub player_rtmp: PlayerConfig,
    /// HLS player thresholds.
    pub player_hls: PlayerConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device: ViewerDevice::GalaxyS4,
            network: NetworkSetup::finland_unlimited(),
            watch: SimDuration::from_secs(60),
            chat_on: true,
            picture_cache: false,
            uplink: UplinkConfig::default(),
            player_rtmp: PlayerConfig::rtmp(),
            player_hls: PlayerConfig::hls(),
        }
    }
}

/// The playbackMeta upload the app sends at session end (§2): full stats
/// for RTMP, stall count only for HLS.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackMetaReport {
    /// Stall events.
    pub n_stalls: u32,
    /// Mean stall duration — RTMP only.
    pub avg_stall_time_s: Option<f64>,
    /// Playback latency — RTMP only.
    pub playback_latency_s: Option<f64>,
}

/// Everything one viewing session produces.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Watched broadcast.
    pub broadcast_id: BroadcastId,
    /// Delivery protocol used.
    pub protocol: Protocol,
    /// Viewing phone.
    pub device: ViewerDevice,
    /// `tc` limit in effect, bits/second (None = unlimited).
    pub bandwidth_limit_bps: Option<f64>,
    /// Player QoE log.
    pub player: PlayerLog,
    /// tcpdump-style capture of all downstream traffic.
    pub capture: Capture,
    /// What the app reported to the server at session end.
    pub meta: PlaybackMetaReport,
    /// Viewer count of the broadcast when the session started.
    pub viewers_at_join: u32,
    /// Frame rate actually rendered (stream fps capped by the device).
    pub rendered_fps: f64,
    /// Label of the serving endpoint (ingest hostname or CDN POP).
    pub server: String,
}

impl SessionOutcome {
    /// Join time in seconds, if playback started.
    pub fn join_time_s(&self) -> Option<f64> {
        self.player.join_time.map(|d| d.as_secs_f64())
    }

    /// Stall ratio (see [`PlayerLog::stall_ratio`]).
    pub fn stall_ratio(&self) -> f64 {
        self.player.stall_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_setup() {
        let c = SessionConfig::default();
        assert_eq!(c.watch, SimDuration::from_secs(60));
        assert!(c.chat_on, "the app shows chat by default while viewing");
        assert!(!c.picture_cache);
        assert!(c.network.tc_limit_bps.is_none());
        assert!(c.player_hls.initial_buffer_s > c.player_rtmp.initial_buffer_s);
    }
}
