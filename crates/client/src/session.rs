//! Session types shared by the RTMP and HLS paths.

use crate::device::{NetworkSetup, ViewerDevice};
use crate::player::{PlayerConfig, PlayerLog};
use crate::uplink::UplinkConfig;
use pscp_media::capture::{Capture, FlowKind};
use pscp_obs::{Field, Trace, KBPS_BUCKETS};
use pscp_service::select::Protocol;
use pscp_simnet::SimDuration;
use pscp_workload::broadcast::BroadcastId;

/// Configuration of one automated viewing session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Viewing phone.
    pub device: ViewerDevice,
    /// Network path (tether + optional tc limit).
    pub network: NetworkSetup,
    /// Watch duration — exactly 60 s in the paper's automation.
    pub watch: SimDuration,
    /// Whether the chat pane is enabled (profile-picture traffic). The app
    /// shows chat by default while viewing, and §5.1 blames exactly that
    /// side traffic for the 2 Mbps QoE boundary — so the default is `true`;
    /// the energy experiments toggle it explicitly.
    pub chat_on: bool,
    /// Whether the app caches profile pictures (it did not; toggle exists
    /// for the ablation the paper suggests in §5.3).
    pub picture_cache: bool,
    /// Broadcaster uplink model.
    pub uplink: UplinkConfig,
    /// RTMP player thresholds.
    pub player_rtmp: PlayerConfig,
    /// HLS player thresholds.
    pub player_hls: PlayerConfig,
    /// SRT player thresholds (used only when `transport` forces SRT).
    pub player_srt: PlayerConfig,
    /// Forces the delivery transport instead of letting the service's
    /// viewer-count policy choose. `None` (the default) keeps the paper's
    /// RTMP/HLS selection and leaves the SRT subsystem completely untouched,
    /// so default runs stay byte-identical to a build without it.
    pub transport: Option<Protocol>,
    /// Fault injection (DESIGN.md §8). Default all-off: the session draws
    /// no fault variate and its capture is byte-identical to a fault-free
    /// build.
    pub faults: pscp_simnet::fault::FaultConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device: ViewerDevice::GalaxyS4,
            network: NetworkSetup::finland_unlimited(),
            watch: SimDuration::from_secs(60),
            chat_on: true,
            picture_cache: false,
            uplink: UplinkConfig::default(),
            player_rtmp: PlayerConfig::rtmp(),
            player_hls: PlayerConfig::hls(),
            player_srt: PlayerConfig::srt(),
            transport: None,
            faults: pscp_simnet::fault::FaultConfig::default(),
        }
    }
}

/// The playbackMeta upload the app sends at session end (§2): full stats
/// for RTMP, stall count only for HLS.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackMetaReport {
    /// Stall events.
    pub n_stalls: u32,
    /// Mean stall duration — RTMP only.
    pub avg_stall_time_s: Option<f64>,
    /// Playback latency — RTMP only.
    pub playback_latency_s: Option<f64>,
}

/// Everything one viewing session produces.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Watched broadcast.
    pub broadcast_id: BroadcastId,
    /// Delivery protocol used.
    pub protocol: Protocol,
    /// Viewing phone.
    pub device: ViewerDevice,
    /// `tc` limit in effect, bits/second (None = unlimited).
    pub bandwidth_limit_bps: Option<f64>,
    /// Player QoE log.
    pub player: PlayerLog,
    /// tcpdump-style capture of all downstream traffic.
    pub capture: Capture,
    /// What the app reported to the server at session end.
    pub meta: PlaybackMetaReport,
    /// Viewer count of the broadcast when the session started.
    pub viewers_at_join: u32,
    /// Frame rate actually rendered (stream fps capped by the device).
    pub rendered_fps: f64,
    /// Label of the serving endpoint (ingest hostname or CDN POP).
    pub server: String,
}

impl SessionOutcome {
    /// Join time in seconds, if playback started.
    pub fn join_time_s(&self) -> Option<f64> {
        self.player.join_time.map(|d| d.as_secs_f64())
    }

    /// Stall ratio (see [`PlayerLog::stall_ratio`]).
    pub fn stall_ratio(&self) -> f64 {
        self.player.stall_ratio()
    }
}

/// Records the session-start instrumentation shared by the RTMP and HLS
/// paths (subsystems `session` and `shaper`).
pub(crate) fn trace_session_start(
    trace: &mut Trace,
    protocol: &'static str,
    broadcast_id: BroadcastId,
    viewers: u32,
    join_at_us: u64,
    config: &SessionConfig,
) {
    trace.count("session", "started", 1);
    trace.count("session", protocol, 1);
    if let Some(limit) = config.network.tc_limit_bps {
        trace.count("shaper", "limited_sessions", 1);
        trace.observe("shaper", "limit_kbps", &KBPS_BUCKETS, (limit / 1000.0) as u64);
    }
    if trace.is_enabled() {
        let mut fields = vec![
            ("proto", Field::S(protocol.to_string())),
            ("broadcast", Field::U(broadcast_id.0)),
            ("viewers", Field::U(viewers as u64)),
        ];
        if let Some(limit) = config.network.tc_limit_bps {
            fields.push(("limit_kbps", Field::U((limit / 1000.0) as u64)));
        }
        trace.event(join_at_us, "session", "session.start", fields);
    }
}

/// Records the session-end instrumentation shared by both paths: a
/// `session.end` event plus capture byte counters (`chat`, `net`).
pub(crate) fn trace_session_end(
    trace: &mut Trace,
    end_us: u64,
    log: &PlayerLog,
    capture: &Capture,
) {
    if !trace.is_enabled() {
        return;
    }
    let kind_bytes = |kind: FlowKind| {
        capture.flows_of_kind(kind).iter().map(|f| f.byte_count()).sum::<usize>() as u64
    };
    trace.count("chat", "bytes", kind_bytes(FlowKind::Chat));
    trace.count("chat", "picture_bytes", kind_bytes(FlowKind::PictureHttp));
    trace.count("net", "capture_bytes", capture.total_bytes() as u64);
    trace.event(
        end_us,
        "session",
        "session.end",
        vec![("played_s", Field::F(log.played_s)), ("stalls", Field::U(log.n_stalls() as u64))],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_setup() {
        let c = SessionConfig::default();
        assert_eq!(c.watch, SimDuration::from_secs(60));
        assert!(c.chat_on, "the app shows chat by default while viewing");
        assert!(!c.picture_cache);
        assert!(c.network.tc_limit_bps.is_none());
        assert!(c.player_hls.initial_buffer_s > c.player_rtmp.initial_buffer_s);
    }
}
