//! End-to-end SRT viewing session — the what-if transport study
//! (DESIGN.md §12).
//!
//! The paper's measured transports are both TCP: RTMP turns packet loss
//! into head-of-line *delay* (a fixed retransmission penalty per lost
//! packet), HLS hides loss behind segment-sized buffers. This module models
//! the third design point — an SRT-style unreliable datagram transport
//! from a gateway on the ingest host, with NAK/ARQ loss recovery bounded
//! by a receiver latency window: a loss is recovered in about one RTT if
//! that still fits the window, and otherwise *dropped and concealed*, so
//! late media never stalls the player the way a TCP retransmit storm does.
//!
//! The pipeline mirrors [`rtmp_session`](crate::rtmp_session): encoder and
//! glitchy uplink feed the ingest host, the gateway replays from the latest
//! keyframe and pushes live, and the same player model scores QoE — the
//! SRT player even runs RTMP buffer thresholds
//! ([`PlayerConfig::srt`](crate::player::PlayerConfig::srt)), so the
//! three-way chaos sweep compares transports, not tuning.
//!
//! Determinism: every random choice comes from labelled streams. The
//! broadcaster-side streams deliberately reuse the *RTMP* labels
//! (`rtmp/encoder`, `rtmp/net`, `rtmp/clocks`) as common random numbers:
//! an SRT session of seed `s` sees the exact encoder, uplink-glitch and
//! chat draws its RTMP counterpart would, so a transport comparison is
//! paired — it measures the transport, not uplink luck. Transport-specific
//! draws stay in their own namespace: `srt/link` (the shared
//! Gilbert–Elliott chain discipline) for datagram fates, `srt/handshake`
//! and `srt/retx` for control-path and retransmission fates — so a session
//! is a pure function of `(seed, fault seed)` and invariant under
//! `PSCP_THREADS`. Retransmission fates in particular are a pure hash of
//! `(seq, attempt)`, never a shared draw sequence, so scaling the loss
//! config cannot shift which retransmits fail.

use crate::chat_client;
use crate::player::{run_playback, MediaArrival};
use crate::retry::RetryPolicy;
use crate::session::{PlaybackMetaReport, SessionConfig, SessionOutcome};
use crate::uplink::Uplink;
use pscp_media::audio::AudioEncoder;
use pscp_media::bitstream::FrameKind;
use pscp_media::capture::{Capture, FlowKind};
use pscp_media::content::ContentProcess;
use pscp_media::encoder::{Encoder, EncoderConfig};
use pscp_proto::srt::{
    self, seq_add, seq_distance, Caller, Listener, Packet, RecvEvent, RecvTracker, RetxEntry,
    RetxQueue,
};
use pscp_service::ingest::assign_server;
use pscp_service::select::Protocol;
use pscp_simnet::fault::{FaultRng, GilbertElliott, LinkFaults, LossConfig};
use pscp_simnet::{DatagramLink, RngFactory, SimDuration, SimTime, WallClock};
use pscp_workload::broadcast::Broadcast;
use std::collections::HashMap;

/// Encode-side latency on the broadcaster phone (capture → packet out).
const ENCODE_LATENCY: SimDuration = SimDuration::from_millis(120);
/// Small per-message gateway forwarding delay.
const SERVER_FORWARD: SimDuration = SimDuration::from_millis(5);
/// How much already-uploaded media the gateway replays from (at most one
/// GOP back to the latest keyframe, so playback can start immediately).
const WARMUP: SimDuration = SimDuration::from_secs(6);
/// Sender retransmit-queue occupancy bound, wire bytes. At ~300 kbps this
/// holds several seconds of media — comfortably more than the latency
/// window, so evictions only happen under pathological loss.
const RETX_QUEUE_CAP: usize = 768 * 1024;
/// Retransmission attempts per lost packet (first NAK plus one re-NAK);
/// each failed attempt costs another RTT against the latency window.
const MAX_RETX_ATTEMPTS: u32 = 2;

/// Runs one SRT session: the viewer joins `broadcast` at absolute time
/// `join_at` and watches for `config.watch`.
pub fn run(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
) -> SessionOutcome {
    run_traced(broadcast, join_at, config, rngs, &mut pscp_obs::Trace::disabled())
}

/// Stationary loss probability of a Gilbert–Elliott config — the marginal
/// rate a single retransmitted packet faces on the same path.
fn stationary_loss(cfg: &LossConfig) -> f64 {
    let denom = cfg.p_good_to_bad + cfg.p_bad_to_good;
    let pi_bad = if denom > 0.0 { cfg.p_good_to_bad / denom } else { 0.0 };
    pi_bad * cfg.p_loss_bad + (1.0 - pi_bad) * cfg.p_loss_good
}

/// [`run`] plus per-session instrumentation into `trace` (no-ops when the
/// trace is disabled; the simulation itself is identical either way).
pub fn run_traced(
    broadcast: &Broadcast,
    join_at: SimTime,
    config: &SessionConfig,
    rngs: &RngFactory,
    trace: &mut pscp_obs::Trace,
) -> SessionOutcome {
    // Common random numbers with the RTMP path (see module docs): the
    // broadcaster side replays the exact draws an RTMP session of this seed
    // makes, so the transports differ only in transport.
    let mut enc_rng = rngs.stream("rtmp/encoder");
    let mut net_rng = rngs.stream("rtmp/net");
    let mut clock_rng = rngs.stream("rtmp/clocks");

    let broadcaster_clock = WallClock::ntp_synced(&mut clock_rng);
    let capture_clock = WallClock::ntp_synced(&mut clock_rng);

    let server = assign_server(&broadcast.location, broadcast.id.0);
    let prop_up = broadcast.location.propagation_to(&server.location());
    let rtt = config.network.rtt_to(&server.location());
    let faults = &config.faults;
    let fault_seed = faults.seed ^ rngs.seed();
    crate::session::trace_session_start(
        trace,
        "srt",
        broadcast.id,
        broadcast.viewers_at(join_at),
        join_at.as_micros(),
        config,
    );

    // --- caller/listener handshake over the lossy control path ---
    //
    // Each attempt is four packets on the wire (induction up, cookie down,
    // conclusion up, agreement down); any loss among them times the attempt
    // out and the reconnect policy backs off before the next one. Exactly
    // four fate variates are consumed per attempt, so a scaled loss config
    // fails a superset of attempts. With loss off, no chain exists, no
    // variate is drawn, and the first attempt succeeds in two RTTs.
    let policy = RetryPolicy::reconnect();
    let mut hs_ge = faults.loss.is_active().then(|| {
        GilbertElliott::new(faults.loss, FaultRng::from_label(fault_seed, "srt/handshake"))
    });
    let mut hs_backoff_rng = FaultRng::from_label(fault_seed, "srt/hs-backoff");
    let mut hs_start = join_at;
    let mut attempt: u32 = 1;
    let connected = loop {
        let attempt_lost = match hs_ge.as_mut() {
            Some(ge) => {
                let mut lost = false;
                for _ in 0..4 {
                    lost |= ge.next_lost();
                }
                lost
            }
            None => false,
        };
        if !attempt_lost {
            break true;
        }
        trace.count("fault", "srt_handshake_losses", 1);
        if attempt >= policy.max_attempts {
            break false;
        }
        trace.count("srt", "handshake_retries", 1);
        hs_start += policy.backoff(attempt - 1, &mut hs_backoff_rng);
        attempt += 1;
    };
    if !connected {
        // The gateway is unreachable at the datagram layer; the app falls
        // back to plain RTMP against the same ingest host, exactly like the
        // teleport driver's outage failover — the wait so far is charged to
        // the join clock.
        trace.count("recovery", "srt_fallbacks", 1);
        let parent = trace.current_span();
        trace.span(
            join_at.as_micros(),
            hs_start.as_micros(),
            "recovery",
            "recovery.reconnect",
            parent,
        );
        trace.span(
            hs_start.as_micros(),
            hs_start.as_micros(),
            "recovery",
            "recovery.failover",
            parent,
        );
        let waited = hs_start.saturating_since(join_at);
        let mut outcome = crate::rtmp_session::run_traced(broadcast, hs_start, config, rngs, trace);
        if let Some(j) = outcome.player.join_time {
            outcome.player.join_time = Some(j + waited);
        }
        return outcome;
    }
    // Drive the real state machines for the winning attempt: the cookie
    // and agreement are the downstream handshake bytes the capture holds.
    let caller_id = (rngs.seed() as u32) | 1;
    // Drawn from the full sequence space, so sessions routinely start near
    // the 2^32 boundary and the wrap arithmetic is exercised for real.
    let initial_seq = (rngs.seed() >> 16) as u32;
    let latency_ms = (srt::DEFAULT_LATENCY_US / 1000) as u32;
    let mut caller = Caller::new(caller_id, initial_seq, latency_ms);
    let listener = Listener::new(broadcast.id.0 ^ 0x5eed_cafe);
    let induction = caller.next_packet().expect("caller starts inducing");
    let (cookie, _) = listener.on_packet(&induction).expect("own induction is valid");
    let cookie = cookie.expect("induction earns a cookie");
    let conclusion =
        caller.on_packet(&cookie).expect("listener cookie is valid").expect("conclusion follows");
    let (agreement, accepted) = listener.on_packet(&conclusion).expect("own conclusion is valid");
    let agreement = agreement.expect("conclusion earns an agreement");
    caller.on_packet(&agreement).expect("agreement is valid");
    debug_assert!(caller.connected());
    let (initial_seq, latency_ms) = accepted.expect("listener accepted the conclusion");
    let latency = SimDuration::from_millis(latency_ms as u64);
    let data_start = hs_start + rtt + rtt; // two round trips

    // --- broadcaster side: encode + upload (same shape as RTMP) ---
    let enc_cfg = EncoderConfig {
        fps: broadcast.device.fps(),
        gop: broadcast.device.gop(),
        target_bitrate_bps: broadcast.target_bitrate_bps,
        ..Default::default()
    };
    let fps = enc_cfg.fps;
    let content = ContentProcess::new(broadcast.content, &mut enc_rng);
    let mut encoder = Encoder::new(enc_cfg, content);
    let mut audio = AudioEncoder::new(broadcast.audio);

    let sim_start = join_at - WARMUP;
    let end = join_at + config.watch + SimDuration::from_secs(2);
    let mut uplink = Uplink::draw(&config.uplink, sim_start, end, &mut enc_rng);

    struct IngestFrame {
        t_cap: SimTime,
        a_in: SimTime,
        frame: pscp_media::encoder::EncodedFrame,
    }
    let mut video_in: Vec<IngestFrame> = Vec::new();
    let mut audio_in: Vec<(SimTime, u32, usize)> = Vec::new(); // (arrival, pts, size)
    let total_frames = (end.saturating_since(sim_start).as_secs_f64() * fps) as u64;
    let mut next_audio_pts = 0.0;
    for i in 0..total_frames {
        let t_cap = sim_start + SimDuration::from_secs_f64(i as f64 / fps);
        let wall = broadcaster_clock.read(t_cap, &mut clock_rng);
        if let Some(frame) = encoder.next_frame(wall, &mut enc_rng) {
            let sent = uplink.upload(t_cap + ENCODE_LATENCY, frame.bytes.len());
            video_in.push(IngestFrame { t_cap, a_in: sent + prop_up, frame });
        }
        while next_audio_pts <= i as f64 * 1000.0 / fps {
            let af = audio.next_frame(&mut enc_rng);
            let t_a = sim_start + SimDuration::from_secs_f64(next_audio_pts / 1000.0);
            let sent = uplink.upload(t_a + ENCODE_LATENCY, af.size);
            audio_in.push((sent + prop_up, af.pts_ms, af.size));
            next_audio_pts += pscp_media::audio::frame_duration_ms();
        }
    }

    // --- gateway: replay from the latest keyframe ingested when data
    // starts flowing ---
    let cached: Vec<usize> =
        video_in.iter().enumerate().filter(|(_, f)| f.a_in <= data_start).map(|(i, _)| i).collect();
    let start_idx = cached
        .iter()
        .rev()
        .find(|&&i| video_in[i].frame.kind == FrameKind::I)
        .copied()
        .unwrap_or_else(|| cached.last().copied().unwrap_or(0));

    // --- wire: media rides the unreliable datagram path from the gateway;
    // bootstrap, chat and pictures stay on the app's TCP connections (their
    // own queue — the gateway path is provisioned separately; app-path
    // losses surface as delay, exactly like the RTMP session). ---
    let mut capture = Capture::new();
    let flow_srt = capture.open_flow(FlowKind::Srt, format!("srt-{}", server.hostname()));
    let flow_misc = capture.open_flow(FlowKind::AppMisc, "api.periscope.tv");
    let flow_chat = capture.open_flow(FlowKind::Chat, "chatman.periscope.tv");
    let flow_pics =
        config.chat_on.then(|| capture.open_flow(FlowKind::PictureHttp, "s3.amazonaws.com"));
    let bottleneck = config.network.bottleneck_bps();
    let one_way_down =
        server.location().propagation_to(&config.network.location) + config.network.access_rtt / 2;
    let mut dglink = DatagramLink::unbounded(bottleneck, one_way_down).with_faults(
        faults,
        rngs.seed(),
        "srt/link",
    );
    let mut app_faults =
        LinkFaults::active(faults).then(|| LinkFaults::new(faults, rngs.seed(), "srt/app"));
    let mut flow_floor: HashMap<usize, SimTime> = HashMap::new();

    // Per-(seq, attempt) retransmission fate: a pure hash against the
    // chain's stationary loss rate, so fates are independent of how many
    // NAKs other loss scales produced.
    let p_retx_loss = stationary_loss(&faults.loss);
    let retx_base = FaultRng::from_label(fault_seed, "srt/retx").next_u64();
    let retx_lost = |seq: u32, att: u32| -> bool {
        if p_retx_loss <= 0.0 {
            return false;
        }
        let key = ((seq as u64) << 8) | att as u64;
        FaultRng::new(retx_base ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15)).chance(p_retx_loss)
    };

    // --- app-side TCP flows (bootstrap + chat + pictures), same model as
    // the RTMP session ---
    struct Send {
        at: SimTime,
        flow: usize,
        start: usize,
        end: usize,
    }
    let mut sends: Vec<Send> = Vec::new();
    let mut send_data: Vec<u8> = Vec::with_capacity(64 * 1024);
    let overhead_bytes = pscp_simnet::dist::lognormal(&mut net_rng, (900_000f64).ln(), 0.7)
        .clamp(150_000.0, 4_000_000.0) as usize;
    let start = send_data.len();
    send_data.resize(start + overhead_bytes, 0);
    sends.push(Send {
        at: join_at + config.network.access_rtt,
        flow: flow_misc,
        start,
        end: send_data.len(),
    });
    let bootstrap_done = join_at
        + config.network.access_rtt
        + SimDuration::from_secs_f64(overhead_bytes as f64 * 8.0 / bottleneck);
    for ev in chat_client::events(broadcast, join_at, join_at + config.watch, config, &mut net_rng)
    {
        let (flow, at) = match ev.kind {
            FlowKind::Chat => (flow_chat, ev.at),
            FlowKind::PictureHttp => match flow_pics {
                Some(f) => (f, ev.at.max(bootstrap_done)),
                None => continue,
            },
            _ => continue,
        };
        let start = send_data.len();
        send_data.extend_from_slice(&ev.bytes);
        sends.push(Send { at, flow, start, end: send_data.len() });
    }
    sends.sort_by_key(|s| s.at);
    let mtu = config.network.mtu.max(256);

    // --- gateway message schedule: video frames interleaved with audio in
    // PTS order, exactly like the RTMP path. Message bodies live in one
    // arena (audio bodies are opaque zero bytes of the right size). ---
    struct Meta {
        media_end_s: f64,
        capture_wall_s: f64,
    }
    struct Msg {
        at: SimTime,
        start: usize,
        end: usize,
        meta: Option<Meta>,
    }
    let mut bodies: Vec<u8> = Vec::with_capacity(
        video_in.iter().map(|f| f.frame.bytes.len()).sum::<usize>()
            + audio_in.iter().map(|&(_, _, size)| size).sum::<usize>(),
    );
    let mut msg_list: Vec<Msg> = Vec::new();
    let first_pts = video_in.get(start_idx).map(|f| f.frame.pts_ms).unwrap_or(0);
    let frame_dur_s = 1.0 / fps;
    let mut ai =
        audio_in.iter().position(|&(_, pts, _)| pts >= first_pts).unwrap_or(audio_in.len());
    for f in &video_in[start_idx..] {
        let send_at = f.a_in.max(data_start) + SERVER_FORWARD;
        if send_at >= end {
            break;
        }
        while ai < audio_in.len() && audio_in[ai].1 <= f.frame.pts_ms {
            let (a_arr, _pts, size) = audio_in[ai];
            ai += 1;
            let a_send = a_arr.max(data_start) + SERVER_FORWARD;
            if a_send >= end {
                continue;
            }
            let start = bodies.len();
            bodies.resize(start + size, 0);
            msg_list.push(Msg { at: a_send, start, end: bodies.len(), meta: None });
        }
        let start = bodies.len();
        bodies.extend_from_slice(&f.frame.bytes);
        msg_list.push(Msg {
            at: send_at,
            start,
            end: bodies.len(),
            meta: Some(Meta {
                media_end_s: (f.frame.pts_ms - first_pts) as f64 / 1000.0 + frame_dur_s,
                capture_wall_s: broadcaster_clock.read_exact(f.t_cap),
            }),
        });
    }

    // --- transmit + NAK/ARQ ---
    //
    // Everything downstream shares one serializer: app TCP segments and
    // media datagrams interleave on the bottleneck in send order, exactly
    // like the RTMP session's single link — the transport comparison must
    // not hand SRT a second pipe for free. Media packets are processed in
    // send order; a loss is a hole the next arrival exposes as a gap, at
    // which point the receiver NAKs the missing ranges and each lost
    // packet either comes back at detect + RTT (bounded by the latency
    // window) or is abandoned — dropped and concealed, never stalled on.
    // Wire bytes live in one arena; media capture records are buffered as
    // ranges and sorted by arrival before recording, because recovered
    // datagrams genuinely arrive out of order (no TCP below to serialize
    // behind).
    struct MsgState {
        remaining: u32,
        latest: SimTime,
        dropped: bool,
    }
    struct PktInfo {
        msg: u32,
        start: usize,
        end: usize,
    }
    enum WireItem {
        App(usize),
        Media(usize),
    }
    let payload_mtu = mtu.saturating_sub(srt::DATA_HEADER_BYTES).max(128);
    let mut wire: Vec<u8> = Vec::with_capacity(
        bodies.len() + (bodies.len() / payload_mtu + 2) * srt::DATA_HEADER_BYTES,
    );
    let mut records: Vec<(SimTime, usize, usize)> = Vec::new();
    let mut states: Vec<MsgState> = msg_list
        .iter()
        .map(|m| MsgState {
            remaining: (m.end - m.start).div_ceil(payload_mtu).max(1) as u32,
            latest: SimTime::ZERO,
            dropped: false,
        })
        .collect();
    let mut pkts: Vec<PktInfo> = Vec::new();
    let mut tracker = RecvTracker::new(initial_seq);
    let mut retxq = RetxQueue::new(RETX_QUEUE_CAP);
    // The merged wire schedule. The stable sort keeps push order on ties
    // (app segments first), and processing media strictly in time order is
    // what gives sequence numbers their on-the-wire meaning.
    let mut schedule: Vec<(SimTime, WireItem)> = sends
        .iter()
        .enumerate()
        .map(|(i, s)| (s.at, WireItem::App(i)))
        .chain(msg_list.iter().enumerate().map(|(i, m)| (m.at, WireItem::Media(i))))
        .collect();
    schedule.sort_by_key(|&(at, _)| at);

    // Handshake capture: the two downstream control packets.
    for (pkt, at) in
        [(Packet::Control(cookie), hs_start + rtt), (Packet::Control(agreement), data_start)]
    {
        let start = wire.len();
        srt::encode_packet(&pkt, &mut wire);
        records.push((at, start, wire.len()));
    }

    let mut n_data_packets: u64 = 0;
    let mut n_retransmits: u64 = 0;
    let mut n_late_drops: u64 = 0;
    let mut n_evicted: u64 = 0;
    for (_, item) in &schedule {
        let msg_idx = match item {
            WireItem::App(si) => {
                // A reliable app burst: chunks share the serializer with
                // the media datagrams; losses surface as delay under the
                // per-flow monotone floor, exactly like the RTMP session.
                let send = &sends[*si];
                let payload = &send_data[send.start..send.end];
                for chunk in payload.chunks(mtu) {
                    let Some(arr) = dglink.send_reliable(send.at, chunk.len()).time() else {
                        continue;
                    };
                    let arr = match app_faults.as_mut() {
                        Some(lf) => {
                            let floor = flow_floor.entry(send.flow).or_insert(SimTime::ZERO);
                            let a = (arr + lf.packet_extra()).max(*floor);
                            *floor = a;
                            a
                        }
                        None => arr,
                    };
                    let wall = capture_clock.read(arr, &mut clock_rng);
                    capture.record(send.flow, arr, wall, chunk);
                }
                continue;
            }
            WireItem::Media(mi) => *mi,
        };
        let m = &msg_list[msg_idx];
        let body = &bodies[m.start..m.end];
        let n_chunks = body.len().div_ceil(payload_mtu).max(1) as u32;
        for ci in 0..n_chunks as usize {
            let chunk = &body[ci * payload_mtu..body.len().min((ci + 1) * payload_mtu)];
            let seq = seq_add(initial_seq, pkts.len() as u32);
            // Data header + payload straight into the arena — the same
            // bytes `encode_packet` produces for an owned `DataPacket`,
            // without the per-packet payload Vec.
            let start = wire.len();
            wire.push(0); // TYPE_DATA
            wire.extend_from_slice(&seq.to_be_bytes());
            wire.extend_from_slice(&(m.at.as_micros() as u32).to_be_bytes());
            wire.extend_from_slice(&(msg_idx as u32).to_be_bytes());
            wire.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
            wire.extend_from_slice(chunk);
            let pkt_end = wire.len();
            pkts.push(PktInfo { msg: msg_idx as u32, start, end: pkt_end });
            retxq.push(RetxEntry { seq, bytes: pkt_end - start, origin_ts_us: m.at.as_micros() });
            n_data_packets += 1;
            let Some(arr) = dglink.send(m.at, pkt_end - start).time() else {
                continue; // a hole: a later arrival will expose it
            };
            records.push((arr, start, pkt_end));
            {
                let st = &mut states[msg_idx];
                st.remaining -= 1;
                if arr > st.latest {
                    st.latest = arr;
                }
            }
            let RecvEvent::Gap(ranges) = tracker.on_data(seq) else {
                continue;
            };
            // One NAK packet covers all newly-detected ranges.
            trace.count("srt", "nak_sent", 1);
            trace.span(arr.as_micros(), (arr + rtt / 2).as_micros(), "srt", "srt.nak", None);
            for (range_first, range_last) in ranges {
                for i in 0..=seq_distance(range_first, range_last) {
                    let lost_seq = seq_add(range_first, i);
                    let info_idx = seq_distance(initial_seq, lost_seq) as usize;
                    let lost_msg = pkts[info_idx].msg as usize;
                    let Some(entry) = retxq.get(lost_seq) else {
                        // Evicted from the bounded queue: unrecoverable.
                        tracker.abandon(lost_seq);
                        n_evicted += 1;
                        states[lost_msg].dropped = true;
                        continue;
                    };
                    let mut candidate = arr + rtt;
                    let mut delivered_at = None;
                    for att in 0..MAX_RETX_ATTEMPTS {
                        n_retransmits += 1;
                        if retx_lost(lost_seq, att) {
                            candidate += rtt;
                            continue;
                        }
                        delivered_at = Some(candidate);
                        break;
                    }
                    let recovered = delivered_at.filter(|t_r| {
                        !srt::too_late(entry.origin_ts_us, t_r.as_micros(), latency.as_micros())
                    });
                    match recovered {
                        Some(t_r) => {
                            let ev = tracker.on_data(lost_seq);
                            debug_assert!(matches!(ev, RecvEvent::Recovered));
                            records.push((t_r, pkts[info_idx].start, pkts[info_idx].end));
                            trace.span(
                                arr.as_micros(),
                                t_r.as_micros(),
                                "srt",
                                "srt.retransmit",
                                None,
                            );
                            let st = &mut states[lost_msg];
                            st.remaining -= 1;
                            if t_r > st.latest {
                                st.latest = t_r;
                            }
                        }
                        None => {
                            // Too late for the window (or every retransmit
                            // lost): drop and conceal.
                            tracker.abandon(lost_seq);
                            n_late_drops += 1;
                            let dl = SimTime::from_micros(entry.origin_ts_us + latency.as_micros());
                            trace.span(dl.as_micros(), dl.as_micros(), "srt", "srt.drop", None);
                            states[lost_msg].dropped = true;
                        }
                    }
                }
            }
            retxq.ack_through(tracker.ack_seq());
            trace.sketch("srt", "retx_queue_pkts", retxq.len() as u64);
        }
    }

    // Player feed: a frame plays only if every packet of its message made
    // it (on the wire or via retransmit). Dropped frames — and trailing
    // losses no later arrival could expose — are concealed: the next
    // complete frame's media horizon carries playback over the hole, so a
    // drop skips media instead of stalling.
    let mut n_conceals: u64 = 0;
    let mut arrivals: Vec<MediaArrival> = Vec::new();
    for (m, st) in msg_list.iter().zip(&states) {
        let Some(meta) = &m.meta else { continue };
        if st.dropped || st.remaining > 0 {
            n_conceals += 1;
            continue;
        }
        arrivals.push(MediaArrival {
            at: st.latest,
            media_end_s: meta.media_end_s,
            capture_wall_s: Some(meta.capture_wall_s),
        });
    }
    arrivals.sort_by_key(|a| a.at);

    // Flush the buffered datagram records into the capture in arrival
    // order (the flow index requires monotone times; datagrams reorder).
    records.sort_by_key(|&(at, _, _)| at);
    capture.flows[flow_srt]
        .reserve(records.iter().map(|&(_, s, e)| e - s).sum::<usize>(), records.len());
    for &(at, s, e) in &records {
        let wall = capture_clock.read(at, &mut clock_rng);
        capture.record(flow_srt, at, wall, &wire[s..e]);
    }

    trace.count("srt", "data_packets", n_data_packets);
    if n_retransmits > 0 {
        trace.count("srt", "retransmits", n_retransmits);
        trace.count("recovery", "retransmits", n_retransmits);
    }
    if n_late_drops > 0 {
        trace.count("srt", "late_drops", n_late_drops);
    }
    if n_conceals > 0 {
        trace.count("srt", "conceals", n_conceals);
    }
    if n_evicted > 0 {
        trace.count("srt", "retx_evicted", n_evicted);
    }
    if let Some((lost, spiked)) = dglink.fault_counts() {
        trace.count("fault", "lost_packets", lost);
        trace.count("fault", "latency_spikes", spiked);
        // SRT-specific breakdown of the aggregate fault counters, so
        // datagram loss/reorder activity is visible per transport in
        // TRACE_metrics like the RTMP/HLS fault counters already are.
        trace.count("fault", "srt_lost_packets", lost);
        trace.count("fault", "srt_latency_spikes", spiked);
    }
    if dglink.lost_queue > 0 {
        trace.count("fault", "srt_queue_drops", dglink.lost_queue);
    }
    if let Some(lf) = &app_faults {
        trace.count("fault", "lost_packets", lf.lost);
        trace.count("fault", "latency_spikes", lf.spiked);
        trace.count("recovery", "retransmits", lf.lost);
    }
    if n_data_packets > 0 {
        trace.sketch(
            "srt",
            "late_drop_ppm",
            ((n_late_drops as f64 / n_data_packets as f64) * 1e6).round() as u64,
        );
        // End-of-stream residual depth: the queue only drains on ACKs
        // piggybacked to NAK handling, so on a clean link this is the
        // cap-bounded steady state. Every SRT session observes it once,
        // which keeps the health sketch present even at zero loss; the
        // per-NAK-flush observations above layer on top under loss.
        trace.sketch("srt", "retx_queue_pkts", retxq.len() as u64);
    }

    let log = run_playback(join_at, config.watch, config.player_srt, &arrivals);
    // Join decomposition: handshake (including retry backoffs) until data
    // starts flowing, then buffer fill until first render. The two child
    // spans tile [join_at, first_frame] exactly, so they sum to the join
    // time under the teleport driver's session root.
    if let Some(j) = log.join_time {
        let parent = trace.current_span();
        let first_frame = join_at + j;
        let handshake_end = data_start.min(first_frame);
        trace.span(join_at.as_micros(), handshake_end.as_micros(), "srt", "srt.handshake", parent);
        trace.span(
            handshake_end.as_micros(),
            first_frame.as_micros(),
            "srt",
            "srt.buffering",
            parent,
        );
    }
    log.record_events(join_at, trace);
    crate::session::trace_session_end(trace, (join_at + config.watch).as_micros(), &log, &capture);
    let meta = PlaybackMetaReport {
        n_stalls: log.n_stalls(),
        avg_stall_time_s: log.avg_stall_s(),
        playback_latency_s: log.mean_latency_s(),
    };
    let rendered_fps = crate::rtmp_session::rendered_fps(fps, config.device, &log);
    SessionOutcome {
        broadcast_id: broadcast.id,
        protocol: Protocol::Srt,
        device: config.device,
        bandwidth_limit_bps: config.network.tc_limit_bps,
        player: log,
        capture,
        meta,
        viewers_at_join: broadcast.viewers_at(join_at),
        rendered_fps,
        server: format!("srt-{}", server.hostname()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NetworkSetup;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::fault::FaultConfig;
    use pscp_simnet::GeoPoint;
    use pscp_workload::broadcast::{BroadcastId, DeviceProfile};

    fn test_broadcast(seed: u64) -> Broadcast {
        Broadcast {
            id: BroadcastId(seed),
            location: GeoPoint::new(41.01, 28.98), // Istanbul
            city: "Istanbul",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(1800),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 15.0,
            replay_available: true,
            private: false,
            location_public: true,
            viewer_seed: seed,
            target_bitrate_bps: 300_000.0,
        }
    }

    fn run_session(seed: u64, config: SessionConfig) -> SessionOutcome {
        let b = test_broadcast(seed);
        let rngs = RngFactory::new(seed).child("session");
        run(&b, SimTime::from_secs(400), &config, &rngs)
    }

    fn lossy(scale: f64) -> FaultConfig {
        FaultConfig { seed: 99, loss: FaultConfig::chaos(99, scale).loss, ..Default::default() }
    }

    #[test]
    fn unlimited_session_starts_fast_and_mostly_smooth() {
        let mut clean = 0;
        for seed in 0..10 {
            let out = run_session(seed, SessionConfig::default());
            assert_eq!(out.protocol, Protocol::Srt);
            let join = out.join_time_s().expect("playback starts");
            assert!(join < 8.0, "join={join}");
            if out.stall_ratio() < 0.01 {
                clean += 1;
            }
        }
        assert!(clean >= 6, "clean={clean}/10");
    }

    #[test]
    fn capture_holds_decodable_srt_packets() {
        let out = run_session(5, SessionConfig::default());
        let flow = out.capture.flow_of_kind(FlowKind::Srt).unwrap();
        assert!(flow.server.starts_with("srt-"), "server={}", flow.server);
        let mut data_pkts = 0;
        let mut control_pkts = 0;
        for p in flow.packets() {
            match srt::decode_packet(p.payload).expect("every datagram decodes") {
                (Packet::Data(d), used) => {
                    assert_eq!(used, p.payload.len());
                    assert_eq!(used, d.payload.len() + srt::DATA_HEADER_BYTES);
                    data_pkts += 1;
                }
                (Packet::Control(_), _) => control_pkts += 1,
            }
        }
        assert!(data_pkts > 1000, "data packets={data_pkts}");
        assert_eq!(control_pkts, 2, "cookie + agreement");
    }

    #[test]
    fn loss_conceals_instead_of_stalling() {
        // Heavy loss on SRT: frames are dropped/concealed, but the player
        // keeps rendering — stall ratio stays far below the loss rate.
        let out = run_session(7, SessionConfig { faults: lossy(4.0), ..Default::default() });
        assert!(out.join_time_s().is_some(), "joins under loss");
        assert!(out.stall_ratio() < 0.10, "ratio={}", out.stall_ratio());
    }

    #[test]
    fn srt_beats_rtmp_under_loss() {
        // The tentpole claim, at session granularity and *paired* (common
        // random numbers give both transports the identical broadcaster
        // and viewer path): under the full chaos preset at ≥2× loss —
        // marginal Gilbert–Elliott loss ≈ 4.8%, disconnect windows active
        // — SRT's NAK/conceal discipline within its latency window stalls
        // strictly less than RTMP, whose TCP session both inherits the
        // per-loss retransmission delay and goes dark across disconnect
        // windows that a connectionless datagram ingest shrugs off.
        let mut srt_total = 0.0;
        let mut rtmp_total = 0.0;
        for seed in 0..12 {
            let cfg = SessionConfig { faults: FaultConfig::chaos(99, 2.0), ..Default::default() };
            let s = run_session(seed, cfg.clone());
            assert_eq!(s.protocol, Protocol::Srt, "no fallback expected at 2x");
            srt_total += s.stall_ratio();
            let b = test_broadcast(seed);
            let rngs = RngFactory::new(seed).child("session");
            rtmp_total +=
                crate::rtmp_session::run(&b, SimTime::from_secs(400), &cfg, &rngs).stall_ratio();
        }
        assert!(
            srt_total < rtmp_total,
            "srt stall sum {srt_total} should strictly beat rtmp {rtmp_total}"
        );
        assert!(srt_total < 0.02, "srt conceals rather than stalls: {srt_total}");
    }

    #[test]
    fn determinism() {
        let run_once = || {
            let out = run_session(8, SessionConfig { faults: lossy(2.0), ..Default::default() });
            (out.player.stalls.clone(), out.player.join_time, out.capture.total_bytes())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn faultless_srt_matches_rtmp_qoe_envelope() {
        // Without faults the transports see the same uplink and bottleneck;
        // SRT's join differs only by handshake shape.
        let out = run_session(9, SessionConfig::default());
        let join = out.join_time_s().unwrap();
        assert!(join < 8.0, "join={join}");
        assert!(out.meta.playback_latency_s.unwrap() < 8.0);
        assert!(out.rendered_fps > 10.0);
    }

    #[test]
    fn tight_bandwidth_still_stalls() {
        // The latency window cannot conjure bandwidth: below the video
        // bitrate SRT degrades too (drops + stalls), like any transport.
        let config =
            SessionConfig { network: NetworkSetup::finland_limited(0.2), ..Default::default() };
        let out = run_session(4, config);
        assert!(
            out.stall_ratio() > 0.1 || out.join_time_s().is_none(),
            "ratio={} join={:?}",
            out.stall_ratio(),
            out.join_time_s()
        );
    }
}
