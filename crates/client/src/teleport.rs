//! The Teleport automation: the paper's session-dataset generator.
//!
//! §2: "The app has a 'Teleport' button which takes the user directly to a
//! randomly selected live broadcast. Automation was achieved with a script
//! that sends tap events ... to push the Teleport button, wait for 60s,
//! push the close button, push the 'home' button and repeat all over
//! again."
//!
//! Teleport selection is popularity-weighted: the paper's dataset contains
//! 1796 RTMP and 1586 HLS sessions even though broadcasts above the ~100
//! viewer HLS threshold are a small *fraction* of all broadcasts — a
//! uniformly random pick would almost never land on one, so the feature
//! must bias toward broadcasts where viewers actually are. Weighting by
//! current viewer count reproduces the observed RTMP/HLS session split.
//!
//! Sessions are mutually independent (each is a fresh app launch against
//! its own broadcast), so the dataset generator samples join times across
//! the whole population window rather than strictly sequentially — the
//! paper's weeks of wall-clock collection compressed into one simulated
//! window.
//!
//! That independence is also what makes dataset generation parallel:
//! [`Teleport::run_dataset`] first runs a cheap serial *plan* phase (join
//! times, broadcast picks and device alternation all come from one shared
//! sequential RNG stream), then *executes* the planned sessions across
//! worker threads — each session only draws from its own `session/{i}` RNG
//! namespace — and reassembles outcomes in plan order. Capture retention
//! is *decided* during planning (protocol selection is a pure function of
//! broadcast and join time) and *applied* inside each worker, so an
//! uncapped capture is dropped the moment its session finishes: peak
//! memory stays at the retained set plus one in-flight capture per worker,
//! while output remains byte-identical to a serial run at any thread count.

use crate::device::ViewerDevice;
use crate::player::run_playback;
use crate::retry::{classify, RetryClass, RetryPolicy};
use crate::session::{PlaybackMetaReport, SessionConfig, SessionOutcome};
use crate::{hls_session, rtmp_session, srt_session};
use pscp_obs::{Observer, PhaseSpan, Trace};
use pscp_service::select::Protocol;
use pscp_service::PeriscopeService;
use pscp_simnet::fault::FaultRng;
use pscp_simnet::rng::{CounterRng, Rng};
use pscp_simnet::{RngFactory, SimDuration, SimTime};
use pscp_workload::broadcast::Broadcast;

/// How long an RTMP client waits out an ingest outage before falling back
/// to HLS (DESIGN.md §8): outages shorter than this are ridden out as a
/// delayed join, longer ones trigger the failover path.
const FAILOVER_PATIENCE: SimDuration = SimDuration::from_secs(8);

/// Quadtree depth of the per-cell alerting rings — the same reference
/// depth the shard-occupancy layer reports at (`pscp-core`'s `REF_DEPTH`,
/// restated here because the dependency points the other way).
const CELL_DEPTH: u8 = 2;
/// Depth-2 quadkeys in cell order (digits SW=0, SE=1, NW=2, NE=3, most
/// significant first), used as static ring keys so per-cell alert rules
/// can scope incidents to shard cells.
const CELL_KEYS: [&str; 16] = [
    "00", "01", "02", "03", "10", "11", "12", "13", "20", "21", "22", "23", "30", "31", "32", "33",
];

/// Dataset generation settings.
#[derive(Debug, Clone)]
pub struct TeleportConfig {
    /// Number of sessions to run.
    pub sessions: usize,
    /// Base session configuration (network limits, chat, players).
    pub session: SessionConfig,
    /// Alternate between the S3 and S4 phones, as the paper did.
    pub alternate_devices: bool,
    /// How many sessions *per protocol* keep their full packet capture.
    /// Captures are several MB each; paper-scale datasets would not fit in
    /// memory otherwise. Sessions beyond the cap keep every scalar metric
    /// but an empty capture.
    pub keep_captures_per_protocol: usize,
    /// Worker threads for the execute phase (`0` = auto: `PSCP_THREADS` or
    /// the machine's parallelism, `1` = the serial path). Output is
    /// byte-identical at every setting.
    pub threads: usize,
    /// Geo shards for the execute phase: a power of four (1, 4, 16, …).
    /// Above 1, planned sessions are grouped by the quadtree cell of their
    /// broadcast and each cell's group runs as a shard-local unit; results
    /// are scattered back to plan order, so the dataset is byte-identical
    /// at every shard count (each session depends only on its own plan
    /// entry, never on which shard executed it — DESIGN.md §13).
    pub shards: usize,
}

impl Default for TeleportConfig {
    fn default() -> Self {
        TeleportConfig {
            sessions: 100,
            session: SessionConfig::default(),
            alternate_devices: true,
            keep_captures_per_protocol: usize::MAX,
            threads: 0,
            shards: 1,
        }
    }
}

/// The Teleport driver.
pub struct Teleport<'a> {
    service: &'a PeriscopeService,
    rngs: RngFactory,
}

impl<'a> Teleport<'a> {
    /// Creates a driver against a service.
    pub fn new(service: &'a PeriscopeService, rngs: RngFactory) -> Self {
        Teleport { service, rngs: rngs.child("teleport") }
    }

    /// The driver's RNG namespace, for callers that must key extra draws
    /// (e.g. shard migrations) consistently with the sessions themselves.
    pub fn rngs(&self) -> &RngFactory {
        &self.rngs
    }

    /// Picks a random live broadcast at `now`, weighted by current viewers
    /// (plus one, so zero-viewer broadcasts remain reachable — the paper
    /// did land on unpopular streams).
    ///
    /// Delegates to the population's time-bucketed weighted sampler, which
    /// avoids rebuilding an O(population) candidate list per pick.
    pub fn pick(&self, now: SimTime, rng: &mut CounterRng) -> Option<&'a Broadcast> {
        self.service.population.sample_live_weighted(now, rng)
    }

    /// Runs one session at `join_at` against a picked broadcast, letting
    /// the service choose the protocol (accessVideo semantics).
    pub fn run_one(
        &self,
        broadcast: &Broadcast,
        join_at: SimTime,
        config: &SessionConfig,
        session_idx: u64,
    ) -> SessionOutcome {
        self.run_one_traced(broadcast, join_at, config, session_idx, &mut Trace::disabled())
    }

    /// [`Teleport::run_one`] plus instrumentation into the session's own
    /// trace (which the caller later absorbs in plan order).
    pub fn run_one_traced(
        &self,
        broadcast: &Broadcast,
        join_at: SimTime,
        config: &SessionConfig,
        session_idx: u64,
        trace: &mut Trace,
    ) -> SessionOutcome {
        let access = self
            .service
            .access_video(broadcast.id, &config.network.location, join_at)
            .expect("picked broadcast is live");
        trace.count("service", "access_video", 1);
        // Root of the session's causal tree: opened at the Teleport tap,
        // closed at first rendered frame — so its duration *is* the join
        // time. Sessions that never join leave it open, and open spans are
        // dropped when the trace is drained. Children below tile the root
        // contiguously, so their durations sum exactly to the join time.
        let root = trace.span_start(join_at.as_micros(), "session", "session.join");
        let rngs = self.rngs.child(&format!("session/{session_idx}"));
        let faults = &config.faults;

        // API bootstrap under injected 429/5xx (DESIGN.md §8): each error
        // delays the join by a capped, jittered backoff; exhausting the
        // budget abandons the session. The draw stream is keyed per session
        // so the schedule is thread-invariant; with both rates zero this
        // block never runs and no variate is drawn.
        let mut join_eff = join_at;
        let mut retry_waits: Vec<(u64, u64)> = Vec::new();
        if faults.api_429_rate > 0.0 || faults.api_5xx_rate > 0.0 {
            let mut api_rng = FaultRng::from_label(faults.seed ^ rngs.seed(), "api");
            let policy = RetryPolicy::api();
            let mut attempt: u32 = 1;
            loop {
                let r = api_rng.next_f64();
                let status: u16 = if r < faults.api_429_rate {
                    429
                } else if r < faults.api_429_rate + faults.api_5xx_rate {
                    503
                } else {
                    200
                };
                match classify(status) {
                    RetryClass::Success | RetryClass::Fatal => break,
                    RetryClass::RetryRateLimited => trace.count("fault", "api_429", 1),
                    RetryClass::RetryBackoff => trace.count("fault", "api_5xx", 1),
                }
                if attempt >= policy.max_attempts {
                    trace.count("recovery", "api_exhausted", 1);
                    return self.dead_outcome(broadcast, join_at, config, access.protocol, trace);
                }
                trace.count("recovery", "api_retries", 1);
                let wait_from = join_eff;
                join_eff += policy.backoff(attempt - 1, &mut api_rng);
                retry_waits.push((wait_from.as_micros(), join_eff.as_micros()));
                attempt += 1;
            }
        }
        // The API phase covers the tap through the last retry backoff
        // (zero-length on the common no-fault path), with one child span
        // per backoff wait.
        let api_span =
            trace.span(join_at.as_micros(), join_eff.as_micros(), "api", "api.request", Some(root));
        for (from_us, to_us) in retry_waits {
            trace.span(from_us, to_us, "api", "api.retry", Some(api_span));
        }

        // RTMP → HLS failover on persistent ingest-server outage; brief
        // outages are ridden out as a delayed join (reconnect). Outage
        // membership is keyed on the fault seed alone, so every session
        // agrees on when each ingest server was down. `config.transport`
        // (the chaos sweep's three-way switch) overrides the service's
        // viewer-count policy; `None` is the paper-faithful default.
        let mut protocol = config.transport.unwrap_or(access.protocol);
        if protocol == Protocol::Srt && faults.ingest_outage.is_active() {
            // The SRT gateway is its own outage unit (`srt-{host}`): it can
            // be down while plain RTMP ingest on the same host is up, which
            // is exactly the situation the SRT → RTMP fallback exists for.
            // The gateway host comes straight from ingest assignment — the
            // same pure function the SRT session uses — because a forced
            // transport may override an HLS access that carries no
            // `rtmp_server`.
            let server = pscp_service::ingest::assign_server(&broadcast.location, broadcast.id.0);
            let unit = format!("srt-{}", server.hostname());
            if faults.ingest_outage.in_outage(faults.seed, &unit, join_eff) {
                trace.count("fault", "ingest_outages", 1);
                // Ingest hostnames are assignment-dependent strings, so
                // the symptom ring aggregates all ingest units under one
                // key (per-unit ground-truth scoring is POP-only).
                trace.ring("outage", "ingest", join_eff.as_micros(), 1);
                let up = faults.ingest_outage.outage_end(faults.seed, &unit, join_eff);
                if up.saturating_since(join_eff) > FAILOVER_PATIENCE {
                    trace.count("recovery", "srt_fallbacks", 1);
                    trace.span(
                        join_eff.as_micros(),
                        join_eff.as_micros(),
                        "recovery",
                        "recovery.failover",
                        Some(root),
                    );
                    protocol = Protocol::Rtmp;
                } else {
                    trace.count("recovery", "ingest_reconnects", 1);
                    trace.span(
                        join_eff.as_micros(),
                        up.as_micros(),
                        "recovery",
                        "recovery.reconnect",
                        Some(root),
                    );
                    join_eff = up;
                }
            }
        }
        if protocol == Protocol::Rtmp && faults.ingest_outage.is_active() {
            if let Some(server) = &access.rtmp_server {
                let host = server.hostname();
                if faults.ingest_outage.in_outage(faults.seed, &host, join_eff) {
                    trace.count("fault", "ingest_outages", 1);
                    trace.ring("outage", "ingest", join_eff.as_micros(), 1);
                    let up = faults.ingest_outage.outage_end(faults.seed, &host, join_eff);
                    if up.saturating_since(join_eff) > FAILOVER_PATIENCE {
                        trace.count("recovery", "failovers", 1);
                        // Zero-length marker: the switch itself takes no sim
                        // time, so it doesn't disturb the root's tiling.
                        trace.span(
                            join_eff.as_micros(),
                            join_eff.as_micros(),
                            "recovery",
                            "recovery.failover",
                            Some(root),
                        );
                        protocol = Protocol::Hls;
                    } else {
                        trace.count("recovery", "ingest_reconnects", 1);
                        trace.span(
                            join_eff.as_micros(),
                            up.as_micros(),
                            "recovery",
                            "recovery.reconnect",
                            Some(root),
                        );
                        join_eff = up;
                    }
                }
            }
        }

        let delay = join_eff.saturating_since(join_at);
        let mut outcome = match protocol {
            Protocol::Rtmp => rtmp_session::run_traced(broadcast, join_eff, config, &rngs, trace),
            Protocol::Hls => hls_session::run_traced(broadcast, join_eff, config, &rngs, trace),
            Protocol::Srt => srt_session::run_traced(broadcast, join_eff, config, &rngs, trace),
        };
        if delay > SimDuration::ZERO {
            // The retries happened before the stream view opened; the user's
            // join clock started at the original Teleport tap.
            if let Some(j) = outcome.player.join_time {
                outcome.player.join_time = Some(j + delay);
            }
        }
        // Close the root at first rendered frame; a session that never
        // joined leaves it open and the drain drops it.
        if let Some(j) = outcome.player.join_time {
            trace.span_end(root, (join_at + j).as_micros());
        }
        // Constant-memory QoE telemetry: fold the headline per-session
        // numbers into the trace's mergeable sketches (DESIGN.md §11). A
        // never-joined session charges its whole watch budget as join wait.
        let join_us = match outcome.player.join_time {
            Some(j) => j.as_micros(),
            None => config.watch.as_micros(),
        };
        trace.sketch("player", "join_time_us", join_us);
        trace.sketch("player", "stall_ppm", (outcome.stall_ratio() * 1e6).round() as u64);
        // Windowed copies for the alerting layer (DESIGN.md §14): the join
        // observation lands in the minute the join completed, the stall
        // observation in the minute the session ended, and the per-cell
        // ring scopes join burn to the broadcast's shard cell.
        let join_done_us = join_at.as_micros() + join_us;
        trace.ring("alert", "join_time_us", join_done_us, join_us);
        trace.ring(
            "alert",
            "stall_ppm",
            (join_eff + config.watch).as_micros(),
            (outcome.stall_ratio() * 1e6).round() as u64,
        );
        let cell = pscp_simnet::geo::GeoRect::quad_cell(&broadcast.location, CELL_DEPTH);
        trace.ring("cell", CELL_KEYS[cell as usize], join_done_us, join_us);
        outcome
    }

    /// Outcome of a session whose API bootstrap never succeeded: nothing
    /// was ever fetched or played, but the attempt still appears in the
    /// dataset (and its trace counters) as a never-joined session.
    fn dead_outcome(
        &self,
        broadcast: &Broadcast,
        join_at: SimTime,
        config: &SessionConfig,
        protocol: Protocol,
        trace: &mut Trace,
    ) -> SessionOutcome {
        let (proto_name, player_cfg) = match protocol {
            Protocol::Rtmp => ("rtmp", config.player_rtmp),
            Protocol::Hls => ("hls", config.player_hls),
            Protocol::Srt => ("srt", config.player_srt),
        };
        crate::session::trace_session_start(
            trace,
            proto_name,
            broadcast.id,
            broadcast.viewers_at(join_at),
            join_at.as_micros(),
            config,
        );
        let log = run_playback(join_at, config.watch, player_cfg, &[]);
        log.record_events(join_at, trace);
        let capture = pscp_media::capture::Capture::new();
        crate::session::trace_session_end(
            trace,
            (join_at + config.watch).as_micros(),
            &log,
            &capture,
        );
        let meta = PlaybackMetaReport {
            n_stalls: log.n_stalls(),
            avg_stall_time_s: None,
            playback_latency_s: None,
        };
        // Dead sessions still count in the streaming telemetry: the whole
        // watch budget was spent waiting and playback stalled throughout.
        trace.sketch("player", "join_time_us", config.watch.as_micros());
        trace.sketch("player", "stall_ppm", (log.stall_ratio() * 1e6).round() as u64);
        let end_us = (join_at + config.watch).as_micros();
        trace.ring("alert", "join_time_us", end_us, config.watch.as_micros());
        trace.ring("alert", "stall_ppm", end_us, (log.stall_ratio() * 1e6).round() as u64);
        let cell = pscp_simnet::geo::GeoRect::quad_cell(&broadcast.location, CELL_DEPTH);
        trace.ring("cell", CELL_KEYS[cell as usize], end_us, config.watch.as_micros());
        SessionOutcome {
            broadcast_id: broadcast.id,
            protocol,
            device: config.device,
            bandwidth_limit_bps: config.network.tc_limit_bps,
            player: log,
            capture,
            meta,
            viewers_at_join: broadcast.viewers_at(join_at),
            rendered_fps: 0.0,
            server: "unreachable".to_string(),
        }
    }

    /// Generates a whole dataset.
    ///
    /// Two phases. The *plan* phase is serial and consumes the shared
    /// `"dataset"` RNG stream exactly as a fully serial generator would:
    /// join times, broadcast picks and device alternation all come from
    /// that one sequential stream. The *execute* phase then runs the
    /// planned sessions across worker threads — safe because
    /// [`Teleport::run_one`] draws only from the session's own
    /// `session/{i}` RNG namespace — and reassembles outcomes in plan
    /// order. The capture-retention cap is *decided* during planning
    /// (protocol selection is [`SelectionPolicy::choose`], a pure function
    /// of broadcast and join time, so the plan predicts exactly what
    /// `run_one` will see) and *applied* in the worker the moment each
    /// session finishes. Uncapped captures therefore never pile up waiting
    /// for reassembly — peak memory is the retained set plus at most one
    /// in-flight capture per worker, same as the serial path — and the
    /// result is byte-identical to a serial run at any thread count.
    ///
    /// [`SelectionPolicy::choose`]: pscp_service::select::SelectionPolicy::choose
    pub fn run_dataset(&self, config: &TeleportConfig) -> Vec<SessionOutcome> {
        self.run_dataset_observed(config, Observer::disabled_ref())
    }

    /// [`Teleport::run_dataset`] under observation: sessions record into
    /// per-unit traces that are absorbed into `obs` serially in plan order
    /// (so the merged log is byte-identical at any thread count), and the
    /// plan/execute phases get wall-clock spans when `obs` is profiling.
    pub fn run_dataset_observed(
        &self,
        config: &TeleportConfig,
        obs: &Observer,
    ) -> Vec<SessionOutcome> {
        let plan_started = std::time::Instant::now();
        let mut rng = self.rngs.stream("dataset");
        let window = self.service.population.config.window;
        let margin = config.session.watch + SimDuration::from_secs(40);
        let latest = window.saturating_sub(margin).as_secs_f64().max(60.0);

        struct Planned<'b> {
            idx: u64,
            join_at: SimTime,
            broadcast: &'b Broadcast,
            session: SessionConfig,
            keep_capture: bool,
        }
        let selection = self.service.selection_policy();
        let mut kept: std::collections::HashMap<Protocol, usize> = std::collections::HashMap::new();
        let mut plan: Vec<Planned<'_>> = Vec::with_capacity(config.sessions);
        for i in 0..config.sessions {
            // Join somewhere inside the window, away from the edges.
            let t = 30.0 + rng.gen::<f64>() * latest;
            let join_at = SimTime::from_micros((t * 1e6) as u64);
            let Some(broadcast) = self.pick(join_at, &mut rng) else {
                continue;
            };
            let mut session = config.session.clone();
            if config.alternate_devices {
                session.device =
                    if i % 2 == 0 { ViewerDevice::GalaxyS4 } else { ViewerDevice::GalaxyS3 };
            }
            // Capture retention is bucketed by the protocol the session will
            // actually use, so a forced-transport sweep still caps correctly.
            let protocol =
                config.session.transport.unwrap_or_else(|| selection.choose(broadcast, join_at));
            let slot = kept.entry(protocol).or_insert(0);
            let keep_capture = *slot < config.keep_captures_per_protocol;
            if keep_capture {
                *slot += 1;
            }
            plan.push(Planned { idx: i as u64, join_at, broadcast, session, keep_capture });
        }
        if obs.profiling() {
            let wall = plan_started.elapsed().as_secs_f64();
            obs.record_phase(PhaseSpan {
                name: "dataset.plan".into(),
                wall_secs: wall,
                workers: 1,
                items: plan.len(),
                busy_secs: wall,
            });
        }

        // Each worker records into the session's own trace; the merge
        // below happens serially in plan order, never completion order.
        let work = |_: usize, p: &Planned<'_>| {
            let mut trace = obs.trace();
            let mut outcome =
                self.run_one_traced(p.broadcast, p.join_at, &p.session, p.idx, &mut trace);
            if !p.keep_capture {
                // The session still simulated its traffic (scalar metrics
                // derive from it), but the multi-MB capture is released
                // here, inside the worker, rather than after reassembly.
                outcome.capture = pscp_media::capture::Capture::new();
            }
            (outcome, trace)
        };
        let results: Vec<(SessionOutcome, Trace)> = if config.shards > 1 {
            // Sharded execute: group plan entries by the quadtree cell of
            // their broadcast, run cells as shard-local units, scatter the
            // results back to plan positions. Outcomes are pure functions
            // of their plan entry, so the reassembled dataset is
            // byte-identical to the unsharded path.
            let depth = pscp_simnet::geo::quad_depth_for(config.shards)
                .expect("shards must be a power of four (1, 4, 16, ...)");
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); config.shards];
            for (pi, p) in plan.iter().enumerate() {
                let cell = pscp_simnet::GeoRect::quad_cell(&p.broadcast.location, depth);
                groups[cell as usize].push(pi);
            }
            let shard_work = |_: usize, group: &Vec<usize>| {
                group.iter().map(|&pi| work(pi, &plan[pi])).collect::<Vec<_>>()
            };
            let started = std::time::Instant::now();
            let per_shard = pscp_simnet::par::indexed_map(&groups, config.threads, shard_work);
            if obs.profiling() {
                let wall = started.elapsed().as_secs_f64();
                obs.record_phase(PhaseSpan {
                    name: "dataset.execute".into(),
                    wall_secs: wall,
                    workers: pscp_simnet::par::resolve_threads(config.threads),
                    items: plan.len(),
                    busy_secs: wall,
                });
            }
            let mut slots: Vec<Option<(SessionOutcome, Trace)>> =
                (0..plan.len()).map(|_| None).collect();
            for (group, results) in groups.iter().zip(per_shard) {
                for (&pi, r) in group.iter().zip(results) {
                    slots[pi] = Some(r);
                }
            }
            slots
                .into_iter()
                .map(|s| s.expect("every planned session lands in exactly one shard"))
                .collect()
        } else if obs.profiling() {
            let (results, profile) =
                pscp_simnet::par::indexed_map_timed(&plan, config.threads, work);
            obs.record_phase(PhaseSpan {
                name: "dataset.execute".into(),
                wall_secs: profile.wall_secs,
                workers: profile.workers,
                items: plan.len(),
                busy_secs: profile.busy_total(),
            });
            results
        } else {
            pscp_simnet::par::indexed_map(&plan, config.threads, work)
        };
        let mut outcomes = Vec::with_capacity(results.len());
        for (p, (outcome, trace)) in plan.iter().zip(results) {
            if obs.tracing() {
                obs.absorb(&format!("session/{}", p.idx), trace);
            }
            outcomes.push(outcome);
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_service::ServiceConfig;
    use pscp_workload::population::{Population, PopulationConfig};

    fn service() -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::medium(), &RngFactory::new(61));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    #[test]
    fn pick_prefers_popular() {
        let svc = service();
        let tp = Teleport::new(&svc, RngFactory::new(7));
        let mut rng = RngFactory::new(7).stream("pick-test");
        let now = SimTime::from_secs(3600);
        let mut viewer_sum = 0u64;
        let n = 200;
        for _ in 0..n {
            let b = tp.pick(now, &mut rng).unwrap();
            viewer_sum += b.viewers_at(now) as u64;
        }
        let mean_picked = viewer_sum as f64 / n as f64;
        // Population mean viewers is ~8; popularity weighting should pull
        // the picked mean far above it.
        assert!(mean_picked > 30.0, "mean_picked={mean_picked}");
    }

    #[test]
    fn dataset_mixes_protocols() {
        let svc = service();
        let tp = Teleport::new(&svc, RngFactory::new(8));
        let cfg = TeleportConfig { sessions: 30, ..Default::default() };
        let outcomes = tp.run_dataset(&cfg);
        assert!(outcomes.len() >= 28, "n={}", outcomes.len());
        let hls = outcomes.iter().filter(|o| o.protocol == Protocol::Hls).count();
        let rtmp = outcomes.len() - hls;
        // Both protocols appear (paper: 1796 RTMP vs 1586 HLS).
        assert!(hls >= 3, "hls={hls}");
        assert!(rtmp >= 3, "rtmp={rtmp}");
    }

    #[test]
    fn dataset_alternates_devices() {
        let svc = service();
        let tp = Teleport::new(&svc, RngFactory::new(9));
        let cfg = TeleportConfig { sessions: 10, ..Default::default() };
        let outcomes = tp.run_dataset(&cfg);
        assert!(outcomes.iter().any(|o| o.device == ViewerDevice::GalaxyS3));
        assert!(outcomes.iter().any(|o| o.device == ViewerDevice::GalaxyS4));
    }

    #[test]
    fn hls_sessions_watch_popular_broadcasts() {
        let svc = service();
        let tp = Teleport::new(&svc, RngFactory::new(10));
        let cfg = TeleportConfig { sessions: 40, ..Default::default() };
        let outcomes = tp.run_dataset(&cfg);
        let avg = |proto: Protocol| {
            let xs: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.protocol == proto)
                .map(|o| o.viewers_at_join as f64)
                .collect();
            if xs.is_empty() {
                return 0.0;
            }
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let hls_avg = avg(Protocol::Hls);
        let rtmp_avg = avg(Protocol::Rtmp);
        if hls_avg > 0.0 && rtmp_avg > 0.0 {
            assert!(hls_avg > rtmp_avg, "hls={hls_avg} rtmp={rtmp_avg}");
        }
    }

    #[test]
    fn determinism() {
        let svc = service();
        let run = || {
            let tp = Teleport::new(&svc, RngFactory::new(11));
            let cfg = TeleportConfig { sessions: 5, ..Default::default() };
            tp.run_dataset(&cfg)
                .iter()
                .map(|o| (o.broadcast_id, o.capture.total_bytes()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
