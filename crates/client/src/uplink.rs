//! The broadcaster's mobile uplink.
//!
//! Why do viewers on a >100 Mbps link still stall (Fig 3a)? Because the
//! *broadcaster* is a phone on a mobile network: its uplink throughput
//! fluctuates and occasionally collapses for seconds (handover, fading,
//! cross-traffic). §5.2 hints at the same thing from the video side:
//! "Occasionally, some frames are missing ... probably due to the fact that
//! the uploading device had some issues, e.g., glitches in the real-time
//! encoding or during upload." The model: a base rate drawn per broadcast
//! plus Poisson outage windows during which the uplink is nearly dead; a
//! queue drains the backlog after each outage.

use pscp_simnet::dist;
use pscp_simnet::rng::Rng;
use pscp_simnet::{SimDuration, SimTime};

/// Uplink model parameters.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// Log-mean of the base uplink rate (bits/second).
    pub base_rate_mu: f64,
    /// Log-sd of the base uplink rate.
    pub base_rate_sigma: f64,
    /// Outage windows per second (Poisson rate).
    pub outage_rate: f64,
    /// Mean outage duration, seconds.
    pub outage_mean_s: f64,
    /// Throughput multiplier during an outage.
    pub outage_factor: f64,
}

impl Default for UplinkConfig {
    fn default() -> Self {
        UplinkConfig {
            // Median ~3 Mbps: plenty for a 300 kbps stream — until an
            // outage hits.
            base_rate_mu: (3.0e6f64).ln(),
            base_rate_sigma: 0.6,
            // ~1 outage per 4 minutes of watching.
            outage_rate: 1.0 / 240.0,
            outage_mean_s: 3.5,
            outage_factor: 0.02,
        }
    }
}

/// A broadcaster uplink over one session window.
#[derive(Debug, Clone)]
pub struct Uplink {
    /// Base rate for this broadcast, bits/second.
    pub base_rate_bps: f64,
    /// Outage windows (start, end) within the session, sim time.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Virtual queue: when the next byte can start uploading.
    free_at: SimTime,
}

impl Uplink {
    /// Draws an uplink for a session spanning `[start, end)`.
    pub fn draw<R: Rng + ?Sized>(
        config: &UplinkConfig,
        start: SimTime,
        end: SimTime,
        rng: &mut R,
    ) -> Uplink {
        let base_rate_bps =
            dist::lognormal(rng, config.base_rate_mu, config.base_rate_sigma).max(350_000.0);
        let mut outages = Vec::new();
        let mut t = start.as_secs_f64();
        let horizon = end.as_secs_f64();
        loop {
            t += dist::exponential(rng, config.outage_rate);
            if t >= horizon {
                break;
            }
            let dur = dist::exponential(rng, 1.0 / config.outage_mean_s).clamp(0.8, 12.0);
            let o_start = SimTime::from_micros((t * 1e6) as u64);
            let o_end = o_start + SimDuration::from_secs_f64(dur);
            outages.push((o_start, o_end));
            t += dur;
        }
        Uplink { base_rate_bps, outages, free_at: start }
    }

    /// An ideal uplink (tests, ablations).
    pub fn perfect(rate_bps: f64) -> Uplink {
        Uplink { base_rate_bps: rate_bps, outages: Vec::new(), free_at: SimTime::ZERO }
    }

    /// Instantaneous rate at `t`.
    pub fn rate_at(&self, t: SimTime, outage_factor: f64) -> f64 {
        for &(s, e) in &self.outages {
            if t >= s && t < e {
                return self.base_rate_bps * outage_factor;
            }
        }
        self.base_rate_bps
    }

    /// Uploads `bytes` captured at `t`; returns when the last byte reaches
    /// the network side of the uplink. Sequential (FIFO) like a real radio
    /// bearer: backlog from an outage delays everything behind it.
    pub fn upload(&mut self, t: SimTime, bytes: usize) -> SimTime {
        let mut now = self.free_at.max(t);
        let mut remaining = bytes as f64 * 8.0; // bits
        loop {
            let rate = self.rate_at(now, 0.02).max(1_000.0);
            // Time until the current rate regime ends.
            let regime_end = self
                .outages
                .iter()
                .flat_map(|&(s, e)| [s, e])
                .filter(|&edge| edge > now)
                .min()
                .unwrap_or(SimTime::MAX);
            let window_s = regime_end.saturating_since(now).as_secs_f64();
            let can_send = rate * window_s;
            if can_send >= remaining || regime_end == SimTime::MAX {
                now += SimDuration::from_secs_f64(remaining / rate);
                break;
            }
            remaining -= can_send;
            now = regime_end;
        }
        self.free_at = now;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::RngFactory;

    #[test]
    fn perfect_uplink_is_rate_limited_only() {
        let mut u = Uplink::perfect(8e6); // 1 MB/s
        let done = u.upload(SimTime::ZERO, 1_000_000);
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fifo_backlog() {
        let mut u = Uplink::perfect(8e6);
        let first = u.upload(SimTime::ZERO, 500_000);
        let second = u.upload(SimTime::ZERO, 500_000);
        assert!(second > first);
        assert!((second.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn outage_delays_upload() {
        let mut u = Uplink::perfect(8e6);
        u.outages.push((SimTime::from_secs(1), SimTime::from_secs(4)));
        // 1 MB starting at t=0.5: half uploads before the outage, the rest
        // waits ~3 s (outage rate is ~nil).
        let done = u.upload(SimTime::from_micros(500_000), 1_000_000);
        let t = done.as_secs_f64();
        assert!(t > 3.9, "t={t}");
    }

    #[test]
    fn small_upload_during_outage_trickles() {
        let mut u = Uplink::perfect(8e6);
        u.outages.push((SimTime::ZERO, SimTime::from_secs(10)));
        // During the outage the rate is base*0.02 = 160 kbps; 4 kB takes
        // 0.2 s — it trickles through rather than waiting for the end.
        let done = u.upload(SimTime::ZERO, 4_000);
        let t = done.as_secs_f64();
        assert!((0.15..0.5).contains(&t), "t={t}");
    }

    #[test]
    fn drawn_uplinks_vary_but_bounded() {
        let mut rng = RngFactory::new(4).stream("uplink");
        let cfg = UplinkConfig::default();
        let mut rates = Vec::new();
        for _ in 0..200 {
            let u = Uplink::draw(&cfg, SimTime::ZERO, SimTime::from_secs(300), &mut rng);
            assert!(u.base_rate_bps >= 350_000.0);
            rates.push(u.base_rate_bps);
        }
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 2.0, "uplinks should vary: min={min} max={max}");
    }

    #[test]
    fn outage_frequency_roughly_configured() {
        let mut rng = RngFactory::new(5).stream("uplink-outage");
        let cfg = UplinkConfig::default();
        let total: usize = (0..300)
            .map(|_| {
                Uplink::draw(&cfg, SimTime::ZERO, SimTime::from_secs(240), &mut rng).outages.len()
            })
            .sum();
        // 240 s at 1/240 per s ≈ 1 per draw ± noise.
        let mean = total as f64 / 300.0;
        assert!((0.6..1.4).contains(&mean), "mean={mean}");
    }
}
