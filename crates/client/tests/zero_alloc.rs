//! Zero-allocation discipline of the steady-state RTMP packet pump.
//!
//! DESIGN.md §10 claims that once buffers are warm, pumping media — chunk
//! the FLV tags, packetize onto the link, record the capture, dechunk the
//! arrivals — touches the heap zero times per packet. This test registers
//! the counting allocator (`pscp_obs::alloc_count`) as this binary's global
//! allocator and falsifies the claim if any per-packet allocation sneaks
//! back in.

use pscp_media::bitstream::{FrameKind, FramePayload};
use pscp_media::capture::{Flow, FlowKind};
use pscp_media::flv::VideoTag;
use pscp_obs::alloc_count::{self, CountingAlloc};
use pscp_proto::rtmp::{Chunker, Dechunker, Message};
use pscp_simnet::{Link, SimDuration, SimTime};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const MTU: usize = 1448;

/// One second of 30 fps video as RTMP messages (~1 kB per frame).
fn one_second_of_video() -> Vec<Message> {
    (0..30u32)
        .map(|i| {
            let frame = FramePayload {
                kind: if i == 0 { FrameKind::I } else { FrameKind::P },
                qp: 30,
                width: 320,
                height: 568,
                pts_ms: i * 33,
                ntp_s: None,
                size: 1000,
            };
            Message::video(i * 33, VideoTag::for_frame(frame).encode())
        })
        .collect()
}

/// The session inner loop for one second of media: chunk every message
/// into the reused wire buffer, pump MTU packets through the link in one
/// batch, record each delivery into the capture flow, and dechunk the
/// delivered bytes back into message views.
#[allow(clippy::too_many_arguments)]
fn pump_one_second(
    msgs: &[Message],
    chunker: &mut Chunker,
    wire: &mut Vec<u8>,
    dechunker: &mut Dechunker,
    flow: &mut Flow,
    link: &mut Link,
    at: SimTime,
) -> (u64, u64) {
    wire.clear();
    for m in msgs {
        chunker.write_ref(m.as_ref(), wire);
    }
    let mut packets = 0u64;
    let mut chunks = wire.chunks(MTU);
    link.enqueue_batch(at, wire.chunks(MTU).map(<[u8]>::len), |delivery| {
        let chunk = chunks.next().expect("one chunk per offered size");
        if let Some(arr) = delivery.time() {
            dechunker.feed(chunk).expect("wire bytes dechunk");
            flow.record(arr, arr.as_secs_f64(), chunk);
            packets += 1;
        }
    });
    let mut media_bytes = 0u64;
    while let Some(msg) = dechunker.next_view() {
        media_bytes += msg.payload.len() as u64;
    }
    (packets, media_bytes)
}

#[test]
fn steady_state_rtmp_pump_is_allocation_free() {
    // Sanity: the counter is live in this binary.
    let (d, _) = alloc_count::counted(|| black_box(vec![0u8; 4096]).len());
    assert!(d >= 1, "counting allocator not registered");
    assert!(alloc_count::installed());

    let msgs = one_second_of_video();
    let payload_bytes: u64 = msgs.iter().map(|m| m.payload.len() as u64).sum();
    let mut chunker = Chunker::new();
    let mut wire: Vec<u8> = Vec::new();
    let mut dechunker = Dechunker::new();
    let mut flow = Flow::new(FlowKind::Rtmp, "ingest".to_string());
    let mut link = Link::unbounded(10e6, SimDuration::from_millis(20));

    // Warm-up: two passes grow every buffer — the wire Vec, the link's
    // in-flight queue, the dechunker's reassembly arenas — to steady state.
    // Passes are spaced far apart so the link queue fully drains between
    // them, as it does between media bursts in a session.
    let mut at = SimTime::from_secs(10);
    for _ in 0..2 {
        let (packets, media) = pump_one_second(
            &msgs,
            &mut chunker,
            &mut wire,
            &mut dechunker,
            &mut flow,
            &mut link,
            at,
        );
        assert!(packets >= 20, "packets={packets}");
        assert_eq!(media, payload_bytes);
        at += SimDuration::from_secs(10);
    }

    // The capture flow legitimately accumulates the whole session, so the
    // session pre-sizes it once from the arena ranges (rtmp_session.rs does
    // the same before its transmit loop).
    const MEASURED_PASSES: u64 = 8;
    let packets_per_pass = wire.len().div_ceil(MTU);
    flow.reserve(
        wire.len() * MEASURED_PASSES as usize,
        packets_per_pass * MEASURED_PASSES as usize,
    );

    let (allocs, stats) = alloc_count::counted(|| {
        let mut total = (0u64, 0u64);
        for _ in 0..MEASURED_PASSES {
            let (packets, media) = pump_one_second(
                &msgs,
                &mut chunker,
                &mut wire,
                &mut dechunker,
                &mut flow,
                &mut link,
                at,
            );
            total.0 += packets;
            total.1 += media;
            at += SimDuration::from_secs(10);
        }
        total
    });
    assert!(stats.0 >= 20 * MEASURED_PASSES, "packets={}", stats.0);
    assert_eq!(stats.1, payload_bytes * MEASURED_PASSES);
    assert_eq!(allocs, 0, "steady-state pump allocated {allocs} times over {} packets", stats.0);
}
