//! The chaos sweep: QoE degradation under increasing fault intensity.
//!
//! DESIGN.md §8: the fault layer exists to answer "how does Periscope-style
//! QoE degrade when the network misbehaves?" — a question the paper could
//! only probe with its `tc` bandwidth sweep (Fig 6). This experiment sweeps
//! the *loss* intensity of the [`FaultConfig::chaos`] preset while every
//! other fault class (outages, API errors, disconnects) stays fixed, and
//! reports the stall-ratio and join-time ECDFs per intensity plus the
//! per-class fault/recovery counters harvested from `pscp-obs`.
//!
//! Every sweep point reuses the same `"chaos"` Teleport RNG namespace, so
//! all points run the *same planned sessions* (same broadcasts, same join
//! times) and differ only in the injected loss — a paired comparison.
//! Because [`LossConfig::scaled`] leaves the Gilbert–Elliott state
//! transitions untouched and the chain draws a fixed number of variates
//! per packet, a higher scale loses a *superset* of the packets a lower
//! scale loses, which is what makes the stall ratio monotone in the scale.
//!
//! [`FaultConfig::chaos`]: pscp_simnet::fault::FaultConfig::chaos
//! [`LossConfig::scaled`]: pscp_simnet::fault::LossConfig::scaled

use crate::figures::FigureData;
use crate::lab::Lab;
use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_obs::Observer;
use pscp_simnet::fault::FaultConfig;
use pscp_stats::Ecdf;

/// Chaos-sweep settings.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-schedule seed (independent of the lab's world seed).
    pub seed: u64,
    /// Sessions per sweep point.
    pub sessions: usize,
    /// Loss-intensity multipliers applied to the chaos preset's
    /// Gilbert–Elliott loss probabilities (`0.0` = loss off, other fault
    /// classes still active).
    pub loss_scales: Vec<f64>,
    /// Worker threads per point (`0` = auto). Results are identical at
    /// every setting.
    pub threads: usize,
}

impl ChaosConfig {
    /// The default sweep: 40 sessions per point over five intensities.
    pub fn small(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, sessions: 40, loss_scales: vec![0.0, 0.5, 1.0, 2.0, 4.0], threads: 0 }
    }
}

/// One sweep point: QoE samples plus fault/recovery counters.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Loss multiplier this point ran at.
    pub loss_scale: f64,
    /// Sessions that actually ran.
    pub sessions: usize,
    /// Sessions that never started playback.
    pub never_joined: usize,
    /// Per-session stall ratios (includes never-joined sessions at 1.0).
    pub stall_ratios: Vec<f64>,
    /// Join times in seconds for sessions that joined.
    pub join_times_s: Vec<f64>,
    /// `fault`/`recovery` subsystem counters, sorted by name.
    pub counters: Vec<(String, String, u64)>,
}

impl ChaosPoint {
    /// Mean stall ratio across all sessions of the point.
    pub fn mean_stall_ratio(&self) -> f64 {
        if self.stall_ratios.is_empty() {
            return 0.0;
        }
        self.stall_ratios.iter().sum::<f64>() / self.stall_ratios.len() as f64
    }

    /// Mean join time over joined sessions (NaN if none joined).
    pub fn mean_join_s(&self) -> f64 {
        if self.join_times_s.is_empty() {
            return f64::NAN;
        }
        self.join_times_s.iter().sum::<f64>() / self.join_times_s.len() as f64
    }

    /// Looks up one counter value (0 when the counter never fired).
    pub fn counter(&self, subsystem: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(s, n, _)| s == subsystem && n == name)
            .map(|&(_, _, v)| v)
            .unwrap_or(0)
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// Fault seed the sweep ran with.
    pub seed: u64,
    /// One point per loss scale, in sweep order.
    pub points: Vec<ChaosPoint>,
}

/// Runs the chaos sweep against a lab's service.
///
/// Each point gets its own tracing [`Observer`] so the harvested counters
/// are per-intensity, and its own [`Teleport`] over the *same* RNG
/// namespace so the planned sessions are identical across points.
pub fn run_chaos(lab: &mut Lab, cfg: &ChaosConfig) -> ChaosSweep {
    let rngs = *lab.rngs();
    let svc = lab.service();
    let mut points = Vec::with_capacity(cfg.loss_scales.len());
    for &scale in &cfg.loss_scales {
        let obs = Observer::with_flags(true, false);
        let tp = Teleport::new(svc, rngs.child("chaos"));
        let tcfg = TeleportConfig {
            sessions: cfg.sessions,
            session: SessionConfig {
                faults: FaultConfig::chaos(cfg.seed, scale),
                ..Default::default()
            },
            alternate_devices: true,
            keep_captures_per_protocol: 0,
            threads: cfg.threads,
        };
        let outcomes = tp.run_dataset_observed(&tcfg, &obs);
        let stall_ratios: Vec<f64> = outcomes.iter().map(|o| o.stall_ratio()).collect();
        let join_times_s: Vec<f64> = outcomes.iter().filter_map(|o| o.join_time_s()).collect();
        let never_joined = outcomes.iter().filter(|o| o.player.join_time.is_none()).count();
        let mut counters: Vec<(String, String, u64)> = obs
            .metrics()
            .counters()
            .filter(|(sub, _, _)| *sub == "fault" || *sub == "recovery")
            .map(|(sub, name, v)| (sub.to_string(), name.to_string(), v))
            .collect();
        counters.sort();
        points.push(ChaosPoint {
            loss_scale: scale,
            sessions: outcomes.len(),
            never_joined,
            stall_ratios,
            join_times_s,
            counters,
        });
    }
    ChaosSweep { seed: cfg.seed, points }
}

impl ChaosSweep {
    /// Renders the sweep as figures: stall-ratio and join-time ECDFs (one
    /// series per intensity) plus the fault/recovery counter table.
    pub fn figures(&self) -> Vec<FigureData> {
        let series = |samples: fn(&ChaosPoint) -> &[f64]| {
            self.points
                .iter()
                .filter_map(|p| {
                    let ecdf = Ecdf::new(samples(p)).ok()?;
                    Some((format!("loss x{}", p.loss_scale), ecdf.sampled(20)))
                })
                .collect::<Vec<_>>()
        };
        let mut figures = vec![
            FigureData::Cdf {
                x_label: "stall ratio".to_string(),
                series: series(|p| &p.stall_ratios),
            },
            FigureData::Cdf {
                x_label: "join time (s)".to_string(),
                series: series(|p| &p.join_times_s),
            },
        ];
        // Counter table: one row per counter seen anywhere, one value
        // column per sweep point.
        let mut names: Vec<(String, String)> = self
            .points
            .iter()
            .flat_map(|p| p.counters.iter().map(|(s, n, _)| (s.clone(), n.clone())))
            .collect();
        names.sort();
        names.dedup();
        let mut columns = vec!["counter".to_string()];
        columns.extend(self.points.iter().map(|p| format!("loss x{}", p.loss_scale)));
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(names.len() + 2);
        rows.push(
            std::iter::once("sessions".to_string())
                .chain(self.points.iter().map(|p| p.sessions.to_string()))
                .collect(),
        );
        rows.push(
            std::iter::once("never_joined".to_string())
                .chain(self.points.iter().map(|p| p.never_joined.to_string()))
                .collect(),
        );
        for (sub, name) in names {
            rows.push(
                std::iter::once(format!("{sub}/{name}"))
                    .chain(self.points.iter().map(|p| p.counter(&sub, &name).to_string()))
                    .collect(),
            );
        }
        figures.push(FigureData::Table { columns, rows });
        figures
    }

    /// Hand-rolled JSON for the `CHAOS_sweep.json` artifact.
    pub fn sweep_json(&self) -> String {
        let mut out = format!("{{\n  \"seed\": {},\n  \"points\": [\n", self.seed);
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"loss_scale\": {}, \"sessions\": {}, \"never_joined\": {}, \
                 \"mean_stall_ratio\": {:.6}, \"mean_join_s\": {:.6}, \"counters\": {{",
                p.loss_scale,
                p.sessions,
                p.never_joined,
                p.mean_stall_ratio(),
                if p.join_times_s.is_empty() { -1.0 } else { p.mean_join_s() },
            ));
            for (j, (sub, name, v)) in p.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{sub}/{name}\": {v}"));
            }
            out.push_str("}}");
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(scale: f64, ratios: Vec<f64>, joins: Vec<f64>) -> ChaosPoint {
        ChaosPoint {
            loss_scale: scale,
            sessions: ratios.len(),
            never_joined: ratios.len() - joins.len(),
            stall_ratios: ratios,
            join_times_s: joins,
            counters: vec![
                ("fault".into(), "lost_packets".into(), (scale * 100.0) as u64),
                ("recovery".into(), "retransmits".into(), (scale * 90.0) as u64),
            ],
        }
    }

    fn sweep() -> ChaosSweep {
        ChaosSweep {
            seed: 9,
            points: vec![
                point(0.0, vec![0.0, 0.0, 0.1], vec![1.0, 1.2, 1.1]),
                point(2.0, vec![0.1, 0.2, 1.0], vec![1.4, 1.9]),
            ],
        }
    }

    #[test]
    fn point_statistics() {
        let p = point(2.0, vec![0.1, 0.2, 1.0], vec![1.4, 1.9]);
        assert!((p.mean_stall_ratio() - 13.0 / 30.0).abs() < 1e-12);
        assert!((p.mean_join_s() - 1.65).abs() < 1e-12);
        assert_eq!(p.counter("fault", "lost_packets"), 200);
        assert_eq!(p.counter("fault", "nonexistent"), 0);
    }

    #[test]
    fn figures_have_series_per_point_and_counter_table() {
        let figs = sweep().figures();
        assert_eq!(figs.len(), 3);
        match &figs[0] {
            FigureData::Cdf { x_label, series } => {
                assert_eq!(x_label, "stall ratio");
                assert_eq!(series.len(), 2);
                assert_eq!(series[0].0, "loss x0");
                assert_eq!(series[1].0, "loss x2");
            }
            other => panic!("expected Cdf, got {other:?}"),
        }
        match &figs[2] {
            FigureData::Table { columns, rows } => {
                assert_eq!(columns.len(), 3);
                assert!(rows.iter().any(|r| r[0] == "fault/lost_packets"));
                assert!(rows.iter().any(|r| r[0] == "sessions"));
            }
            other => panic!("expected Table, got {other:?}"),
        }
    }

    #[test]
    fn sweep_json_shape() {
        let json = sweep().sweep_json();
        assert!(json.contains("\"seed\": 9"));
        assert!(json.contains("\"loss_scale\": 2"));
        assert!(json.contains("\"fault/lost_packets\": 200"));
        // Crude balance check on the hand-rolled JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
