//! The chaos sweep: QoE degradation under increasing fault intensity,
//! compared across delivery transports.
//!
//! DESIGN.md §8 introduced the fault layer to answer "how does
//! Periscope-style QoE degrade when the network misbehaves?" — a question
//! the paper could only probe with its `tc` bandwidth sweep (Fig 6).
//! DESIGN.md §12 adds the transport dimension: the same sweep now runs as
//! a **three-way study** — RTMP (loss-as-delay TCP ingest), HLS (segment
//! re-fetch over the CDN) and SRT (NAK/ARQ datagram ingest with a latency
//! window) — so the sweep answers not just "how bad does it get" but
//! "which transport discipline holds up".
//!
//! Every arm of the sweep reuses the same `"chaos"` Teleport RNG namespace,
//! so all (transport × intensity) points run the *same planned sessions*
//! (same broadcasts, same join times) and the SRT sessions reuse RTMP's
//! broadcaster-side RNG streams (common random numbers, DESIGN.md §12):
//! differences between arms measure the transport, not sampling luck.
//! Because [`LossConfig::scaled`] leaves the Gilbert–Elliott state
//! transitions untouched and the chain draws a fixed number of variates
//! per packet, a higher scale loses a *superset* of the packets a lower
//! scale loses on every transport.
//!
//! What the arms actually show in this model: RTMP turns each lost packet
//! into a bounded retransmit delay, so loss appears as monotone join-time
//! and latency growth; SRT conceals too-late packets instead of waiting,
//! so its join time and latency stay flat while `srt/conceals` grows; HLS
//! hides loss inside the closed-form segment-fetch model and degrades only
//! through segment errors. The per-transport SLO reports (evaluated at the
//! nominal ×1 intensity) make the comparison machine-checkable.
//!
//! [`LossConfig::scaled`]: pscp_simnet::fault::LossConfig::scaled

use crate::figures::FigureData;
use crate::lab::Lab;
use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_obs::Observer;
use pscp_qoe::slo::{evaluate, SloReport, SloSpec};
use pscp_qoe::SessionDataset;
use pscp_service::select::Protocol;
use pscp_simnet::fault::FaultConfig;
use pscp_stats::Ecdf;

/// Chaos-sweep settings.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-schedule seed (independent of the lab's world seed).
    pub seed: u64,
    /// Sessions per sweep point.
    pub sessions: usize,
    /// Loss-intensity multipliers applied to the chaos preset's
    /// Gilbert–Elliott loss probabilities (`0.0` = loss off, other fault
    /// classes still active).
    pub loss_scales: Vec<f64>,
    /// Transport arms. `Some(p)` forces every session onto `p`;
    /// `None` runs the paper's viewer-count selection policy (the
    /// pre-transport-study behaviour).
    pub transports: Vec<Option<Protocol>>,
    /// Worker threads per point (`0` = auto). Results are identical at
    /// every setting.
    pub threads: usize,
}

impl ChaosConfig {
    /// The default three-way sweep: 40 sessions per point over five
    /// intensities, one arm per transport.
    pub fn small(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            sessions: 40,
            loss_scales: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            transports: vec![Some(Protocol::Rtmp), Some(Protocol::Hls), Some(Protocol::Srt)],
            threads: 0,
        }
    }
}

/// Display name for a transport arm (`"auto"` = selection policy).
pub fn transport_name(t: Option<Protocol>) -> &'static str {
    t.map(Protocol::name).unwrap_or("auto")
}

/// Parses a comma-separated transport list (`rtmp,hls,srt,auto`) into
/// sweep arms — the `repro chaos --transports` argument.
pub fn parse_transports(list: &str) -> Result<Vec<Option<Protocol>>, String> {
    list.split(',')
        .map(|t| match t.trim().to_ascii_lowercase().as_str() {
            "rtmp" => Ok(Some(Protocol::Rtmp)),
            "hls" => Ok(Some(Protocol::Hls)),
            "srt" => Ok(Some(Protocol::Srt)),
            "auto" => Ok(None),
            other => Err(format!("unknown transport '{other}' — expected rtmp|hls|srt|auto")),
        })
        .collect()
}

/// One sweep point: QoE samples plus fault/recovery counters.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Transport arm this point ran in (`None` = selection policy).
    pub transport: Option<Protocol>,
    /// Loss multiplier this point ran at.
    pub loss_scale: f64,
    /// Sessions that actually ran.
    pub sessions: usize,
    /// Sessions that never started playback.
    pub never_joined: usize,
    /// Per-session stall ratios (includes never-joined sessions at 1.0).
    pub stall_ratios: Vec<f64>,
    /// Join times in seconds for sessions that joined.
    pub join_times_s: Vec<f64>,
    /// `fault`/`recovery`/`srt` subsystem counters, sorted by name.
    pub counters: Vec<(String, String, u64)>,
}

impl ChaosPoint {
    /// Short arm label, e.g. `"SRT x2"`.
    pub fn label(&self) -> String {
        format!("{} x{}", transport_name(self.transport), self.loss_scale)
    }

    /// Mean stall ratio across all sessions of the point.
    pub fn mean_stall_ratio(&self) -> f64 {
        if self.stall_ratios.is_empty() {
            return 0.0;
        }
        self.stall_ratios.iter().sum::<f64>() / self.stall_ratios.len() as f64
    }

    /// Mean join time over joined sessions (NaN if none joined).
    pub fn mean_join_s(&self) -> f64 {
        if self.join_times_s.is_empty() {
            return f64::NAN;
        }
        self.join_times_s.iter().sum::<f64>() / self.join_times_s.len() as f64
    }

    /// Looks up one counter value (0 when the counter never fired).
    pub fn counter(&self, subsystem: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(s, n, _)| s == subsystem && n == name)
            .map(|&(_, _, v)| v)
            .unwrap_or(0)
    }
}

/// One per-transport SLO evaluation (at the sweep's nominal intensity).
#[derive(Debug, Clone)]
pub struct ChaosSlo {
    /// Transport arm the report covers.
    pub transport: Option<Protocol>,
    /// The loss scale the report was evaluated at.
    pub loss_scale: f64,
    /// The full SLO/attribution report for that arm.
    pub report: SloReport,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// Fault seed the sweep ran with.
    pub seed: u64,
    /// One point per (transport, loss scale), transport-major, in sweep
    /// order.
    pub points: Vec<ChaosPoint>,
    /// One SLO report per transport arm, evaluated at the loss scale
    /// closest to the nominal ×1 intensity.
    pub slo: Vec<ChaosSlo>,
}

/// Runs the chaos sweep against a lab's service.
///
/// Each point gets its own tracing [`Observer`] so the harvested counters
/// are per-point, and its own [`Teleport`] over the *same* RNG namespace
/// so the planned sessions are identical across every arm and intensity.
pub fn run_chaos(lab: &mut Lab, cfg: &ChaosConfig) -> ChaosSweep {
    let rngs = *lab.rngs();
    let svc = lab.service();
    // The SLO arm reports are evaluated at the scale closest to ×1 so
    // "does this transport meet the paper's objectives under nominal
    // chaos?" has one answer per arm instead of one per point.
    let nominal = cfg
        .loss_scales
        .iter()
        .copied()
        .min_by(|a, b| (a - 1.0).abs().partial_cmp(&(b - 1.0).abs()).expect("finite loss scales"))
        .unwrap_or(1.0);
    let mut points = Vec::with_capacity(cfg.transports.len() * cfg.loss_scales.len());
    let mut slo = Vec::with_capacity(cfg.transports.len());
    for &transport in &cfg.transports {
        for &scale in &cfg.loss_scales {
            let obs = Observer::with_flags(true, false);
            let tp = Teleport::new(svc, rngs.child("chaos"));
            let tcfg = TeleportConfig {
                sessions: cfg.sessions,
                session: SessionConfig {
                    faults: FaultConfig::chaos(cfg.seed, scale),
                    transport,
                    ..Default::default()
                },
                alternate_devices: true,
                keep_captures_per_protocol: 0,
                threads: cfg.threads,
                shards: 1,
            };
            let dataset = SessionDataset::new(tp.run_dataset_observed(&tcfg, &obs));
            let stall_ratios: Vec<f64> = dataset.sessions.iter().map(|o| o.stall_ratio()).collect();
            let join_times_s: Vec<f64> =
                dataset.sessions.iter().filter_map(|o| o.join_time_s()).collect();
            let never_joined =
                dataset.sessions.iter().filter(|o| o.player.join_time.is_none()).count();
            let mut counters: Vec<(String, String, u64)> = obs
                .metrics()
                .counters()
                .filter(|(sub, _, _)| *sub == "fault" || *sub == "recovery" || *sub == "srt")
                .map(|(sub, name, v)| (sub.to_string(), name.to_string(), v))
                .collect();
            counters.sort();
            if scale == nominal {
                let label = format!(
                    "chaos transport={} loss x{scale} seed={}",
                    transport_name(transport),
                    cfg.seed
                );
                slo.push(ChaosSlo {
                    transport,
                    loss_scale: scale,
                    report: evaluate(&SloSpec::paper(), &dataset, &obs.spans(), &label),
                });
            }
            points.push(ChaosPoint {
                transport,
                loss_scale: scale,
                sessions: dataset.len(),
                never_joined,
                stall_ratios,
                join_times_s,
                counters,
            });
        }
    }
    ChaosSweep { seed: cfg.seed, points, slo }
}

impl ChaosSweep {
    /// The distinct loss scales, in sweep order.
    fn scales(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.loss_scale) {
                out.push(p.loss_scale);
            }
        }
        out
    }

    /// The distinct transport arms, in sweep order.
    fn transports(&self) -> Vec<Option<Protocol>> {
        let mut out = Vec::new();
        for p in &self.points {
            if !out.contains(&p.transport) {
                out.push(p.transport);
            }
        }
        out
    }

    /// All points of one transport arm, in scale order.
    pub fn arm(&self, transport: Option<Protocol>) -> Vec<&ChaosPoint> {
        self.points.iter().filter(|p| p.transport == transport).collect()
    }

    /// Renders the sweep as figures: stall-ratio and join-time ECDFs (one
    /// series per point), per-transport mean tables, and the
    /// fault/recovery counter table.
    pub fn figures(&self) -> Vec<FigureData> {
        let series = |samples: fn(&ChaosPoint) -> &[f64]| {
            self.points
                .iter()
                .filter_map(|p| {
                    let ecdf = Ecdf::new(samples(p)).ok()?;
                    Some((p.label(), ecdf.sampled(20)))
                })
                .collect::<Vec<_>>()
        };
        let mut figures = vec![
            FigureData::Cdf {
                x_label: "stall ratio".to_string(),
                series: series(|p| &p.stall_ratios),
            },
            FigureData::Cdf {
                x_label: "join time (s)".to_string(),
                series: series(|p| &p.join_times_s),
            },
        ];
        // Three-way mean tables: one row per transport, one column per
        // loss scale — the "which transport holds up" summary.
        let scales = self.scales();
        let mean_table = |metric: &str, value: fn(&ChaosPoint) -> f64| {
            let mut columns = vec![metric.to_string()];
            columns.extend(scales.iter().map(|s| format!("loss x{s}")));
            let rows = self
                .transports()
                .into_iter()
                .map(|t| {
                    let mut row = vec![transport_name(t).to_string()];
                    for &s in &scales {
                        let cell = self
                            .points
                            .iter()
                            .find(|p| p.transport == t && p.loss_scale == s)
                            .map(|p| format!("{:.4}", value(p)))
                            .unwrap_or_else(|| "-".to_string());
                        row.push(cell);
                    }
                    row
                })
                .collect();
            FigureData::Table { columns, rows }
        };
        figures.push(mean_table("mean stall ratio", ChaosPoint::mean_stall_ratio));
        figures.push(mean_table("mean join (s)", ChaosPoint::mean_join_s));
        // Counter table: one row per counter seen anywhere, one value
        // column per sweep point.
        let mut names: Vec<(String, String)> = self
            .points
            .iter()
            .flat_map(|p| p.counters.iter().map(|(s, n, _)| (s.clone(), n.clone())))
            .collect();
        names.sort();
        names.dedup();
        let mut columns = vec!["counter".to_string()];
        columns.extend(self.points.iter().map(|p| p.label()));
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(names.len() + 2);
        rows.push(
            std::iter::once("sessions".to_string())
                .chain(self.points.iter().map(|p| p.sessions.to_string()))
                .collect(),
        );
        rows.push(
            std::iter::once("never_joined".to_string())
                .chain(self.points.iter().map(|p| p.never_joined.to_string()))
                .collect(),
        );
        for (sub, name) in names {
            rows.push(
                std::iter::once(format!("{sub}/{name}"))
                    .chain(self.points.iter().map(|p| p.counter(&sub, &name).to_string()))
                    .collect(),
            );
        }
        figures.push(FigureData::Table { columns, rows });
        figures
    }

    /// Hand-rolled JSON for the `CHAOS_sweep.json` artifact.
    ///
    /// Schema (documented in EXPERIMENTS.md): top-level `seed`,
    /// `transports` (arm names in sweep order), `points` (transport-major
    /// `(transport, loss_scale)` objects with session counts, mean QoE and
    /// the per-point counters), and `slo` (one per-arm pass/fail summary
    /// with the names of any failed objectives).
    pub fn sweep_json(&self) -> String {
        let mut out = format!("{{\n  \"seed\": {},\n  \"transports\": [", self.seed);
        for (i, t) in self.transports().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", transport_name(t)));
        }
        out.push_str("],\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"transport\": \"{}\", \"loss_scale\": {}, \"sessions\": {}, \
                 \"never_joined\": {}, \"mean_stall_ratio\": {:.6}, \"mean_join_s\": {:.6}, \
                 \"counters\": {{",
                transport_name(p.transport),
                p.loss_scale,
                p.sessions,
                p.never_joined,
                p.mean_stall_ratio(),
                if p.join_times_s.is_empty() { -1.0 } else { p.mean_join_s() },
            ));
            for (j, (sub, name, v)) in p.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{sub}/{name}\": {v}"));
            }
            out.push_str("}}");
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"slo\": [\n");
        for (i, arm) in self.slo.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"transport\": \"{}\", \"loss_scale\": {}, \"pass\": {}, \"failed\": [",
                transport_name(arm.transport),
                arm.loss_scale,
                arm.report.pass(),
            ));
            let failed: Vec<&str> =
                arm.report.objectives.iter().filter(|o| !o.pass).map(|o| o.name).collect();
            for (j, name) in failed.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\""));
            }
            out.push_str("]}");
            if i + 1 < self.slo.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(
        transport: Option<Protocol>,
        scale: f64,
        ratios: Vec<f64>,
        joins: Vec<f64>,
    ) -> ChaosPoint {
        ChaosPoint {
            transport,
            loss_scale: scale,
            sessions: ratios.len(),
            never_joined: ratios.len() - joins.len(),
            stall_ratios: ratios,
            join_times_s: joins,
            counters: vec![
                ("fault".into(), "lost_packets".into(), (scale * 100.0) as u64),
                ("recovery".into(), "retransmits".into(), (scale * 90.0) as u64),
            ],
        }
    }

    fn sweep() -> ChaosSweep {
        ChaosSweep {
            seed: 9,
            points: vec![
                point(Some(Protocol::Rtmp), 0.0, vec![0.0, 0.0, 0.1], vec![1.0, 1.2, 1.1]),
                point(Some(Protocol::Rtmp), 2.0, vec![0.1, 0.2, 1.0], vec![1.4, 1.9]),
                point(Some(Protocol::Srt), 0.0, vec![0.0, 0.0, 0.0], vec![1.0, 1.1, 1.2]),
                point(Some(Protocol::Srt), 2.0, vec![0.0, 0.1, 0.1], vec![1.0, 1.2, 1.1]),
            ],
            slo: Vec::new(),
        }
    }

    #[test]
    fn point_statistics() {
        let p = point(Some(Protocol::Rtmp), 2.0, vec![0.1, 0.2, 1.0], vec![1.4, 1.9]);
        assert!((p.mean_stall_ratio() - 13.0 / 30.0).abs() < 1e-12);
        assert!((p.mean_join_s() - 1.65).abs() < 1e-12);
        assert_eq!(p.counter("fault", "lost_packets"), 200);
        assert_eq!(p.counter("fault", "nonexistent"), 0);
        assert_eq!(p.label(), "RTMP x2");
        assert_eq!(transport_name(None), "auto");
    }

    #[test]
    fn arm_selects_one_transport_in_scale_order() {
        let s = sweep();
        let srt = s.arm(Some(Protocol::Srt));
        assert_eq!(srt.len(), 2);
        assert!(srt.iter().all(|p| p.transport == Some(Protocol::Srt)));
        assert_eq!(srt[0].loss_scale, 0.0);
        assert_eq!(srt[1].loss_scale, 2.0);
        assert!(s.arm(Some(Protocol::Hls)).is_empty());
    }

    #[test]
    fn figures_have_series_per_point_and_tables() {
        let figs = sweep().figures();
        assert_eq!(figs.len(), 5);
        match &figs[0] {
            FigureData::Cdf { x_label, series } => {
                assert_eq!(x_label, "stall ratio");
                assert_eq!(series.len(), 4);
                assert_eq!(series[0].0, "RTMP x0");
                assert_eq!(series[3].0, "SRT x2");
            }
            other => panic!("expected Cdf, got {other:?}"),
        }
        match &figs[2] {
            FigureData::Table { columns, rows } => {
                assert_eq!(columns[0], "mean stall ratio");
                assert_eq!(columns.len(), 3); // metric + 2 scales
                assert_eq!(rows.len(), 2); // RTMP + SRT
                assert_eq!(rows[0][0], "RTMP");
                assert_eq!(rows[1][0], "SRT");
            }
            other => panic!("expected Table, got {other:?}"),
        }
        match &figs[4] {
            FigureData::Table { columns, rows } => {
                assert_eq!(columns.len(), 5); // counter + 4 points
                assert!(rows.iter().any(|r| r[0] == "fault/lost_packets"));
                assert!(rows.iter().any(|r| r[0] == "sessions"));
            }
            other => panic!("expected Table, got {other:?}"),
        }
    }

    #[test]
    fn transports_parse_strictly() {
        assert_eq!(
            parse_transports("rtmp,hls,srt,auto").unwrap(),
            vec![Some(Protocol::Rtmp), Some(Protocol::Hls), Some(Protocol::Srt), None],
        );
        assert_eq!(parse_transports(" SRT ").unwrap(), vec![Some(Protocol::Srt)]);
        assert!(parse_transports("rtmp,quic").unwrap_err().contains("quic"));
    }

    #[test]
    fn sweep_json_shape() {
        let json = sweep().sweep_json();
        assert!(json.contains("\"seed\": 9"));
        assert!(json.contains("\"transports\": [\"RTMP\", \"SRT\"]"));
        assert!(json.contains("\"transport\": \"SRT\", \"loss_scale\": 2"));
        assert!(json.contains("\"fault/lost_packets\": 200"));
        assert!(json.contains("\"slo\": ["));
        // Crude balance check on the hand-rolled JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
