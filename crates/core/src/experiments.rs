//! The experiment registry: one entry per paper figure/table.
//!
//! Each experiment regenerates its artifact from scratch through the
//! [`Lab`]; ids match the E-numbers in DESIGN.md §3 and the `repro` binary's
//! command-line names.

use crate::figures::{BoxRow, FigureData};
use crate::lab::Lab;
use pscp_energy::model::PowerModel;
use pscp_media::analysis::GopClass;
use pscp_qoe::compare::device_comparison;
use pscp_qoe::delivery::analyze_session;
use pscp_qoe::SessionDataset;
use pscp_service::select::Protocol;
use pscp_stats::table::fnum;
use pscp_stats::Ecdf;

/// A runnable experiment.
pub struct Experiment {
    /// Command-line id (e.g. `fig3a`).
    pub id: &'static str,
    /// The paper artifact it regenerates.
    pub paper_ref: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The runner.
    pub run: fn(&mut Lab) -> FigureData,
}

/// All experiments in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1a",
            paper_ref: "Figure 1(a)",
            title: "Cumulative broadcasts discovered vs areas queried (deep crawls)",
            run: fig1a,
        },
        Experiment {
            id: "fig1b",
            paper_ref: "Figure 1(b)",
            title: "Relative concentration: fraction of broadcasts vs fraction of areas",
            run: fig1b,
        },
        Experiment {
            id: "fig2a",
            paper_ref: "Figure 2(a)",
            title: "CDF of broadcast duration and average viewers",
            run: fig2a,
        },
        Experiment {
            id: "fig2b",
            paper_ref: "Figure 2(b)",
            title: "Average viewers per broadcast vs local start hour",
            run: fig2b,
        },
        Experiment {
            id: "table-usage",
            paper_ref: "§4 statistics",
            title: "Usage-pattern statistics (zero-viewer share, durations, correlation)",
            run: table_usage,
        },
        Experiment {
            id: "fig3a",
            paper_ref: "Figure 3(a)",
            title: "Stall-ratio CDF for RTMP without bandwidth limiting",
            run: fig3a,
        },
        Experiment {
            id: "fig3b",
            paper_ref: "Figure 3(b)",
            title: "Stall ratio vs bandwidth limit (boxplots)",
            run: fig3b,
        },
        Experiment {
            id: "fig4a",
            paper_ref: "Figure 4(a)",
            title: "Join time vs bandwidth limit (boxplots)",
            run: fig4a,
        },
        Experiment {
            id: "fig4b",
            paper_ref: "Figure 4(b)",
            title: "Playback latency vs bandwidth limit (boxplots)",
            run: fig4b,
        },
        Experiment {
            id: "fig5",
            paper_ref: "Figure 5",
            title: "Video delivery latency CDF: HLS vs RTMP",
            run: fig5,
        },
        Experiment {
            id: "fig6a",
            paper_ref: "Figure 6(a)",
            title: "Video bitrate CDF: HLS vs RTMP",
            run: fig6a,
        },
        Experiment {
            id: "fig6b",
            paper_ref: "Figure 6(b)",
            title: "Average QP vs bitrate scatter",
            run: fig6b,
        },
        Experiment {
            id: "table-video",
            paper_ref: "§5.2 statistics",
            title: "Frame patterns, I-interval, segment durations, audio bitrate",
            run: table_video,
        },
        Experiment {
            id: "fig7",
            paper_ref: "Figure 7",
            title: "Average power consumption per scenario (WiFi/LTE)",
            run: fig7,
        },
        Experiment {
            id: "table-chat",
            paper_ref: "§5.1 chat traffic",
            title: "Chat on/off aggregate traffic rates and picture re-downloads",
            run: table_chat,
        },
        Experiment {
            id: "table-protocol",
            paper_ref: "§5 protocol split",
            title: "HLS threshold, server fleet sizes, session counts",
            run: table_protocol,
        },
        Experiment {
            id: "table-ttest",
            paper_ref: "§5 Welch t-tests",
            title: "Galaxy S3 vs S4 device comparison",
            run: table_ttest,
        },
        Experiment {
            id: "table-latency",
            paper_ref: "§5.1 latency anatomy",
            title: "Playback latency decomposition: delivery vs buffering",
            run: table_latency,
        },
        Experiment {
            id: "table-api",
            paper_ref: "Table 1",
            title: "Relevant Periscope API commands",
            run: table_api,
        },
    ]
}

/// Looks up an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

// ---------------------------------------------------------------- crawling

/// UTC hours the four crawls start at (the paper crawled at different
/// times of day).
const CRAWL_HOURS: [f64; 4] = [2.0, 8.0, 14.0, 20.0];

fn fig1a(lab: &mut Lab) -> FigureData {
    let series = CRAWL_HOURS
        .iter()
        .zip(lab.deep_crawls_at(&CRAWL_HOURS))
        .map(|(&h, crawl)| {
            let pts =
                crawl.cumulative_curve().into_iter().map(|(q, c)| (q as f64, c as f64)).collect();
            (format!("crawl@{h:02.0}h"), pts)
        })
        .collect();
    FigureData::Scatter {
        x_label: "areas queried".to_string(),
        y_label: "live broadcasts found".to_string(),
        series,
    }
}

fn fig1b(lab: &mut Lab) -> FigureData {
    let series = CRAWL_HOURS
        .iter()
        .zip(lab.deep_crawls_at(&CRAWL_HOURS))
        .map(|(&h, crawl)| {
            let pts = crawl
                .concentration_curve()
                .into_iter()
                .map(|(a, b)| (a * 100.0, b * 100.0))
                .collect();
            (format!("crawl@{h:02.0}h"), pts)
        })
        .collect();
    FigureData::Scatter {
        x_label: "areas queried (%)".to_string(),
        y_label: "live broadcasts found (%)".to_string(),
        series,
    }
}

fn fig2a(lab: &mut Lab) -> FigureData {
    let crawl = lab.targeted_crawl_at(12.0);
    let ended = crawl.ended_broadcasts();
    let (dur, viewers) =
        pscp_crawler::analysis::fig2a_cdfs(&ended).expect("crawl yields observations");
    FigureData::Cdf {
        x_label: "duration (min) / avg viewers".to_string(),
        series: vec![
            ("duration".to_string(), dur.sampled(60)),
            ("viewers".to_string(), viewers.sampled(60)),
        ],
    }
}

fn fig2b(lab: &mut Lab) -> FigureData {
    // Pool several crawls at different phases so every local hour is
    // populated, as the paper's four 4-10 h crawls jointly cover the day.
    let mut sums = [0.0f64; 24];
    let mut counts = [0u32; 24];
    for crawl in lab.targeted_crawls_at(&CRAWL_HOURS) {
        let ended = crawl.ended_broadcasts();
        for (hour, avg) in
            pscp_crawler::analysis::fig2b_viewers_by_local_hour(&ended, crawl.utc_start_hour)
        {
            sums[hour as usize] += avg;
            counts[hour as usize] += 1;
        }
    }
    let pts: Vec<(f64, f64)> = (0..24)
        .filter(|&h| counts[h] > 0)
        .map(|h| (h as f64, sums[h] / counts[h] as f64))
        .collect();
    FigureData::Scatter {
        x_label: "local time of day (h)".to_string(),
        y_label: "avg viewers per broadcast".to_string(),
        series: vec![("viewers".to_string(), pts)],
    }
}

fn table_usage(lab: &mut Lab) -> FigureData {
    let crawl = lab.targeted_crawl_at(12.0);
    let ended = crawl.ended_broadcasts();
    let stats = pscp_crawler::analysis::usage_stats(&ended).expect("enough observations");
    FigureData::Table {
        columns: vec!["stat".to_string(), "value".to_string(), "paper".to_string()],
        rows: vec![
            vec![
                "broadcasts observed".into(),
                stats.n_broadcasts.to_string(),
                "~220K (4 crawls)".into(),
            ],
            vec!["median duration (min)".into(), fnum(stats.median_duration_min, 2), "~4".into()],
            vec![
                "fraction 1-10 min".into(),
                fnum(stats.frac_duration_1_to_10_min, 3),
                "most".into(),
            ],
            vec![
                "fraction <20 viewers".into(),
                fnum(stats.frac_under_20_viewers, 3),
                ">0.9".into(),
            ],
            vec!["fraction zero viewers".into(), fnum(stats.frac_zero_viewers, 3), ">0.1".into()],
            vec![
                "zero-viewer unreplayable".into(),
                fnum(stats.frac_zero_viewer_unreplayable, 3),
                ">0.8".into(),
            ],
            vec![
                "zero-viewer avg duration (min)".into(),
                fnum(stats.zero_viewer_avg_duration_min, 2),
                "~2".into(),
            ],
            vec![
                "viewed avg duration (min)".into(),
                fnum(stats.viewed_avg_duration_min, 2),
                "~13".into(),
            ],
            vec![
                "zero-viewer time share".into(),
                fnum(stats.zero_viewer_time_share, 3),
                "~0.02".into(),
            ],
            vec![
                "duration-popularity correlation".into(),
                fnum(stats.duration_popularity_correlation, 3),
                "very weak".into(),
            ],
        ],
    }
}

// -------------------------------------------------------------------- QoE

fn fig3a(lab: &mut Lab) -> FigureData {
    let dataset = lab.session_dataset();
    let ratios = SessionDataset::stall_ratios(&dataset.unlimited(Protocol::Rtmp));
    let ecdf = Ecdf::new(&ratios).expect("rtmp sessions exist");
    FigureData::Cdf {
        x_label: "stall ratio".to_string(),
        series: vec![("RTMP (no limit)".to_string(), ecdf.steps())],
    }
}

fn sweep_labels(lab: &Lab) -> Vec<f64> {
    let mut limits = lab.config.limits_mbps.clone();
    limits.push(100.0); // the paper plots unlimited as "100"
    limits
}

fn boxplot_figure(
    lab: &mut Lab,
    metric_name: &str,
    metric: fn(&[&pscp_client::SessionOutcome]) -> Vec<f64>,
    rtmp_only: bool,
) -> FigureData {
    let limits = sweep_labels(lab);
    let dataset = lab.session_dataset();
    let groups = limits
        .iter()
        .filter_map(|&l| {
            let group: Vec<&pscp_client::SessionOutcome> = if l >= 100.0 {
                dataset.sessions.iter().filter(|s| s.bandwidth_limit_bps.is_none()).collect()
            } else {
                dataset.at_limit(l)
            };
            let group: Vec<&pscp_client::SessionOutcome> = if rtmp_only {
                group.into_iter().filter(|s| s.protocol == Protocol::Rtmp).collect()
            } else {
                group
            };
            let values = metric(&group);
            pscp_stats::BoxplotSummary::of(&values)
                .ok()
                .map(|s| BoxRow::from((fnum(l, 1).as_str(), &s)))
        })
        .collect();
    FigureData::Boxplots {
        group_label: "bandwidth limit (Mbps; 100 = unlimited)".to_string(),
        metric: metric_name.to_string(),
        groups,
    }
}

fn fig3b(lab: &mut Lab) -> FigureData {
    boxplot_figure(lab, "stall ratio (RTMP)", SessionDataset::stall_ratios, true)
}

fn fig4a(lab: &mut Lab) -> FigureData {
    boxplot_figure(lab, "join time (s, RTMP)", SessionDataset::join_times_s, true)
}

fn fig4b(lab: &mut Lab) -> FigureData {
    boxplot_figure(lab, "playback latency (s, RTMP)", SessionDataset::playback_latencies_s, true)
}

/// Maximum sessions per protocol to run capture analysis on (keeps fig5/6
/// latency reasonable at paper scale; the cap is recorded in the output).
const ANALYSIS_CAP: usize = 300;

fn analyzed_reports(lab: &mut Lab, protocol: Protocol) -> Vec<pscp_media::analysis::StreamReport> {
    let dataset = lab.session_dataset();
    // Capture reconstruction is the per-session hot spot of fig5/6;
    // sessions are independent, so fan out and keep dataset order.
    let selected: Vec<&pscp_client::SessionOutcome> =
        dataset.unlimited(protocol).into_iter().take(ANALYSIS_CAP).collect();
    lab.par_phase("analysis.captures", &selected, |_, s| analyze_session(s))
        .into_iter()
        .flatten()
        .collect()
}

fn fig5(lab: &mut Lab) -> FigureData {
    let mut series = Vec::new();
    for protocol in [Protocol::Hls, Protocol::Rtmp] {
        let latencies: Vec<f64> = analyzed_reports(lab, protocol)
            .iter()
            .filter_map(|r| r.mean_delivery_latency_s())
            .collect();
        if let Ok(ecdf) = Ecdf::new(&latencies) {
            series.push((protocol.name().to_string(), ecdf.sampled(50)));
        }
    }
    FigureData::Cdf { x_label: "video delivery latency (s)".to_string(), series }
}

fn fig6a(lab: &mut Lab) -> FigureData {
    let mut series = Vec::new();
    for protocol in [Protocol::Hls, Protocol::Rtmp] {
        let rates: Vec<f64> =
            analyzed_reports(lab, protocol).iter().map(|r| r.bitrate_bps / 1e6).collect();
        if let Ok(ecdf) = Ecdf::new(&rates) {
            series.push((protocol.name().to_string(), ecdf.sampled(50)));
        }
    }
    FigureData::Cdf { x_label: "bitrate (Mbit/s)".to_string(), series }
}

fn fig6b(lab: &mut Lab) -> FigureData {
    let mut series = Vec::new();
    for protocol in [Protocol::Hls, Protocol::Rtmp] {
        let pts: Vec<(f64, f64)> = analyzed_reports(lab, protocol)
            .iter()
            .map(|r| (r.bitrate_bps / 1e6, r.avg_qp))
            .collect();
        if !pts.is_empty() {
            series.push((protocol.name().to_string(), pts));
        }
    }
    FigureData::Scatter {
        x_label: "bitrate (Mbit/s)".to_string(),
        y_label: "avg QP".to_string(),
        series,
    }
}

fn table_video(lab: &mut Lab) -> FigureData {
    let rtmp = analyzed_reports(lab, Protocol::Rtmp);
    let hls = analyzed_reports(lab, Protocol::Hls);
    let gop_frac = |reports: &[pscp_media::analysis::StreamReport], class: GopClass| {
        if reports.is_empty() {
            return 0.0;
        }
        reports.iter().filter(|r| r.gop == class).count() as f64 / reports.len() as f64
    };
    let mean =
        |xs: &[f64]| if xs.is_empty() { 0.0 } else { xs.iter().sum::<f64>() / xs.len() as f64 };
    let i_intervals: Vec<f64> = rtmp.iter().chain(&hls).map(|r| r.i_interval).collect();
    let seg_durations: Vec<f64> =
        hls.iter().flat_map(|r| r.segment_durations_s.iter().copied()).collect();
    let modal_3_6 = if seg_durations.is_empty() {
        0.0
    } else {
        seg_durations.iter().filter(|&&d| (3.3..=3.9).contains(&d)).count() as f64
            / seg_durations.len() as f64
    };
    let audio_rates: Vec<f64> =
        rtmp.iter().chain(&hls).filter_map(|r| r.audio_bitrate_bps).map(|b| b / 1000.0).collect();
    let seg_min = seg_durations.iter().cloned().fold(f64::INFINITY, f64::min);
    let seg_max = seg_durations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    FigureData::Table {
        columns: vec!["stat".to_string(), "value".to_string(), "paper".to_string()],
        rows: vec![
            vec![
                "RTMP I+P-only fraction".into(),
                fnum(gop_frac(&rtmp, GopClass::IpOnly), 3),
                "0.200".into(),
            ],
            vec![
                "HLS I+P-only fraction".into(),
                fnum(gop_frac(&hls, GopClass::IpOnly), 3),
                "0.184".into(),
            ],
            vec![
                "I-only streams".into(),
                format!("{}", rtmp.iter().chain(&hls).filter(|r| r.gop == GopClass::IOnly).count()),
                "2".into(),
            ],
            vec!["mean I-frame interval".into(), fnum(mean(&i_intervals), 1), "~36".into()],
            vec!["segment durations at 3.6s".into(), fnum(modal_3_6, 3), "0.60".into()],
            vec![
                "segment duration range (s)".into(),
                format!("{}..{}", fnum(seg_min, 1), fnum(seg_max, 1)),
                "3..6".into(),
            ],
            vec![
                "mean audio bitrate (kbps)".into(),
                fnum(mean(&audio_rates), 1),
                "32 or 64".into(),
            ],
            vec![
                "resolution".into(),
                rtmp.first().map(|r| format!("{}x{}", r.width, r.height)).unwrap_or_default(),
                "320x568".into(),
            ],
        ],
    }
}

// ------------------------------------------------------------------ energy

fn fig7(lab: &mut Lab) -> FigureData {
    let model = PowerModel::default();
    let mut trace = lab.observer().trace();
    let table = pscp_energy::scenarios::figure7_traced(&model, &mut trace);
    if lab.observer().tracing() {
        lab.observer().absorb("energy", trace);
    }
    FigureData::Bars {
        group_label: "scenario".to_string(),
        bar_names: vec![
            "WiFi (model)".to_string(),
            "LTE (model)".to_string(),
            "WiFi (paper)".to_string(),
            "LTE (paper)".to_string(),
        ],
        groups: table
            .into_iter()
            .map(|(s, wifi, lte)| {
                let (pw, pl) = s.paper_mw();
                (s.label().to_string(), vec![wifi, lte, pw, pl])
            })
            .collect(),
    }
}

fn table_chat(lab: &mut Lab) -> FigureData {
    use pscp_client::rtmp_session;
    use pscp_client::session::SessionConfig;
    use pscp_media::capture::FlowKind;
    // A popular (active chat) broadcast watched twice: chat off, chat on.
    let svc = lab.service();
    let t = pscp_simnet::SimTime::from_secs(600);
    let broadcast = svc
        .population
        .live_at(t)
        .into_iter()
        .filter(|b| b.viewers_at(t) > 80)
        .max_by_key(|b| b.viewers_at(t))
        .or_else(|| svc.population.live_at(t).into_iter().max_by_key(|b| b.viewers_at(t)))
        .expect("population has live broadcasts")
        .clone();
    let rngs = lab.rngs().child("chat-experiment");
    let run = |chat_on: bool| {
        let cfg = SessionConfig { chat_on, ..Default::default() };
        rtmp_session::run(&broadcast, t, &cfg, &rngs)
    };
    let off = run(false);
    let on = run(true);
    let rate = |o: &pscp_client::SessionOutcome| {
        o.capture.rate_of_kinds(&[FlowKind::Rtmp, FlowKind::Chat, FlowKind::PictureHttp]) / 1e3
    };
    let pic_flows = on.capture.flows_of_kind(FlowKind::PictureHttp);
    let pic_bytes: usize = pic_flows.iter().map(|f| f.byte_count()).sum();
    FigureData::Table {
        columns: vec!["stat".to_string(), "value".to_string(), "paper".to_string()],
        rows: vec![
            vec!["aggregate rate chat off (kbps)".into(), fnum(rate(&off), 0), "~500".into()],
            vec!["aggregate rate chat on (kbps)".into(), fnum(rate(&on), 0), "up to 3500".into()],
            vec![
                "rate increase factor".into(),
                fnum(rate(&on) / rate(&off).max(1.0), 2),
                "~7x in one experiment".into(),
            ],
            vec!["picture bytes (chat on)".into(), pic_bytes.to_string(), "dominant".into()],
            vec!["broadcast viewers".into(), on.viewers_at_join.to_string(), String::new()],
        ],
    }
}

// ---------------------------------------------------------------- protocol

fn table_protocol(lab: &mut Lab) -> FigureData {
    let dataset = lab.session_dataset();
    let rtmp_servers = dataset.distinct_servers(Protocol::Rtmp);
    let hls_servers = dataset.distinct_servers(Protocol::Hls);
    let rtmp_mean = dataset.mean_viewers_at_join(Protocol::Rtmp).unwrap_or(0.0);
    let hls_mean = dataset.mean_viewers_at_join(Protocol::Hls).unwrap_or(0.0);
    FigureData::Table {
        columns: vec!["stat".to_string(), "value".to_string(), "paper".to_string()],
        rows: vec![
            vec![
                "RTMP sessions".into(),
                dataset.by_protocol(Protocol::Rtmp).len().to_string(),
                "1796 (unlimited)".into(),
            ],
            vec![
                "HLS sessions".into(),
                dataset.by_protocol(Protocol::Hls).len().to_string(),
                "1586 (unlimited)".into(),
            ],
            vec!["distinct RTMP servers".into(), rtmp_servers.len().to_string(), "87".into()],
            vec!["distinct HLS endpoints".into(), hls_servers.len().to_string(), "2".into()],
            vec!["mean viewers at join (RTMP)".into(), fnum(rtmp_mean, 1), "<100".into()],
            vec!["mean viewers at join (HLS)".into(), fnum(hls_mean, 1), ">100".into()],
            vec![
                "HLS viewer threshold".into(),
                lab.config.service.selection.hls_viewer_threshold.to_string(),
                "~100".into(),
            ],
        ],
    }
}

fn table_ttest(lab: &mut Lab) -> FigureData {
    let dataset = lab.session_dataset();
    let rows = device_comparison(&dataset)
        .into_iter()
        .map(|c| match c.result {
            Some(r) => vec![
                c.metric.to_string(),
                fnum(r.t, 3),
                fnum(r.df, 1),
                fnum(r.p_value, 4),
                if c.significant() { "YES".to_string() } else { "no".to_string() },
            ],
            None => vec![c.metric.to_string(), "-".into(), "-".into(), "-".into(), "-".into()],
        })
        .collect();
    FigureData::Table {
        columns: vec![
            "metric".to_string(),
            "t".to_string(),
            "df".to_string(),
            "p".to_string(),
            "significant@0.05".to_string(),
        ],
        rows,
    }
}

fn table_latency(lab: &mut Lab) -> FigureData {
    // §5.1: "RTMP stream delivery is very fast happening in less than 300ms
    // for 75% of broadcasts on average, which means that the majority of
    // the few seconds of playback latency with those streams comes from
    // buffering."
    let dataset = lab.session_dataset();
    let selected: Vec<&pscp_client::SessionOutcome> =
        dataset.unlimited(Protocol::Rtmp).into_iter().take(ANALYSIS_CAP).collect();
    let pairs = lab.par_phase("analysis.captures", &selected, |_, s| {
        let d = analyze_session(s).and_then(|r| r.mean_delivery_latency_s());
        d.zip(s.meta.playback_latency_s)
    });
    let mut delivery = Vec::new();
    let mut playback = Vec::new();
    for (d, pl) in pairs.into_iter().flatten() {
        delivery.push(d);
        playback.push(pl);
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let p75 = |xs: &[f64]| pscp_stats::quantile(xs, 0.75).unwrap_or(f64::NAN);
    let d_mean = mean(&delivery);
    let p_mean = mean(&playback);
    let buffering = p_mean - d_mean;
    FigureData::Table {
        columns: vec!["stat".to_string(), "value".to_string(), "paper".to_string()],
        rows: vec![
            vec!["sessions decomposed".into(), delivery.len().to_string(), String::new()],
            vec!["RTMP delivery latency p75 (s)".into(), fnum(p75(&delivery), 3), "<0.3".into()],
            vec!["RTMP delivery latency mean (s)".into(), fnum(d_mean, 3), "fast".into()],
            vec!["RTMP playback latency mean (s)".into(), fnum(p_mean, 3), "a few seconds".into()],
            vec![
                "buffering share of playback latency".into(),
                fnum(buffering / p_mean, 3),
                "the majority".into(),
            ],
        ],
    }
}

fn table_api(_lab: &mut Lab) -> FigureData {
    FigureData::Table {
        columns: vec![
            "API request".to_string(),
            "request contents".to_string(),
            "response contents".to_string(),
        ],
        rows: vec![
            vec![
                "mapGeoBroadcastFeed".into(),
                "Coordinates of a rectangle shaped geographical area".into(),
                "List of broadcasts located inside the area".into(),
            ],
            vec![
                "getBroadcasts".into(),
                "List of 13-character broadcast IDs".into(),
                "Descriptions of broadcast IDs (incl. nb of viewers)".into(),
            ],
            vec!["playbackMeta".into(), "Playback statistics".into(), "nothing".into()],
            vec![
                "accessVideo".into(),
                "Broadcast ID".into(),
                "Stream endpoints (RTMP URL or HLS playlist)".into(),
            ],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    fn lab() -> Lab {
        Lab::new(LabConfig::small(1234))
    }

    #[test]
    fn registry_ids_unique_and_resolvable() {
        let exps = all();
        assert_eq!(exps.len(), 19);
        let ids: std::collections::HashSet<&str> = exps.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), exps.len());
        assert!(by_id("fig5").is_some());
        assert!(by_id("nonsense").is_none());
    }

    #[test]
    fn table_api_matches_table1() {
        let mut lab = lab();
        let f = table_api(&mut lab);
        let text = f.render();
        assert!(text.contains("mapGeoBroadcastFeed"));
        assert!(text.contains("13-character"));
        assert!(text.contains("nothing"));
    }

    #[test]
    fn fig7_shapes() {
        let mut lab = lab();
        let f = fig7(&mut lab);
        match &f {
            FigureData::Bars { groups, bar_names, .. } => {
                assert_eq!(groups.len(), 7);
                assert_eq!(bar_names.len(), 4);
                // Chat-on is the hungriest viewing scenario in the model too.
                let chat =
                    groups.iter().find(|(g, _)| g.contains("chat on")).map(|(_, v)| v[0]).unwrap();
                let rtmp =
                    groups.iter().find(|(g, _)| g.contains("RTMP")).map(|(_, v)| v[0]).unwrap();
                assert!(chat > rtmp + 1000.0);
            }
            other => panic!("expected bars, got {other:?}"),
        }
    }

    #[test]
    fn fig3a_cdf_mostly_zero_stalls() {
        let mut lab = lab();
        let f = fig3a(&mut lab);
        match &f {
            FigureData::Cdf { series, .. } => {
                let pts = &series[0].1;
                // F(0.01) — the fraction of sessions with essentially no
                // stalling — should be the majority.
                let near_zero =
                    pts.iter().filter(|(x, _)| *x <= 0.01).map(|(_, f)| *f).fold(0.0f64, f64::max);
                assert!(near_zero > 0.5, "near_zero={near_zero}");
            }
            other => panic!("expected cdf, got {other:?}"),
        }
    }

    #[test]
    fn fig5_hls_slower_than_rtmp() {
        let mut lab = lab();
        let f = fig5(&mut lab);
        let median = |pts: &[(f64, f64)]| {
            pts.iter().find(|(_, f)| *f >= 0.5).map(|(x, _)| *x).unwrap_or(f64::NAN)
        };
        let hls = f.cdf_series("HLS").map(median);
        let rtmp = f.cdf_series("RTMP").map(median);
        if let (Some(h), Some(r)) = (hls, rtmp) {
            assert!(h > r * 3.0, "hls={h} rtmp={r}");
            assert!(r < 1.0, "rtmp median {r}");
        } else {
            panic!("both protocols expected in fig5: {f:?}");
        }
    }

    #[test]
    fn table_protocol_counts() {
        let mut lab = lab();
        let f = table_protocol(&mut lab);
        let rtmp: usize = f.table_value("RTMP sessions").unwrap().parse().unwrap();
        let hls: usize = f.table_value("HLS sessions").unwrap().parse().unwrap();
        assert!(rtmp + hls >= 40);
        let rtmp_servers: usize = f.table_value("distinct RTMP servers").unwrap().parse().unwrap();
        let hls_servers: usize = f.table_value("distinct HLS endpoints").unwrap().parse().unwrap();
        assert!(rtmp_servers > hls_servers);
        assert!(hls_servers <= 2);
    }
}
