//! The figure/table data model and its text renderer.
//!
//! Experiments return [`FigureData`]; the `repro` binary renders it as
//! aligned text, which is what EXPERIMENTS.md records. No plotting
//! dependency — series are printed as tables that plot directly in any
//! external tool.

use pscp_stats::table::{fnum, TextTable};

/// One renderable experiment output.
#[derive(Debug, Clone)]
pub enum FigureData {
    /// One or more CDF curves (x vs cumulative fraction).
    Cdf {
        /// Axis label for x.
        x_label: String,
        /// (series label, sampled (x, F(x)) points).
        series: Vec<(String, Vec<(f64, f64)>)>,
    },
    /// Boxplots over labeled groups.
    Boxplots {
        /// Label of the grouping axis.
        group_label: String,
        /// Metric name.
        metric: String,
        /// (group, n, q1, median, q3, whisker_low, whisker_high).
        groups: Vec<BoxRow>,
    },
    /// Grouped bars (e.g. WiFi/LTE per scenario).
    Bars {
        /// Bar-group axis label.
        group_label: String,
        /// Names of the bars within each group.
        bar_names: Vec<String>,
        /// (group, values aligned with `bar_names`).
        groups: Vec<(String, Vec<f64>)>,
    },
    /// Scatter points, optionally multi-series.
    Scatter {
        /// Axis labels.
        x_label: String,
        /// Y axis label.
        y_label: String,
        /// (series label, points).
        series: Vec<(String, Vec<(f64, f64)>)>,
    },
    /// A free-form key/value statistics table.
    Table {
        /// Column headers.
        columns: Vec<String>,
        /// Row cells.
        rows: Vec<Vec<String>>,
    },
}

/// One boxplot row.
#[derive(Debug, Clone)]
pub struct BoxRow {
    /// Group label (e.g. bandwidth limit).
    pub group: String,
    /// Samples in the group.
    pub n: usize,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Lower whisker.
    pub whisker_low: f64,
    /// Upper whisker.
    pub whisker_high: f64,
}

impl From<(&str, &pscp_stats::BoxplotSummary)> for BoxRow {
    fn from((group, s): (&str, &pscp_stats::BoxplotSummary)) -> Self {
        BoxRow {
            group: group.to_string(),
            n: s.n,
            q1: s.q1,
            median: s.median,
            q3: s.q3,
            whisker_low: s.whisker_low,
            whisker_high: s.whisker_high,
        }
    }
}

impl FigureData {
    /// Renders the figure as text.
    pub fn render(&self) -> String {
        match self {
            FigureData::Cdf { x_label, series } => {
                let mut t = TextTable::new(["series", x_label.as_str(), "F(x)"]);
                for (label, points) in series {
                    for (x, f) in points {
                        t.row([label.clone(), fnum(*x, 4), fnum(*f, 3)]);
                    }
                }
                t.render()
            }
            FigureData::Boxplots { group_label, metric, groups } => {
                let mut t = TextTable::new([
                    group_label.as_str(),
                    "n",
                    "whisker_low",
                    "q1",
                    "median",
                    "q3",
                    "whisker_high",
                ]);
                for g in groups {
                    t.row([
                        g.group.clone(),
                        g.n.to_string(),
                        fnum(g.whisker_low, 3),
                        fnum(g.q1, 3),
                        fnum(g.median, 3),
                        fnum(g.q3, 3),
                        fnum(g.whisker_high, 3),
                    ]);
                }
                format!("metric: {metric}\n{}", t.render())
            }
            FigureData::Bars { group_label, bar_names, groups } => {
                let mut header = vec![group_label.clone()];
                header.extend(bar_names.iter().cloned());
                let mut t = TextTable::new(header);
                for (g, values) in groups {
                    let mut row = vec![g.clone()];
                    row.extend(values.iter().map(|v| fnum(*v, 0)));
                    t.row(row);
                }
                t.render()
            }
            FigureData::Scatter { x_label, y_label, series } => {
                let mut t = TextTable::new(["series", x_label.as_str(), y_label.as_str()]);
                for (label, points) in series {
                    for (x, y) in points {
                        t.row([label.clone(), fnum(*x, 4), fnum(*y, 3)]);
                    }
                }
                t.render()
            }
            FigureData::Table { columns, rows } => {
                let mut t = TextTable::new(columns.iter().map(String::as_str));
                for row in rows {
                    t.row(row.clone());
                }
                t.render()
            }
        }
    }

    /// Convenience: extracts a named CDF series.
    pub fn cdf_series(&self, name: &str) -> Option<&[(f64, f64)]> {
        match self {
            FigureData::Cdf { series, .. } => {
                series.iter().find(|(label, _)| label == name).map(|(_, pts)| pts.as_slice())
            }
            _ => None,
        }
    }

    /// Convenience: looks up a table cell by row key (first column).
    pub fn table_value(&self, row_key: &str) -> Option<&str> {
        match self {
            FigureData::Table { rows, .. } => rows
                .iter()
                .find(|r| r.first().map(String::as_str) == Some(row_key))
                .and_then(|r| r.get(1))
                .map(String::as_str),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_renders_and_queries() {
        let f = FigureData::Cdf {
            x_label: "latency (s)".to_string(),
            series: vec![
                ("RTMP".to_string(), vec![(0.1, 0.5), (0.3, 1.0)]),
                ("HLS".to_string(), vec![(5.0, 0.5)]),
            ],
        };
        let text = f.render();
        assert!(text.contains("RTMP"));
        assert!(text.contains("latency (s)"));
        assert_eq!(f.cdf_series("HLS").unwrap().len(), 1);
        assert!(f.cdf_series("missing").is_none());
    }

    #[test]
    fn table_renders_and_queries() {
        let f = FigureData::Table {
            columns: vec!["stat".to_string(), "value".to_string()],
            rows: vec![
                vec!["median duration (min)".to_string(), "4.1".to_string()],
                vec!["zero-viewer fraction".to_string(), "0.12".to_string()],
            ],
        };
        assert_eq!(f.table_value("zero-viewer fraction"), Some("0.12"));
        assert!(f.render().contains("median duration"));
        assert!(f.table_value("nope").is_none());
    }

    #[test]
    fn boxplots_render() {
        let f = FigureData::Boxplots {
            group_label: "bandwidth (Mbps)".to_string(),
            metric: "stall ratio".to_string(),
            groups: vec![BoxRow {
                group: "2".to_string(),
                n: 30,
                q1: 0.0,
                median: 0.05,
                q3: 0.2,
                whisker_low: 0.0,
                whisker_high: 0.4,
            }],
        };
        let text = f.render();
        assert!(text.contains("stall ratio"));
        assert!(text.contains("0.050"));
    }

    #[test]
    fn bars_render() {
        let f = FigureData::Bars {
            group_label: "scenario".to_string(),
            bar_names: vec!["WiFi".to_string(), "LTE".to_string()],
            groups: vec![("Home screen".to_string(), vec![1067.0, 1006.0])],
        };
        let text = f.render();
        assert!(text.contains("WiFi"));
        assert!(text.contains("1067"));
    }

    #[test]
    fn scatter_renders() {
        let f = FigureData::Scatter {
            x_label: "bitrate".to_string(),
            y_label: "qp".to_string(),
            series: vec![("all".to_string(), vec![(0.3, 30.0)])],
        };
        assert!(f.render().contains("30.000"));
    }
}
