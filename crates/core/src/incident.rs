//! Incident correlation with ground-truth attribution: the closed loop
//! between the fault layer (DESIGN.md §8) and the burn-rate alerting
//! engine (DESIGN.md §14).
//!
//! The chaos sweep answers "how bad does QoE get"; this module answers
//! "would the pager have gone off, and did it blame the right thing".
//! It runs one fault-free control arm plus one chaos arm per transport —
//! all over the same `"chaos"` Teleport RNG namespace, so every arm runs
//! the *same planned sessions* (common random numbers, DESIGN.md §12) —
//! evaluates the full SLO rule set ([`pscp_qoe::alert_rules`] plus the
//! per-shard-cell [`pscp_qoe::cell_rules`]) into an [`AlertTimeline`] per
//! arm, groups firing intervals into incidents, and then does the thing a
//! real pager can't: it joins detected incidents against the *ground
//! truth* fault timeline, which is a pure function of the fault seed
//! ([`FaultConfig::ground_truth_log`]).
//!
//! The join yields a per-rule detector scorecard: how many outage windows
//! were injected, how many a session actually observed (an outage no
//! viewer probed is undetectable by construction — coverage comes from
//! the `probe/<pop>` rings written on every playlist poll), how many were
//! detected, and the detection latency from fault start to the alert
//! boundary. Symptom rules are only ever written when an injected fault
//! was observed, so on this instrumented system recall over observed
//! windows is 1.0 and the false-alarm count on the fault-free control arm
//! is provably zero — the tests in `tests/observability.rs` pin both.
//!
//! Ingest outages are scored only as incident evidence, not in the
//! per-unit scorecard: ingest hostnames are dynamic strings, so the
//! client aggregates them into one `outage/ingest` ring (see DESIGN.md
//! §14 for the caveat).

use crate::chaos::transport_name;
use crate::lab::Lab;
use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_obs::{AlertTimeline, MetricsRegistry, Observer, Span, FAST_WINDOWS, RING_WINDOW_US};
use pscp_qoe::{alert_rules, cell_rules, SloSpec};
use pscp_service::cdn::CdnPop;
use pscp_service::select::Protocol;
use pscp_simnet::fault::FaultConfig;
use pscp_simnet::{GroundTruthWindow, SimTime};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Incident-study settings.
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Fault-schedule seed (independent of the lab's world seed).
    pub seed: u64,
    /// Sessions per arm.
    pub sessions: usize,
    /// Loss multiplier for the chaos arms (the acceptance run uses ×2).
    pub loss_scale: f64,
    /// Chaos arms: `Some(p)` forces every session onto `p`, `None` runs
    /// the viewer-count selection policy. The fault-free control arm is
    /// always run in addition, under the selection policy.
    pub transports: Vec<Option<Protocol>>,
    /// Worker threads per arm (`0` = auto). Results are identical at
    /// every setting.
    pub threads: usize,
    /// Quadtree shards per arm (a power of four). Results are identical
    /// at every setting.
    pub shards: usize,
}

impl IncidentConfig {
    /// The default study: 40 sessions per arm at ×2 loss, one chaos arm
    /// per transport plus the implicit control arm.
    pub fn small(seed: u64) -> IncidentConfig {
        IncidentConfig {
            seed,
            sessions: 40,
            loss_scale: 2.0,
            transports: vec![Some(Protocol::Rtmp), Some(Protocol::Hls), Some(Protocol::Srt)],
            threads: 0,
            shards: 1,
        }
    }
}

/// One evaluated arm: its alert timeline plus the merged registry and
/// span forest it was derived from (kept for scoring and trace export).
#[derive(Debug, Clone)]
pub struct ArmOutcome {
    /// Arm name: `"control"` or a transport name.
    pub name: String,
    /// Whether the chaos fault schedule was active.
    pub faulted: bool,
    /// The arm's deterministic alert timeline.
    pub timeline: AlertTimeline,
    /// The arm's merged metrics registry (rings drive the scorecard).
    pub metrics: MetricsRegistry,
    /// The arm's span forest (drives chrome-trace export).
    pub spans: Vec<(String, Span)>,
}

/// A correlated incident: overlapping or near-adjacent firing intervals
/// of one arm, grouped when they start within one fast window of the
/// group's end.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Arm the incident occurred in.
    pub arm: String,
    /// Earliest firing boundary of the group (sim-µs).
    pub start_us: u64,
    /// Latest resolved boundary of the group (sim-µs).
    pub end_us: u64,
    /// Contributing rule names, sorted.
    pub rules: Vec<String>,
    /// Affected REF_DEPTH quadkeys (from `…/cell=XX` rules), sorted.
    pub cells: Vec<String>,
    /// Dominant join phase of the first firing transition in the group
    /// that had one (`"none"` otherwise).
    pub attribution: String,
}

/// Per-(arm, rule) detector scorecard row for a POP-outage rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleScore {
    /// Arm the row was scored on.
    pub arm: String,
    /// Rule name (`pop_outage/<hostname>`).
    pub rule: String,
    /// Ground-truth outage windows injected inside the horizon.
    pub truth_windows: usize,
    /// Truth windows with at least one probed minute (coverage).
    pub observed: usize,
    /// Observed windows matched by a firing interval.
    pub detected: usize,
    /// `detected / observed` (1.0 when nothing was observable).
    pub recall: f64,
    /// Firing intervals matching no truth window.
    pub false_alarms: usize,
    /// Matched intervals over all intervals (1.0 when none fired).
    pub precision: f64,
    /// Median fault-start → alert-boundary latency in seconds over
    /// detected windows (−1 when none were detected).
    pub median_detection_latency_s: f64,
}

/// The full incident study: per-arm timelines, correlated incidents and
/// the ground-truth scorecard.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Fault seed the study ran with.
    pub seed: u64,
    /// Loss multiplier of the chaos arms.
    pub loss_scale: f64,
    /// Sessions per arm.
    pub sessions: usize,
    /// Shards per arm.
    pub shards: usize,
    /// Ground-truth horizon (the population window), sim-µs.
    pub horizon_us: u64,
    /// Arms in run order: control first, then one per transport.
    pub arms: Vec<ArmOutcome>,
    /// Correlated incidents across all arms, in (arm order, start) order.
    pub incidents: Vec<Incident>,
    /// POP-outage scorecard rows, chaos arms only, in (arm, rule) order.
    pub scorecard: Vec<RuleScore>,
}

/// Runs the incident study against a lab's service.
pub fn run_incidents(lab: &mut Lab, cfg: &IncidentConfig) -> IncidentReport {
    let rngs = *lab.rngs();
    let svc = lab.service();
    let horizon_us = svc.population.config.window.as_micros();
    let spec = SloSpec::paper();
    let mut rules = alert_rules(&spec);
    rules.extend(cell_rules(&spec));
    let chaos = FaultConfig::chaos(cfg.seed, cfg.loss_scale);
    let pops: Vec<&'static str> = CdnPop::ALL.iter().map(|p| p.hostname()).collect();
    let truth = chaos.ground_truth_log(&[], &pops, SimTime::from_micros(horizon_us));

    let mut arms = Vec::with_capacity(cfg.transports.len() + 1);
    let run_arm = |name: String, faulted: bool, transport: Option<Protocol>| -> ArmOutcome {
        let obs = Observer::with_flags(true, false);
        let tp = Teleport::new(svc, rngs.child("chaos"));
        let tcfg = TeleportConfig {
            sessions: cfg.sessions,
            session: SessionConfig {
                faults: if faulted { chaos } else { FaultConfig::default() },
                transport,
                ..Default::default()
            },
            alternate_devices: true,
            keep_captures_per_protocol: 0,
            threads: cfg.threads,
            shards: cfg.shards,
        };
        tp.run_dataset_observed(&tcfg, &obs);
        let metrics = obs.metrics();
        let spans = obs.spans();
        let timeline = AlertTimeline::evaluate(&rules, &metrics, &spans);
        ArmOutcome { name, faulted, timeline, metrics, spans }
    };
    arms.push(run_arm("control".to_string(), false, None));
    for &transport in &cfg.transports {
        arms.push(run_arm(transport_name(transport).to_string(), true, transport));
    }

    let mut incidents = Vec::new();
    for arm in &arms {
        incidents.extend(correlate(&arm.name, &arm.timeline));
    }
    let mut scorecard = Vec::new();
    for arm in arms.iter().filter(|a| a.faulted) {
        let intervals = arm.timeline.intervals();
        for &pop in &pops {
            let rule_name = format!("pop_outage/{pop}");
            let my_truth: Vec<&GroundTruthWindow> =
                truth.iter().filter(|w| w.class == "pop_outage" && w.unit == pop).collect();
            let probed: BTreeSet<u64> = arm
                .metrics
                .ring("probe", pop)
                .map(|r| r.windows().map(|(idx, _)| idx).collect())
                .unwrap_or_default();
            scorecard.push(score_rule(&arm.name, &rule_name, &my_truth, &probed, &intervals));
        }
    }

    IncidentReport {
        seed: cfg.seed,
        loss_scale: cfg.loss_scale,
        sessions: cfg.sessions,
        shards: cfg.shards,
        horizon_us,
        arms,
        incidents,
        scorecard,
    }
}

/// Groups one arm's firing intervals into incidents: a new interval joins
/// the open group while it starts within one fast window of the group's
/// furthest end, otherwise it opens a new one.
fn correlate(arm: &str, timeline: &AlertTimeline) -> Vec<Incident> {
    let gap = FAST_WINDOWS * RING_WINDOW_US;
    let mut out: Vec<Incident> = Vec::new();
    for (rule, start, end) in timeline.intervals() {
        match out.last_mut() {
            Some(cur) if start <= cur.end_us.saturating_add(gap) => {
                cur.end_us = cur.end_us.max(end);
                if !cur.rules.contains(&rule) {
                    cur.rules.push(rule);
                }
            }
            _ => out.push(Incident {
                arm: arm.to_string(),
                start_us: start,
                end_us: end,
                rules: vec![rule],
                cells: Vec::new(),
                attribution: String::new(),
            }),
        }
    }
    for inc in &mut out {
        inc.rules.sort();
        inc.cells = inc
            .rules
            .iter()
            .filter_map(|r| r.split_once("cell=").map(|(_, cell)| cell.to_string()))
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        inc.attribution = timeline
            .transitions
            .iter()
            .filter(|tr| {
                tr.firing
                    && tr.t_us >= inc.start_us
                    && tr.t_us <= inc.end_us
                    && tr.attribution != "none"
            })
            .map(|tr| tr.attribution.clone())
            .next()
            .unwrap_or_else(|| "none".to_string());
    }
    out
}

/// Scores one POP-outage rule against its ground-truth windows.
///
/// A truth window `[s, e)` is *observed* when any of its minutes carries a
/// probe; it is *detected* when a firing interval of the rule overlaps
/// `[s, e]` (alert boundaries land at minute ends, so an interval opened
/// by the window's last minute starts exactly at `e`). Detection latency
/// runs from the fault start to the matching interval's start and is zero
/// when an earlier window's alert was still firing.
fn score_rule(
    arm: &str,
    rule: &str,
    truth: &[&GroundTruthWindow],
    probed_slots: &BTreeSet<u64>,
    intervals: &[(String, u64, u64)],
) -> RuleScore {
    let mine: Vec<(u64, u64)> =
        intervals.iter().filter(|(r, _, _)| r == rule).map(|&(_, s, e)| (s, e)).collect();
    let overlaps = |iv: (u64, u64), w: &GroundTruthWindow| iv.0 <= w.end_us && iv.1 > w.start_us;
    let mut observed = 0;
    let mut detected = 0;
    let mut latencies_us: Vec<u64> = Vec::new();
    for w in truth {
        let slots = (w.start_us / RING_WINDOW_US)..(w.end_us.div_ceil(RING_WINDOW_US));
        if !slots.clone().any(|s| probed_slots.contains(&s)) {
            continue;
        }
        observed += 1;
        if let Some(first) = mine.iter().filter(|&&iv| overlaps(iv, w)).map(|&(s, _)| s).min() {
            detected += 1;
            latencies_us.push(first.saturating_sub(w.start_us));
        }
    }
    let matched = mine.iter().filter(|&&iv| truth.iter().any(|w| overlaps(iv, w))).count();
    latencies_us.sort_unstable();
    let median_latency_s = if latencies_us.is_empty() {
        -1.0
    } else {
        latencies_us[latencies_us.len() / 2] as f64 / 1e6
    };
    RuleScore {
        arm: arm.to_string(),
        rule: rule.to_string(),
        truth_windows: truth.len(),
        observed,
        detected,
        recall: if observed == 0 { 1.0 } else { detected as f64 / observed as f64 },
        false_alarms: mine.len() - matched,
        precision: if mine.is_empty() { 1.0 } else { matched as f64 / mine.len() as f64 },
        median_detection_latency_s: median_latency_s,
    }
}

impl IncidentReport {
    /// Whether the fault-free control arm never raised any alert.
    pub fn control_clean(&self) -> bool {
        self.arms.iter().filter(|a| !a.faulted).all(|a| a.timeline.is_empty())
    }

    /// Whether every scorecard row has perfect recall and no false alarms.
    pub fn detection_perfect(&self) -> bool {
        self.scorecard.iter().all(|r| r.recall == 1.0 && r.false_alarms == 0)
    }

    /// Stable JSON rendering (the `INCIDENTS.json` artifact; schema in
    /// EXPERIMENTS.md): run parameters, arm names, correlated incidents,
    /// the POP-outage scorecard and the full per-arm alert timelines.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"seed\": {},\n  \"loss_scale\": {},\n  \"sessions\": {},\n  \
             \"shards\": {},\n  \"horizon_us\": {},\n  \"arms\": [",
            self.seed, self.loss_scale, self.sessions, self.shards, self.horizon_us
        );
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", arm.name);
        }
        out.push_str("],\n  \"incidents\": [\n");
        for (i, inc) in self.incidents.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"arm\": \"{}\", \"start_us\": {}, \"end_us\": {}, \
                 \"attribution\": \"{}\", \"rules\": [",
                inc.arm, inc.start_us, inc.end_us, inc.attribution
            );
            for (j, r) in inc.rules.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{r}\"");
            }
            out.push_str("], \"cells\": [");
            for (j, c) in inc.cells.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{c}\"");
            }
            out.push_str("]}");
            if i + 1 < self.incidents.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"scorecard\": [\n");
        for (i, row) in self.scorecard.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"arm\": \"{}\", \"rule\": \"{}\", \"truth_windows\": {}, \
                 \"observed\": {}, \"detected\": {}, \"recall\": {:.6}, \
                 \"false_alarms\": {}, \"precision\": {:.6}, \
                 \"median_detection_latency_s\": {:.6}}}",
                row.arm,
                row.rule,
                row.truth_windows,
                row.observed,
                row.detected,
                row.recall,
                row.false_alarms,
                row.precision,
                row.median_detection_latency_s,
            );
            if i + 1 < self.scorecard.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"timelines\": {\n");
        for (i, arm) in self.arms.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {}", arm.name, arm.timeline.to_json());
            if i + 1 < self.arms.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Human summary: one line per arm plus the scorecard verdict.
    pub fn table(&self) -> String {
        let mut out = String::from("arm        transitions  incidents  firing-at-end\n");
        for arm in &self.arms {
            let incs = self.incidents.iter().filter(|i| i.arm == arm.name).count();
            let _ = writeln!(
                out,
                "{:<10} {:>11} {:>10} {:>14}",
                arm.name,
                arm.timeline.transitions.len(),
                incs,
                arm.timeline.firing_at_end().len(),
            );
        }
        let _ = writeln!(
            out,
            "scorecard: {} rows, control_clean={}, detection_perfect={}",
            self.scorecard.len(),
            self.control_clean(),
            self.detection_perfect(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_obs::AlertTransition;

    fn tr(rule: &str, t_us: u64, firing: bool) -> AlertTransition {
        AlertTransition {
            rule: rule.to_string(),
            t_us,
            firing,
            burn_fast: 0.0,
            burn_slow: 0.0,
            attribution: if firing { "hls.playlist".to_string() } else { "none".to_string() },
        }
    }

    fn w(unit: &str, start_us: u64, end_us: u64) -> GroundTruthWindow {
        GroundTruthWindow { class: "pop_outage", unit: unit.to_string(), start_us, end_us }
    }

    const M: u64 = RING_WINDOW_US;

    #[test]
    fn correlate_merges_within_one_fast_window_and_splits_beyond() {
        let timeline = AlertTimeline {
            transitions: vec![
                tr("a", M, true),
                tr("b", 2 * M, true),
                tr("a", 4 * M, false),
                tr("b", 5 * M, false),
                // 5 minutes past the previous end: joins the same group.
                tr("a", 10 * M, true),
                tr("a", 12 * M, false),
                // 6 minutes past: a new incident.
                tr("c", 18 * M, true),
                tr("c", 20 * M, false),
            ],
        };
        let incs = correlate("HLS", &timeline);
        assert_eq!(incs.len(), 2);
        assert_eq!((incs[0].start_us, incs[0].end_us), (M, 12 * M));
        assert_eq!(incs[0].rules, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(incs[0].attribution, "hls.playlist");
        assert_eq!((incs[1].start_us, incs[1].end_us), (18 * M, 20 * M));
        assert_eq!(incs[1].rules, vec!["c".to_string()]);
        assert!(incs.iter().all(|i| i.arm == "HLS" && i.cells.is_empty()));
    }

    #[test]
    fn correlate_extracts_cell_quadkeys() {
        let timeline = AlertTimeline {
            transitions: vec![
                tr("join_burn/cell=31", M, true),
                tr("join_burn/cell=02", 2 * M, true),
                tr("join_burn/cell=02", 4 * M, false),
                tr("join_burn/cell=31", 4 * M, false),
            ],
        };
        let incs = correlate("SRT", &timeline);
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].cells, vec!["02".to_string(), "31".to_string()]);
    }

    #[test]
    fn score_rule_counts_only_probed_windows_and_measures_latency() {
        let host = "fastly-eu.periscope.tv";
        let rule = "pop_outage/fastly-eu.periscope.tv";
        let truth = [w(host, 10 * M, 12 * M), w(host, 40 * M, 41 * M), w(host, 80 * M, 81 * M)];
        let refs: Vec<&GroundTruthWindow> = truth.iter().collect();
        // Window 1 probed at its second minute, window 2 probed, window 3
        // never probed (unobservable).
        let probed: BTreeSet<u64> = [11, 40, 55].into_iter().collect();
        // Detector fired one minute after each probed symptom.
        let intervals = vec![
            (rule.to_string(), 12 * M, 17 * M),
            (rule.to_string(), 41 * M, 46 * M),
            // A stray interval matching nothing: a false alarm.
            (rule.to_string(), 60 * M, 61 * M),
        ];
        let score = score_rule("HLS", rule, &refs, &probed, &intervals);
        assert_eq!((score.truth_windows, score.observed, score.detected), (3, 2, 2));
        assert_eq!(score.recall, 1.0);
        assert_eq!(score.false_alarms, 1);
        assert!((score.precision - 2.0 / 3.0).abs() < 1e-12);
        // Latencies: 120 s (probed one minute late) and 60 s; median keeps
        // the upper of the two.
        assert_eq!(score.median_detection_latency_s, 120.0);
    }

    #[test]
    fn score_rule_is_vacuously_perfect_with_no_coverage() {
        let host = "fastly-sf.periscope.tv";
        let truth = [w(host, 10 * M, 12 * M)];
        let refs: Vec<&GroundTruthWindow> = truth.iter().collect();
        let score =
            score_rule("RTMP", "pop_outage/fastly-sf.periscope.tv", &refs, &BTreeSet::new(), &[]);
        assert_eq!((score.observed, score.detected, score.false_alarms), (0, 0, 0));
        assert_eq!(score.recall, 1.0);
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.median_detection_latency_s, -1.0);
    }

    #[test]
    fn report_json_is_stable_and_balanced() {
        let report = IncidentReport {
            seed: 7,
            loss_scale: 2.0,
            sessions: 4,
            shards: 1,
            horizon_us: 100 * M,
            arms: vec![ArmOutcome {
                name: "control".to_string(),
                faulted: false,
                timeline: AlertTimeline::default(),
                metrics: MetricsRegistry::new(),
                spans: Vec::new(),
            }],
            incidents: vec![Incident {
                arm: "HLS".to_string(),
                start_us: M,
                end_us: 2 * M,
                rules: vec!["pop_outage/x".to_string()],
                cells: vec!["02".to_string()],
                attribution: "hls.playlist".to_string(),
            }],
            scorecard: vec![RuleScore {
                arm: "HLS".to_string(),
                rule: "pop_outage/x".to_string(),
                truth_windows: 1,
                observed: 1,
                detected: 1,
                recall: 1.0,
                false_alarms: 0,
                precision: 1.0,
                median_detection_latency_s: 60.0,
            }],
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.starts_with("{\n  \"seed\": 7,\n  \"loss_scale\": 2,\n"));
        assert!(json.contains("\"recall\": 1.000000"));
        assert!(json.contains("\"timelines\": {\n    \"control\": []\n  }"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.control_clean() && report.detection_perfect());
    }
}
