//! The Lab: one object wiring population → service → crawler/client →
//! analysis, with memoized expensive artifacts.

use pscp_client::device::NetworkSetup;
use pscp_client::session::SessionConfig;
use pscp_client::{Teleport, TeleportConfig};
use pscp_crawler::deep::DeepCrawlConfig;
use pscp_crawler::targeted::TargetedCrawlConfig;
use pscp_crawler::{DeepCrawl, TargetedCrawl};
use pscp_obs::{Observer, PhaseSpan};
use pscp_qoe::SessionDataset;
use pscp_service::{PeriscopeService, ServiceConfig};
use pscp_simnet::{RngFactory, SimDuration, SimTime};
use pscp_workload::population::{Population, PopulationConfig};

/// Experiment scale: how much data to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast configurations for tests and examples.
    Small,
    /// Paper-sized datasets (minutes of wall time to generate).
    Paper,
    /// Planet-sized worlds (~1M broadcasts) for the sharded `repro scale`
    /// experiment; only feasible through the sketch-bounded shard engine.
    Planet,
}

/// Lab configuration.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Master seed: everything derives from it.
    pub seed: u64,
    /// Scale preset.
    pub scale: Scale,
    /// Population settings.
    pub population: PopulationConfig,
    /// Service settings.
    pub service: ServiceConfig,
    /// Unlimited-bandwidth sessions to run for the QoE dataset.
    pub sessions_unlimited: usize,
    /// Sessions per bandwidth-limit sweep point.
    pub sessions_per_limit: usize,
    /// Bandwidth-limit sweep points in Mbps (the paper's 0.5–10).
    pub limits_mbps: Vec<f64>,
    /// Worker threads for dataset generation, crawls and capture analysis.
    /// `0` = auto (the `PSCP_THREADS` environment variable, else the
    /// machine's available parallelism); `1` = the exact serial path.
    /// Every figure and table is byte-identical at every setting.
    pub threads: usize,
    /// Record a structured event log and per-subsystem metrics of every
    /// run. Also enabled by the `PSCP_TRACE` environment variable (any
    /// non-empty value other than `0`). Tracing never alters sim-time
    /// behavior: figures and datasets are byte-identical either way.
    pub trace: bool,
    /// Record wall-clock phase spans (plan/execute/sweep/crawl/analysis)
    /// even when `trace` is off. Implied by `trace`.
    pub profile: bool,
    /// Quadtree shards for dataset execution (a power of four; `1` = the
    /// classic unsharded path). Sessions are grouped by the broadcast's
    /// [`pscp_simnet::GeoRect::quad_cell`] and scattered back in plan
    /// order, so every artifact is byte-identical at every shard count.
    pub shards: usize,
}

impl LabConfig {
    /// Fast configuration for tests/examples.
    pub fn small(seed: u64) -> LabConfig {
        LabConfig {
            seed,
            scale: Scale::Small,
            population: PopulationConfig::small(),
            service: ServiceConfig::default(),
            sessions_unlimited: 30,
            sessions_per_limit: 6,
            limits_mbps: vec![0.5, 2.0, 6.0],
            threads: 0,
            trace: false,
            profile: false,
            shards: 1,
        }
    }

    /// Paper-scale configuration: §5's "4615 sessions in total: 1796 RTMP
    /// and 1586 HLS sessions without a bandwidth limit and 18-91 sessions
    /// for each specific bandwidth limit", sweep 0.5–10 Mbps.
    pub fn paper(seed: u64) -> LabConfig {
        LabConfig {
            seed,
            scale: Scale::Paper,
            population: PopulationConfig::default(),
            service: ServiceConfig::default(),
            sessions_unlimited: 3382,
            sessions_per_limit: 50,
            limits_mbps: vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            threads: 0,
            trace: false,
            profile: false,
            shards: 1,
        }
    }

    /// A mid-size preset: paper-shaped but an order of magnitude lighter.
    pub fn medium(seed: u64) -> LabConfig {
        LabConfig {
            seed,
            scale: Scale::Small,
            population: PopulationConfig::medium(),
            service: ServiceConfig::default(),
            sessions_unlimited: 300,
            sessions_per_limit: 18,
            limits_mbps: vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            threads: 0,
            trace: false,
            profile: false,
            shards: 1,
        }
    }

    /// Planet-scale configuration: a ~1M-broadcast world for the sharded
    /// scale engine ([`crate::shard::run_scale`]). The classic dataset
    /// pipeline is not meant to run at this scale — use `repro scale`.
    pub fn planet(seed: u64) -> LabConfig {
        LabConfig {
            seed,
            scale: Scale::Planet,
            population: PopulationConfig::planet(),
            service: ServiceConfig::default(),
            sessions_unlimited: 0,
            sessions_per_limit: 0,
            limits_mbps: Vec::new(),
            threads: 0,
            trace: false,
            profile: false,
            shards: 16,
        }
    }
}

/// True when the `PSCP_TRACE` environment variable requests tracing.
fn env_trace() -> bool {
    std::env::var("PSCP_TRACE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// The lab.
pub struct Lab {
    /// Configuration in force.
    pub config: LabConfig,
    rngs: RngFactory,
    service: Option<PeriscopeService>,
    dataset: Option<std::sync::Arc<SessionDataset>>,
    obs: Observer,
}

/// A viewing-session report (dataset wrapper returned by convenience runs).
pub struct SessionReport {
    /// The generated sessions.
    pub sessions: Vec<pscp_client::SessionOutcome>,
}

impl Lab {
    /// Creates a lab; the population/service are built lazily on first use.
    pub fn new(mut config: LabConfig) -> Lab {
        let tracing = config.trace || env_trace();
        let profiling = tracing || config.profile;
        // The service records its own API counters into its trace; wire the
        // flag through so lazily built services inherit it.
        config.service.trace = tracing;
        let rngs = RngFactory::new(config.seed);
        Lab {
            config,
            rngs,
            service: None,
            dataset: None,
            obs: Observer::with_flags(tracing, profiling),
        }
    }

    /// The RNG namespace of this lab.
    pub fn rngs(&self) -> &RngFactory {
        &self.rngs
    }

    /// The lab's observer: the run-wide event log, metrics registry and
    /// phase spans. Disabled (and empty) unless [`LabConfig::trace`] /
    /// [`LabConfig::profile`] or `PSCP_TRACE` asked for it.
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// Runs `f` over `items` in parallel like
    /// [`pscp_simnet::par::indexed_map`], recording a wall-clock
    /// [`PhaseSpan`] named `name` when profiling is on. Results are always
    /// identical to the untimed path.
    pub fn par_phase<T, R, F>(&self, name: &str, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.obs.profiling() {
            let (out, prof) = pscp_simnet::par::indexed_map_timed(items, self.config.threads, &f);
            self.obs.record_phase(PhaseSpan {
                name: name.to_string(),
                wall_secs: prof.wall_secs,
                workers: prof.workers,
                items: items.len(),
                busy_secs: prof.busy_total(),
            });
            out
        } else {
            pscp_simnet::par::indexed_map(items, self.config.threads, f)
        }
    }

    /// The resolved worker-thread count this lab will use (see
    /// [`LabConfig::threads`] and [`pscp_simnet::par::resolve_threads`]).
    pub fn effective_threads(&self) -> usize {
        pscp_simnet::par::resolve_threads(self.config.threads)
    }

    /// The service (built on first access).
    pub fn service(&mut self) -> &mut PeriscopeService {
        if self.service.is_none() {
            let population =
                Population::generate(self.config.population.clone(), &self.rngs.child("world"));
            self.service = Some(PeriscopeService::new(population, self.config.service.clone()));
        }
        self.service.as_mut().expect("just built")
    }

    /// Builds a fresh service over a population whose clock starts at a
    /// different UTC hour (for the multi-time-of-day crawls).
    pub fn service_at_hour(&self, utc_start_hour: f64) -> PeriscopeService {
        let mut cfg = self.config.population.clone();
        cfg.utc_start_hour = utc_start_hour;
        let label = format!("world-at-{utc_start_hour}");
        let population = Population::generate(cfg, &self.rngs.child(&label));
        PeriscopeService::new(population, self.config.service.clone())
    }

    /// Like [`Lab::service_at_hour`], but the world is pruned to the
    /// broadcasts a crawler can observe (public, location visible). Crawls
    /// only see the world through the HTTP API — map queries return
    /// public-and-located broadcasts, and `getBroadcasts` only re-describes
    /// already-discovered ids — so crawl results are byte-identical on the
    /// pruned world while every in-flight crawl holds ~17% fewer
    /// broadcasts. The filter runs *after* each broadcast's draws with the
    /// same `world-at-{h}` RNG label, so retained broadcasts are
    /// field-identical to the full world's.
    pub fn crawl_service_at_hour(&self, utc_start_hour: f64) -> PeriscopeService {
        let mut cfg = self.config.population.clone();
        cfg.utc_start_hour = utc_start_hour;
        let label = format!("world-at-{utc_start_hour}");
        let population = Population::generate_filtered(cfg, &self.rngs.child(&label), |b| {
            !b.private && b.location_public
        });
        PeriscopeService::new(population, self.config.service.clone())
    }

    /// Runs a quick batch of unlimited-bandwidth viewing sessions.
    pub fn run_viewing_sessions(&mut self, n: usize) -> SessionReport {
        let rngs = self.rngs;
        let svc = self.service();
        let tp = Teleport::new(svc, rngs.child("sessions"));
        let cfg = TeleportConfig { sessions: n, ..Default::default() };
        SessionReport { sessions: tp.run_dataset(&cfg) }
    }

    /// The full QoE dataset (unlimited + bandwidth sweep), memoized.
    ///
    /// The unlimited block — the bulk of the work at paper scale —
    /// parallelizes *within* its `run_dataset` call; the eleven sweep
    /// points then fan out across threads as whole units (each owns its
    /// `dataset-limit-{i}` RNG child) with their inner runs kept serial to
    /// avoid oversubscription. Sweep results are appended in limit order,
    /// so the dataset is byte-identical to a serial build.
    pub fn session_dataset(&mut self) -> std::sync::Arc<SessionDataset> {
        if let Some(d) = &self.dataset {
            return d.clone();
        }
        let rngs = self.rngs;
        let threads = self.config.threads;
        let sessions_unlimited = self.config.sessions_unlimited;
        let sessions_per_limit = self.config.sessions_per_limit;
        let shards = self.config.shards;
        let limits = self.config.limits_mbps.clone();
        self.service();
        let svc: &PeriscopeService = self.service.as_ref().expect("just built");
        let obs = &self.obs;
        let tp = Teleport::new(svc, rngs.child("dataset"));
        let mut dataset = SessionDataset::new(tp.run_dataset_observed(
            &TeleportConfig {
                sessions: sessions_unlimited,
                // Enough retained captures for the Fig 5/6 reconstruction
                // cap; beyond that, captures are dropped to bound memory at
                // paper scale.
                keep_captures_per_protocol: 320,
                threads,
                shards: self.config.shards,
                ..Default::default()
            },
            obs,
        ));
        // Each sweep point runs under its own child observer so worker
        // completion order cannot touch the shared log; children are merged
        // serially below, in limit order.
        let work = |i: usize, &mbps: &f64| {
            let local = Observer::with_flags(obs.tracing(), obs.profiling());
            let tp = Teleport::new(svc, rngs.child(&format!("dataset-limit-{i}")));
            let session = SessionConfig {
                network: NetworkSetup::finland_limited(mbps),
                ..Default::default()
            };
            let cfg = TeleportConfig {
                sessions: sessions_per_limit,
                session,
                alternate_devices: true,
                keep_captures_per_protocol: 8,
                threads: 1,
                shards,
            };
            let outcomes = tp.run_dataset_observed(&cfg, &local);
            (outcomes, local)
        };
        let sweeps = if obs.profiling() {
            let (out, prof) = pscp_simnet::par::indexed_map_timed(&limits, threads, work);
            obs.record_phase(PhaseSpan {
                name: "dataset.sweep".to_string(),
                wall_secs: prof.wall_secs,
                workers: prof.workers,
                items: limits.len(),
                busy_secs: prof.busy_total(),
            });
            out
        } else {
            pscp_simnet::par::indexed_map(&limits, threads, work)
        };
        for (mbps, (sweep, local)) in limits.iter().zip(sweeps) {
            if obs.tracing() || obs.profiling() {
                obs.merge_child(&format!("limit-{mbps}"), local);
            }
            dataset.extend(sweep);
        }
        let arc = std::sync::Arc::new(dataset);
        self.dataset = Some(arc.clone());
        arc
    }

    /// The deep-crawl configuration (trace flag wired from the lab).
    pub fn deep_config(&self) -> DeepCrawlConfig {
        DeepCrawlConfig { trace: self.obs.tracing(), ..Default::default() }
    }

    /// Runs a deep crawl without touching the lab's observer; the trace
    /// stays on the returned crawl. Used by the parallel plural methods,
    /// which absorb traces serially in hour order.
    fn deep_crawl_raw(&self, utc_start_hour: f64) -> DeepCrawl {
        let mut svc = self.crawl_service_at_hour(utc_start_hour);
        DeepCrawl::run(&mut svc, &self.deep_config(), SimTime::from_secs(120))
    }

    /// Runs one deep crawl against a service whose world clock starts at
    /// the given UTC hour.
    pub fn deep_crawl_at(&self, utc_start_hour: f64) -> DeepCrawl {
        let mut crawl = self.deep_crawl_raw(utc_start_hour);
        if self.obs.tracing() {
            self.obs.absorb(&format!("deep-crawl-{utc_start_hour}"), crawl.trace.take());
        }
        crawl
    }

    /// Runs one deep crawl per UTC start hour, in parallel. Each crawl
    /// builds its own `world-at-{h}` service, so crawls share nothing and
    /// results match [`Lab::deep_crawl_at`] called hour by hour.
    ///
    /// Memory note: every in-flight crawl holds its own [`Population`],
    /// so peak memory is `min(threads, hours.len())` populations instead
    /// of the serial loop's one — but each is the crawler-visible view
    /// from [`Lab::crawl_service_at_hour`] (public, located broadcasts
    /// only, ~17% lighter), so the scale tiers don't multiply full-world
    /// peak RSS. Set [`LabConfig::threads`] to `1` if even that is too
    /// much.
    pub fn deep_crawls_at(&self, hours: &[f64]) -> Vec<DeepCrawl> {
        let mut crawls = self.par_phase("crawl.deep", hours, |_, &h| self.deep_crawl_raw(h));
        if self.obs.tracing() {
            for (h, crawl) in hours.iter().zip(crawls.iter_mut()) {
                self.obs.absorb(&format!("deep-crawl-{h}"), crawl.trace.take());
            }
        }
        crawls
    }

    /// Runs one targeted crawl (preceded by its deep crawl) per UTC start
    /// hour, in parallel; results match [`Lab::targeted_crawl_at`]. Same
    /// memory profile as [`Lab::deep_crawls_at`]: one crawler-visible
    /// [`Population`] view per in-flight crawl.
    pub fn targeted_crawls_at(&self, hours: &[f64]) -> Vec<TargetedCrawl> {
        let mut crawls =
            self.par_phase("crawl.targeted", hours, |_, &h| self.targeted_crawl_raw(h));
        if self.obs.tracing() {
            for (h, crawl) in hours.iter().zip(crawls.iter_mut()) {
                self.obs.absorb(&format!("targeted-crawl-{h}"), crawl.trace.take());
            }
        }
        crawls
    }

    /// Runs a deep crawl followed by a targeted crawl on the same world,
    /// keeping the combined trace on the returned crawl.
    fn targeted_crawl_raw(&self, utc_start_hour: f64) -> TargetedCrawl {
        let mut svc = self.crawl_service_at_hour(utc_start_hour);
        let mut deep = DeepCrawl::run(&mut svc, &self.deep_config(), SimTime::from_secs(120));
        let tc_config = self.targeted_config();
        let areas = TargetedCrawl::select_areas(&deep, &tc_config);
        let mut tc = TargetedCrawl::run(&mut svc, &areas, &tc_config, deep.finished_at);
        // Fold the preceding deep crawl's trace in; the observer re-sorts
        // events by sim time on absorption, so ordering stays canonical.
        tc.trace.absorb(deep.trace.take());
        tc
    }

    /// Runs a deep crawl followed by a targeted crawl on the same world.
    pub fn targeted_crawl_at(&self, utc_start_hour: f64) -> TargetedCrawl {
        let mut crawl = self.targeted_crawl_raw(utc_start_hour);
        if self.obs.tracing() {
            self.obs.absorb(&format!("targeted-crawl-{utc_start_hour}"), crawl.trace.take());
        }
        crawl
    }

    /// The targeted-crawl configuration: the crawl runs for (almost) the
    /// whole population window, like the paper's 4-10 h crawls. Short
    /// windows bias duration estimates low — long broadcasts never "end
    /// during the crawl" — which is why the paper crawled for hours.
    pub fn targeted_config(&self) -> TargetedCrawlConfig {
        let margin = SimDuration::from_secs(match self.config.scale {
            Scale::Small => 300,
            Scale::Paper | Scale::Planet => 1200,
        });
        let duration =
            self.config.population.window.saturating_sub(margin).max(SimDuration::from_secs(600));
        TargetedCrawlConfig { duration, trace: self.obs.tracing(), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_lazily_and_runs_sessions() {
        let mut lab = Lab::new(LabConfig::small(1));
        let report = lab.run_viewing_sessions(5);
        assert_eq!(report.sessions.len(), 5);
    }

    #[test]
    fn dataset_memoized() {
        let mut lab = Lab::new(LabConfig::small(2));
        let a = lab.session_dataset();
        let b = lab.session_dataset();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // 30 unlimited + 3 limits × 6.
        assert_eq!(a.len(), 30 + 18);
    }

    #[test]
    fn dataset_contains_sweep_points() {
        let mut lab = Lab::new(LabConfig::small(3));
        let d = lab.session_dataset();
        assert_eq!(d.at_limit(2.0).len(), 6);
        assert_eq!(d.at_limit(0.5).len(), 6);
        assert!(d.sessions.iter().filter(|s| s.bandwidth_limit_bps.is_none()).count() >= 28);
    }

    #[test]
    fn services_at_different_hours_differ() {
        let lab = Lab::new(LabConfig::small(4));
        let a = lab.service_at_hour(0.0);
        let b = lab.service_at_hour(12.0);
        assert_ne!(a.population.broadcasts.len(), 0);
        // Different diurnal phases produce different activity volumes.
        assert_ne!(a.population.broadcasts.len(), b.population.broadcasts.len());
    }

    #[test]
    fn determinism_across_labs() {
        let mut lab1 = Lab::new(LabConfig::small(5));
        let mut lab2 = Lab::new(LabConfig::small(5));
        let d1 = lab1.session_dataset();
        let d2 = lab2.session_dataset();
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.sessions.iter().zip(&d2.sessions) {
            assert_eq!(a.broadcast_id, b.broadcast_id);
            assert_eq!(a.meta, b.meta);
        }
    }
}
