#![warn(missing_docs)]

//! Experiment orchestration for the Periscope reproduction.
//!
//! This crate is the library's front door:
//!
//! * [`lab::Lab`] wires the whole stack together — a seeded synthetic
//!   population behind a [`pscp_service::PeriscopeService`], the crawler,
//!   the Teleport session driver, and the analysis pipelines — behind a
//!   small imperative API;
//! * [`figures`] defines the renderable figure/table data model every
//!   experiment produces;
//! * [`experiments`] holds one entry per paper artifact (Figures 1–7,
//!   Table 1, and the in-text statistics), each regenerating its figure
//!   from scratch given a seed and a scale.
//!
//! ```
//! use pscp_core::{Lab, LabConfig};
//! let mut lab = Lab::new(LabConfig::small(7));
//! let dataset = lab.session_dataset();
//! assert!(!dataset.sessions.is_empty());
//! ```

pub mod chaos;
pub mod experiments;
pub mod figures;
pub mod incident;
pub mod lab;
pub mod shard;

pub use chaos::{run_chaos, ChaosConfig, ChaosPoint, ChaosSlo, ChaosSweep};
pub use figures::FigureData;
pub use incident::{run_incidents, Incident, IncidentConfig, IncidentReport, RuleScore};
pub use lab::{Lab, LabConfig, Scale};
pub use shard::{run_scale, ScaleConfig, ScaleRun, ShardPlan, ShardStats};
