//! Quadtree sharding of the service world (DESIGN.md §13).
//!
//! [`ShardPlan`] partitions an **already generated** [`Population`] into
//! geo quadtree cells: the cell of a broadcast is a pure function of its
//! location ([`GeoRect::quad_cell`]), so the partition itself never draws
//! randomness and never depends on shard count. [`run_scale`] then runs
//! one shard-local event loop per cell on the [`pscp_simnet::par`] engine,
//! minute by minute: each minute every cell executes its own viewer
//! sessions against the shared immutable world, and cross-shard traffic —
//! viewer migrations, chat fan-in — is exchanged as message batches at the
//! minute boundary, routed serially in plan (cell) order.
//!
//! # Determinism argument
//!
//! Output is byte-identical at any shard count and any thread count
//! because three invariants hold by construction:
//!
//! 1. **Work is shard-invariant.** Whether a broadcast-minute spawns a
//!    session, when the session joins, and every draw the session makes
//!    are keyed on `(broadcast id, minute)` hashes and per-session RNG
//!    streams — never on the cell that executes them or on any
//!    shard-local interleaving. Regrouping cells into fewer or more
//!    shards changes *scheduling*, never *draws*.
//! 2. **Messages are shard-invariant.** A migration's destination is
//!    sampled from the global population with an RNG stream keyed by the
//!    originating session alone; chat batches carry counts derived from
//!    the session hash. The multiset of messages exchanged at a boundary
//!    is therefore identical at every shard count — only their grouping
//!    into per-cell batches differs.
//! 3. **Folds are exactly commutative.** Everything that crosses a shard
//!    boundary lands in `u64` counters or [`QuantileSketch`] bucket
//!    counts, whose merge is integer addition — exactly associative and
//!    commutative — so the fold tree (one accumulator at 1 shard, sixteen
//!    at 16) cannot change a single byte of the rolled-up result.
//!    Cross-cell rates in [`ShardStats`] (migration/chat "cross-cell")
//!    are measured at the fixed [`REF_DEPTH`] so the *metric* does not
//!    move with the shard count either.
//!
//! Per-session state never outlives its session: outcomes fold straight
//! into the per-cell [`ShardStats`] and [`QoeTelemetry`] sketches, so
//! memory stays O(cells), not O(sessions) — the property that makes the
//! 1M-broadcast tier of `repro scale` feasible.

use pscp_client::session::SessionConfig;
use pscp_client::Teleport;
use pscp_qoe::QoeTelemetry;
use pscp_service::PeriscopeService;
use pscp_simnet::{GeoPoint, GeoRect, RngFactory, SimTime};
use pscp_stats::QuantileSketch;
use pscp_workload::broadcast::BroadcastId;
use pscp_workload::cities::CITIES;
use pscp_workload::population::Population;
use std::fmt::Write as _;

/// Fixed quadtree depth at which cross-cell metrics and the census are
/// reported, independent of the shard count in force (16 cells).
pub const REF_DEPTH: u8 = 2;

/// One quadtree cell at a given depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Levels below the world rectangle (0 = the whole world).
    pub depth: u8,
    /// Two bits per level, most significant level first
    /// (see [`GeoRect::quad_cell`]).
    pub key: u16,
}

impl CellId {
    /// The cell containing `p` at `depth`.
    pub fn of(p: &GeoPoint, depth: u8) -> CellId {
        CellId { depth, key: GeoRect::quad_cell(p, depth) }
    }

    /// The cell's rectangle.
    pub fn rect(&self) -> GeoRect {
        GeoRect::quad_rect(self.key, self.depth)
    }

    /// The cell as a quadkey string, one digit (quadrant index) per level;
    /// empty at depth 0.
    pub fn quadkey(&self) -> String {
        (0..self.depth)
            .rev()
            .map(|level| char::from(b'0' + ((self.key >> (2 * level)) & 3) as u8))
            .collect()
    }
}

/// One shard of the plan: a cell plus its local slice of the world.
#[derive(Debug)]
pub struct ShardCell {
    /// The cell this shard owns.
    pub id: CellId,
    /// Indices into `Population::broadcasts` of the members, ascending —
    /// global broadcast order restricted to the cell.
    pub members: Vec<u32>,
    /// Per-minute index of *discoverable* members (public, location
    /// visible) live at some point within the minute, in member order.
    minute_disc: Vec<Vec<u32>>,
}

impl ShardCell {
    /// Discoverable members live within minute `m`.
    pub fn discoverable_at_minute(&self, m: usize) -> &[u32] {
        self.minute_disc.get(m).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The shard plan: a total, disjoint partition of a population's
/// broadcasts into the `4^depth` quadtree cells of one level.
#[derive(Debug)]
pub struct ShardPlan {
    /// Quadtree depth of the partition.
    pub depth: u8,
    /// Simulated minutes (the population window plus the index margin).
    pub minutes: usize,
    /// All cells of the level in quadkey order, empty cells included, so
    /// plan order is stable across populations.
    pub cells: Vec<ShardCell>,
    disc_broadcast_minutes: u64,
}

impl ShardPlan {
    /// Builds the plan for `shards` cells (a power of four: 1, 4, 16, …).
    pub fn build(pop: &Population, shards: usize) -> ShardPlan {
        let depth = pscp_simnet::geo::quad_depth_for(shards)
            .expect("shard count must be a power of four (1, 4, 16, ...)");
        let minutes = (pop.config.window.as_secs_f64() / 60.0).ceil() as usize + 1;
        let mut cells: Vec<ShardCell> = (0..shards)
            .map(|k| ShardCell {
                id: CellId { depth, key: k as u16 },
                members: Vec::new(),
                minute_disc: vec![Vec::new(); minutes],
            })
            .collect();
        let mut disc_broadcast_minutes = 0u64;
        for (i, b) in pop.broadcasts.iter().enumerate() {
            let ci = GeoRect::quad_cell(&b.location, depth) as usize;
            cells[ci].members.push(i as u32);
            if b.private || !b.location_public {
                continue;
            }
            let first = (b.start.as_micros() / 60_000_000) as usize;
            let last = ((b.end().as_micros() / 60_000_000) as usize).min(minutes - 1);
            for m in first..=last.max(first) {
                cells[ci].minute_disc[m].push(i as u32);
                disc_broadcast_minutes += 1;
            }
        }
        ShardPlan { depth, minutes, cells, disc_broadcast_minutes }
    }

    /// Number of shards (cells) in the plan.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The plan-order index of the cell containing `p`.
    pub fn cell_index(&self, p: &GeoPoint) -> usize {
        GeoRect::quad_cell(p, self.depth) as usize
    }

    /// Total discoverable broadcast-minutes — the arrival-sampling domain.
    pub fn discoverable_broadcast_minutes(&self) -> u64 {
        self.disc_broadcast_minutes
    }

    /// Bytes held by the plan's index vectors (measured over lengths, not
    /// allocator capacities, so equal plans report equal footprints — see
    /// `QuantileSketch::memory_bytes`). Note the footprint legitimately
    /// depends on the configured shard count: a 16-cell plan carries more
    /// index structure than a 1-cell plan.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<ShardPlan>()
            + self
                .cells
                .iter()
                .map(|c| {
                    std::mem::size_of::<ShardCell>()
                        + c.members.len() * 4
                        + c.minute_disc.iter().map(|v| 24 + v.len() * 4).sum::<usize>()
                })
                .sum::<usize>()
    }
}

/// Exactly mergeable per-shard roll-up: `u64` counters and quantile
/// sketches only, so merging is integer addition in any order — the byte
/// identity across shard counts rests on this (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Sessions executed (primary + migrated).
    pub sessions: u64,
    /// Primary (arrival-spawned) sessions executed.
    pub primary: u64,
    /// Migrated-in sessions executed.
    pub migrated_in: u64,
    /// Sessions that never rendered a frame.
    pub never_joined: u64,
    /// Arrivals whose broadcast had no joinable instant left this minute.
    pub skipped: u64,
    /// Join times, µs (never-joined counts its full watch, like
    /// [`QoeTelemetry`]).
    pub join_us: QuantileSketch,
    /// Stall ratios, parts per million.
    pub stall_ppm: QuantileSketch,
    /// Total watch time, µs.
    pub watch_us: u64,
    /// Migrations emitted at minute boundaries.
    pub migrations_out: u64,
    /// Of those, destination in a different [`REF_DEPTH`] cell.
    pub migrations_cross: u64,
    /// Migrations whose pick found nothing live, or whose destination had
    /// ended by delivery time.
    pub migrations_dropped: u64,
    /// Chat messages posted by this shard's viewers.
    pub chat_out: u64,
    /// Chat messages delivered into this shard's broadcasts.
    pub chat_in: u64,
    /// Of those, posted from a different [`REF_DEPTH`] cell.
    pub chat_cross: u64,
}

impl Default for ShardStats {
    fn default() -> Self {
        ShardStats::new()
    }
}

impl ShardStats {
    /// An empty accumulator.
    pub fn new() -> ShardStats {
        ShardStats {
            sessions: 0,
            primary: 0,
            migrated_in: 0,
            never_joined: 0,
            skipped: 0,
            join_us: QuantileSketch::new(),
            stall_ppm: QuantileSketch::new(),
            watch_us: 0,
            migrations_out: 0,
            migrations_cross: 0,
            migrations_dropped: 0,
            chat_out: 0,
            chat_in: 0,
            chat_cross: 0,
        }
    }

    /// Merges another accumulator in (exact: integer addition only).
    pub fn merge(&mut self, other: &ShardStats) {
        self.sessions += other.sessions;
        self.primary += other.primary;
        self.migrated_in += other.migrated_in;
        self.never_joined += other.never_joined;
        self.skipped += other.skipped;
        self.join_us.merge(&other.join_us);
        self.stall_ppm.merge(&other.stall_ppm);
        self.watch_us += other.watch_us;
        self.migrations_out += other.migrations_out;
        self.migrations_cross += other.migrations_cross;
        self.migrations_dropped += other.migrations_dropped;
        self.chat_out += other.chat_out;
        self.chat_in += other.chat_in;
        self.chat_cross += other.chat_cross;
    }

    /// Bytes held by the sketch state.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<ShardStats>()
            + self.join_us.memory_bytes()
            + self.stall_ppm.memory_bytes()
    }

    /// Stable JSON object: fixed key order, integers and exact-integer
    /// derived floats only, so equal stats render equal bytes.
    pub fn json(&self) -> String {
        fn q_s(sk: &QuantileSketch, p: f64) -> String {
            sk.quantile(p).map(|u| format!("{:.6}", u as f64 / 1e6)).unwrap_or("null".into())
        }
        fn q_u(sk: &QuantileSketch, p: f64) -> String {
            sk.quantile(p).map(|u| u.to_string()).unwrap_or("null".into())
        }
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"sessions\":{},\"primary\":{},\"migrated_in\":{},\"never_joined\":{},\"skipped\":{}",
            self.sessions, self.primary, self.migrated_in, self.never_joined, self.skipped
        );
        let mean_join = if self.join_us.count() > 0 {
            format!("{:.6}", self.join_us.sum() as f64 / self.join_us.count() as f64 / 1e6)
        } else {
            "null".into()
        };
        let _ = write!(
            s,
            ",\"join_s\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"mean\":{}}}",
            q_s(&self.join_us, 0.50),
            q_s(&self.join_us, 0.90),
            q_s(&self.join_us, 0.99),
            mean_join
        );
        let _ = write!(
            s,
            ",\"stall_ppm\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}",
            q_u(&self.stall_ppm, 0.50),
            q_u(&self.stall_ppm, 0.90),
            q_u(&self.stall_ppm, 0.99)
        );
        let _ = write!(s, ",\"watch_hours\":{:.3}", self.watch_us as f64 / 3.6e9);
        let _ = write!(
            s,
            ",\"migrations\":{{\"out\":{},\"cross_cell\":{},\"dropped\":{}}}",
            self.migrations_out, self.migrations_cross, self.migrations_dropped
        );
        let _ = write!(
            s,
            ",\"chat\":{{\"out\":{},\"in\":{},\"cross_cell\":{}}}}}",
            self.chat_out, self.chat_in, self.chat_cross
        );
        s
    }
}

/// A viewer migration: emitted by the origin shard when a finished session
/// teleports onward, delivered to the destination shard at the next minute
/// boundary.
#[derive(Debug, Clone)]
pub struct Migration {
    /// RNG/session key of the follow-on session.
    pub session_key: u64,
    /// Destination broadcast.
    pub broadcast: BroadcastId,
    /// Plan-order index of the destination cell.
    pub to_cell: u32,
    /// Whether origin and destination differ at [`REF_DEPTH`].
    pub cross: bool,
}

/// A chat fan-in batch: messages posted by viewers homed in `from_cell`
/// into a broadcast owned by `to_cell`, delivered at the minute boundary.
#[derive(Debug, Clone)]
pub struct ChatBatch {
    /// Plan-order index of the posting viewers' home cell.
    pub from_cell: u32,
    /// Plan-order index of the broadcast's cell.
    pub to_cell: u32,
    /// Messages in the batch.
    pub messages: u64,
    /// Whether home and broadcast differ at [`REF_DEPTH`].
    pub cross: bool,
}

/// Scale-run settings.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Shard count (a power of four).
    pub shards: usize,
    /// Worker threads (`0` = auto, like [`pscp_simnet::par`]).
    pub threads: usize,
    /// Expected primary sessions across the whole run; the per
    /// broadcast-minute spawn probability is derived from this and the
    /// plan's discoverable broadcast-minutes, so it is shard-invariant.
    pub target_sessions: usize,
    /// Probability a finished primary session teleports onward (one hop).
    pub migrate_prob: f64,
    /// Expected chat messages per watched minute.
    pub chat_per_watch_min: f64,
    /// Per-session configuration (network, watch budget, players).
    pub session: SessionConfig,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            shards: 16,
            threads: 0,
            target_sessions: 1000,
            migrate_prob: 0.25,
            chat_per_watch_min: 3.0,
            session: SessionConfig::default(),
        }
    }
}

/// One row of the fixed-depth population census.
#[derive(Debug, Clone)]
pub struct CensusRow {
    /// Quadkey of the cell at [`REF_DEPTH`].
    pub quadkey: String,
    /// Broadcasts located in the cell.
    pub broadcasts: u64,
    /// Peak discoverable broadcasts in any one minute.
    pub peak_discoverable: u64,
}

/// Result of a sharded scale run.
#[derive(Debug)]
pub struct ScaleRun {
    /// Broadcasts in the world.
    pub broadcasts: usize,
    /// Shards the run used.
    pub shards: usize,
    /// Minutes simulated.
    pub minutes: usize,
    /// Merged exactly-mergeable roll-up.
    pub stats: ShardStats,
    /// Merged QoE telemetry (DESIGN.md §11 instruments).
    pub telemetry: QoeTelemetry,
    /// Population census at [`REF_DEPTH`] (non-empty cells, quadkey order).
    pub census: Vec<CensusRow>,
    /// Bytes held by the shard plan's indexes.
    pub plan_bytes: usize,
}

/// Per-minute output of one shard's event loop.
struct MinuteOut {
    stats: ShardStats,
    telemetry: QoeTelemetry,
    migrations: Vec<Migration>,
    chat: Vec<ChatBatch>,
}

/// Accumulated per-shard state across minutes.
struct CellState {
    stats: ShardStats,
    telemetry: QoeTelemetry,
}

/// SplitMix64 finalizer — the engine's only ad-hoc hash. All scale-run
/// coin flips key on it so they are pure functions of (seed, broadcast,
/// minute) or (seed, session), never of shard or thread scheduling.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Microseconds from seconds, saturating at zero.
fn us(secs: f64) -> u64 {
    (secs * 1e6).round().max(0.0) as u64
}

/// The deterministic home location of a session's viewer: a city drawn
/// from the global activity weights by the session hash. Chat posted by
/// the viewer fans in from this cell to the broadcast's cell.
fn viewer_home(key: u64) -> GeoPoint {
    let total: f64 = CITIES.iter().map(|c| c.weight).sum();
    let mut u = unit(mix(key ^ 0xc4a7_0001)) * total;
    for city in CITIES {
        u -= city.weight;
        if u <= 0.0 {
            return city.point();
        }
    }
    CITIES[CITIES.len() - 1].point()
}

/// The population census at [`REF_DEPTH`]: broadcasts and peak
/// discoverable-per-minute per cell. A pure function of the population, so
/// it is identical at every shard count by construction.
pub fn census(pop: &Population) -> Vec<CensusRow> {
    let ref_plan = ShardPlan::build(pop, 1usize << (2 * REF_DEPTH as usize));
    ref_plan
        .cells
        .iter()
        .filter(|c| !c.members.is_empty())
        .map(|c| CensusRow {
            quadkey: c.id.quadkey(),
            broadcasts: c.members.len() as u64,
            peak_discoverable: c.minute_disc.iter().map(|v| v.len() as u64).max().unwrap_or(0),
        })
        .collect()
}

/// Runs the sharded scale workload: one event loop per quadtree cell,
/// minute-boundary message batches, plan-order folds. See the module docs
/// for the determinism argument.
pub fn run_scale(service: &PeriscopeService, rngs: &RngFactory, cfg: &ScaleConfig) -> ScaleRun {
    let pop = &service.population;
    let plan = ShardPlan::build(pop, cfg.shards);
    let scale_rngs = rngs.child("scale");
    let tp = Teleport::new(service, scale_rngs);
    let seed = scale_rngs.seed();
    let rate =
        (cfg.target_sessions as f64 / plan.discoverable_broadcast_minutes().max(1) as f64).min(1.0);

    let mut states: Vec<CellState> = (0..plan.shards())
        .map(|_| CellState { stats: ShardStats::new(), telemetry: QoeTelemetry::new() })
        .collect();
    let mut inboxes: Vec<Vec<Migration>> = vec![Vec::new(); plan.shards()];
    for m in 0..plan.minutes {
        // One shard-local event loop per cell; workers share the immutable
        // world and read only their own inbox.
        let inbox_ref = &inboxes;
        let outs = pscp_simnet::par::indexed_map(&plan.cells, cfg.threads, |ci, cell| {
            run_cell_minute(&tp, pop, &plan, cell, ci, m, &inbox_ref[ci], rate, seed, cfg)
        });
        // Minute boundary: fold each cell's delta and route its outgoing
        // batches, serially in plan (cell) order.
        let mut next: Vec<Vec<Migration>> = vec![Vec::new(); plan.shards()];
        for (ci, out) in outs.into_iter().enumerate() {
            states[ci].stats.merge(&out.stats);
            states[ci].telemetry.merge(&out.telemetry);
            for mig in out.migrations {
                states[ci].stats.migrations_out += 1;
                if mig.cross {
                    states[ci].stats.migrations_cross += 1;
                }
                next[mig.to_cell as usize].push(mig);
            }
            for batch in out.chat {
                states[batch.from_cell as usize].stats.chat_out += batch.messages;
                states[batch.to_cell as usize].stats.chat_in += batch.messages;
                if batch.cross {
                    states[batch.to_cell as usize].stats.chat_cross += batch.messages;
                }
            }
        }
        inboxes = next;
    }

    // Final roll-up in plan order (exact merges, so any order would do).
    let mut stats = ShardStats::new();
    let mut telemetry = QoeTelemetry::new();
    for st in &states {
        stats.merge(&st.stats);
        telemetry.merge(&st.telemetry);
    }
    ScaleRun {
        broadcasts: pop.broadcasts.len(),
        shards: plan.shards(),
        minutes: plan.minutes,
        stats,
        telemetry,
        census: census(pop),
        plan_bytes: plan.memory_bytes(),
    }
}

/// One cell, one minute: migrated-in sessions from the boundary batch,
/// then primary arrivals over the cell's discoverable broadcast-minutes.
#[allow(clippy::too_many_arguments)]
fn run_cell_minute(
    tp: &Teleport<'_>,
    pop: &Population,
    plan: &ShardPlan,
    cell: &ShardCell,
    ci: usize,
    m: usize,
    inbox: &[Migration],
    rate: f64,
    seed: u64,
    cfg: &ScaleConfig,
) -> MinuteOut {
    let mut out = MinuteOut {
        stats: ShardStats::new(),
        telemetry: QoeTelemetry::new(),
        migrations: Vec::new(),
        chat: Vec::new(),
    };
    for mig in inbox {
        let Some(b) = pop.by_id(mig.broadcast) else { continue };
        run_scale_session(tp, pop, plan, &mut out, b, ci, m, mig.session_key, true, cfg);
    }
    for &bi in cell.discoverable_at_minute(m) {
        let b = &pop.broadcasts[bi as usize];
        let h = mix(seed ^ b.id.0 ^ (m as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        if unit(h) >= rate {
            continue;
        }
        run_scale_session(tp, pop, plan, &mut out, b, ci, m, mix(h ^ 0x5e55_1011), false, cfg);
    }
    out
}

/// Executes one session of the scale run and folds its outcome; may emit a
/// migration and a chat batch for the next minute boundary.
#[allow(clippy::too_many_arguments)]
fn run_scale_session(
    tp: &Teleport<'_>,
    pop: &Population,
    plan: &ShardPlan,
    out: &mut MinuteOut,
    b: &pscp_workload::broadcast::Broadcast,
    ci: usize,
    m: usize,
    key: u64,
    migrated: bool,
    cfg: &ScaleConfig,
) {
    // Join somewhere in this minute while the broadcast is still live
    // (with a second to spare). A migrated-in viewer whose destination
    // ended during the boundary latency is a dropped migration.
    let minute_start = SimTime::from_secs(m as u64 * 60);
    let minute_end = SimTime::from_secs(m as u64 * 60 + 60);
    let lo = b.start.max(minute_start);
    let hi = SimTime::from_micros(b.end().as_micros().saturating_sub(1_000_000)).min(minute_end);
    if hi < lo {
        if migrated {
            out.stats.migrations_dropped += 1;
        } else {
            out.stats.skipped += 1;
        }
        return;
    }
    let span_us = hi.as_micros() - lo.as_micros();
    let join_at = SimTime::from_micros(
        lo.as_micros() + (span_us as f64 * unit(mix(key ^ 0x0010_ca7e))) as u64,
    );
    let outcome = tp.run_one(b, join_at, &cfg.session, key);

    out.stats.sessions += 1;
    if migrated {
        out.stats.migrated_in += 1;
    } else {
        out.stats.primary += 1;
    }
    match outcome.join_time_s() {
        Some(join) => out.stats.join_us.observe(us(join)),
        None => {
            out.stats.never_joined += 1;
            out.stats.join_us.observe(us(outcome.player.session_s));
        }
    }
    out.stats.stall_ppm.observe((outcome.stall_ratio() * 1e6).round() as u64);
    out.stats.watch_us += us(outcome.player.session_s);
    out.telemetry.fold_outcome(&outcome);

    // Chat fan-in: the viewer posts from their home cell into the
    // broadcast's room, at the configured rate with stochastic rounding.
    let watch_min = outcome.player.session_s / 60.0;
    let messages =
        (cfg.chat_per_watch_min * watch_min + unit(mix(key ^ 0xc4a7_0002))).floor() as u64;
    if messages > 0 {
        let home = viewer_home(key);
        out.chat.push(ChatBatch {
            from_cell: plan.cell_index(&home) as u32,
            to_cell: ci as u32,
            messages,
            cross: GeoRect::quad_cell(&home, REF_DEPTH)
                != GeoRect::quad_cell(&b.location, REF_DEPTH),
        });
    }

    // Onward teleport (primary sessions only; one hop bounds the cascade).
    // The destination is sampled from the global population at the next
    // minute boundary with a stream keyed by this session alone, so the
    // migration — content and existence — is shard-invariant.
    if !migrated && m + 1 < plan.minutes && unit(mix(key ^ 0x3141_5926)) < cfg.migrate_prob {
        let t_next = SimTime::from_secs((m as u64 + 1) * 60);
        let mut rng = tp.rngs().stream(&format!("scale/mig/{key:016x}"));
        match pop.sample_live_weighted(t_next, &mut rng) {
            Some(dest) => out.migrations.push(Migration {
                session_key: mix(key ^ 0x6d19_0001),
                broadcast: dest.id,
                to_cell: plan.cell_index(&dest.location) as u32,
                cross: GeoRect::quad_cell(&dest.location, REF_DEPTH)
                    != GeoRect::quad_cell(&b.location, REF_DEPTH),
            }),
            None => out.stats.migrations_dropped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_service::ServiceConfig;
    use pscp_workload::population::PopulationConfig;

    fn world(seed: u64) -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::small(), &RngFactory::new(seed));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    #[test]
    fn plan_partitions_every_broadcast_exactly_once() {
        let svc = world(11);
        for shards in [1usize, 4, 16] {
            let plan = ShardPlan::build(&svc.population, shards);
            assert_eq!(plan.shards(), shards);
            let mut seen = vec![0u8; svc.population.broadcasts.len()];
            for cell in &plan.cells {
                for &i in &cell.members {
                    seen[i as usize] += 1;
                    let b = &svc.population.broadcasts[i as usize];
                    assert!(cell.id.rect().contains(&b.location));
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "partition must be total and disjoint");
        }
    }

    #[test]
    fn quadkeys_name_cells() {
        let p = GeoPoint::new(60.17, 24.94); // Helsinki: NE of the world
        assert_eq!(CellId::of(&p, 0).quadkey(), "");
        assert_eq!(CellId::of(&p, 1).quadkey(), "3");
        assert_eq!(CellId::of(&p, 2).quadkey().len(), 2);
    }

    #[test]
    fn scale_run_is_shard_invariant() {
        let svc = world(2016);
        let rngs = RngFactory::new(2016);
        let base = ScaleConfig { target_sessions: 60, threads: 1, shards: 1, ..Default::default() };
        let runs: Vec<ScaleRun> = [1usize, 4, 16]
            .iter()
            .map(|&shards| {
                let cfg = ScaleConfig {
                    shards,
                    threads: if shards == 16 { 0 } else { 1 },
                    ..base.clone()
                };
                run_scale(&svc, &rngs, &cfg)
            })
            .collect();
        assert!(runs[0].stats.sessions > 10, "sessions={}", runs[0].stats.sessions);
        for r in &runs[1..] {
            assert_eq!(r.stats.json(), runs[0].stats.json());
            assert_eq!(r.telemetry.snapshot_json(), runs[0].telemetry.snapshot_json());
        }
    }

    #[test]
    fn migrations_and_chat_cross_cells() {
        let svc = world(7);
        let rngs = RngFactory::new(7);
        let cfg = ScaleConfig { target_sessions: 80, ..Default::default() };
        let run = run_scale(&svc, &rngs, &cfg);
        assert!(run.stats.migrations_out > 0, "no migrations at all");
        assert!(run.stats.chat_out > 0, "no chat at all");
        assert_eq!(run.stats.chat_out, run.stats.chat_in, "chat routing must conserve messages");
        assert!(run.stats.chat_cross > 0, "no cross-cell chat fan-in");
        assert_eq!(run.stats.sessions, run.stats.primary + run.stats.migrated_in);
    }

    #[test]
    fn census_is_a_pure_population_fact() {
        let svc = world(5);
        let rows = census(&svc.population);
        let total: u64 = rows.iter().map(|r| r.broadcasts).sum();
        assert_eq!(total, svc.population.broadcasts.len() as u64);
        for w in rows.windows(2) {
            assert!(w[0].quadkey < w[1].quadkey, "census must be in quadkey order");
        }
    }
}
