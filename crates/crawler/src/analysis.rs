//! Usage-pattern analysis over crawler observations — §4 of the paper.
//!
//! Every number here is computed from what the crawler *saw* (observation
//! records), never from simulator ground truth, preserving the estimation
//! biases the paper's methodology has (e.g. durations truncated by crawl
//! boundaries, viewer averages sampled at round granularity).

use crate::records::BroadcastObservation;
use pscp_stats::regression::pearson;
use pscp_stats::Ecdf;

/// The §4 usage-pattern summary.
#[derive(Debug, Clone)]
pub struct UsageStats {
    /// Distinct broadcasts with an estimated duration.
    pub n_broadcasts: usize,
    /// Median duration, minutes.
    pub median_duration_min: f64,
    /// Fraction of durations within [1, 10] minutes.
    pub frac_duration_1_to_10_min: f64,
    /// Broadcasts with viewer information.
    pub n_with_viewer_info: usize,
    /// Fraction averaging fewer than 20 viewers.
    pub frac_under_20_viewers: f64,
    /// Fraction with zero viewers.
    pub frac_zero_viewers: f64,
    /// Of zero-viewer broadcasts, the fraction unavailable for replay.
    pub frac_zero_viewer_unreplayable: f64,
    /// Mean duration of zero-viewer broadcasts, minutes.
    pub zero_viewer_avg_duration_min: f64,
    /// Mean duration of viewed broadcasts, minutes.
    pub viewed_avg_duration_min: f64,
    /// Zero-viewer share of total tracked broadcast time.
    pub zero_viewer_time_share: f64,
    /// Pearson correlation between duration and average viewers (viewed
    /// broadcasts only).
    pub duration_popularity_correlation: f64,
}

/// Computes the §4 statistics from ended-broadcast observations.
pub fn usage_stats(observations: &[&BroadcastObservation]) -> Option<UsageStats> {
    if observations.len() < 10 {
        return None;
    }
    let durations_min: Vec<f64> =
        observations.iter().map(|o| o.duration_estimate_s() / 60.0).collect();
    let viewers: Vec<f64> = observations.iter().map(|o| o.avg_viewers()).collect();
    let n = observations.len();
    let median = pscp_stats::median(&durations_min).ok()?;
    let in_1_10 =
        durations_min.iter().filter(|&&d| (1.0..=10.0).contains(&d)).count() as f64 / n as f64;
    let zero: Vec<usize> = (0..n).filter(|&i| viewers[i] < 0.5).collect();
    let viewed: Vec<usize> = (0..n).filter(|&i| viewers[i] >= 0.5).collect();
    let frac_zero = zero.len() as f64 / n as f64;
    let under20 = viewers.iter().filter(|&&v| v < 20.0).count() as f64 / n as f64;
    let unreplayable = if zero.is_empty() {
        0.0
    } else {
        zero.iter().filter(|&&i| !observations[i].replay_available).count() as f64
            / zero.len() as f64
    };
    let avg = |idx: &[usize]| -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| durations_min[i]).sum::<f64>() / idx.len() as f64
    };
    let zero_time: f64 = zero.iter().map(|&i| durations_min[i]).sum();
    let total_time: f64 = durations_min.iter().sum();
    let correlation = if viewed.len() >= 3 {
        let d: Vec<f64> = viewed.iter().map(|&i| durations_min[i]).collect();
        let v: Vec<f64> = viewed.iter().map(|&i| viewers[i]).collect();
        pearson(&d, &v).unwrap_or(0.0)
    } else {
        0.0
    };
    Some(UsageStats {
        n_broadcasts: n,
        median_duration_min: median,
        frac_duration_1_to_10_min: in_1_10,
        n_with_viewer_info: observations.iter().filter(|o| o.viewer_samples > 0).count(),
        frac_under_20_viewers: under20,
        frac_zero_viewers: frac_zero,
        frac_zero_viewer_unreplayable: unreplayable,
        zero_viewer_avg_duration_min: avg(&zero),
        viewed_avg_duration_min: avg(&viewed),
        zero_viewer_time_share: if total_time > 0.0 { zero_time / total_time } else { 0.0 },
        duration_popularity_correlation: correlation,
    })
}

/// Fig 2(a): the duration and average-viewers ECDFs (minutes / viewers on
/// the same log-friendly scale, as the paper plots them).
pub fn fig2a_cdfs(observations: &[&BroadcastObservation]) -> Option<(Ecdf, Ecdf)> {
    let durations: Vec<f64> =
        observations.iter().map(|o| (o.duration_estimate_s() / 60.0).max(0.01)).collect();
    let viewers: Vec<f64> = observations
        .iter()
        .filter(|o| o.viewer_samples > 0)
        .map(|o| o.avg_viewers().max(0.01))
        .collect();
    Some((Ecdf::new(&durations).ok()?, Ecdf::new(&viewers).ok()?))
}

/// Fig 2(b): average viewers per broadcast bucketed by local start hour.
pub fn fig2b_viewers_by_local_hour(
    observations: &[&BroadcastObservation],
    utc_start_hour: f64,
) -> Vec<(u32, f64)> {
    let mut sums = [0.0f64; 24];
    let mut counts = [0u32; 24];
    for o in observations {
        if o.viewer_samples == 0 {
            continue;
        }
        let h = o.local_start_hour(utc_start_hour) as usize % 24;
        sums[h] += o.avg_viewers();
        counts[h] += 1;
    }
    (0..24).filter(|&h| counts[h] > 0).map(|h| (h as u32, sums[h] / counts[h] as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::ObservationStore;
    use pscp_service::api::BroadcastDescription;
    use pscp_simnet::SimTime;
    use pscp_workload::broadcast::BroadcastId;

    /// Builds a synthetic observation set: `n_zero` short zero-viewer
    /// broadcasts and `n_viewed` longer viewed ones.
    fn fixture(n_zero: usize, n_viewed: usize) -> ObservationStore {
        let mut store = ObservationStore::new();
        for i in 0..n_zero {
            let desc = BroadcastDescription {
                id: BroadcastId(i as u64 + 1),
                start_s: 0.0,
                n_viewers: 0,
                available_for_replay: i % 10 == 0, // 10% replayable
                live: true,
                lat: 41.0,
                lng: 29.0,
            };
            store.ingest(&desc, SimTime::from_secs(100 + (i as u64 % 60)));
        }
        for i in 0..n_viewed {
            let desc = BroadcastDescription {
                id: BroadcastId(10_000 + i as u64),
                start_s: 0.0,
                n_viewers: 5 + (i as u32 % 40),
                available_for_replay: true,
                live: true,
                lat: 41.0,
                lng: 29.0,
            };
            store.ingest(&desc, SimTime::from_secs(200 + (i as u64 % 500)));
        }
        store
    }

    #[test]
    fn stats_reflect_fixture() {
        let store = fixture(20, 80);
        let all: Vec<&BroadcastObservation> = store.all().collect();
        let stats = usage_stats(&all).unwrap();
        assert_eq!(stats.n_broadcasts, 100);
        assert!((stats.frac_zero_viewers - 0.2).abs() < 1e-9);
        assert!(stats.frac_zero_viewer_unreplayable > 0.85);
        assert!(stats.viewed_avg_duration_min > stats.zero_viewer_avg_duration_min);
    }

    #[test]
    fn too_few_observations_is_none() {
        let store = fixture(2, 3);
        let all: Vec<&BroadcastObservation> = store.all().collect();
        assert!(usage_stats(&all).is_none());
    }

    #[test]
    fn cdfs_built() {
        let store = fixture(10, 50);
        let all: Vec<&BroadcastObservation> = store.all().collect();
        let (dur, view) = fig2a_cdfs(&all).unwrap();
        assert_eq!(dur.len(), 60);
        assert_eq!(view.len(), 60);
    }

    #[test]
    fn diurnal_buckets_cover_hours() {
        let store = fixture(0, 100);
        let all: Vec<&BroadcastObservation> = store.all().collect();
        let series = fig2b_viewers_by_local_hour(&all, 12.0);
        assert!(!series.is_empty());
        for (h, v) in &series {
            assert!(*h < 24);
            assert!(*v > 0.0);
        }
    }
}
