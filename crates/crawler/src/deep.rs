//! The deep (quadtree) crawl.
//!
//! §4: "In deep crawl, the crawler zooms into each area by dividing it into
//! four smaller areas and recursively continues doing that until it no
//! longer discovers substantially more broadcasts. Such a crawl finds
//! 1K-4K broadcasts" and "it takes over 10 minutes to finish". Requests are
//! paced to stay under the 429 rate limit; the output is the cumulative
//! discovery curve of Fig 1 plus the per-area counts the targeted crawl
//! selects from.

use crate::records::ObservationStore;
use pscp_service::api::{ApiRequest, BroadcastDescription};
use pscp_service::PeriscopeService;
use pscp_simnet::{GeoPoint, GeoRect, SimDuration, SimTime};
use pscp_workload::broadcast::BroadcastId;
use std::collections::HashSet;

/// Deep-crawl settings.
#[derive(Debug, Clone)]
pub struct DeepCrawlConfig {
    /// Pacing between API requests (rate-limit avoidance).
    pub pace: SimDuration,
    /// Stop recursing into a quadrant when a query discovers fewer than
    /// this many new broadcasts.
    pub min_new_to_recurse: usize,
    /// Maximum quadtree depth below the world rectangle.
    pub max_depth: u32,
    /// Crawler account name.
    pub user: String,
    /// Record crawl events/metrics into [`DeepCrawl::trace`] (DESIGN.md
    /// §7). Off by default; the crawl itself is identical either way.
    pub trace: bool,
}

impl Default for DeepCrawlConfig {
    fn default() -> Self {
        DeepCrawlConfig {
            pace: SimDuration::from_millis(1200),
            min_new_to_recurse: 4,
            max_depth: 8,
            user: "crawler-deep".to_string(),
            trace: false,
        }
    }
}

/// One map query of the crawl, for the Fig 1 curve.
#[derive(Debug, Clone)]
pub struct CrawlStep {
    /// Queried area.
    pub rect: GeoRect,
    /// Broadcast ids returned.
    pub returned: usize,
    /// Of those, previously unseen.
    pub new: usize,
    /// Cumulative distinct broadcasts after this query.
    pub cumulative: usize,
    /// Query instant.
    pub at: SimTime,
}

/// Result of one deep crawl.
#[derive(Debug)]
pub struct DeepCrawl {
    /// Every query in order (the Fig 1 x-axis).
    pub steps: Vec<CrawlStep>,
    /// Distinct broadcasts discovered.
    pub discovered: HashSet<BroadcastId>,
    /// Observations (descriptions fetched for discovered broadcasts).
    pub observations: ObservationStore,
    /// 429 responses encountered.
    pub rate_limited: u32,
    /// When the crawl finished.
    pub finished_at: SimTime,
    /// Crawl-side events and metrics (plus the service's own trace,
    /// absorbed at the end of the run). Empty unless the config asked for
    /// tracing.
    pub trace: pscp_obs::Trace,
}

impl DeepCrawl {
    /// Runs a deep crawl starting at `start`, driving the virtual clock by
    /// the configured pacing. Returns the crawl log.
    pub fn run(
        service: &mut PeriscopeService,
        config: &DeepCrawlConfig,
        start: SimTime,
    ) -> DeepCrawl {
        let mut crawl = DeepCrawl {
            steps: Vec::new(),
            discovered: HashSet::new(),
            observations: ObservationStore::new(),
            rate_limited: 0,
            finished_at: start,
            trace: pscp_obs::Trace::new(config.trace),
        };
        let mut now = start;
        // Breadth-first over the quadtree: each level's productive rects
        // spawn their quadrants.
        let mut frontier: Vec<(GeoRect, u32)> = vec![(GeoRect::WORLD, 0)];
        while let Some((rect, depth)) = frontier.pop() {
            let (ids, at) = Self::map_query(service, config, rect, &mut now, &mut crawl);
            let new: Vec<BroadcastId> =
                ids.iter().copied().filter(|id| !crawl.discovered.contains(id)).collect();
            for id in &new {
                crawl.discovered.insert(*id);
            }
            for id in &ids {
                crawl.observations.sight(*id, at);
            }
            // Fetch descriptions for newly found broadcasts (batched).
            if !new.is_empty() {
                Self::get_descriptions(service, config, &new, &mut now, &mut crawl);
            }
            crawl.trace.count("crawler", "map_queries", 1);
            if crawl.trace.is_enabled() {
                crawl.trace.event(
                    at.as_micros(),
                    "crawler",
                    "crawler.map_query",
                    vec![
                        ("returned", pscp_obs::Field::U(ids.len() as u64)),
                        ("new", pscp_obs::Field::U(new.len() as u64)),
                        ("depth", pscp_obs::Field::U(depth as u64)),
                    ],
                );
            }
            crawl.steps.push(CrawlStep {
                rect,
                returned: ids.len(),
                new: new.len(),
                cumulative: crawl.discovered.len(),
                at,
            });
            if new.len() >= config.min_new_to_recurse && depth < config.max_depth {
                for q in rect.quadrants() {
                    frontier.push((q, depth + 1));
                }
            }
        }
        crawl.finished_at = now;
        crawl.trace.count("crawler", "discovered", crawl.discovered.len() as u64);
        // Fold in the service-side view (per-verb counters, 429 events).
        let service_trace = service.take_trace();
        crawl.trace.absorb(service_trace);
        crawl
    }

    /// Issues a paced mapGeoBroadcastFeed, retrying after 429s.
    fn map_query(
        service: &mut PeriscopeService,
        config: &DeepCrawlConfig,
        rect: GeoRect,
        now: &mut SimTime,
        crawl: &mut DeepCrawl,
    ) -> (Vec<BroadcastId>, SimTime) {
        loop {
            *now += config.pace;
            let req = ApiRequest::MapGeoBroadcastFeed { rect, include_replay: false }
                .to_http(&config.user);
            let resp = service.handle_http(&config.user, &req, *now, &crawler_location());
            if resp.status == 429 {
                crawl.rate_limited += 1;
                crawl.trace.count("crawler", "rate_limited", 1);
                crawl.trace.event(now.as_micros(), "crawler", "crawler.rate_limited", vec![]);
                *now += config.pace * 2; // back off
                continue;
            }
            if resp.status >= 500 {
                // Injected backend failure (DESIGN.md §8): back off and retry
                // like a 429 rather than choking on a non-JSON error body.
                crawl.trace.count("crawler", "server_errors", 1);
                *now += config.pace * 2;
                continue;
            }
            let at = *now;
            let body = String::from_utf8(resp.body).expect("API responses are UTF-8 JSON");
            let v = pscp_proto::json::parse(&body).expect("API responses are valid JSON");
            let ids = v
                .get("broadcasts")
                .and_then(|b| b.as_array())
                .map(|list| {
                    list.iter()
                        .filter_map(|b| b.get("id").and_then(|i| i.as_str()))
                        .filter_map(BroadcastId::parse)
                        .collect()
                })
                .unwrap_or_default();
            return (ids, at);
        }
    }

    /// Issues paced getBroadcasts calls for up to 100 ids per request.
    fn get_descriptions(
        service: &mut PeriscopeService,
        config: &DeepCrawlConfig,
        ids: &[BroadcastId],
        now: &mut SimTime,
        crawl: &mut DeepCrawl,
    ) {
        for batch in ids.chunks(100) {
            loop {
                *now += config.pace;
                let req = ApiRequest::GetBroadcasts { ids: batch.to_vec() }.to_http(&config.user);
                let resp = service.handle_http(&config.user, &req, *now, &crawler_location());
                if resp.status == 429 {
                    crawl.rate_limited += 1;
                    crawl.trace.count("crawler", "rate_limited", 1);
                    crawl.trace.event(now.as_micros(), "crawler", "crawler.rate_limited", vec![]);
                    *now += config.pace * 2;
                    continue;
                }
                if resp.status >= 500 {
                    crawl.trace.count("crawler", "server_errors", 1);
                    *now += config.pace * 2;
                    continue;
                }
                crawl.trace.count("crawler", "desc_queries", 1);
                let body = String::from_utf8(resp.body).expect("UTF-8 JSON");
                let v = pscp_proto::json::parse(&body).expect("valid JSON");
                if let Some(list) = v.get("broadcasts").and_then(|b| b.as_array()) {
                    for item in list {
                        if let Ok(desc) = BroadcastDescription::from_json(item) {
                            crawl.observations.ingest(&desc, *now);
                        }
                    }
                }
                break;
            }
        }
    }

    /// Duration of the crawl.
    pub fn duration(&self) -> SimDuration {
        let first = self.steps.first().map(|s| s.at).unwrap_or(self.finished_at);
        self.finished_at.saturating_since(first)
    }

    /// The Fig 1(a) series: cumulative discoveries per *map* query.
    pub fn cumulative_curve(&self) -> Vec<(usize, usize)> {
        self.steps.iter().enumerate().map(|(i, s)| (i + 1, s.cumulative)).collect()
    }

    /// Per-area counts sorted descending — the targeted crawl's input.
    pub fn areas_by_count(&self) -> Vec<(GeoRect, usize)> {
        // Leaf areas: those whose quadrants were not themselves queried.
        let mut out: Vec<(GeoRect, usize)> =
            self.steps.iter().map(|s| (s.rect, s.returned)).collect();
        out.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        out
    }

    /// Fig 1(b): fraction of broadcasts contained in the top fraction of
    /// areas. Returns (area fraction, broadcast fraction) points.
    pub fn concentration_curve(&self) -> Vec<(f64, f64)> {
        let areas = self.areas_by_count();
        let total: usize = areas.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut cum = 0usize;
        areas
            .iter()
            .enumerate()
            .map(|(i, (_, n))| {
                cum += n;
                ((i + 1) as f64 / areas.len() as f64, cum as f64 / total as f64)
            })
            .collect()
    }
}

/// The measurement vantage point (Finland, like the paper's emulators).
pub fn crawler_location() -> GeoPoint {
    GeoPoint::new(60.19, 24.83)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_service::ServiceConfig;
    use pscp_simnet::RngFactory;
    use pscp_workload::population::{Population, PopulationConfig};

    fn service() -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::medium(), &RngFactory::new(41));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    fn run_crawl(svc: &mut PeriscopeService) -> DeepCrawl {
        DeepCrawl::run(svc, &DeepCrawlConfig::default(), SimTime::from_secs(3600))
    }

    #[test]
    fn finds_thousands_of_broadcasts() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        // Paper: 1K-4K per deep crawl (our medium population is ~half the
        // default scale, so accept a wider low end).
        let n = crawl.discovered.len();
        assert!((400..6000).contains(&n), "discovered={n}");
    }

    #[test]
    fn zooming_discovers_more_than_world_query() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        let world_step = &crawl.steps[0];
        assert!(crawl.discovered.len() > world_step.returned * 5);
    }

    #[test]
    fn cumulative_curve_monotone() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        let curve = crawl.cumulative_curve();
        assert!(curve.len() > 20, "queries={}", curve.len());
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn concentration_matches_fig1b() {
        // "half of the areas contain at least 80% of all the broadcasts".
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        let curve = crawl.concentration_curve();
        let at_half =
            curve.iter().find(|(area_frac, _)| *area_frac >= 0.5).map(|(_, b)| *b).unwrap();
        assert!(at_half >= 0.8, "at_half={at_half}");
    }

    #[test]
    fn crawl_takes_minutes() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        let mins = crawl.duration().as_secs_f64() / 60.0;
        assert!(mins > 3.0, "crawl took {mins} min");
    }

    #[test]
    fn observations_have_descriptions() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        assert!(crawl.observations.len() > crawl.discovered.len() / 2);
        let with_viewers = crawl.observations.all().filter(|o| o.viewer_samples > 0).count();
        assert!(with_viewers > 0);
    }

    #[test]
    fn pacing_avoids_rate_limits() {
        let mut svc = service();
        let crawl = run_crawl(&mut svc);
        // Well-paced crawl sees none (or nearly none) of the 429s.
        assert!(crawl.rate_limited < 5, "rate_limited={}", crawl.rate_limited);
    }
}
