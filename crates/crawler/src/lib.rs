#![warn(missing_docs)]

//! The measurement crawler of §4.
//!
//! "We developed a crawler by writing a mitmproxy inline script that
//! exploits the /mapGeoBroadcastFeed request of the Periscope API. ...
//! Our approach is to first perform a deep crawl and then to select only
//! the most active areas from that crawl and query only them, i.e., perform
//! a targeted crawl."
//!
//! * [`deep`] — the recursive quadtree crawl: "the crawler zooms into each
//!   area by dividing it into four smaller areas and recursively continues
//!   doing that until it no longer discovers substantially more
//!   broadcasts" (Fig 1);
//! * [`targeted`] — the top-areas crawl run by "four different
//!   simultaneously running crawlers ... with different user logged in
//!   (avoids rate limiting)", completing a round in ~50 s;
//! * [`records`] — per-broadcast observation records (first/last sighting,
//!   viewer statistics, replay flag) built from `getBroadcasts` responses;
//! * [`analysis`] — the §4 usage-pattern statistics (Fig 2 and the
//!   zero-viewer/replay/correlation numbers);
//! * [`tap`] — the mitmproxy stand-in that logged API exchanges and
//!   reverse-engineered the command inventory (Table 1).

pub mod analysis;
pub mod deep;
pub mod records;
pub mod tap;
pub mod targeted;

pub use deep::{DeepCrawl, DeepCrawlConfig};
pub use records::{BroadcastObservation, ObservationStore};
pub use targeted::{TargetedCrawl, TargetedCrawlConfig};
