//! Observation records the crawler accumulates.
//!
//! §4's statistics are computed from *observations*, not ground truth:
//! duration is "calculated by subtracting its start time (included in the
//! description) from the timestamp of the last moment the crawler
//! discovered the broadcast", and only broadcasts that ended during the
//! crawl count ("must not have been discovered during the last 60s of a
//! crawl"). This module implements exactly that bookkeeping.

use pscp_service::api::BroadcastDescription;
use pscp_simnet::{SimDuration, SimTime};
use pscp_workload::broadcast::BroadcastId;
use std::collections::HashMap;

/// Everything the crawler knows about one broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastObservation {
    /// Broadcast id.
    pub id: BroadcastId,
    /// Start time from the description, seconds.
    pub start_s: f64,
    /// First sighting.
    pub first_seen: SimTime,
    /// Most recent sighting.
    pub last_seen: SimTime,
    /// Number of viewer-count samples.
    pub viewer_samples: u32,
    /// Sum of sampled viewer counts (for the average).
    pub viewer_sum: u64,
    /// Replay availability from the latest description.
    pub replay_available: bool,
    /// Advertised coordinates.
    pub lat: f64,
    /// Advertised longitude.
    pub lng: f64,
}

impl BroadcastObservation {
    /// Average sampled viewers.
    pub fn avg_viewers(&self) -> f64 {
        if self.viewer_samples == 0 {
            return 0.0;
        }
        self.viewer_sum as f64 / self.viewer_samples as f64
    }

    /// §4 duration estimate: last sighting minus advertised start.
    pub fn duration_estimate_s(&self) -> f64 {
        (self.last_seen.as_secs_f64() - self.start_s).max(0.0)
    }

    /// Local start hour from longitude timezone and the UTC hour at t=0.
    pub fn local_start_hour(&self, utc_start_hour: f64) -> f64 {
        let utc = (utc_start_hour + self.start_s / 3600.0).rem_euclid(24.0);
        let offset = (self.lng / 15.0).round();
        (utc + offset).rem_euclid(24.0)
    }
}

/// The crawler's observation database.
#[derive(Debug, Default)]
pub struct ObservationStore {
    map: HashMap<BroadcastId, BroadcastObservation>,
}

impl ObservationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObservationStore::default()
    }

    /// Ingests one `getBroadcasts` description seen at `now`.
    pub fn ingest(&mut self, desc: &BroadcastDescription, now: SimTime) {
        let entry = self.map.entry(desc.id).or_insert_with(|| BroadcastObservation {
            id: desc.id,
            start_s: desc.start_s,
            first_seen: now,
            last_seen: now,
            viewer_samples: 0,
            viewer_sum: 0,
            replay_available: desc.available_for_replay,
            lat: desc.lat,
            lng: desc.lng,
        });
        entry.last_seen = entry.last_seen.max(now);
        entry.viewer_samples += 1;
        entry.viewer_sum += desc.n_viewers as u64;
        entry.replay_available = desc.available_for_replay;
    }

    /// Marks a map sighting without a full description (keeps `last_seen`
    /// fresh for broadcasts whose detail query was rate-limited away).
    pub fn sight(&mut self, id: BroadcastId, now: SimTime) {
        if let Some(entry) = self.map.get_mut(&id) {
            entry.last_seen = entry.last_seen.max(now);
        }
    }

    /// Number of distinct broadcasts observed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `id` has been seen.
    pub fn contains(&self, id: BroadcastId) -> bool {
        self.map.contains_key(&id)
    }

    /// All observations.
    pub fn all(&self) -> impl Iterator<Item = &BroadcastObservation> {
        self.map.values()
    }

    /// §4's "ended during the crawl" filter: broadcasts not sighted within
    /// `grace` of `crawl_end`.
    pub fn ended_during(
        &self,
        crawl_end: SimTime,
        grace: SimDuration,
    ) -> Vec<&BroadcastObservation> {
        let cutoff = crawl_end - grace;
        self.map.values().filter(|o| o.last_seen < cutoff).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: u64, start_s: f64, viewers: u32) -> BroadcastDescription {
        BroadcastDescription {
            id: BroadcastId(id),
            start_s,
            n_viewers: viewers,
            available_for_replay: false,
            live: true,
            lat: 41.0,
            lng: 29.0,
        }
    }

    #[test]
    fn ingest_tracks_first_and_last() {
        let mut store = ObservationStore::new();
        store.ingest(&desc(1, 50.0, 3), SimTime::from_secs(100));
        store.ingest(&desc(1, 50.0, 7), SimTime::from_secs(400));
        let o = store.all().next().unwrap();
        assert_eq!(o.first_seen, SimTime::from_secs(100));
        assert_eq!(o.last_seen, SimTime::from_secs(400));
        assert_eq!(o.avg_viewers(), 5.0);
        assert_eq!(o.duration_estimate_s(), 350.0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sight_refreshes_last_seen_only() {
        let mut store = ObservationStore::new();
        store.ingest(&desc(1, 0.0, 2), SimTime::from_secs(10));
        store.sight(BroadcastId(1), SimTime::from_secs(99));
        let o = store.all().next().unwrap();
        assert_eq!(o.last_seen, SimTime::from_secs(99));
        assert_eq!(o.viewer_samples, 1);
        // Sighting an unknown id is a no-op.
        store.sight(BroadcastId(2), SimTime::from_secs(100));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ended_during_applies_grace() {
        let mut store = ObservationStore::new();
        store.ingest(&desc(1, 0.0, 2), SimTime::from_secs(100)); // ended early
        store.ingest(&desc(2, 0.0, 2), SimTime::from_secs(990)); // still live
        let ended = store.ended_during(SimTime::from_secs(1000), SimDuration::from_secs(60));
        assert_eq!(ended.len(), 1);
        assert_eq!(ended[0].id, BroadcastId(1));
    }

    #[test]
    fn local_start_hour_uses_longitude() {
        let mut store = ObservationStore::new();
        store.ingest(&desc(1, 3600.0, 2), SimTime::from_secs(3700));
        let o = store.all().next().unwrap();
        // start at utc_hour 12 + 1h = 13:00 UTC; lng 29 → +2h → 15:00.
        assert!((o.local_start_hour(12.0) - 15.0).abs() < 0.01);
    }

    #[test]
    fn zero_sample_avg_is_zero() {
        let o = BroadcastObservation {
            id: BroadcastId(1),
            start_s: 0.0,
            first_seen: SimTime::ZERO,
            last_seen: SimTime::ZERO,
            viewer_samples: 0,
            viewer_sum: 0,
            replay_available: false,
            lat: 0.0,
            lng: 0.0,
        };
        assert_eq!(o.avg_viewers(), 0.0);
    }
}
