//! The mitmproxy-style API tap.
//!
//! §2: "we set up a so called SSL-capable man-in-the-middle proxy ... The
//! proxy intercepts the HTTPS requests sent by the mobile device and
//! pretends to be the server to the client and to be the client to the
//! server. The proxy enables us to examine and log the exchange of requests
//! and responses." §3: "Since the API is not public, we examined the HTTP
//! requests and responses while using the app through the mitmproxy in
//! order to understand how the API works."
//!
//! [`ApiTap`] wraps a [`PeriscopeService`] the way mitmproxy wrapped the
//! real one: every request/response pair is logged, and the reconnaissance
//! that produced the paper's Table 1 — the inventory of `apiRequest`
//! names with example payloads — falls out of the log.

use pscp_proto::http::{Request, Response};
use pscp_service::PeriscopeService;
use pscp_simnet::{GeoPoint, SimTime};
use std::collections::BTreeMap;

/// One intercepted exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Interception time.
    pub at: SimTime,
    /// Requesting user/session label.
    pub user: String,
    /// Request path (e.g. `/api/v2/mapGeoBroadcastFeed`).
    pub path: String,
    /// Request body (JSON text).
    pub request_body: Vec<u8>,
    /// Response status.
    pub status: u16,
    /// Response body size (the proxy logs full bodies; size suffices for
    /// the analyses here).
    pub response_len: usize,
}

/// A transparent proxy in front of the service.
pub struct ApiTap<'a> {
    service: &'a mut PeriscopeService,
    /// The intercepted log, in order.
    pub log: Vec<Exchange>,
}

impl<'a> ApiTap<'a> {
    /// Inserts the proxy in front of `service`.
    pub fn new(service: &'a mut PeriscopeService) -> Self {
        ApiTap { service, log: Vec::new() }
    }

    /// Forwards a request, logging the exchange.
    pub fn handle(
        &mut self,
        user: &str,
        req: &Request,
        now: SimTime,
        viewer_loc: &GeoPoint,
    ) -> Response {
        let resp = self.service.handle_http(user, req, now, viewer_loc);
        self.log.push(Exchange {
            at: now,
            user: user.to_string(),
            path: req.path.clone(),
            request_body: req.body.clone(),
            status: resp.status,
            response_len: resp.body.len(),
        });
        resp
    }

    /// The reconnaissance result: distinct `apiRequest` names observed,
    /// each with one example request body — the raw material of Table 1.
    pub fn discovered_commands(&self) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for ex in &self.log {
            if let Some(name) = ex.path.strip_prefix("/api/v2/") {
                out.entry(name.to_string())
                    .or_insert_with(|| String::from_utf8_lossy(&ex.request_body).into_owned());
            }
        }
        out
    }

    /// Count of 429 responses seen — what taught the paper's authors about
    /// the rate limiting in the first place.
    pub fn rate_limited_count(&self) -> usize {
        self.log.iter().filter(|e| e.status == 429).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_service::api::ApiRequest;
    use pscp_service::ServiceConfig;
    use pscp_simnet::{GeoRect, RngFactory, SimDuration};
    use pscp_workload::broadcast::BroadcastId;
    use pscp_workload::population::{Population, PopulationConfig};

    fn service() -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::small(), &RngFactory::new(71));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    fn loc() -> GeoPoint {
        GeoPoint::new(60.19, 24.83)
    }

    #[test]
    fn tap_logs_exchanges_and_discovers_commands() {
        let mut svc = service();
        let mut tap = ApiTap::new(&mut svc);
        let mut t = SimTime::from_secs(60);
        let reqs = vec![
            ApiRequest::MapGeoBroadcastFeed { rect: GeoRect::WORLD, include_replay: false },
            ApiRequest::GetBroadcasts { ids: vec![BroadcastId(1)] },
            ApiRequest::PlaybackMeta {
                broadcast_id: BroadcastId(1),
                n_stalls: 0,
                avg_stall_time_s: None,
                playback_latency_s: None,
            },
            ApiRequest::AccessVideo { broadcast_id: BroadcastId(1) },
        ];
        for r in &reqs {
            t += SimDuration::from_secs(2);
            tap.handle("app-user", &r.to_http("tok"), t, &loc());
        }
        assert_eq!(tap.log.len(), 4);
        let commands = tap.discovered_commands();
        // The paper's Table 1 inventory (plus accessVideo).
        assert!(commands.contains_key("mapGeoBroadcastFeed"));
        assert!(commands.contains_key("getBroadcasts"));
        assert!(commands.contains_key("playbackMeta"));
        assert!(commands.contains_key("accessVideo"));
        // Bodies are JSON the analyst can read.
        assert!(commands["mapGeoBroadcastFeed"].contains("p1_lat"));
    }

    #[test]
    fn tap_sees_rate_limiting() {
        let mut svc = service();
        let mut tap = ApiTap::new(&mut svc);
        let t = SimTime::from_secs(60);
        let req = ApiRequest::GetBroadcasts { ids: vec![] }.to_http("tok");
        for _ in 0..20 {
            tap.handle("hasty", &req, t, &loc());
        }
        assert!(tap.rate_limited_count() > 0);
        assert!(tap.rate_limited_count() < 20);
    }

    #[test]
    fn responses_pass_through_unmodified() {
        let mut svc = service();
        let t = SimTime::from_secs(60);
        let req = ApiRequest::MapGeoBroadcastFeed { rect: GeoRect::WORLD, include_replay: false }
            .to_http("tok");
        let direct = {
            let resp = svc.handle_http("u-direct", &req, t, &loc());
            resp.body
        };
        let mut tap = ApiTap::new(&mut svc);
        let proxied = tap.handle("u-proxied", &req, t, &loc());
        assert_eq!(proxied.body, direct, "the proxy is transparent");
        assert_eq!(tap.log[0].response_len, proxied.body.len());
    }
}
