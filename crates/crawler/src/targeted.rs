//! The targeted crawl.
//!
//! §4: "We select those areas from each crawl, 64 areas in total, for a
//! targeted crawl. We divide them into four sets assigned to four different
//! simultaneously running crawlers, i.e., four emulators running Periscope
//! with different user logged in (avoids rate limiting) that repeatedly
//! query the assigned areas. Such targeted crawl completes in about 50s."
//! Rounds repeat for hours; the observation store accumulates the ~hundreds
//! of thousands of distinct broadcasts behind Fig 2.

use crate::deep::{crawler_location, DeepCrawl};
use crate::records::ObservationStore;
use pscp_service::api::{ApiRequest, BroadcastDescription};
use pscp_service::PeriscopeService;
use pscp_simnet::{GeoRect, SimDuration, SimTime};
use pscp_workload::broadcast::BroadcastId;

/// Targeted-crawl settings.
#[derive(Debug, Clone)]
pub struct TargetedCrawlConfig {
    /// Number of top areas to keep from the deep crawl.
    pub areas: usize,
    /// Parallel crawler accounts.
    pub accounts: usize,
    /// Pacing between one account's requests.
    pub pace: SimDuration,
    /// Total crawl duration (4–10 h in the paper).
    pub duration: SimDuration,
    /// Record a structured event/metrics trace of the crawl.
    pub trace: bool,
}

impl Default for TargetedCrawlConfig {
    fn default() -> Self {
        TargetedCrawlConfig {
            areas: 64,
            accounts: 4,
            pace: SimDuration::from_millis(1100),
            duration: SimDuration::from_secs(4 * 3600),
            trace: false,
        }
    }
}

/// Result of a targeted crawl.
#[derive(Debug)]
pub struct TargetedCrawl {
    /// Accumulated observations.
    pub observations: ObservationStore,
    /// Completed query rounds.
    pub rounds: u32,
    /// Duration of one round (for the ~50 s check).
    pub round_duration: SimDuration,
    /// 429 responses seen.
    pub rate_limited: u32,
    /// When the crawl ended.
    pub finished_at: SimTime,
    /// UTC hour at simulation t=0 (copied from the population config, used
    /// by the diurnal analysis).
    pub utc_start_hour: f64,
    /// Structured trace of the crawl (empty unless the config enables it).
    pub trace: pscp_obs::Trace,
}

impl TargetedCrawl {
    /// Selects the top areas of a deep crawl — "half of the areas contain
    /// at least 80% of all the broadcasts discovered" — capped to
    /// `config.areas`.
    pub fn select_areas(deep: &DeepCrawl, config: &TargetedCrawlConfig) -> Vec<GeoRect> {
        deep.areas_by_count().into_iter().take(config.areas).map(|(r, _)| r).collect()
    }

    /// Runs the targeted crawl over `areas` starting at `start`.
    ///
    /// The four accounts run concurrently; each account's requests are
    /// paced independently. The simulation interleaves them on the shared
    /// virtual clock.
    pub fn run(
        service: &mut PeriscopeService,
        areas: &[GeoRect],
        config: &TargetedCrawlConfig,
        start: SimTime,
    ) -> TargetedCrawl {
        assert!(config.accounts >= 1, "need at least one account");
        assert!(!areas.is_empty(), "need areas to crawl");
        let utc_start_hour = service.population.config.utc_start_hour;
        let mut crawl = TargetedCrawl {
            observations: ObservationStore::new(),
            rounds: 0,
            round_duration: SimDuration::ZERO,
            rate_limited: 0,
            finished_at: start,
            utc_start_hour,
            trace: pscp_obs::Trace::new(config.trace),
        };
        // Partition areas among accounts.
        let per_account: Vec<Vec<GeoRect>> = (0..config.accounts)
            .map(|a| areas.iter().copied().skip(a).step_by(config.accounts).collect())
            .collect();
        let longest = per_account.iter().map(Vec::len).max().expect("accounts >= 1");
        crawl.round_duration = config.pace * (longest as u64 * 2); // map + details per area
        let end = start + config.duration;
        let mut round_start = start;
        while round_start + crawl.round_duration <= end {
            for (a, account_areas) in per_account.iter().enumerate() {
                let user = format!("crawler-targeted-{a}");
                let mut now = round_start;
                for rect in account_areas {
                    now += config.pace;
                    let ids = Self::map_query(service, &user, *rect, now, &mut crawl);
                    for id in &ids {
                        crawl.observations.sight(*id, now);
                    }
                    // Description fetch replaces the next getBroadcasts
                    // (the paper's inline script swapped the id list).
                    now += config.pace;
                    if !ids.is_empty() {
                        Self::get_descriptions(service, &user, &ids, now, &mut crawl);
                    }
                }
            }
            crawl.rounds += 1;
            crawl.trace.count("crawler", "targeted_rounds", 1);
            round_start += crawl.round_duration;
        }
        crawl.finished_at = round_start;
        crawl.trace.count("crawler", "observed", crawl.observations.len() as u64);
        let service_trace = service.take_trace();
        crawl.trace.absorb(service_trace);
        crawl
    }

    fn map_query(
        service: &mut PeriscopeService,
        user: &str,
        rect: GeoRect,
        now: SimTime,
        crawl: &mut TargetedCrawl,
    ) -> Vec<BroadcastId> {
        let req = ApiRequest::MapGeoBroadcastFeed { rect, include_replay: false }.to_http(user);
        let resp = service.handle_http(user, &req, now, &crawler_location());
        crawl.trace.count("crawler", "map_queries", 1);
        if resp.status == 429 {
            crawl.rate_limited += 1;
            crawl.trace.count("crawler", "rate_limited", 1);
            if crawl.trace.is_enabled() {
                crawl.trace.event(
                    now.as_micros(),
                    "crawler",
                    "crawler.rate_limited",
                    vec![("user", pscp_obs::Field::S(user.to_string()))],
                );
            }
            return Vec::new();
        }
        if resp.status >= 500 {
            // Injected backend failure (DESIGN.md §8); the round budget
            // leaves no room to retry, so this area is skipped this round.
            crawl.trace.count("crawler", "server_errors", 1);
            return Vec::new();
        }
        let body = String::from_utf8(resp.body).expect("UTF-8 JSON");
        let v = pscp_proto::json::parse(&body).expect("valid JSON");
        v.get("broadcasts")
            .and_then(|b| b.as_array())
            .map(|list| {
                list.iter()
                    .filter_map(|b| b.get("id").and_then(|i| i.as_str()))
                    .filter_map(BroadcastId::parse)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn get_descriptions(
        service: &mut PeriscopeService,
        user: &str,
        ids: &[BroadcastId],
        now: SimTime,
        crawl: &mut TargetedCrawl,
    ) {
        for batch in ids.chunks(100) {
            let req = ApiRequest::GetBroadcasts { ids: batch.to_vec() }.to_http(user);
            let resp = service.handle_http(user, &req, now, &crawler_location());
            crawl.trace.count("crawler", "desc_queries", 1);
            if resp.status == 429 {
                crawl.rate_limited += 1;
                crawl.trace.count("crawler", "rate_limited", 1);
                continue;
            }
            if resp.status >= 500 {
                crawl.trace.count("crawler", "server_errors", 1);
                continue;
            }
            let body = String::from_utf8(resp.body).expect("UTF-8 JSON");
            let v = pscp_proto::json::parse(&body).expect("valid JSON");
            if let Some(list) = v.get("broadcasts").and_then(|b| b.as_array()) {
                for item in list {
                    if let Ok(desc) = BroadcastDescription::from_json(item) {
                        crawl.observations.ingest(&desc, now);
                    }
                }
            }
        }
    }

    /// Observations of broadcasts that ended during the crawl (§4's filter
    /// with its 60 s grace period).
    pub fn ended_broadcasts(&self) -> Vec<&crate::records::BroadcastObservation> {
        self.observations.ended_during(self.finished_at, SimDuration::from_secs(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deep::DeepCrawlConfig;
    use pscp_service::ServiceConfig;
    use pscp_simnet::RngFactory;
    use pscp_workload::population::{Population, PopulationConfig};

    fn service() -> PeriscopeService {
        let pop = Population::generate(PopulationConfig::medium(), &RngFactory::new(51));
        PeriscopeService::new(pop, ServiceConfig::default())
    }

    fn short_config() -> TargetedCrawlConfig {
        TargetedCrawlConfig { duration: SimDuration::from_secs(1800), ..Default::default() }
    }

    fn crawl_fixture() -> &'static (TargetedCrawl, usize) {
        static ONCE: std::sync::OnceLock<(TargetedCrawl, usize)> = std::sync::OnceLock::new();
        ONCE.get_or_init(|| {
            let mut svc = service();
            let deep =
                DeepCrawl::run(&mut svc, &DeepCrawlConfig::default(), SimTime::from_secs(600));
            let areas = TargetedCrawl::select_areas(&deep, &short_config());
            let n_areas = areas.len();
            let tc = TargetedCrawl::run(&mut svc, &areas, &short_config(), deep.finished_at);
            (tc, n_areas)
        })
    }

    #[test]
    fn selects_64_areas() {
        let (_, n_areas) = crawl_fixture();
        assert_eq!(*n_areas, 64);
    }

    #[test]
    fn round_completes_in_about_50s() {
        let (tc, _) = crawl_fixture();
        let secs = tc.round_duration.as_secs_f64();
        assert!((30.0..70.0).contains(&secs), "round={secs}s");
    }

    #[test]
    fn accumulates_many_broadcasts() {
        let (tc, _) = crawl_fixture();
        assert!(tc.rounds >= 20, "rounds={}", tc.rounds);
        // Medium population, 30 min crawl: thousands of observations.
        assert!(tc.observations.len() > 1500, "observed={}", tc.observations.len());
    }

    #[test]
    fn viewer_samples_accumulate_over_rounds() {
        let (tc, _) = crawl_fixture();
        let multi_sampled = tc.observations.all().filter(|o| o.viewer_samples >= 3).count();
        assert!(multi_sampled > 100, "multi_sampled={multi_sampled}");
    }

    #[test]
    fn ended_filter_removes_live_tail() {
        let (tc, _) = crawl_fixture();
        let ended = tc.ended_broadcasts();
        assert!(!ended.is_empty());
        assert!(ended.len() < tc.observations.len());
        for o in &ended {
            assert!(o.last_seen < tc.finished_at - SimDuration::from_secs(60));
        }
    }

    #[test]
    fn four_accounts_avoid_rate_limits() {
        let (tc, _) = crawl_fixture();
        let total_queries = tc.rounds as f64 * 64.0 * 2.0;
        assert!(
            (tc.rate_limited as f64) < total_queries * 0.02,
            "rate_limited={} of {total_queries}",
            tc.rate_limited
        );
    }
}
