#![warn(missing_docs)]

//! Smartphone power model — the Monsoon-power-monitor substitution for §5.3.
//!
//! The paper instrumented a Galaxy S4 with a Monsoon monitor and measured
//! seven scenarios over WiFi and LTE (Fig 7). This crate rebuilds the
//! measurement as a *component* power model in the style of Tarkoma et al.,
//! "Smartphone Energy Consumption" (the paper’s own reference \[17\]):
//!
//! ```text
//! P = P_base(screen on) + P_cpu(load, clock) + P_gpu(load, clock)
//!     + P_media(codec engines) + P_camera + P_radio(technology, duty, rate)
//! ```
//!
//! * CPU/GPU use DVFS: power grows superlinearly in load, and the §5.3
//!   observation that chat raises "the average CPU and GPU clock rates by
//!   roughly one third" enters as a clock multiplier with a ≈ f² cost;
//! * the LTE radio models 2016-era RRC behaviour: any periodic traffic
//!   keeps the radio in connected mode (long inactivity timers), which is
//!   why LTE costs so much more than WiFi for the same workload;
//! * WiFi models PSM with a duty cycle plus per-Mbps reception cost.
//!
//! [`scenarios`] defines the seven Fig-7 workloads in terms of component
//! loads; [`session`] derives the same parameters from a simulated
//! [`pscp_client::SessionOutcome`]'s actual captured traffic.

pub mod model;
pub mod scenarios;
pub mod session;

pub use model::{PowerModel, Radio, Workload};
pub use scenarios::{scenario_workload, Scenario};
