//! The component power model.

/// Radio access technology of the measurement (§5.3 tested both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Radio {
    /// Non-commercial WiFi.
    Wifi,
    /// Nokia-operated full LTE network, DRX enabled with typical timers.
    Lte,
}

/// A workload expressed as component utilizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// CPU load (0..1), at the nominal clock.
    pub cpu_load: f64,
    /// GPU load (0..1), at the nominal clock.
    pub gpu_load: f64,
    /// Clock multiplier relative to nominal (chat raises clocks ~4/3).
    pub clock_ratio: f64,
    /// Hardware codec engines active (decode or encode path powered).
    pub media_engine: bool,
    /// Camera + preview pipeline active (broadcasting).
    pub camera: bool,
    /// Mean downstream+upstream traffic in Mbit/s.
    pub traffic_mbps: f64,
    /// Fraction of time the radio is actively receiving/transmitting
    /// (WiFi duty; LTE uses its own connected-time model).
    pub radio_duty: f64,
}

impl Workload {
    /// A completely idle workload (screen on).
    pub fn idle() -> Workload {
        Workload {
            cpu_load: 0.03,
            gpu_load: 0.02,
            clock_ratio: 1.0,
            media_engine: false,
            camera: false,
            traffic_mbps: 0.0,
            radio_duty: 0.05,
        }
    }
}

/// Model constants, calibrated against the paper's Fig 7 (Galaxy S4 class
/// hardware, full screen brightness).
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Device base + full-brightness screen, mW.
    pub base_mw: f64,
    /// CPU power at full load, nominal clock, mW.
    pub cpu_full_mw: f64,
    /// CPU load exponent (DVFS superlinearity in load).
    pub cpu_exp: f64,
    /// GPU power at full load, nominal clock, mW.
    pub gpu_full_mw: f64,
    /// GPU load exponent.
    pub gpu_exp: f64,
    /// Clock-scaling exponent (P ∝ f^k at fixed utilization).
    pub clock_exp: f64,
    /// Codec engine power when active, mW.
    pub media_mw: f64,
    /// Camera pipeline power, mW.
    pub camera_mw: f64,
    /// WiFi idle/PSM power, mW.
    pub wifi_idle_mw: f64,
    /// WiFi active floor, mW.
    pub wifi_active_mw: f64,
    /// WiFi marginal cost per Mbps, mW.
    pub wifi_per_mbps_mw: f64,
    /// LTE idle (DRX) power, mW.
    pub lte_idle_mw: f64,
    /// LTE connected-mode floor, mW.
    pub lte_connected_mw: f64,
    /// LTE marginal cost per Mbps, mW.
    pub lte_per_mbps_mw: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            base_mw: 1000.0,
            cpu_full_mw: 1300.0,
            cpu_exp: 1.3,
            gpu_full_mw: 750.0,
            gpu_exp: 1.2,
            clock_exp: 2.1,
            media_mw: 340.0,
            camera_mw: 500.0,
            wifi_idle_mw: 55.0,
            wifi_active_mw: 260.0,
            wifi_per_mbps_mw: 290.0,
            lte_idle_mw: 20.0,
            lte_connected_mw: 900.0,
            lte_per_mbps_mw: 220.0,
        }
    }
}

impl PowerModel {
    /// Average power of `workload` on `radio`, in milliwatts.
    pub fn power_mw(&self, workload: &Workload, radio: Radio) -> f64 {
        let w = workload;
        assert!((0.0..=1.0).contains(&w.cpu_load), "cpu load out of range");
        assert!((0.0..=1.0).contains(&w.gpu_load), "gpu load out of range");
        assert!((0.0..=1.0).contains(&w.radio_duty), "radio duty out of range");
        let clock = w.clock_ratio.max(0.1).powf(self.clock_exp);
        let cpu = self.cpu_full_mw * w.cpu_load.powf(self.cpu_exp) * clock;
        let gpu = self.gpu_full_mw * w.gpu_load.powf(self.gpu_exp) * clock;
        let media = if w.media_engine { self.media_mw } else { 0.0 };
        let camera = if w.camera { self.camera_mw } else { 0.0 };
        let radio_p = match radio {
            Radio::Wifi => {
                self.wifi_idle_mw
                    + w.radio_duty * (self.wifi_active_mw + self.wifi_per_mbps_mw * w.traffic_mbps)
            }
            Radio::Lte => {
                // 2016-era RRC: inactivity timers of ~10 s mean any
                // recurring traffic keeps the radio connected; duty is
                // effectively 1.0 whenever traffic flows.
                let connected =
                    if w.traffic_mbps > 0.0 || w.radio_duty > 0.2 { 1.0 } else { w.radio_duty };
                self.lte_idle_mw
                    + connected * (self.lte_connected_mw + self.lte_per_mbps_mw * w.traffic_mbps)
            }
        };
        self.base_mw + cpu + gpu + media + camera + radio_p
    }

    /// Energy in joules for holding `workload` for `seconds`.
    pub fn energy_j(&self, workload: &Workload, radio: Radio, seconds: f64) -> f64 {
        self.power_mw(workload, radio) / 1000.0 * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_near_one_watt() {
        let m = PowerModel::default();
        let p = m.power_mw(&Workload::idle(), Radio::Wifi);
        assert!((950.0..1150.0).contains(&p), "p={p}");
    }

    #[test]
    fn lte_costs_more_under_traffic() {
        let m = PowerModel::default();
        let w = Workload { traffic_mbps: 0.5, radio_duty: 0.5, ..Workload::idle() };
        assert!(m.power_mw(&w, Radio::Lte) > m.power_mw(&w, Radio::Wifi) + 300.0);
    }

    #[test]
    fn clock_scaling_superlinear() {
        let m = PowerModel::default();
        let base = Workload { cpu_load: 0.4, gpu_load: 0.4, ..Workload::idle() };
        let boosted = Workload { clock_ratio: 4.0 / 3.0, ..base };
        let p0 = m.power_mw(&base, Radio::Wifi);
        let p1 = m.power_mw(&boosted, Radio::Wifi);
        // +1/3 clock at f^2.1 ≈ 1.83× on the compute components.
        let compute0 = p0 - m.base_mw - m.wifi_idle_mw;
        let compute1 = p1 - m.base_mw - m.wifi_idle_mw;
        assert!(compute1 / compute0 > 1.6, "ratio={}", compute1 / compute0);
    }

    #[test]
    fn power_monotone_in_traffic() {
        let m = PowerModel::default();
        let mut last = 0.0;
        for mbps in [0.0, 0.5, 1.0, 2.0, 3.5] {
            let w = Workload { traffic_mbps: mbps, radio_duty: 0.8, ..Workload::idle() };
            let p = m.power_mw(&w, Radio::Wifi);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn energy_integrates_power() {
        let m = PowerModel::default();
        let w = Workload::idle();
        let p = m.power_mw(&w, Radio::Wifi);
        assert!((m.energy_j(&w, Radio::Wifi, 60.0) - p * 0.06).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cpu load out of range")]
    fn rejects_bad_load() {
        let m = PowerModel::default();
        m.power_mw(&Workload { cpu_load: 1.5, ..Workload::idle() }, Radio::Wifi);
    }
}
