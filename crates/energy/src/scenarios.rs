//! The seven Fig-7 measurement scenarios.
//!
//! §5.3 measured, with the screen at full brightness and sound off:
//! the Android home screen, the app browsing the broadcast list (which
//! "refreshes the available videos every 5 seconds"), replay playback,
//! live RTMP and HLS playback with chat off, HLS with chat on, and
//! broadcasting. Each is expressed as component loads; the chat-on case
//! carries the paper's observed "increase by roughly one third in the
//! average CPU and GPU clock rates" and the ~3.5 Mbps picture traffic.

use crate::model::{PowerModel, Radio, Workload};

/// The Fig 7 scenarios, in the figure's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Android home screen, idle.
    HomeScreen,
    /// Periscope open on the broadcast list (5 s refresh loop).
    AppOn,
    /// Watching a non-live replay.
    VideoReplay,
    /// Watching a live RTMP stream, chat off.
    VideoRtmpChatOff,
    /// Watching a live HLS stream, chat off.
    VideoHlsChatOff,
    /// Watching a live HLS stream with the chat pane on.
    VideoHlsChatOn,
    /// Broadcasting from the phone.
    Broadcast,
}

impl Scenario {
    /// All scenarios in figure order.
    pub const ALL: [Scenario; 7] = [
        Scenario::HomeScreen,
        Scenario::AppOn,
        Scenario::VideoReplay,
        Scenario::VideoRtmpChatOff,
        Scenario::VideoHlsChatOff,
        Scenario::VideoHlsChatOn,
        Scenario::Broadcast,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::HomeScreen => "Home screen",
            Scenario::AppOn => "App on",
            Scenario::VideoReplay => "Video on (not live)",
            Scenario::VideoRtmpChatOff => "Video on (RTMP/chat off)",
            Scenario::VideoHlsChatOff => "Video on (HLS/chat off)",
            Scenario::VideoHlsChatOn => "Video on (HLS/chat on)",
            Scenario::Broadcast => "Broadcast",
        }
    }

    /// The paper's measured values (mW), Fig 7: (WiFi, LTE).
    ///
    /// Note §5.3's running text quotes slightly different numbers for two
    /// scenarios (1537/2102 for app-on, 2742/3599 for chat-on) than the
    /// figure bars; the figure values are used as calibration targets and
    /// the discrepancy is recorded in EXPERIMENTS.md.
    pub fn paper_mw(self) -> (f64, f64) {
        match self {
            Scenario::HomeScreen => (1067.0, 1006.0),
            Scenario::AppOn => (1673.0, 2159.0),
            Scenario::VideoReplay => (2303.0, 3120.0),
            Scenario::VideoRtmpChatOff => (2268.0, 2959.0),
            Scenario::VideoHlsChatOff => (2400.0, 3033.0),
            Scenario::VideoHlsChatOn => (4169.0, 4540.0),
            Scenario::Broadcast => (3594.0, 4383.0),
        }
    }
}

/// Component workload of a scenario.
pub fn scenario_workload(scenario: Scenario) -> Workload {
    match scenario {
        Scenario::HomeScreen => Workload::idle(),
        Scenario::AppOn => Workload {
            cpu_load: 0.30,
            gpu_load: 0.25,
            clock_ratio: 1.0,
            media_engine: false,
            camera: false,
            traffic_mbps: 0.15,
            radio_duty: 0.67,
        },
        Scenario::VideoReplay => Workload {
            cpu_load: 0.38,
            gpu_load: 0.30,
            clock_ratio: 1.0,
            media_engine: true,
            camera: false,
            traffic_mbps: 0.60,
            radio_duty: 0.90,
        },
        Scenario::VideoRtmpChatOff => Workload {
            cpu_load: 0.35,
            gpu_load: 0.30,
            clock_ratio: 1.0,
            media_engine: true,
            camera: false,
            traffic_mbps: 0.45,
            radio_duty: 0.80,
        },
        Scenario::VideoHlsChatOff => Workload {
            cpu_load: 0.40,
            gpu_load: 0.31,
            clock_ratio: 1.0,
            media_engine: true,
            camera: false,
            traffic_mbps: 0.50,
            radio_duty: 0.95,
        },
        Scenario::VideoHlsChatOn => Workload {
            cpu_load: 0.50,
            gpu_load: 0.45,
            // "an increase by roughly one third in the average CPU and GPU
            // clock rates when the chat is enabled" (§5.3).
            clock_ratio: 4.0 / 3.0,
            media_engine: true,
            camera: false,
            // "an increase of the aggregate data rate from roughly 500kbps
            // to 3.5Mbps" (§5.1).
            traffic_mbps: 3.5,
            radio_duty: 1.0,
        },
        Scenario::Broadcast => Workload {
            cpu_load: 0.80,
            gpu_load: 0.25,
            clock_ratio: 1.0,
            media_engine: true,
            camera: true,
            traffic_mbps: 0.55,
            radio_duty: 0.90,
        },
    }
}

/// Computes the full Fig 7 table: (scenario, WiFi mW, LTE mW).
pub fn figure7(model: &PowerModel) -> Vec<(Scenario, f64, f64)> {
    Scenario::ALL
        .iter()
        .map(|&s| {
            let w = scenario_workload(s);
            (s, model.power_mw(&w, Radio::Wifi), model.power_mw(&w, Radio::Lte))
        })
        .collect()
}

/// [`figure7`] with an observability trace: records each scenario's power
/// draw as metrics and (when tracing is on) one `energy.scenario` event per
/// bar pair. The returned table is identical to `figure7`'s.
pub fn figure7_traced(
    model: &PowerModel,
    trace: &mut pscp_obs::Trace,
) -> Vec<(Scenario, f64, f64)> {
    let table = figure7(model);
    for (s, wifi, lte) in &table {
        trace.count("energy", "scenarios", 1);
        trace.observe("energy", "wifi_mw", &pscp_obs::MILLIWATT_BUCKETS, *wifi as u64);
        trace.observe("energy", "lte_mw", &pscp_obs::MILLIWATT_BUCKETS, *lte as u64);
        if trace.is_enabled() {
            trace.event(
                0,
                "energy",
                "energy.scenario",
                vec![
                    ("label", pscp_obs::Field::S(s.label().to_string())),
                    ("wifi_mw", pscp_obs::Field::F(*wifi)),
                    ("lte_mw", pscp_obs::Field::F(*lte)),
                ],
            );
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_within_tolerance() {
        // Every scenario lands within 12% of the paper's Fig 7 bars.
        let model = PowerModel::default();
        for (s, wifi, lte) in figure7(&model) {
            let (pw, pl) = s.paper_mw();
            let ew = (wifi - pw).abs() / pw;
            let el = (lte - pl).abs() / pl;
            assert!(
                ew < 0.12,
                "{}: WiFi {wifi:.0} vs paper {pw:.0} ({:.1}%)",
                s.label(),
                ew * 100.0
            );
            assert!(el < 0.12, "{}: LTE {lte:.0} vs paper {pl:.0} ({:.1}%)", s.label(), el * 100.0);
        }
    }

    #[test]
    fn orderings_match_paper() {
        let model = PowerModel::default();
        let table = figure7(&model);
        let wifi = |s: Scenario| table.iter().find(|(x, _, _)| *x == s).unwrap().1;
        let lte = |s: Scenario| table.iter().find(|(x, _, _)| *x == s).unwrap().2;
        // Chat on is the most power-hungry viewing mode — more than
        // broadcasting (the paper's headline surprise).
        assert!(wifi(Scenario::VideoHlsChatOn) > wifi(Scenario::Broadcast));
        // LTE ≥ WiFi for every active scenario.
        for s in Scenario::ALL.iter().skip(1) {
            assert!(lte(*s) > wifi(*s), "{}", s.label());
        }
        // RTMP vs HLS difference is "very small" (§5.3).
        let diff = (wifi(Scenario::VideoHlsChatOff) - wifi(Scenario::VideoRtmpChatOff)).abs();
        assert!(diff < 350.0, "diff={diff}");
        // Replay ≈ live (§5.3: "consume an equal amount of power").
        let replay_vs_live = (wifi(Scenario::VideoReplay) - wifi(Scenario::VideoHlsChatOff)).abs();
        assert!(replay_vs_live < 350.0);
    }

    #[test]
    fn chat_on_delta_dominated_by_compute_and_traffic() {
        let model = PowerModel::default();
        let off = scenario_workload(Scenario::VideoHlsChatOff);
        let on = scenario_workload(Scenario::VideoHlsChatOn);
        let p_off = model.power_mw(&off, Radio::Wifi);
        let p_on = model.power_mw(&on, Radio::Wifi);
        // ~1.7-1.8 kW-milli of extra draw, as in the figure.
        assert!((p_on - p_off) > 1200.0, "delta={}", p_on - p_off);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<&str> =
            Scenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 7);
    }
}
