//! Deriving power from *simulated* sessions.
//!
//! The canonical Fig 7 bars use fixed scenario workloads; this module
//! instead derives the workload from a [`SessionOutcome`]'s actual captured
//! traffic, closing the loop between the QoE simulation and the energy
//! model (e.g. a chat-heavy session's measured 3.5 Mbps capture produces
//! the corresponding radio power).

use crate::model::{PowerModel, Radio, Workload};
use crate::scenarios::{scenario_workload, Scenario};
use pscp_client::SessionOutcome;
use pscp_service::select::Protocol;

/// Builds the workload a session imposed on the phone, using the capture's
/// aggregate traffic rate and the session's protocol/chat settings.
pub fn session_workload(outcome: &SessionOutcome, chat_on: bool) -> Workload {
    let base = match (outcome.protocol, chat_on) {
        // SRT is push-delivered like RTMP: same radio/decode duty cycle.
        (Protocol::Rtmp | Protocol::Srt, _) => scenario_workload(Scenario::VideoRtmpChatOff),
        (Protocol::Hls, false) => scenario_workload(Scenario::VideoHlsChatOff),
        (Protocol::Hls, true) => scenario_workload(Scenario::VideoHlsChatOn),
    };
    // Steady-state traffic: media + chat + pictures, excluding the join
    // bootstrap burst which is not representative of sustained draw.
    use pscp_media::capture::FlowKind;
    let measured_mbps = outcome.capture.rate_of_kinds(&[
        FlowKind::Rtmp,
        FlowKind::HlsHttp,
        FlowKind::Chat,
        FlowKind::PictureHttp,
    ]) / 1e6;
    let clock_ratio = if chat_on { 4.0 / 3.0 } else { 1.0 };
    Workload { traffic_mbps: measured_mbps, clock_ratio, ..base }
}

/// Average power of a session in mW.
pub fn session_power_mw(
    model: &PowerModel,
    outcome: &SessionOutcome,
    radio: Radio,
    chat_on: bool,
) -> f64 {
    model.power_mw(&session_workload(outcome, chat_on), radio)
}

/// Energy of the whole session in joules.
pub fn session_energy_j(
    model: &PowerModel,
    outcome: &SessionOutcome,
    radio: Radio,
    chat_on: bool,
) -> f64 {
    model.energy_j(&session_workload(outcome, chat_on), radio, outcome.player.session_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::rtmp_session;
    use pscp_client::session::SessionConfig;
    use pscp_media::audio::AudioBitrate;
    use pscp_media::content::ContentClass;
    use pscp_simnet::{GeoPoint, RngFactory, SimDuration, SimTime};
    use pscp_workload::broadcast::{Broadcast, BroadcastId, DeviceProfile};

    fn outcome(chat_on: bool) -> SessionOutcome {
        let b = Broadcast {
            id: BroadcastId(3),
            location: GeoPoint::new(41.01, 28.98),
            city: "Istanbul",
            start: SimTime::from_secs(100),
            duration: SimDuration::from_secs(1800),
            content: ContentClass::Indoor,
            device: DeviceProfile::Modern,
            audio: AudioBitrate::Kbps32,
            avg_viewers: 120.0,
            replay_available: false,
            private: false,
            location_public: true,
            viewer_seed: 3,
            target_bitrate_bps: 300_000.0,
        };
        let cfg = SessionConfig { chat_on, ..Default::default() };
        rtmp_session::run(&b, SimTime::from_secs(300), &cfg, &RngFactory::new(77))
    }

    #[test]
    fn chat_session_costs_more() {
        let model = PowerModel::default();
        let quiet = outcome(false);
        let chatty = outcome(true);
        let p_quiet = session_power_mw(&model, &quiet, Radio::Wifi, false);
        let p_chatty = session_power_mw(&model, &chatty, Radio::Wifi, true);
        assert!(p_chatty > p_quiet + 400.0, "quiet={p_quiet:.0} chatty={p_chatty:.0}");
    }

    #[test]
    fn lte_session_costs_more_than_wifi() {
        let model = PowerModel::default();
        let o = outcome(false);
        let wifi = session_power_mw(&model, &o, Radio::Wifi, false);
        let lte = session_power_mw(&model, &o, Radio::Lte, false);
        assert!(lte > wifi + 300.0, "wifi={wifi:.0} lte={lte:.0}");
    }

    #[test]
    fn energy_scales_with_duration() {
        let model = PowerModel::default();
        let o = outcome(false);
        let e = session_energy_j(&model, &o, Radio::Wifi, false);
        let p = session_power_mw(&model, &o, Radio::Wifi, false);
        assert!((e - p / 1000.0 * 60.0).abs() < 1e-6);
    }

    #[test]
    fn workload_uses_measured_traffic() {
        let o = outcome(false);
        let w = session_workload(&o, false);
        assert!(w.traffic_mbps > 0.1, "measured={}", w.traffic_mbps);
        let measured = w.traffic_mbps;
        assert!(measured > 0.1, "measured={measured}");
    }
}
