//! Video-quality and latency analysis over reconstructed captures — the
//! libav/wireshark post-processing stage of the paper (§2, §5.2).
//!
//! Everything here consumes *wire bytes* out of a [`crate::capture::Flow`],
//! never simulator ground truth: RTMP flows are de-chunked with the real
//! dechunker, HLS flows are split into HTTP responses and TS-demuxed. The
//! statistics computed match the paper's: average bitrate, average QP,
//! frame-type pattern, I-frame interval, frame rate, HLS segment durations,
//! and NTP-based delivery-latency samples.

use crate::bitstream::{FrameKind, FramePayload};
use crate::capture::Flow;
use crate::flv::VideoTag;
use crate::ts;
use pscp_proto::http::{find_subsequence, Response};
use pscp_proto::rtmp::{Dechunker, MessageType};
use pscp_proto::ProtoError;

/// GOP classification as reported in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GopClass {
    /// Uses I, P and B frames (the "repeated IBP scheme").
    Ibp,
    /// I and P only (20.0% RTMP / 18.4% HLS in the paper).
    IpOnly,
    /// I frames only (2 streams in the paper).
    IOnly,
}

/// Analysis of one reconstructed video stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Number of video frames recovered.
    pub n_frames: usize,
    /// Average video bitrate over the stream, bits/second.
    pub bitrate_bps: f64,
    /// Mean QP across frames.
    pub avg_qp: f64,
    /// Observed frame rate, frames/second.
    pub fps: f64,
    /// GOP classification.
    pub gop: GopClass,
    /// Mean distance between consecutive I frames, in frames.
    pub i_interval: f64,
    /// Video width (px).
    pub width: u16,
    /// Video height (px).
    pub height: u16,
    /// Delivery-latency samples: capture wall timestamp minus embedded NTP
    /// timestamp, seconds. May contain small negatives (imperfect sync).
    pub delivery_latency_samples: Vec<f64>,
    /// HLS only: per-segment durations in seconds (PTS span per segment).
    pub segment_durations_s: Vec<f64>,
    /// Mean audio bitrate, bits/second, when audio was recovered.
    pub audio_bitrate_bps: Option<f64>,
}

impl StreamReport {
    /// Mean delivery latency, if any samples were recovered.
    pub fn mean_delivery_latency_s(&self) -> Option<f64> {
        if self.delivery_latency_samples.is_empty() {
            return None;
        }
        Some(
            self.delivery_latency_samples.iter().sum::<f64>()
                / self.delivery_latency_samples.len() as f64,
        )
    }
}

/// Builds a report from recovered frames and their byte offsets in the flow.
fn report_from_frames(
    frames: &[(usize, FramePayload)],
    flow: &Flow,
    segment_durations_s: Vec<f64>,
    audio: &[(u32, usize)],
) -> Result<StreamReport, ProtoError> {
    if frames.is_empty() {
        return Err(ProtoError::Protocol("no video frames recovered".to_string()));
    }
    let n = frames.len();
    let total_bytes: usize = frames.iter().map(|(_, f)| f.size).sum();
    let pts_min = frames.iter().map(|(_, f)| f.pts_ms).min().expect("non-empty");
    let pts_max = frames.iter().map(|(_, f)| f.pts_ms).max().expect("non-empty");
    let span_s = ((pts_max - pts_min) as f64 / 1000.0).max(1e-3);
    let avg_qp = frames.iter().map(|(_, f)| f.qp as f64).sum::<f64>() / n as f64;
    let has_b = frames.iter().any(|(_, f)| f.kind == FrameKind::B);
    let has_p = frames.iter().any(|(_, f)| f.kind == FrameKind::P);
    let gop = if has_b {
        GopClass::Ibp
    } else if has_p {
        GopClass::IpOnly
    } else {
        GopClass::IOnly
    };
    // Mean I-frame spacing in frames.
    let i_positions: Vec<usize> = frames
        .iter()
        .enumerate()
        .filter(|(_, (_, f))| f.kind == FrameKind::I)
        .map(|(i, _)| i)
        .collect();
    let i_interval = if i_positions.len() >= 2 {
        let gaps: Vec<f64> = i_positions.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        gaps.iter().sum::<f64>() / gaps.len() as f64
    } else {
        n as f64
    };
    // Delivery latency: for each frame with an embedded NTP timestamp, find
    // the wall timestamp of the packet that carried its first byte.
    let mut delivery = Vec::new();
    for (offset, f) in frames {
        if let Some(ntp) = f.ntp_s {
            if let Some(wall) = flow.wall_ts_at_byte(*offset) {
                delivery.push(wall - ntp);
            }
        }
    }
    // Audio bitrate over the audio PTS span, when enough frames exist.
    let audio_bitrate_bps = if audio.len() >= 10 {
        let lo = audio.iter().map(|&(pts, _)| pts).min().expect("non-empty");
        let hi = audio.iter().map(|&(pts, _)| pts).max().expect("non-empty");
        let span = ((hi - lo) as f64 / 1000.0).max(1e-3);
        let bytes: usize = audio.iter().map(|&(_, b)| b).sum();
        Some(bytes as f64 * 8.0 / span)
    } else {
        None
    };
    Ok(StreamReport {
        n_frames: n,
        bitrate_bps: total_bytes as f64 * 8.0 / span_s,
        avg_qp,
        fps: n as f64 / span_s,
        gop,
        i_interval,
        width: frames[0].1.width,
        height: frames[0].1.height,
        delivery_latency_samples: delivery,
        segment_durations_s,
        audio_bitrate_bps,
    })
}

/// Analyzes an RTMP flow: de-chunk, pull video messages, decode FLV tags.
pub fn analyze_rtmp_flow(flow: &Flow) -> Result<StreamReport, ProtoError> {
    let mut dechunker = Dechunker::new();
    // Byte offset where each message's payload *starts* is approximated by
    // tracking consumed length per message; the dechunker does not expose
    // offsets, so feed packet-by-packet and attribute each completed message
    // to the stream position reached when it completed. That is exactly the
    // packet whose arrival completed the message — the right timestamp for
    // latency purposes.
    let mut frames: Vec<(usize, FramePayload)> = Vec::new();
    let mut audio: Vec<(u32, usize)> = Vec::new();
    let mut consumed = 0usize;
    for pkt in flow.packets() {
        dechunker.feed(pkt.payload)?;
        consumed += pkt.payload.len();
        while let Some(msg) = dechunker.next_view() {
            match msg.kind {
                MessageType::Video => {
                    let tag = VideoTag::decode(msg.payload)?;
                    frames.push((consumed.saturating_sub(1), tag.frame));
                }
                MessageType::Audio => {
                    let tag = crate::flv::AudioTag::decode(msg.payload)?;
                    audio.push((msg.timestamp, tag.payload_len));
                }
                _ => {}
            }
        }
    }
    frames.sort_by_key(|(_, f)| f.pts_ms);
    report_from_frames(&frames, flow, Vec::new(), &audio)
}

/// Analyzes an HLS flow: split the byte stream into HTTP responses, demux
/// each `video/mp2t` body, decode the frames.
pub fn analyze_hls_flow(flow: &Flow) -> Result<StreamReport, ProtoError> {
    let stream = flow.byte_stream();
    let mut demux = ts::TsDemuxer::new();
    let mut frames: Vec<(usize, FramePayload)> = Vec::new();
    let mut audio: Vec<(u32, usize)> = Vec::new();
    let mut segment_durations = Vec::new();
    let mut pos = 0usize;
    while pos < stream.len() {
        let rest = &stream[pos..];
        let header_end = find_subsequence(rest, b"\r\n\r\n").ok_or(ProtoError::Truncated)?;
        // Parse headers to find the content length, then slice the message.
        let head = &rest[..header_end + 4];
        let head_text = std::str::from_utf8(head)
            .map_err(|_| ProtoError::Malformed("non-UTF-8 HTTP header".to_string()))?;
        let cl = head_text
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim())
            })
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ProtoError::Malformed("missing content-length".to_string()))?;
        let total = header_end + 4 + cl;
        if rest.len() < total {
            return Err(ProtoError::Truncated);
        }
        let resp = Response::decode(&rest[..total])?;
        let body_start = pos + header_end + 4;
        if resp.get_header("content-type") == Some("video/mp2t") && resp.status == 200 {
            demux.reset();
            demux.push(&resp.body)?;
            demux.finish()?;
            let mut seg_pts: Vec<u32> = Vec::new();
            // Frame byte offsets inside the body: recover per-unit offsets by
            // re-scanning is overkill; attribute all frames of a segment to
            // the segment body's position (HLS arrives segment-at-a-time, so
            // sub-segment timing is not meaningful for delivery latency).
            for unit in demux.units() {
                if unit.video {
                    let f = FramePayload::decode(unit.data)?;
                    seg_pts.push(f.pts_ms);
                    frames.push((body_start, f));
                } else {
                    audio.push((unit.pts_ms, unit.data.len()));
                }
            }
            if seg_pts.len() >= 2 {
                let span = (*seg_pts.iter().max().expect("nonempty") as f64
                    - *seg_pts.iter().min().expect("nonempty") as f64)
                    / 1000.0;
                // Add one frame duration: PTS span undercounts by one frame.
                let dur = span * seg_pts.len() as f64 / (seg_pts.len() - 1) as f64;
                segment_durations.push(dur);
            }
        }
        pos += total;
    }
    frames.sort_by_key(|(_, f)| f.pts_ms);
    report_from_frames(&frames, flow, segment_durations, &audio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::FlowKind;
    use crate::content::{ContentClass, ContentProcess};
    use crate::encoder::{Encoder, EncoderConfig, GopPattern};
    use crate::flv::VideoTag;
    use crate::ts::{TsMuxer, TsUnit};
    use pscp_proto::rtmp::{Chunker, Message};
    use pscp_simnet::{RngFactory, SimTime};

    /// Builds an RTMP flow carrying `secs` seconds of encoded video, one
    /// packet per ~1448 bytes, arriving with the given delivery delay.
    fn rtmp_flow(secs: usize, delay_s: f64, gop: GopPattern, seed: u64) -> Flow {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("flowgen");
        let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
        let cfg = EncoderConfig { gop, frame_drop_prob: 0.0, ..Default::default() };
        let mut enc = Encoder::new(cfg, content);
        let mut chunker = Chunker::new();
        let mut flow = Flow::new(FlowKind::Rtmp, "ec2-test");
        let mut wire = Vec::new();
        for i in 0..secs * 30 {
            let capture_wall = i as f64 / 30.0;
            if let Some(frame) = enc.next_frame(capture_wall, &mut rng) {
                let tag = VideoTag::for_frame(
                    crate::bitstream::FramePayload::decode(&frame.bytes).unwrap(),
                );
                let msg = Message::video(frame.pts_ms, tag.encode());
                chunker.write(&msg, &mut wire);
            }
        }
        // Packetize: packet carrying pts t arrives at t + delay.
        let mut sent = 0usize;
        for chunk in wire.chunks(1448) {
            let frac = sent as f64 / wire.len() as f64;
            let t = frac * secs as f64 + delay_s;
            flow.record(SimTime::from_secs_f64_test(t), t, chunk);
            sent += chunk.len();
        }
        flow
    }

    // Helper for tests: SimTime from fractional seconds.
    trait FromF64 {
        fn from_secs_f64_test(s: f64) -> SimTime;
    }
    impl FromF64 for SimTime {
        fn from_secs_f64_test(s: f64) -> SimTime {
            SimTime::from_micros((s.max(0.0) * 1e6) as u64)
        }
    }

    #[test]
    fn rtmp_report_recovers_encoder_parameters() {
        let flow = rtmp_flow(30, 0.2, GopPattern::Ibp, 42);
        let report = analyze_rtmp_flow(&flow).unwrap();
        assert_eq!(report.width, 320);
        assert_eq!(report.height, 568);
        assert_eq!(report.gop, GopClass::Ibp);
        assert!((report.fps - 30.0).abs() < 2.0, "fps={}", report.fps);
        assert!((report.i_interval - 36.0).abs() < 2.0, "i_interval={}", report.i_interval);
        assert!(
            (150_000.0..500_000.0).contains(&report.bitrate_bps),
            "bitrate={}",
            report.bitrate_bps
        );
        assert!((14.0..=46.0).contains(&report.avg_qp), "qp={}", report.avg_qp);
    }

    #[test]
    fn rtmp_delivery_latency_recovered() {
        let flow = rtmp_flow(30, 0.25, GopPattern::Ibp, 43);
        let report = analyze_rtmp_flow(&flow).unwrap();
        assert!(!report.delivery_latency_samples.is_empty());
        let mean = report.mean_delivery_latency_s().unwrap();
        // The flow generator delivers with 0.25 s delay; chunk-granularity
        // packetization adds slack in both directions.
        assert!((mean - 0.25).abs() < 0.3, "mean latency {mean}");
    }

    #[test]
    fn rtmp_ip_only_classified() {
        let flow = rtmp_flow(10, 0.1, GopPattern::IpOnly, 44);
        let report = analyze_rtmp_flow(&flow).unwrap();
        assert_eq!(report.gop, GopClass::IpOnly);
    }

    #[test]
    fn rtmp_i_only_classified() {
        let flow = rtmp_flow(5, 0.1, GopPattern::IOnly, 45);
        let report = analyze_rtmp_flow(&flow).unwrap();
        assert_eq!(report.gop, GopClass::IOnly);
    }

    #[test]
    fn empty_flow_is_error() {
        let flow = Flow::new(FlowKind::Rtmp, "ec2-x");
        assert!(analyze_rtmp_flow(&flow).is_err());
    }

    /// Builds an HLS flow: HTTP responses each carrying a TS segment of
    /// `seg_frames` frames.
    fn hls_flow(n_segments: usize, seg_frames: usize, seed: u64) -> Flow {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("hlsgen");
        let content = ContentProcess::new(ContentClass::Indoor, &mut rng);
        let cfg = EncoderConfig { frame_drop_prob: 0.0, ..Default::default() };
        let mut enc = Encoder::new(cfg, content);
        let mut mux = TsMuxer::new();
        let mut flow = Flow::new(FlowKind::HlsHttp, "fastly-eu");
        let mut t = 5.0; // HLS arrives seconds later than capture start
        for _ in 0..n_segments {
            let mut units = Vec::new();
            for i in 0..seg_frames {
                let wall = i as f64 / 30.0;
                if let Some(frame) = enc.next_frame(wall, &mut rng) {
                    units.push(TsUnit::Video { pts_ms: frame.pts_ms, data: frame.bytes });
                }
            }
            let seg = mux.mux_segment(&units);
            let resp = pscp_proto::http::Response::ok_bytes("video/mp2t", seg);
            flow.record(SimTime::from_secs_f64_test(t), t, &resp.encode());
            t += seg_frames as f64 / 30.0;
        }
        flow
    }

    #[test]
    fn hls_report_segment_durations() {
        // 108 frames per segment at 30 fps = 3.6 s, the paper's modal
        // segment duration.
        let flow = hls_flow(5, 108, 50);
        let report = analyze_hls_flow(&flow).unwrap();
        assert_eq!(report.segment_durations_s.len(), 5);
        for d in &report.segment_durations_s {
            assert!((d - 3.6).abs() < 0.1, "duration={d}");
        }
        assert_eq!(report.n_frames, 5 * 108);
        assert_eq!(report.gop, GopClass::Ibp);
    }

    #[test]
    fn hls_delivery_latency_larger() {
        let flow = hls_flow(4, 108, 51);
        let report = analyze_hls_flow(&flow).unwrap();
        let mean = report.mean_delivery_latency_s().unwrap();
        // Segments were recorded starting at t=5 while frames carry capture
        // wall clocks starting at 0: several seconds of delivery latency.
        assert!(mean > 2.0, "mean={mean}");
    }

    #[test]
    fn hls_truncated_response_is_error() {
        let flow = hls_flow(2, 60, 52);
        let mut cut = Flow::new(FlowKind::HlsHttp, "fastly-eu");
        let stream = flow.byte_stream();
        cut.record(SimTime::ZERO, 0.0, &stream[..stream.len() - 5]);
        assert!(analyze_hls_flow(&cut).is_err());
    }

    #[test]
    fn hls_ignores_non_ts_responses() {
        // A playlist response interleaved with segments is skipped.
        let mut flow = hls_flow(2, 60, 53);
        let playlist = pscp_proto::http::Response::ok_bytes(
            "application/vnd.apple.mpegurl",
            b"#EXTM3U\n#EXT-X-TARGETDURATION:4\n".to_vec(),
        );
        // Append at end so offsets of earlier segments are unchanged.
        let last_t = flow.packets().next_back().unwrap().wall_ts + 1.0;
        flow.record(SimTime::from_secs_f64_test(last_t), last_t, &playlist.encode());
        let report = analyze_hls_flow(&flow).unwrap();
        assert_eq!(report.segment_durations_s.len(), 2);
    }
}
