//! AAC audio model.
//!
//! §5.2: "audio is sampled at 44,100 Hz, 16 bit, encoded in Variable Bit
//! Rate (VBR) mode at about either 32 or 64 kbps". An AAC frame carries 1024
//! samples, so frames tick every ~23.22 ms; VBR makes their sizes fluctuate
//! around the nominal rate.

use pscp_simnet::dist;
use pscp_simnet::rng::Rng;

/// AAC sample rate used by the Periscope apps.
pub const SAMPLE_RATE_HZ: u32 = 44_100;
/// Samples per AAC frame.
pub const SAMPLES_PER_FRAME: u32 = 1024;

/// Nominal audio bitrate selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AudioBitrate {
    /// ~32 kbps (voice-leaning).
    Kbps32,
    /// ~64 kbps.
    Kbps64,
}

impl AudioBitrate {
    /// Nominal bits per second.
    pub fn bps(self) -> f64 {
        match self {
            AudioBitrate::Kbps32 => 32_000.0,
            AudioBitrate::Kbps64 => 64_000.0,
        }
    }
}

/// Duration of one AAC frame in milliseconds.
pub fn frame_duration_ms() -> f64 {
    SAMPLES_PER_FRAME as f64 * 1000.0 / SAMPLE_RATE_HZ as f64
}

/// An encoded audio frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioFrame {
    /// Presentation timestamp, ms.
    pub pts_ms: u32,
    /// Encoded size in bytes.
    pub size: usize,
}

/// VBR AAC frame-size generator.
#[derive(Debug, Clone)]
pub struct AudioEncoder {
    bitrate: AudioBitrate,
    index: u64,
}

impl AudioEncoder {
    /// Creates an encoder at the given nominal bitrate.
    pub fn new(bitrate: AudioBitrate) -> Self {
        AudioEncoder { bitrate, index: 0 }
    }

    /// Nominal bitrate.
    pub fn bitrate(&self) -> AudioBitrate {
        self.bitrate
    }

    /// Produces the next frame. VBR: sizes are lognormal around the nominal
    /// mean with modest spread.
    pub fn next_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) -> AudioFrame {
        let pts_ms = (self.index as f64 * frame_duration_ms()).round() as u32;
        self.index += 1;
        let mean_bytes = self.bitrate.bps() / 8.0 * frame_duration_ms() / 1000.0;
        let size = (mean_bytes * dist::lognormal(rng, 0.0, 0.18)).round().max(8.0) as usize;
        AudioFrame { pts_ms, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::RngFactory;

    #[test]
    fn frame_duration_is_23ms() {
        assert!((frame_duration_ms() - 23.22).abs() < 0.01);
    }

    #[test]
    fn long_run_bitrate_near_nominal() {
        let mut rng = RngFactory::new(3).stream("audio");
        for (bitrate, nominal) in
            [(AudioBitrate::Kbps32, 32_000.0), (AudioBitrate::Kbps64, 64_000.0)]
        {
            let mut enc = AudioEncoder::new(bitrate);
            let n = 4000;
            let total: usize = (0..n).map(|_| enc.next_frame(&mut rng).size).sum();
            let secs = n as f64 * frame_duration_ms() / 1000.0;
            let rate = total as f64 * 8.0 / secs;
            assert!((rate - nominal).abs() < nominal * 0.1, "rate={rate}");
        }
    }

    #[test]
    fn pts_ticks_by_frame_duration() {
        let mut rng = RngFactory::new(4).stream("audio-pts");
        let mut enc = AudioEncoder::new(AudioBitrate::Kbps32);
        let f0 = enc.next_frame(&mut rng);
        let f1 = enc.next_frame(&mut rng);
        assert_eq!(f0.pts_ms, 0);
        assert_eq!(f1.pts_ms, 23);
    }

    #[test]
    fn sizes_vary_vbr() {
        let mut rng = RngFactory::new(5).stream("audio-vbr");
        let mut enc = AudioEncoder::new(AudioBitrate::Kbps64);
        let sizes: Vec<usize> = (0..50).map(|_| enc.next_frame(&mut rng).size).collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 10, "VBR sizes should vary");
    }
}
