//! The model video bitstream: a self-describing frame payload.
//!
//! The paper's analysis extracts frame types, QP and timestamps from real
//! H.264 with libav. A full H.264 entropy codec is out of scope *and not
//! load-bearing*: what the experiments need is that the bytes on the wire
//! carry (a) realistic sizes and (b) recoverable coding metadata. This
//! module defines that format — think of it as "H.264 slice header + SEI,
//! without the entropy-coded residual":
//!
//! ```text
//! magic    u16   0x5041 ("PA")
//! kind     u8    0=I, 1=P, 2=B
//! qp       u8    0..=51
//! width    u16   BE
//! height   u16   BE
//! pts_ms   u32   BE, capture timestamp
//! flags    u8    bit0 = NTP timestamp present
//! ntp      f64   BE seconds (only if flag set) — the paper's §5.1
//!                "broadcasting client regularly embeds an NTP timestamp
//!                into the video data"
//! filler   [u8]  padding to the encoder-chosen frame size
//! ```
//!
//! Every byte after the header is deterministic filler, so the *size* of the
//! frame — the quantity all bitrate figures derive from — is exactly what
//! the encoder's rate controller chose.

use pscp_proto::ProtoError;

/// Frame type, in coding order semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra frame.
    I,
    /// Predicted frame.
    P,
    /// Bi-predicted frame (adds one frame of latency; ~80% of streams use
    /// them, §5.2).
    B,
}

impl FrameKind {
    fn id(self) -> u8 {
        match self {
            FrameKind::I => 0,
            FrameKind::P => 1,
            FrameKind::B => 2,
        }
    }

    fn from_id(id: u8) -> Result<Self, ProtoError> {
        Ok(match id {
            0 => FrameKind::I,
            1 => FrameKind::P,
            2 => FrameKind::B,
            other => return Err(ProtoError::Malformed(format!("bad frame kind {other}"))),
        })
    }
}

const MAGIC: u16 = 0x5041;
/// Fixed header length without the optional NTP field.
pub const HEADER_LEN: usize = 13;
/// Header length with the NTP field.
pub const HEADER_LEN_NTP: usize = HEADER_LEN + 8;

/// A decoded frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FramePayload {
    /// Frame type.
    pub kind: FrameKind,
    /// Quantization parameter used for the frame (0..=51).
    pub qp: u8,
    /// Width in pixels.
    pub width: u16,
    /// Height in pixels.
    pub height: u16,
    /// Capture (presentation) timestamp, ms since stream start.
    pub pts_ms: u32,
    /// Embedded broadcaster NTP wall-clock timestamp, seconds.
    pub ntp_s: Option<f64>,
    /// Total encoded size in bytes, header included.
    pub size: usize,
}

impl FramePayload {
    /// Encodes the payload to `size` bytes (padded with filler).
    ///
    /// Panics if `size` is smaller than the header demands — the encoder's
    /// rate controller enforces the floor.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size);
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded payload to `out` without allocating (beyond what
    /// `out` may need to grow). Same byte stream as [`FramePayload::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let min = if self.ntp_s.is_some() { HEADER_LEN_NTP } else { HEADER_LEN };
        assert!(self.size >= min, "frame size {} below header {}", self.size, min);
        assert!(self.qp <= 51, "QP out of range");
        let end = out.len() + self.size;
        out.reserve(self.size);
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(self.kind.id());
        out.push(self.qp);
        out.extend_from_slice(&self.width.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&self.pts_ms.to_be_bytes());
        match self.ntp_s {
            Some(ntp) => {
                out.push(1);
                out.extend_from_slice(&ntp.to_be_bytes());
            }
            None => out.push(0),
        }
        // Deterministic filler derived from pts, so captures are
        // reproducible byte-for-byte.
        let mut x = self.pts_ms.wrapping_mul(2654435761);
        while out.len() < end {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            out.push((x >> 24) as u8);
        }
    }

    /// Decodes a payload (accepts trailing filler by construction).
    pub fn decode(bytes: &[u8]) -> Result<FramePayload, ProtoError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtoError::Truncated);
        }
        let magic = u16::from_be_bytes(bytes[0..2].try_into().expect("2"));
        if magic != MAGIC {
            return Err(ProtoError::Malformed(format!("bad frame magic 0x{magic:04x}")));
        }
        let kind = FrameKind::from_id(bytes[2])?;
        let qp = bytes[3];
        if qp > 51 {
            return Err(ProtoError::Malformed(format!("QP {qp} out of range")));
        }
        let width = u16::from_be_bytes(bytes[4..6].try_into().expect("2"));
        let height = u16::from_be_bytes(bytes[6..8].try_into().expect("2"));
        let pts_ms = u32::from_be_bytes(bytes[8..12].try_into().expect("4"));
        let flags = bytes[12];
        let ntp_s = if flags & 1 != 0 {
            if bytes.len() < HEADER_LEN_NTP {
                return Err(ProtoError::Truncated);
            }
            Some(f64::from_be_bytes(bytes[13..21].try_into().expect("8")))
        } else {
            None
        };
        Ok(FramePayload { kind, qp, width, height, pts_ms, ntp_s, size: bytes.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(kind: FrameKind, size: usize, ntp: Option<f64>) -> FramePayload {
        FramePayload { kind, qp: 30, width: 320, height: 568, pts_ms: 1234, ntp_s: ntp, size }
    }

    #[test]
    fn roundtrip_without_ntp() {
        let p = payload(FrameKind::P, 500, None);
        let enc = p.encode();
        assert_eq!(enc.len(), 500);
        assert_eq!(FramePayload::decode(&enc).unwrap(), p);
    }

    #[test]
    fn roundtrip_with_ntp() {
        let p = payload(FrameKind::I, 2000, Some(1234.56789));
        let dec = FramePayload::decode(&p.encode()).unwrap();
        assert_eq!(dec.ntp_s, Some(1234.56789));
        assert_eq!(dec.kind, FrameKind::I);
    }

    #[test]
    fn minimal_sizes() {
        let p = payload(FrameKind::B, HEADER_LEN, None);
        assert_eq!(FramePayload::decode(&p.encode()).unwrap().size, HEADER_LEN);
        let p = payload(FrameKind::B, HEADER_LEN_NTP, Some(1.0));
        assert!(FramePayload::decode(&p.encode()).is_ok());
    }

    #[test]
    #[should_panic(expected = "below header")]
    fn size_below_header_panics() {
        payload(FrameKind::I, 5, None).encode();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = payload(FrameKind::I, 100, None).encode();
        enc[0] = 0;
        assert!(matches!(FramePayload::decode(&enc), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn truncated_rejected() {
        let enc = payload(FrameKind::I, 100, Some(5.0)).encode();
        assert_eq!(FramePayload::decode(&enc[..10]).unwrap_err(), ProtoError::Truncated);
        // NTP flag set but field cut off.
        assert_eq!(FramePayload::decode(&enc[..15]).unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn bad_qp_rejected() {
        let mut enc = payload(FrameKind::I, 100, None).encode();
        enc[3] = 60;
        assert!(FramePayload::decode(&enc).is_err());
    }

    #[test]
    fn filler_is_deterministic() {
        let a = payload(FrameKind::P, 300, None).encode();
        let b = payload(FrameKind::P, 300, None).encode();
        assert_eq!(a, b);
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in [FrameKind::I, FrameKind::P, FrameKind::B] {
            let p = payload(kind, 64, None);
            assert_eq!(FramePayload::decode(&p.encode()).unwrap().kind, kind);
        }
    }
}
