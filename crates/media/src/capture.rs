//! Packet capture and TCP stream reconstruction — the tcpdump/wireshark
//! stand-in.
//!
//! §2: "The script also captures all the video and audio traffic using
//! tcpdump. ... After finding and reconstructing the multimedia TCP stream
//! using wireshark, single segments are isolated by saving the response of
//! HTTP GET request ... For RTMP, we exploit the wireshark dissector."
//!
//! A [`Capture`] holds per-flow packet records: arrival time on the
//! simulation clock *and* the capture host's wall-clock timestamp (tcpdump
//! stamps packets with the host clock, which is what the paper's NTP-based
//! delivery-latency computation subtracts from). Reconstruction yields the
//! ordered byte stream plus a byte-offset → timestamp index, so an analyzer
//! can ask "when did the packet containing byte N arrive?".

use pscp_simnet::SimTime;

/// Transport-level classification of a flow, as the analysis scripts would
/// infer from ports and endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// RTMP on port 80 to an Amazon EC2 ingest server.
    Rtmp,
    /// HLS segment/playlist HTTP to a Fastly CDN POP.
    HlsHttp,
    /// JSON API over HTTPS.
    Api,
    /// WebSocket chat.
    Chat,
    /// Profile picture downloads from S3.
    PictureHttp,
    /// App bootstrap traffic at join: thumbnails, chat backlog, rankings —
    /// the transfers that make joining slow on a throttled link (Fig 4a).
    AppMisc,
}

/// One recorded packet (downstream direction; upstream requests are logged
/// by the API tap instead, as in the paper's mitmproxy setup).
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRecord {
    /// Arrival instant on the simulation clock.
    pub at: SimTime,
    /// Capture host wall-clock timestamp, seconds (with its NTP error).
    pub wall_ts: f64,
    /// TCP payload bytes.
    pub payload: Vec<u8>,
}

/// A reconstructed unidirectional TCP flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow classification.
    pub kind: FlowKind,
    /// Server endpoint label, e.g. `"ec2-54-67-9-120.us-west-1"`.
    pub server: String,
    /// Packets in arrival order.
    pub packets: Vec<PacketRecord>,
}

impl Flow {
    /// Creates an empty flow.
    pub fn new(kind: FlowKind, server: impl Into<String>) -> Self {
        Flow { kind, server: server.into(), packets: Vec::new() }
    }

    /// Records a packet.
    pub fn record(&mut self, at: SimTime, wall_ts: f64, payload: Vec<u8>) {
        debug_assert!(
            self.packets.last().map(|p| p.at <= at).unwrap_or(true),
            "packets must be recorded in order"
        );
        self.packets.push(PacketRecord { at, wall_ts, payload });
    }

    /// Total payload bytes.
    pub fn byte_count(&self) -> usize {
        self.packets.iter().map(|p| p.payload.len()).sum()
    }

    /// Reassembles the ordered byte stream.
    pub fn byte_stream(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_count());
        for p in &self.packets {
            out.extend_from_slice(&p.payload);
        }
        out
    }

    /// Returns the wall timestamp of the packet containing byte `offset` of
    /// the reassembled stream, or `None` past the end.
    pub fn wall_ts_at_byte(&self, offset: usize) -> Option<f64> {
        self.index_at_byte(offset).map(|i| self.packets[i].wall_ts)
    }

    /// Returns the simulation arrival time of the packet containing byte
    /// `offset`.
    pub fn sim_time_at_byte(&self, offset: usize) -> Option<SimTime> {
        self.index_at_byte(offset).map(|i| self.packets[i].at)
    }

    fn index_at_byte(&self, offset: usize) -> Option<usize> {
        let mut cum = 0usize;
        for (i, p) in self.packets.iter().enumerate() {
            cum += p.payload.len();
            if offset < cum {
                return Some(i);
            }
        }
        None
    }

    /// Mean downstream rate over the capture in bits/second (first to last
    /// packet), or 0 for degenerate flows.
    pub fn mean_rate_bps(&self) -> f64 {
        let (Some(first), Some(last)) = (self.packets.first(), self.packets.last()) else {
            return 0.0;
        };
        let dt = last.at.saturating_since(first.at).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.byte_count() as f64 * 8.0 / dt
    }
}

/// A whole session's capture: every downstream flow the phone saw.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// All flows in creation order.
    pub flows: Vec<Flow>,
}

impl Capture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// Adds a flow, returning its index for later `record` calls.
    pub fn open_flow(&mut self, kind: FlowKind, server: impl Into<String>) -> usize {
        self.flows.push(Flow::new(kind, server));
        self.flows.len() - 1
    }

    /// Records a packet on flow `idx`.
    pub fn record(&mut self, idx: usize, at: SimTime, wall_ts: f64, payload: Vec<u8>) {
        self.flows[idx].record(at, wall_ts, payload);
    }

    /// First flow of a given kind, if any.
    pub fn flow_of_kind(&self, kind: FlowKind) -> Option<&Flow> {
        self.flows.iter().find(|f| f.kind == kind)
    }

    /// All flows of a given kind.
    pub fn flows_of_kind(&self, kind: FlowKind) -> Vec<&Flow> {
        self.flows.iter().filter(|f| f.kind == kind).collect()
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> usize {
        self.flows.iter().map(Flow::byte_count).sum()
    }

    /// Mean downstream rate over only the given flow kinds, bits/second —
    /// e.g. the steady-state media+chat rate excluding join bootstrap.
    pub fn rate_of_kinds(&self, kinds: &[FlowKind]) -> f64 {
        let flows: Vec<&Flow> = self.flows.iter().filter(|f| kinds.contains(&f.kind)).collect();
        let first = flows.iter().filter_map(|f| f.packets.first()).map(|p| p.at).min();
        let last = flows.iter().filter_map(|f| f.packets.last()).map(|p| p.at).max();
        let (Some(first), Some(last)) = (first, last) else { return 0.0 };
        let dt = last.saturating_since(first).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        flows.iter().map(|f| f.byte_count()).sum::<usize>() as f64 * 8.0 / dt
    }

    /// Aggregate mean downstream rate across all flows, bits/second,
    /// measured from the earliest to the latest packet in the capture.
    pub fn aggregate_rate_bps(&self) -> f64 {
        let first = self.flows.iter().filter_map(|f| f.packets.first()).map(|p| p.at).min();
        let last = self.flows.iter().filter_map(|f| f.packets.last()).map(|p| p.at).max();
        let (Some(first), Some(last)) = (first, last) else { return 0.0 };
        let dt = last.saturating_since(first).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn byte_stream_reassembles_in_order() {
        let mut f = Flow::new(FlowKind::Rtmp, "ec2-1");
        f.record(t(1), 1.0, vec![1, 2]);
        f.record(t(2), 2.0, vec![3]);
        f.record(t(3), 3.0, vec![4, 5]);
        assert_eq!(f.byte_stream(), vec![1, 2, 3, 4, 5]);
        assert_eq!(f.byte_count(), 5);
    }

    #[test]
    fn timestamp_lookup_by_offset() {
        let mut f = Flow::new(FlowKind::Rtmp, "ec2-1");
        f.record(t(1), 1.5, vec![0; 10]);
        f.record(t(2), 2.5, vec![0; 10]);
        assert_eq!(f.wall_ts_at_byte(0), Some(1.5));
        assert_eq!(f.wall_ts_at_byte(9), Some(1.5));
        assert_eq!(f.wall_ts_at_byte(10), Some(2.5));
        assert_eq!(f.wall_ts_at_byte(19), Some(2.5));
        assert_eq!(f.wall_ts_at_byte(20), None);
        assert_eq!(f.sim_time_at_byte(10), Some(t(2)));
    }

    #[test]
    fn mean_rate() {
        let mut f = Flow::new(FlowKind::HlsHttp, "fastly-eu");
        f.record(t(0), 0.0, vec![0; 1000]);
        f.record(t(4), 4.0, vec![0; 1000]);
        // 2000 bytes over 4 s = 4000 bps.
        assert!((f.mean_rate_bps() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_rates_are_zero() {
        let mut f = Flow::new(FlowKind::Chat, "ws");
        assert_eq!(f.mean_rate_bps(), 0.0);
        f.record(t(1), 1.0, vec![1]);
        assert_eq!(f.mean_rate_bps(), 0.0);
    }

    #[test]
    fn capture_flow_management() {
        let mut cap = Capture::new();
        let a = cap.open_flow(FlowKind::Rtmp, "ec2-1");
        let b = cap.open_flow(FlowKind::Chat, "ws-1");
        cap.record(a, t(1), 1.0, vec![0; 100]);
        cap.record(b, t(1), 1.0, vec![0; 50]);
        assert_eq!(cap.total_bytes(), 150);
        assert_eq!(cap.flow_of_kind(FlowKind::Chat).unwrap().server, "ws-1");
        assert!(cap.flow_of_kind(FlowKind::HlsHttp).is_none());
        assert_eq!(cap.flows_of_kind(FlowKind::Rtmp).len(), 1);
    }

    #[test]
    fn aggregate_rate_spans_flows() {
        let mut cap = Capture::new();
        let a = cap.open_flow(FlowKind::HlsHttp, "fastly-1");
        let b = cap.open_flow(FlowKind::HlsHttp, "fastly-2");
        cap.record(a, t(0), 0.0, vec![0; 500]);
        cap.record(b, t(2), 2.0, vec![0; 500]);
        // 1000 bytes over 2 s = 4000 bps.
        assert!((cap.aggregate_rate_bps() - 4000.0).abs() < 1e-9);
    }
}
