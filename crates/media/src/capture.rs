//! Packet capture and TCP stream reconstruction — the tcpdump/wireshark
//! stand-in.
//!
//! §2: "The script also captures all the video and audio traffic using
//! tcpdump. ... After finding and reconstructing the multimedia TCP stream
//! using wireshark, single segments are isolated by saving the response of
//! HTTP GET request ... For RTMP, we exploit the wireshark dissector."
//!
//! A [`Capture`] holds per-flow packet records: arrival time on the
//! simulation clock *and* the capture host's wall-clock timestamp (tcpdump
//! stamps packets with the host clock, which is what the paper's NTP-based
//! delivery-latency computation subtracts from). Reconstruction yields the
//! ordered byte stream plus a byte-offset → timestamp index, so an analyzer
//! can ask "when did the packet containing byte N arrive?".
//!
//! Storage is arena-based: each [`Flow`] keeps one contiguous payload buffer
//! plus per-packet metadata (timestamps and an end offset), so recording a
//! packet is a bounds check and a memcpy — no per-packet `Vec` — and
//! [`Flow::byte_stream`] is a free borrow of the arena. Packets are exposed
//! as borrowed [`PacketView`]s.

use pscp_simnet::SimTime;

/// Transport-level classification of a flow, as the analysis scripts would
/// infer from ports and endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKind {
    /// RTMP on port 80 to an Amazon EC2 ingest server.
    Rtmp,
    /// HLS segment/playlist HTTP to a Fastly CDN POP.
    HlsHttp,
    /// JSON API over HTTPS.
    Api,
    /// WebSocket chat.
    Chat,
    /// Profile picture downloads from S3.
    PictureHttp,
    /// App bootstrap traffic at join: thumbnails, chat backlog, rankings —
    /// the transfers that make joining slow on a throttled link (Fig 4a).
    AppMisc,
    /// SRT datagrams from an ingest-side gateway (the what-if transport
    /// study, DESIGN.md §12). Payloads are per-datagram, not a TCP stream.
    Srt,
}

/// Per-packet metadata; payload bytes live in the flow's arena, ending at
/// `end` (the previous packet's `end` — or 0 — marks the start).
#[derive(Debug, Clone, Copy, PartialEq)]
struct PacketMeta {
    at: SimTime,
    wall_ts: f64,
    end: usize,
}

/// A borrowed view of one recorded packet (downstream direction; upstream
/// requests are logged by the API tap instead, as in the paper's mitmproxy
/// setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketView<'a> {
    /// Arrival instant on the simulation clock.
    pub at: SimTime,
    /// Capture host wall-clock timestamp, seconds (with its NTP error).
    pub wall_ts: f64,
    /// TCP payload bytes.
    pub payload: &'a [u8],
}

/// A reconstructed unidirectional TCP flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow classification.
    pub kind: FlowKind,
    /// Server endpoint label, e.g. `"ec2-54-67-9-120.us-west-1"`.
    pub server: String,
    /// Concatenated payload bytes of every packet, in arrival order.
    data: Vec<u8>,
    /// Per-packet timestamps + cumulative end offsets into `data`.
    meta: Vec<PacketMeta>,
}

impl Flow {
    /// Creates an empty flow.
    pub fn new(kind: FlowKind, server: impl Into<String>) -> Self {
        Flow { kind, server: server.into(), data: Vec::new(), meta: Vec::new() }
    }

    /// Pre-sizes the arena and packet index (e.g. for allocation-free
    /// steady-state recording).
    pub fn reserve(&mut self, bytes: usize, packets: usize) {
        self.data.reserve(bytes);
        self.meta.reserve(packets);
    }

    /// Records a packet by copying its payload into the flow arena.
    pub fn record(&mut self, at: SimTime, wall_ts: f64, payload: &[u8]) {
        debug_assert!(
            self.meta.last().map(|p| p.at <= at).unwrap_or(true),
            "packets must be recorded in order"
        );
        self.data.extend_from_slice(payload);
        self.meta.push(PacketMeta { at, wall_ts, end: self.data.len() });
    }

    /// Records a packet of `len` zero bytes without a source buffer —
    /// padding/overhead traffic whose contents are never inspected.
    pub fn record_zeros(&mut self, at: SimTime, wall_ts: f64, len: usize) {
        debug_assert!(
            self.meta.last().map(|p| p.at <= at).unwrap_or(true),
            "packets must be recorded in order"
        );
        self.data.resize(self.data.len() + len, 0);
        self.meta.push(PacketMeta { at, wall_ts, end: self.data.len() });
    }

    /// Number of packets recorded.
    pub fn packet_count(&self) -> usize {
        self.meta.len()
    }

    /// The `i`-th packet as a borrowed view.
    pub fn packet(&self, i: usize) -> PacketView<'_> {
        let m = self.meta[i];
        let start = if i == 0 { 0 } else { self.meta[i - 1].end };
        PacketView { at: m.at, wall_ts: m.wall_ts, payload: &self.data[start..m.end] }
    }

    /// Iterates packets in arrival order as borrowed views.
    pub fn packets(&self) -> impl DoubleEndedIterator<Item = PacketView<'_>> + ExactSizeIterator {
        (0..self.meta.len()).map(|i| self.packet(i))
    }

    /// Arrival time of the first packet.
    pub fn first_at(&self) -> Option<SimTime> {
        self.meta.first().map(|m| m.at)
    }

    /// Arrival time of the last packet.
    pub fn last_at(&self) -> Option<SimTime> {
        self.meta.last().map(|m| m.at)
    }

    /// Total payload bytes.
    pub fn byte_count(&self) -> usize {
        self.data.len()
    }

    /// The reassembled, ordered byte stream — a borrow of the flow arena.
    pub fn byte_stream(&self) -> &[u8] {
        &self.data
    }

    /// Returns the wall timestamp of the packet containing byte `offset` of
    /// the reassembled stream, or `None` past the end.
    pub fn wall_ts_at_byte(&self, offset: usize) -> Option<f64> {
        self.index_at_byte(offset).map(|i| self.meta[i].wall_ts)
    }

    /// Returns the simulation arrival time of the packet containing byte
    /// `offset`.
    pub fn sim_time_at_byte(&self, offset: usize) -> Option<SimTime> {
        self.index_at_byte(offset).map(|i| self.meta[i].at)
    }

    fn index_at_byte(&self, offset: usize) -> Option<usize> {
        if offset >= self.data.len() {
            return None;
        }
        // First packet whose (cumulative) end offset exceeds `offset`.
        Some(self.meta.partition_point(|m| m.end <= offset))
    }

    /// Mean downstream rate over the capture in bits/second (first to last
    /// packet), or 0 for degenerate flows.
    pub fn mean_rate_bps(&self) -> f64 {
        let (Some(first), Some(last)) = (self.first_at(), self.last_at()) else {
            return 0.0;
        };
        let dt = last.saturating_since(first).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.byte_count() as f64 * 8.0 / dt
    }
}

/// A whole session's capture: every downstream flow the phone saw.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// All flows in creation order.
    pub flows: Vec<Flow>,
}

impl Capture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Capture::default()
    }

    /// Adds a flow, returning its index for later `record` calls.
    pub fn open_flow(&mut self, kind: FlowKind, server: impl Into<String>) -> usize {
        self.flows.push(Flow::new(kind, server));
        self.flows.len() - 1
    }

    /// Records a packet on flow `idx`.
    pub fn record(&mut self, idx: usize, at: SimTime, wall_ts: f64, payload: &[u8]) {
        self.flows[idx].record(at, wall_ts, payload);
    }

    /// Records a packet of `len` zero bytes on flow `idx`.
    pub fn record_zeros(&mut self, idx: usize, at: SimTime, wall_ts: f64, len: usize) {
        self.flows[idx].record_zeros(at, wall_ts, len);
    }

    /// First flow of a given kind, if any.
    pub fn flow_of_kind(&self, kind: FlowKind) -> Option<&Flow> {
        self.flows.iter().find(|f| f.kind == kind)
    }

    /// All flows of a given kind.
    pub fn flows_of_kind(&self, kind: FlowKind) -> Vec<&Flow> {
        self.flows.iter().filter(|f| f.kind == kind).collect()
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> usize {
        self.flows.iter().map(Flow::byte_count).sum()
    }

    /// Mean downstream rate over only the given flow kinds, bits/second —
    /// e.g. the steady-state media+chat rate excluding join bootstrap.
    pub fn rate_of_kinds(&self, kinds: &[FlowKind]) -> f64 {
        let flows: Vec<&Flow> = self.flows.iter().filter(|f| kinds.contains(&f.kind)).collect();
        let first = flows.iter().filter_map(|f| f.first_at()).min();
        let last = flows.iter().filter_map(|f| f.last_at()).max();
        let (Some(first), Some(last)) = (first, last) else { return 0.0 };
        let dt = last.saturating_since(first).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        flows.iter().map(|f| f.byte_count()).sum::<usize>() as f64 * 8.0 / dt
    }

    /// Aggregate mean downstream rate across all flows, bits/second,
    /// measured from the earliest to the latest packet in the capture.
    pub fn aggregate_rate_bps(&self) -> f64 {
        let first = self.flows.iter().filter_map(|f| f.first_at()).min();
        let last = self.flows.iter().filter_map(|f| f.last_at()).max();
        let (Some(first), Some(last)) = (first, last) else { return 0.0 };
        let dt = last.saturating_since(first).as_secs_f64();
        if dt <= 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn byte_stream_reassembles_in_order() {
        let mut f = Flow::new(FlowKind::Rtmp, "ec2-1");
        f.record(t(1), 1.0, &[1, 2]);
        f.record(t(2), 2.0, &[3]);
        f.record(t(3), 3.0, &[4, 5]);
        assert_eq!(f.byte_stream(), &[1, 2, 3, 4, 5]);
        assert_eq!(f.byte_count(), 5);
        let views: Vec<Vec<u8>> = f.packets().map(|p| p.payload.to_vec()).collect();
        assert_eq!(views, vec![vec![1, 2], vec![3], vec![4, 5]]);
        assert_eq!(f.packet_count(), 3);
    }

    #[test]
    fn timestamp_lookup_by_offset() {
        let mut f = Flow::new(FlowKind::Rtmp, "ec2-1");
        f.record(t(1), 1.5, &[0; 10]);
        f.record(t(2), 2.5, &[0; 10]);
        assert_eq!(f.wall_ts_at_byte(0), Some(1.5));
        assert_eq!(f.wall_ts_at_byte(9), Some(1.5));
        assert_eq!(f.wall_ts_at_byte(10), Some(2.5));
        assert_eq!(f.wall_ts_at_byte(19), Some(2.5));
        assert_eq!(f.wall_ts_at_byte(20), None);
        assert_eq!(f.sim_time_at_byte(10), Some(t(2)));
    }

    #[test]
    fn record_zeros_matches_explicit_zero_payload() {
        let mut a = Flow::new(FlowKind::AppMisc, "misc");
        let mut b = Flow::new(FlowKind::AppMisc, "misc");
        a.record(t(1), 1.0, &[0; 37]);
        b.record_zeros(t(1), 1.0, 37);
        assert_eq!(a.byte_stream(), b.byte_stream());
        assert_eq!(a.packet(0), b.packet(0));
    }

    #[test]
    fn mean_rate() {
        let mut f = Flow::new(FlowKind::HlsHttp, "fastly-eu");
        f.record(t(0), 0.0, &[0; 1000]);
        f.record(t(4), 4.0, &[0; 1000]);
        // 2000 bytes over 4 s = 4000 bps.
        assert!((f.mean_rate_bps() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_rates_are_zero() {
        let mut f = Flow::new(FlowKind::Chat, "ws");
        assert_eq!(f.mean_rate_bps(), 0.0);
        f.record(t(1), 1.0, &[1]);
        assert_eq!(f.mean_rate_bps(), 0.0);
    }

    #[test]
    fn capture_flow_management() {
        let mut cap = Capture::new();
        let a = cap.open_flow(FlowKind::Rtmp, "ec2-1");
        let b = cap.open_flow(FlowKind::Chat, "ws-1");
        cap.record(a, t(1), 1.0, &[0; 100]);
        cap.record(b, t(1), 1.0, &[0; 50]);
        assert_eq!(cap.total_bytes(), 150);
        assert_eq!(cap.flow_of_kind(FlowKind::Chat).unwrap().server, "ws-1");
        assert!(cap.flow_of_kind(FlowKind::HlsHttp).is_none());
        assert_eq!(cap.flows_of_kind(FlowKind::Rtmp).len(), 1);
    }

    #[test]
    fn aggregate_rate_spans_flows() {
        let mut cap = Capture::new();
        let a = cap.open_flow(FlowKind::HlsHttp, "fastly-1");
        let b = cap.open_flow(FlowKind::HlsHttp, "fastly-2");
        cap.record(a, t(0), 0.0, &[0; 500]);
        cap.record(b, t(2), 2.0, &[0; 500]);
        // 1000 bytes over 2 s = 4000 bps.
        assert!((cap.aggregate_rate_bps() - 4000.0).abs() < 1e-9);
    }
}
