//! Content classes and time-varying complexity.
//!
//! §5.2: "the type of content strongly differ among the streams. For
//! instance, some of them feature very static content such as one person
//! talking on a static background while others show, e.g., soccer matches
//! captured from a TV screen." Complexity here is a dimensionless multiplier
//! on the bits needed per frame at a reference QP; it evolves as a
//! mean-reverting process with occasional scene changes, which is what makes
//! bitrate vary widely at a fixed QP (Fig 6b).

use pscp_simnet::dist;
use pscp_simnet::rng::Rng;

/// Broad classes of captured content, with their typical coding complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// One person talking against a static background.
    StaticTalk,
    /// Indoor scene with some motion (vlogging, room tours).
    Indoor,
    /// Outdoor walking shots: global motion, texture.
    Outdoor,
    /// Sports or TV screens: high motion, frequent scene changes.
    SportsTv,
    /// Concerts / events: motion plus lighting changes.
    Event,
}

impl ContentClass {
    /// All classes, for enumeration in workload mixes.
    pub const ALL: [ContentClass; 5] = [
        ContentClass::StaticTalk,
        ContentClass::Indoor,
        ContentClass::Outdoor,
        ContentClass::SportsTv,
        ContentClass::Event,
    ];

    /// Mean complexity multiplier (1.0 = reference).
    pub fn mean_complexity(self) -> f64 {
        match self {
            ContentClass::StaticTalk => 0.45,
            ContentClass::Indoor => 0.8,
            ContentClass::Outdoor => 1.2,
            ContentClass::SportsTv => 1.9,
            ContentClass::Event => 1.5,
        }
    }

    /// Scene-change rate in events per second.
    pub fn scene_change_rate(self) -> f64 {
        match self {
            ContentClass::StaticTalk => 0.005,
            ContentClass::Indoor => 0.02,
            ContentClass::Outdoor => 0.03,
            ContentClass::SportsTv => 0.12,
            ContentClass::Event => 0.06,
        }
    }

    /// Relative volatility of the complexity process.
    pub fn volatility(self) -> f64 {
        match self {
            ContentClass::StaticTalk => 0.05,
            ContentClass::Indoor => 0.10,
            ContentClass::Outdoor => 0.15,
            ContentClass::SportsTv => 0.30,
            ContentClass::Event => 0.20,
        }
    }
}

/// A per-broadcast complexity process: mean-reverting (Ornstein–Uhlenbeck in
/// log space) with Poisson scene changes that jump the level.
#[derive(Debug, Clone)]
pub struct ContentProcess {
    class: ContentClass,
    /// Current complexity in log space.
    log_level: f64,
    /// Long-run mean in log space.
    log_mean: f64,
    /// Mean-reversion speed per second.
    reversion: f64,
}

impl ContentProcess {
    /// Creates a process for `class`, randomizing the per-broadcast mean so
    /// two talks are not identical.
    pub fn new<R: Rng + ?Sized>(class: ContentClass, rng: &mut R) -> Self {
        let base = class.mean_complexity().ln();
        let log_mean = base + dist::normal(rng, 0.0, 0.25);
        ContentProcess { class, log_level: log_mean, log_mean, reversion: 0.5 }
    }

    /// The content class this process models.
    pub fn class(&self) -> ContentClass {
        self.class
    }

    /// Current complexity multiplier.
    pub fn complexity(&self) -> f64 {
        self.log_level.exp()
    }

    /// Advances the process by `dt_s` seconds.
    pub fn step<R: Rng + ?Sized>(&mut self, dt_s: f64, rng: &mut R) {
        assert!(dt_s >= 0.0, "time step must be non-negative");
        // OU update in log space.
        let vol = self.class.volatility();
        let decay = (-self.reversion * dt_s).exp();
        let noise_sd = vol * (dt_s.min(1.0)).sqrt();
        self.log_level = self.log_mean
            + (self.log_level - self.log_mean) * decay
            + dist::normal(rng, 0.0, noise_sd);
        // Scene changes jump the level.
        let p_change = 1.0 - (-self.class.scene_change_rate() * dt_s).exp();
        if dist::coin(rng, p_change) {
            self.log_level += dist::normal(rng, 0.3, 0.4);
        }
        // Keep within physical bounds.
        self.log_level = self.log_level.clamp(-2.5, 2.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_simnet::RngFactory;

    fn rng() -> pscp_simnet::rng::CounterRng {
        RngFactory::new(77).stream("content-tests")
    }

    #[test]
    fn classes_ordered_by_complexity() {
        assert!(
            ContentClass::StaticTalk.mean_complexity() < ContentClass::Indoor.mean_complexity()
        );
        assert!(ContentClass::Indoor.mean_complexity() < ContentClass::SportsTv.mean_complexity());
    }

    #[test]
    fn complexity_stays_positive_and_bounded() {
        let mut r = rng();
        for class in ContentClass::ALL {
            let mut p = ContentProcess::new(class, &mut r);
            for _ in 0..1000 {
                p.step(1.0 / 30.0, &mut r);
                let c = p.complexity();
                assert!(c > 0.0 && c < 10.0, "complexity={c}");
            }
        }
    }

    #[test]
    fn sports_more_volatile_than_talk() {
        let mut r = rng();
        let observe = |class: ContentClass, r: &mut pscp_simnet::rng::CounterRng| {
            let mut p = ContentProcess::new(class, r);
            let mut values = Vec::new();
            for _ in 0..2000 {
                p.step(1.0 / 30.0, r);
                values.push(p.complexity().ln());
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
        };
        let var_talk = observe(ContentClass::StaticTalk, &mut r);
        let var_sports = observe(ContentClass::SportsTv, &mut r);
        assert!(var_sports > var_talk * 2.0, "sports={var_sports} talk={var_talk}");
    }

    #[test]
    fn long_run_mean_tracks_class() {
        let mut r = rng();
        let mut p = ContentProcess::new(ContentClass::SportsTv, &mut r);
        let mut sum = 0.0;
        let n = 30_000;
        for _ in 0..n {
            p.step(1.0 / 30.0, &mut r);
            sum += p.complexity();
        }
        let avg = sum / n as f64;
        // Scene-change jumps push above the OU mean; just require the
        // right ballpark, clearly above low-complexity classes.
        assert!(avg > 1.0 && avg < 4.5, "avg={avg}");
    }

    #[test]
    fn per_broadcast_means_differ() {
        let mut r = rng();
        let a = ContentProcess::new(ContentClass::Indoor, &mut r);
        let b = ContentProcess::new(ContentClass::Indoor, &mut r);
        assert_ne!(a.complexity(), b.complexity());
    }

    #[test]
    fn zero_step_is_noop_in_expectation() {
        let mut r = rng();
        let mut p = ContentProcess::new(ContentClass::Indoor, &mut r);
        let before = p.complexity();
        p.step(0.0, &mut r);
        // dt = 0: no noise (sd = 0), decay = 1, jump probability 0.
        assert_eq!(p.complexity(), before);
    }
}
