//! AVC-like video encoder model with QP rate control.
//!
//! §5.2 grounds this module: resolution is always 320×568, frame rate is
//! variable up to 30 fps, bitrate typically lands in 200–400 kbps, and "the
//! so called quantization parameter (QP) is dynamically adjusted" by rate
//! control to hit a target bitrate despite content variability. Frame sizes
//! follow the standard R-Q exponential law: halving bits costs about 6 QP
//! steps. GOP patterns are repeated IBP with an I-frame roughly every 36
//! frames; some broadcaster devices cannot encode B frames (the paper's
//! speculation for the ~20% I/P-only streams).

use crate::bitstream::{FrameKind, FramePayload, HEADER_LEN_NTP};
use crate::content::ContentProcess;
use pscp_simnet::dist;
use pscp_simnet::rng::Rng;

/// GOP structure choices observed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GopPattern {
    /// Repeated I (B P B)* pattern — the most common encoding.
    Ibp,
    /// I and P frames only (older hardware without B-frame support, ~20%).
    IpOnly,
    /// Intra-only (rare, 2 streams in the paper's dataset; "poor efficiency
    /// coding schemes ... e.g., I-type frames only").
    IOnly,
}

/// Encoder configuration.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Frame width (always 320 or 568 in Periscope).
    pub width: u16,
    /// Frame height.
    pub height: u16,
    /// Nominal frame rate (frames per second), up to 30.
    pub fps: f64,
    /// Rate-control target in bits/second.
    pub target_bitrate_bps: f64,
    /// GOP pattern.
    pub gop: GopPattern,
    /// Frames between I frames ("After about 36 frames, a new I frame is
    /// inserted").
    pub gop_length: u32,
    /// Probability a captured frame is lost before encoding (upload/encode
    /// glitches; "Occasionally, some frames are missing").
    pub frame_drop_prob: f64,
    /// Interval between embedded NTP timestamps, in frames.
    pub ntp_interval_frames: u32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            width: 320,
            height: 568,
            fps: 30.0,
            target_bitrate_bps: 300_000.0,
            gop: GopPattern::Ibp,
            gop_length: 36,
            frame_drop_prob: 0.004,
            ntp_interval_frames: 30,
        }
    }
}

/// One encoded video frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedFrame {
    /// Presentation timestamp, ms since encoding started.
    pub pts_ms: u32,
    /// Frame type.
    pub kind: FrameKind,
    /// QP chosen by rate control.
    pub qp: u8,
    /// Encoded bytes (parseable [`FramePayload`]).
    pub bytes: Vec<u8>,
}

impl EncodedFrame {
    /// Encoded size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

/// Reference QP of the size model: at `QP_REF` and complexity 1.0 a P frame
/// costs `BASE_P_BITS`.
const QP_REF: f64 = 34.0;
const BASE_P_BITS: f64 = 7200.0;
/// Relative frame costs (I ≈ 5.5×P, B ≈ 0.55×P — typical AVC ratios).
const I_FACTOR: f64 = 5.5;
const B_FACTOR: f64 = 0.55;
/// QP bounds used by mobile encoders.
const QP_MIN: f64 = 14.0;
const QP_MAX: f64 = 46.0;

/// The encoder: drives a content process, chooses frame types from the GOP
/// pattern, and adapts QP to track the target bitrate.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    content: ContentProcess,
    frame_index: u64,
    qp: f64,
    /// Virtual buffer: bytes produced minus bytes budgeted (leaky-bucket
    /// fullness the controller drains toward zero).
    buffer_bits: f64,
    /// Frames actually emitted (for averaging).
    emitted: u64,
    total_bytes: u64,
}

impl Encoder {
    /// Creates an encoder over the given content.
    pub fn new(config: EncoderConfig, content: ContentProcess) -> Self {
        assert!(config.fps > 0.0 && config.fps <= 60.0, "fps out of range");
        assert!(config.target_bitrate_bps > 0.0, "target bitrate must be positive");
        assert!(config.gop_length >= 1, "gop length must be >= 1");
        Encoder {
            config,
            content,
            frame_index: 0,
            qp: 30.0,
            buffer_bits: 0.0,
            emitted: 0,
            total_bytes: 0,
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Frame type for position `idx` within the stream.
    fn frame_kind(&self, idx: u64) -> FrameKind {
        let pos = (idx % self.config.gop_length as u64) as u32;
        if pos == 0 {
            return FrameKind::I;
        }
        match self.config.gop {
            GopPattern::IOnly => FrameKind::I,
            GopPattern::IpOnly => FrameKind::P,
            GopPattern::Ibp => {
                if pos % 2 == 1 {
                    FrameKind::B
                } else {
                    FrameKind::P
                }
            }
        }
    }

    /// Encodes the next captured frame. Returns `None` when the frame was
    /// dropped (capture/encode glitch) — the paper's missing frames needing
    /// concealment.
    ///
    /// `wall_clock_s` is the broadcaster's wall-clock reading at capture
    /// time; it is embedded every `ntp_interval_frames` frames.
    pub fn next_frame<R: Rng + ?Sized>(
        &mut self,
        wall_clock_s: f64,
        rng: &mut R,
    ) -> Option<EncodedFrame> {
        let idx = self.frame_index;
        self.frame_index += 1;
        let dt = 1.0 / self.config.fps;
        self.content.step(dt, rng);
        if dist::coin(rng, self.config.frame_drop_prob) {
            return None;
        }
        let kind = self.frame_kind(idx);
        // --- rate control: pick QP before encoding the frame ---
        let per_frame_budget = self.config.target_bitrate_bps / self.config.fps;
        // Feedback: one full budget of backlog pushes QP up by ~4 steps.
        let pressure = (self.buffer_bits / (per_frame_budget * 8.0)).clamp(-2.0, 2.0);
        // Feedforward: encode the complexity into the operating point, so
        // complex content runs at higher QP (the R-Q tradeoff).
        let complexity = self.content.complexity();
        let ff = QP_REF
            + 6.0
                * (complexity * BASE_P_BITS * avg_factor(self.config.gop) / per_frame_budget)
                    .log2();
        let target_qp = ff + 4.0 * pressure;
        // Encoders move QP gradually (smoothing window of a few frames).
        self.qp += (target_qp - self.qp).clamp(-2.0, 2.0);
        self.qp = self.qp.clamp(QP_MIN, QP_MAX);
        let qp_int = self.qp.round().clamp(0.0, 51.0) as u8;
        // --- size model ---
        let factor = match kind {
            FrameKind::I => I_FACTOR,
            FrameKind::P => 1.0,
            FrameKind::B => B_FACTOR,
        };
        let mean_bits = BASE_P_BITS * factor * complexity * 2f64.powf((QP_REF - self.qp) / 6.0);
        // Per-frame noise: residual content detail the model can't see.
        let bits = mean_bits * dist::lognormal(rng, 0.0, 0.13);
        let min_bytes = HEADER_LEN_NTP + 8;
        let size = ((bits / 8.0).round() as usize).max(min_bytes);
        self.buffer_bits += size as f64 * 8.0 - per_frame_budget;
        // Drain the buffer stat slowly so old deviations stop mattering.
        self.buffer_bits *= 0.995;
        let ntp = if idx.is_multiple_of(self.config.ntp_interval_frames as u64) {
            Some(wall_clock_s)
        } else {
            None
        };
        let pts_ms = (idx as f64 * 1000.0 / self.config.fps).round() as u32;
        let payload = FramePayload {
            kind,
            qp: qp_int,
            width: self.config.width,
            height: self.config.height,
            pts_ms,
            ntp_s: ntp,
            size,
        };
        self.emitted += 1;
        self.total_bytes += size as u64;
        Some(EncodedFrame { pts_ms, kind, qp: qp_int, bytes: payload.encode() })
    }

    /// Average output bitrate so far, bits/second.
    pub fn average_bitrate_bps(&self) -> f64 {
        if self.frame_index == 0 {
            return 0.0;
        }
        let seconds = self.frame_index as f64 / self.config.fps;
        self.total_bytes as f64 * 8.0 / seconds
    }
}

/// Average per-frame size factor of a GOP pattern relative to a P frame.
fn avg_factor(gop: GopPattern) -> f64 {
    match gop {
        GopPattern::IOnly => I_FACTOR,
        GopPattern::IpOnly => (I_FACTOR + 35.0) / 36.0,
        GopPattern::Ibp => (I_FACTOR + 17.0 + 18.0 * B_FACTOR) / 36.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::{ContentClass, ContentProcess};
    use pscp_simnet::RngFactory;

    fn encoder(
        class: ContentClass,
        config: EncoderConfig,
        seed: u64,
    ) -> (Encoder, pscp_simnet::rng::CounterRng) {
        let f = RngFactory::new(seed);
        let mut rng = f.stream("enc-test");
        let content = ContentProcess::new(class, &mut rng);
        (Encoder::new(config, content), rng)
    }

    fn run(
        enc: &mut Encoder,
        rng: &mut pscp_simnet::rng::CounterRng,
        n: usize,
    ) -> Vec<EncodedFrame> {
        (0..n).filter_map(|i| enc.next_frame(i as f64 / 30.0, rng)).collect()
    }

    #[test]
    fn gop_pattern_ibp() {
        let (enc, _) = encoder(ContentClass::Indoor, EncoderConfig::default(), 1);
        assert_eq!(enc.frame_kind(0), FrameKind::I);
        assert_eq!(enc.frame_kind(1), FrameKind::B);
        assert_eq!(enc.frame_kind(2), FrameKind::P);
        assert_eq!(enc.frame_kind(3), FrameKind::B);
        assert_eq!(enc.frame_kind(36), FrameKind::I);
    }

    #[test]
    fn gop_pattern_ip_only_has_no_b() {
        let cfg = EncoderConfig { gop: GopPattern::IpOnly, ..Default::default() };
        let (mut enc, mut rng) = encoder(ContentClass::Indoor, cfg, 2);
        let frames = run(&mut enc, &mut rng, 200);
        assert!(frames.iter().all(|f| f.kind != FrameKind::B));
        assert!(frames.iter().any(|f| f.kind == FrameKind::I));
        assert!(frames.iter().any(|f| f.kind == FrameKind::P));
    }

    #[test]
    fn gop_pattern_i_only() {
        let cfg = EncoderConfig { gop: GopPattern::IOnly, ..Default::default() };
        let (mut enc, mut rng) = encoder(ContentClass::StaticTalk, cfg, 3);
        let frames = run(&mut enc, &mut rng, 100);
        assert!(frames.iter().all(|f| f.kind == FrameKind::I));
    }

    #[test]
    fn rate_control_tracks_target() {
        for class in [ContentClass::StaticTalk, ContentClass::SportsTv] {
            let (mut enc, mut rng) = encoder(class, EncoderConfig::default(), 4);
            run(&mut enc, &mut rng, 3600); // 2 minutes
            let rate = enc.average_bitrate_bps();
            assert!((rate - 300_000.0).abs() < 120_000.0, "class {class:?}: rate {rate}");
        }
    }

    #[test]
    fn complex_content_runs_higher_qp() {
        let (mut e1, mut r1) = encoder(ContentClass::StaticTalk, EncoderConfig::default(), 5);
        let (mut e2, mut r2) = encoder(ContentClass::SportsTv, EncoderConfig::default(), 5);
        let f1 = run(&mut e1, &mut r1, 1800);
        let f2 = run(&mut e2, &mut r2, 1800);
        let qp1: f64 = f1.iter().map(|f| f.qp as f64).sum::<f64>() / f1.len() as f64;
        let qp2: f64 = f2.iter().map(|f| f.qp as f64).sum::<f64>() / f2.len() as f64;
        assert!(qp2 > qp1 + 3.0, "talk qp={qp1} sports qp={qp2}");
    }

    #[test]
    fn i_frames_bigger_than_p_bigger_than_b() {
        let (mut enc, mut rng) = encoder(ContentClass::Indoor, EncoderConfig::default(), 6);
        let frames = run(&mut enc, &mut rng, 1800);
        let avg = |k: FrameKind| {
            let xs: Vec<f64> =
                frames.iter().filter(|f| f.kind == k).map(|f| f.size() as f64).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(FrameKind::I) > 2.0 * avg(FrameKind::P));
        assert!(avg(FrameKind::P) > avg(FrameKind::B));
    }

    #[test]
    fn frames_decode_back() {
        let (mut enc, mut rng) = encoder(ContentClass::Outdoor, EncoderConfig::default(), 7);
        for f in run(&mut enc, &mut rng, 120) {
            let p = FramePayload::decode(&f.bytes).unwrap();
            assert_eq!(p.kind, f.kind);
            assert_eq!(p.qp, f.qp);
            assert_eq!(p.width, 320);
            assert_eq!(p.height, 568);
            assert_eq!(p.size, f.size());
        }
    }

    #[test]
    fn ntp_embedded_periodically() {
        let (mut enc, mut rng) = encoder(ContentClass::Indoor, EncoderConfig::default(), 8);
        let frames = run(&mut enc, &mut rng, 300);
        let with_ntp = frames
            .iter()
            .filter(|f| FramePayload::decode(&f.bytes).unwrap().ntp_s.is_some())
            .count();
        // Every 30th frame (minus drops): roughly 10 in 300.
        assert!((8..=12).contains(&with_ntp), "with_ntp={with_ntp}");
    }

    #[test]
    fn drops_happen_at_configured_rate() {
        let cfg = EncoderConfig { frame_drop_prob: 0.05, ..Default::default() };
        let (mut enc, mut rng) = encoder(ContentClass::Indoor, cfg, 9);
        let n = 4000;
        let emitted = run(&mut enc, &mut rng, n).len();
        let drop_rate = 1.0 - emitted as f64 / n as f64;
        assert!((drop_rate - 0.05).abs() < 0.02, "drop_rate={drop_rate}");
    }

    #[test]
    fn pts_advances_at_fps() {
        let (mut enc, mut rng) = encoder(ContentClass::Indoor, EncoderConfig::default(), 10);
        let frames = run(&mut enc, &mut rng, 61);
        // ~30 fps: pts of frame 60 is about 2000 ms.
        let last = frames.last().unwrap();
        assert!(last.pts_ms >= 1900 && last.pts_ms <= 2000, "pts={}", last.pts_ms);
    }

    #[test]
    fn qp_stays_in_bounds() {
        for class in ContentClass::ALL {
            let (mut enc, mut rng) = encoder(class, EncoderConfig::default(), 11);
            for f in run(&mut enc, &mut rng, 600) {
                assert!((QP_MIN as u8..=QP_MAX as u8).contains(&f.qp), "qp={}", f.qp);
            }
        }
    }

    #[test]
    fn bitrate_in_paper_range_across_classes() {
        // Fig 6a: typical bitrates 200-400 kbps.
        let mut in_range = 0;
        let mut total = 0;
        for (i, class) in ContentClass::ALL.iter().enumerate() {
            for seed in 0..4 {
                let (mut enc, mut rng) =
                    encoder(*class, EncoderConfig::default(), 100 + i as u64 * 10 + seed);
                run(&mut enc, &mut rng, 1800);
                total += 1;
                let r = enc.average_bitrate_bps();
                if (150_000.0..=450_000.0).contains(&r) {
                    in_range += 1;
                }
            }
        }
        assert!(in_range as f64 / total as f64 > 0.8, "{in_range}/{total} in range");
    }
}
