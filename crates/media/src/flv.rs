//! FLV-style audio/video tag bodies — the payload format RTMP message
//! bodies use (Adobe FLV spec §Audio tags / Video tags).
//!
//! The wireshark RTMP dissector the paper used "can extract the audio and
//! video segments"; this module is the packaging those segments travel in:
//! a one-byte video tag header (frame type + codec id), the AVC packet type
//! and composition time, then the coded frame. Composition time is how B
//! frames shift presentation relative to decode order.

use crate::bitstream::{FrameKind, FramePayload};
use pscp_proto::ProtoError;

/// Codec id 7 = AVC in the FLV spec.
const CODEC_AVC: u8 = 7;
/// Audio format 10 = AAC.
const AUDIO_AAC: u8 = 10;

/// A video tag: header info plus the coded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoTag {
    /// Keyframe flag (frame type 1) vs inter frame (2).
    pub keyframe: bool,
    /// Composition time offset in ms (B-frame reorder delay).
    pub composition_ms: i32,
    /// The coded frame payload.
    pub frame: FramePayload,
}

impl VideoTag {
    /// Wraps an encoded frame into a tag body.
    pub fn for_frame(frame: FramePayload) -> VideoTag {
        let keyframe = frame.kind == FrameKind::I;
        // One frame of composition delay for B frames (paper §5.2: "one B
        // frame inserts a delay equal to the duration of the frame itself").
        let composition_ms = if frame.kind == FrameKind::B { 33 } else { 0 };
        VideoTag { keyframe, composition_ms, frame }
    }

    /// Encodes the tag body (header + frame bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.frame.size);
        Self::write_header(self.keyframe, self.composition_ms, &mut out);
        self.frame.encode_into(&mut out);
        out
    }

    /// Appends just the 5-byte tag header to `out`.
    ///
    /// Hot-path variant: when the coded frame bytes already exist (encoder
    /// output), callers append them after this header instead of paying a
    /// decode→re-encode roundtrip. Byte-identical to [`VideoTag::encode`]
    /// because [`FramePayload::encode`] is deterministic.
    pub fn write_header(keyframe: bool, composition_ms: i32, out: &mut Vec<u8>) {
        let frame_type: u8 = if keyframe { 1 } else { 2 };
        out.push((frame_type << 4) | CODEC_AVC);
        out.push(1); // AVCPacketType = 1 (NALU)
        let ct = composition_ms;
        out.extend_from_slice(&[(ct >> 16) as u8, (ct >> 8) as u8, ct as u8]);
    }

    /// Decodes a tag body.
    pub fn decode(bytes: &[u8]) -> Result<VideoTag, ProtoError> {
        if bytes.len() < 5 {
            return Err(ProtoError::Truncated);
        }
        let frame_type = bytes[0] >> 4;
        let codec = bytes[0] & 0x0F;
        if codec != CODEC_AVC {
            return Err(ProtoError::Malformed(format!("unsupported codec id {codec}")));
        }
        if bytes[1] != 1 {
            return Err(ProtoError::Malformed(format!("unsupported AVC packet type {}", bytes[1])));
        }
        let composition_ms = ((bytes[2] as i32) << 16) | ((bytes[3] as i32) << 8) | bytes[4] as i32;
        let frame = FramePayload::decode(&bytes[5..])?;
        Ok(VideoTag { keyframe: frame_type == 1, composition_ms, frame })
    }
}

/// An audio tag: AAC header byte + payload size (contents are opaque).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioTag {
    /// Payload length in bytes (excluding the 2 header bytes).
    pub payload_len: usize,
}

impl AudioTag {
    /// Encodes an AAC raw-data tag body with `payload_len` opaque bytes.
    pub fn encode(payload_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + payload_len);
        Self::encode_into(payload_len, &mut out);
        out
    }

    /// Appends the tag body to `out` without allocating.
    pub fn encode_into(payload_len: usize, out: &mut Vec<u8>) {
        // format=AAC(10), rate=3 (44kHz), size=1 (16 bit), type=1 (stereo)
        out.push((AUDIO_AAC << 4) | (3 << 2) | (1 << 1) | 1);
        out.push(1); // AACPacketType = raw
        out.resize(out.len() + payload_len, 0xAA);
    }

    /// Decodes a tag body.
    pub fn decode(bytes: &[u8]) -> Result<AudioTag, ProtoError> {
        if bytes.len() < 2 {
            return Err(ProtoError::Truncated);
        }
        if bytes[0] >> 4 != AUDIO_AAC {
            return Err(ProtoError::Malformed(format!(
                "unsupported audio format {}",
                bytes[0] >> 4
            )));
        }
        Ok(AudioTag { payload_len: bytes.len() - 2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind) -> FramePayload {
        FramePayload { kind, qp: 28, width: 320, height: 568, pts_ms: 500, ntp_s: None, size: 400 }
    }

    #[test]
    fn video_roundtrip_keyframe() {
        let tag = VideoTag::for_frame(frame(FrameKind::I));
        assert!(tag.keyframe);
        assert_eq!(tag.composition_ms, 0);
        let dec = VideoTag::decode(&tag.encode()).unwrap();
        assert_eq!(dec, tag);
    }

    #[test]
    fn video_roundtrip_b_frame_composition() {
        let tag = VideoTag::for_frame(frame(FrameKind::B));
        assert!(!tag.keyframe);
        assert_eq!(tag.composition_ms, 33);
        let dec = VideoTag::decode(&tag.encode()).unwrap();
        assert_eq!(dec.composition_ms, 33);
        assert_eq!(dec.frame.kind, FrameKind::B);
    }

    #[test]
    fn video_rejects_non_avc() {
        let mut enc = VideoTag::for_frame(frame(FrameKind::P)).encode();
        enc[0] = (2 << 4) | 2; // codec id 2 (H.263)
        assert!(VideoTag::decode(&enc).is_err());
    }

    #[test]
    fn video_rejects_truncated() {
        let enc = VideoTag::for_frame(frame(FrameKind::P)).encode();
        assert_eq!(VideoTag::decode(&enc[..3]).unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn audio_roundtrip() {
        let enc = AudioTag::encode(93);
        assert_eq!(enc.len(), 95);
        let dec = AudioTag::decode(&enc).unwrap();
        assert_eq!(dec.payload_len, 93);
    }

    #[test]
    fn audio_rejects_non_aac() {
        let mut enc = AudioTag::encode(10);
        enc[0] = 2 << 4; // MP3
        assert!(AudioTag::decode(&enc).is_err());
    }
}
