#![warn(missing_docs)]

//! Media pipeline: content, encoding, packaging, capture and analysis.
//!
//! §5.2 of the paper analyses the audio/video of captured sessions: AVC video
//! at 320×568, variable frame rate up to 30 fps, 200–400 kbps typical
//! bitrate, QP-based rate control reacting to content complexity, GOP
//! patterns (repeated IBP; ~20% of streams I/P only; I-frame interval ≈ 36),
//! and AAC audio at 32/64 kbps VBR. This crate models that causal chain and
//! the measurement path that observes it:
//!
//! * [`content`] — content classes with time-varying complexity (a static
//!   talking head vs. a soccer match captured from a TV);
//! * [`encoder`] — an AVC-like encoder model: an R-Q rate controller picks
//!   QP per frame given complexity and a target bitrate, emitting frames
//!   whose *sizes* follow the standard `bits ∝ complexity · 2^((QP₀-QP)/6)`
//!   law (the "model bitstream" substitution for real H.264 — see
//!   DESIGN.md §1);
//! * [`audio`] — AAC VBR frame sizes at 44.1 kHz;
//! * [`bitstream`] — the self-describing frame payload (frame type, QP,
//!   resolution, optional embedded NTP timestamp) that the analysis side
//!   parses back out, standing in for H.264 slice headers + SEI;
//! * [`flv`] — FLV-style tag packaging used on the RTMP path;
//! * [`ts`] — MPEG-TS segmenter/demuxer (188-byte packets, PAT/PMT, PES
//!   with 90 kHz PTS) used on the HLS path;
//! * [`capture`] — tcpdump-style packet records and TCP stream reassembly;
//! * [`analysis`] — the wireshark/libav stand-in: reconstructs streams from
//!   captures and computes bitrate, QP, GOP pattern, frame rate, segment
//!   durations, and NTP-based delivery latency samples.

pub mod analysis;
pub mod audio;
pub mod bitstream;
pub mod capture;
pub mod content;
pub mod encoder;
pub mod flv;
pub mod ts;

pub use bitstream::{FrameKind, FramePayload};
pub use content::{ContentClass, ContentProcess};
pub use encoder::{EncodedFrame, Encoder, EncoderConfig, GopPattern};
