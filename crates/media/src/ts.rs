//! MPEG-TS (ISO/IEC 13818-1) mux and demux.
//!
//! §2 of the paper: after isolating an HLS HTTP response, the body "contains
//! an MPEG-TS file ready to be played". HLS segments here are genuine
//! transport streams: 188-byte packets, PAT/PMT with MPEG-2 CRC32, PES
//! packets with 33-bit 90 kHz PTS, continuity counters, and adaptation-field
//! stuffing. The demuxer validates all of it — it is the parser the capture
//! analysis runs, standing in for the paper's wireshark + libav toolchain.
//!
//! Both directions are zero-copy on the hot path: the muxer writes 188-byte
//! packets straight into a caller-provided buffer from borrowed access-unit
//! slices ([`TsMuxer::mux_into`]), and the incremental [`TsDemuxer`]
//! accumulates PES payloads in per-PID arenas and yields [`TsUnitRef`]
//! views into them. The owned [`TsUnit`] API ([`TsMuxer::mux_segment`],
//! [`demux_segment`]) wraps the same machinery.

use crate::bitstream::FramePayload;
use pscp_proto::ProtoError;

/// Transport packet size.
pub const TS_PACKET: usize = 188;
/// Sync byte.
pub const SYNC: u8 = 0x47;
/// PID of the Program Association Table.
pub const PID_PAT: u16 = 0x0000;
/// PID we allocate for the Program Map Table.
pub const PID_PMT: u16 = 0x1000;
/// PID of the video elementary stream.
pub const PID_VIDEO: u16 = 0x0100;
/// PID of the audio elementary stream.
pub const PID_AUDIO: u16 = 0x0101;
/// PES stream id for video.
const STREAM_ID_VIDEO: u8 = 0xE0;
/// PES stream id for audio.
const STREAM_ID_AUDIO: u8 = 0xC0;

/// MPEG-2 CRC32 (as used in PSI tables): polynomial 0x04C11DB7, init all
/// ones, no reflection, no final xor.
pub fn crc32_mpeg2(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= (byte as u32) << 24;
        for _ in 0..8 {
            crc = if crc & 0x8000_0000 != 0 { (crc << 1) ^ 0x04C1_1DB7 } else { crc << 1 };
        }
    }
    crc
}

/// One elementary-stream access unit recovered from (or destined for) a
/// transport stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TsUnit {
    /// A video access unit with PTS (ms domain of the encoder).
    Video {
        /// PTS in milliseconds.
        pts_ms: u32,
        /// Coded frame bytes (a [`FramePayload`]).
        data: Vec<u8>,
    },
    /// An audio access unit.
    Audio {
        /// PTS in milliseconds.
        pts_ms: u32,
        /// Opaque coded audio bytes.
        data: Vec<u8>,
    },
}

impl TsUnit {
    /// PTS in ms.
    pub fn pts_ms(&self) -> u32 {
        match self {
            TsUnit::Video { pts_ms, .. } | TsUnit::Audio { pts_ms, .. } => *pts_ms,
        }
    }

    /// Borrowed view of this unit for zero-copy muxing.
    pub fn as_ref(&self) -> TsUnitRef<'_> {
        match self {
            TsUnit::Video { pts_ms, data } => TsUnitRef { video: true, pts_ms: *pts_ms, data },
            TsUnit::Audio { pts_ms, data } => TsUnitRef { video: false, pts_ms: *pts_ms, data },
        }
    }
}

/// A borrowed access unit: the zero-copy input to [`TsMuxer::mux_into`] and
/// output of [`TsDemuxer::units`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsUnitRef<'a> {
    /// True for video, false for audio.
    pub video: bool,
    /// PTS in milliseconds.
    pub pts_ms: u32,
    /// Borrowed access-unit bytes.
    pub data: &'a [u8],
}

impl TsUnitRef<'_> {
    /// Copies the view into an owned [`TsUnit`].
    pub fn to_unit(&self) -> TsUnit {
        if self.video {
            TsUnit::Video { pts_ms: self.pts_ms, data: self.data.to_vec() }
        } else {
            TsUnit::Audio { pts_ms: self.pts_ms, data: self.data.to_vec() }
        }
    }
}

/// Flat continuity-counter slot for the four PIDs the muxer/demuxer use.
fn pid_slot(pid: u16) -> Option<usize> {
    match pid {
        PID_PAT => Some(0),
        PID_PMT => Some(1),
        PID_VIDEO => Some(2),
        PID_AUDIO => Some(3),
        _ => None,
    }
}

/// Multiplexes access units into a complete TS segment (PAT, PMT, then one
/// PES packet per unit).
#[derive(Debug)]
pub struct TsMuxer {
    continuity: [u8; 4],
}

impl Default for TsMuxer {
    fn default() -> Self {
        Self::new()
    }
}

impl TsMuxer {
    /// Creates a muxer with zeroed continuity counters.
    pub fn new() -> Self {
        TsMuxer { continuity: [0; 4] }
    }

    /// Builds a segment containing `units`, prefixed by PAT and PMT.
    pub fn mux_segment(&mut self, units: &[TsUnit]) -> Vec<u8> {
        let mut out = Vec::new();
        self.mux_into(units.iter().map(TsUnit::as_ref), &mut out);
        out
    }

    /// Zero-copy variant of [`TsMuxer::mux_segment`]: writes the segment's
    /// packets directly into `out` from borrowed access units.
    pub fn mux_into<'a>(
        &mut self,
        units: impl IntoIterator<Item = TsUnitRef<'a>>,
        out: &mut Vec<u8>,
    ) {
        self.write_psi(PID_PAT, pat_section(), out);
        self.write_psi(PID_PMT, pmt_section(), out);
        for unit in units {
            let (pid, stream_id) = if unit.video {
                (PID_VIDEO, STREAM_ID_VIDEO)
            } else {
                (PID_AUDIO, STREAM_ID_AUDIO)
            };
            let header = pes_header(stream_id, unit.pts_ms, unit.data.len());
            self.write_payload(pid, &header, unit.data, true, out);
        }
    }

    fn next_cc(&mut self, pid: u16) -> u8 {
        let cc = &mut self.continuity[pid_slot(pid).expect("muxer writes known PIDs")];
        let current = *cc;
        *cc = (*cc + 1) & 0x0F;
        current
    }

    /// Writes a PSI section (pointer_field prefix) into TS packets.
    fn write_psi(&mut self, pid: u16, section: &[u8], out: &mut Vec<u8>) {
        self.write_payload(pid, &[0u8], section, true, out); // head = pointer_field
    }

    /// Splits the virtual concatenation `head ++ tail` across TS packets on
    /// `pid`, writing directly into `out`; `pusi` marks the first packet.
    fn write_payload(&mut self, pid: u16, head: &[u8], tail: &[u8], pusi: bool, out: &mut Vec<u8>) {
        let total = head.len() + tail.len();
        let mut off = 0;
        let mut first = true;
        while off < total {
            let remaining = total - off;
            let pkt_start = out.len();
            out.reserve(TS_PACKET);
            out.push(SYNC);
            let pusi_bit = if first && pusi { 0x40 } else { 0x00 };
            out.push(pusi_bit | ((pid >> 8) as u8 & 0x1F));
            out.push(pid as u8);
            let cc = self.next_cc(pid);
            let body_space = TS_PACKET - 4;
            if remaining >= body_space {
                // Payload only (adaptation_field_control = 01).
                out.push(0x10 | cc);
                copy_parts(head, tail, off, body_space, out);
                off += body_space;
            } else {
                // Needs stuffing: adaptation field present (11).
                out.push(0x30 | cc);
                let af_len = body_space - remaining - 1; // af length byte itself
                out.push(af_len as u8);
                if af_len > 0 {
                    out.push(0x00); // flags
                    out.resize(out.len() + (af_len - 1), 0xFF);
                }
                copy_parts(head, tail, off, remaining, out);
                off = total;
            }
            debug_assert_eq!(out.len() - pkt_start, TS_PACKET);
            first = false;
        }
    }
}

/// Appends `len` bytes starting at offset `off` of the virtual byte string
/// `head ++ tail` to `out`.
fn copy_parts(head: &[u8], tail: &[u8], off: usize, len: usize, out: &mut Vec<u8>) {
    let h = head.len();
    if off < h {
        let take = len.min(h - off);
        out.extend_from_slice(&head[off..off + take]);
        if take < len {
            out.extend_from_slice(&tail[..len - take]);
        }
    } else {
        out.extend_from_slice(&tail[off - h..off - h + len]);
    }
}

/// Builds the PAT: one program, PMT at [`PID_PMT`]. The section is constant;
/// it is computed once and cached.
fn pat_section() -> &'static [u8] {
    static PAT: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PAT.get_or_init(|| {
        let mut body = Vec::new();
        body.push(0x00); // table_id: PAT
                         // section_syntax_indicator=1, length filled below.
        let mut section = vec![0u8; 0];
        section.extend_from_slice(&[0x00, 0x01]); // transport_stream_id
        section.push(0xC1); // version 0, current_next=1
        section.push(0x00); // section_number
        section.push(0x00); // last_section_number
        section.extend_from_slice(&[0x00, 0x01]); // program_number 1
        section.push(0xE0 | ((PID_PMT >> 8) as u8 & 0x1F));
        section.push(PID_PMT as u8);
        let len = section.len() + 4; // + CRC
        body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
        body.push(len as u8);
        body.extend_from_slice(&section);
        let crc = crc32_mpeg2(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        body
    })
}

/// Builds the PMT: AVC video on [`PID_VIDEO`], AAC audio on [`PID_AUDIO`].
/// Constant, computed once.
fn pmt_section() -> &'static [u8] {
    static PMT: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PMT.get_or_init(|| {
        let mut body = Vec::new();
        body.push(0x02); // table_id: PMT
        let mut section = Vec::new();
        section.extend_from_slice(&[0x00, 0x01]); // program_number
        section.push(0xC1);
        section.push(0x00);
        section.push(0x00);
        section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F)); // PCR PID = video
        section.push(PID_VIDEO as u8);
        section.extend_from_slice(&[0xF0, 0x00]); // program_info_length 0
                                                  // Video: stream_type 0x1B (AVC).
        section.push(0x1B);
        section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F));
        section.push(PID_VIDEO as u8);
        section.extend_from_slice(&[0xF0, 0x00]);
        // Audio: stream_type 0x0F (AAC ADTS).
        section.push(0x0F);
        section.push(0xE0 | ((PID_AUDIO >> 8) as u8 & 0x1F));
        section.push(PID_AUDIO as u8);
        section.extend_from_slice(&[0xF0, 0x00]);
        let len = section.len() + 4;
        body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
        body.push(len as u8);
        body.extend_from_slice(&section);
        let crc = crc32_mpeg2(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        body
    })
}

/// PES packet header with a 5-byte PTS field, for a payload of `data_len`
/// bytes.
fn pes_header(stream_id: u8, pts_ms: u32, data_len: usize) -> [u8; 14] {
    let mut h = [0u8; 14];
    h[2] = 0x01; // start code 00 00 01
    h[3] = stream_id;
    let pes_len = 3 + 5 + data_len;
    // Video PES length may be 0 (unbounded) but we always know it here.
    let pes_len_field = if pes_len > u16::MAX as usize { 0 } else { pes_len as u16 };
    h[4..6].copy_from_slice(&pes_len_field.to_be_bytes());
    h[6] = 0x80; // marker bits '10'
    h[7] = 0x80; // PTS_DTS_flags = '10' (PTS only)
    h[8] = 5; // PES_header_data_length
              // PTS: 90 kHz clock, 33 bits, '0010' prefix.
    let pts = (pts_ms as u64) * 90;
    h[9] = 0b0010_0000 | (((pts >> 30) as u8 & 0x07) << 1) | 1;
    h[10] = (pts >> 22) as u8;
    h[11] = (((pts >> 14) as u8) & 0xFE) | 1;
    h[12] = (pts >> 7) as u8;
    h[13] = (((pts << 1) as u8) & 0xFE) | 1;
    h
}

/// Location of a completed access unit inside a [`TsDemuxer`] arena.
#[derive(Debug, Clone, Copy)]
struct UnitMeta {
    video: bool,
    pts_ms: u32,
    start: usize,
    end: usize,
}

/// Incremental, reusable TS demultiplexer.
///
/// Feed 188-byte-aligned bytes with [`TsDemuxer::push`], call
/// [`TsDemuxer::finish`] at segment end, then iterate [`TsDemuxer::units`]
/// for borrowed views. PES payloads are assembled in two per-PID arenas and
/// never copied again; [`TsDemuxer::reset`] recycles the arenas (capacity
/// kept) so a demuxer reused across segments stops allocating.
///
/// Validates sync bytes, continuity counters, PSI CRCs and PES headers —
/// corruption anywhere surfaces as an error rather than silently skewed
/// statistics.
#[derive(Debug, Default)]
pub struct TsDemuxer {
    /// PES payload arenas: `[video, audio]`.
    arenas: [Vec<u8>; 2],
    /// Byte offset where the in-progress PES begins in its arena.
    open_at: [Option<usize>; 2],
    /// Continuity counters, indexed by [`pid_slot`].
    last_cc: [Option<u8>; 4],
    units: Vec<UnitMeta>,
    pat_seen: bool,
    pmt_seen: bool,
}

impl TsDemuxer {
    /// Creates an empty demuxer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all state but keeps arena capacity, ready for the next
    /// segment.
    pub fn reset(&mut self) {
        self.arenas[0].clear();
        self.arenas[1].clear();
        self.open_at = [None; 2];
        self.last_cc = [None; 4];
        self.units.clear();
        self.pat_seen = false;
        self.pmt_seen = false;
    }

    /// Consumes a 188-byte-aligned run of transport packets.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), ProtoError> {
        if !bytes.len().is_multiple_of(TS_PACKET) {
            return Err(ProtoError::Malformed(format!(
                "segment length {} not a multiple of 188",
                bytes.len()
            )));
        }
        for pkt in bytes.chunks(TS_PACKET) {
            self.push_packet(pkt)?;
        }
        Ok(())
    }

    fn push_packet(&mut self, pkt: &[u8]) -> Result<(), ProtoError> {
        if pkt[0] != SYNC {
            return Err(ProtoError::Malformed("lost sync".to_string()));
        }
        let pusi = pkt[1] & 0x40 != 0;
        let pid = (((pkt[1] & 0x1F) as u16) << 8) | pkt[2] as u16;
        let afc = (pkt[3] >> 4) & 0x03;
        let cc = pkt[3] & 0x0F;
        if let Some(slot) = pid_slot(pid) {
            if let Some(prev) = self.last_cc[slot] {
                let expected = (prev + 1) & 0x0F;
                if cc != expected {
                    return Err(ProtoError::Protocol(format!(
                        "continuity error on pid {pid:#x}: got {cc}, expected {expected}"
                    )));
                }
            }
            self.last_cc[slot] = Some(cc);
        }
        let mut off = 4;
        if afc & 0x02 != 0 {
            let af_len = pkt[4] as usize;
            off += 1 + af_len;
            if off > TS_PACKET {
                return Err(ProtoError::Malformed("adaptation field overflow".to_string()));
            }
        }
        if afc & 0x01 == 0 {
            return Ok(()); // no payload
        }
        let payload = &pkt[off..];
        match pid {
            PID_PAT | PID_PMT => {
                if !pusi {
                    return Ok(());
                }
                let pointer = *payload.first().ok_or(ProtoError::Truncated)? as usize;
                let section = payload.get(1 + pointer..).ok_or_else(|| {
                    ProtoError::Malformed("PSI pointer_field overruns packet".to_string())
                })?;
                validate_psi(section)?;
                if pid == PID_PAT {
                    self.pat_seen = true;
                } else {
                    self.pmt_seen = true;
                }
            }
            PID_VIDEO | PID_AUDIO => {
                let es = if pid == PID_VIDEO { 0 } else { 1 };
                if pusi {
                    // Flush the previous PES on this PID.
                    self.close_pes(es)?;
                    self.open_at[es] = Some(self.arenas[es].len());
                    self.arenas[es].extend_from_slice(payload);
                } else if self.open_at[es].is_some() {
                    self.arenas[es].extend_from_slice(payload);
                } else {
                    return Err(ProtoError::Protocol(format!(
                        "continuation on pid {pid:#x} with no PES start"
                    )));
                }
            }
            other => {
                return Err(ProtoError::Protocol(format!("unexpected pid {other:#x}")));
            }
        }
        Ok(())
    }

    /// Parses the PES accumulating on elementary stream `es` (if any) into a
    /// unit; its payload stays where it was assembled.
    fn close_pes(&mut self, es: usize) -> Result<(), ProtoError> {
        let Some(start) = self.open_at[es].take() else { return Ok(()) };
        let buf = &self.arenas[es][start..];
        if buf.len() < 14 {
            return Err(ProtoError::Truncated);
        }
        if buf[0] != 0 || buf[1] != 0 || buf[2] != 1 {
            return Err(ProtoError::Malformed("bad PES start code".to_string()));
        }
        let flags = buf[7];
        if flags & 0x80 == 0 {
            return Err(ProtoError::Protocol("PES without PTS".to_string()));
        }
        let header_len = buf[8] as usize;
        let pts = (((buf[9] >> 1) as u64 & 0x07) << 30)
            | ((buf[10] as u64) << 22)
            | (((buf[11] >> 1) as u64) << 15)
            | ((buf[12] as u64) << 7)
            | ((buf[13] >> 1) as u64);
        let pts_ms = (pts / 90) as u32;
        let data_start = 9 + header_len;
        if buf.len() < data_start {
            return Err(ProtoError::Truncated);
        }
        self.units.push(UnitMeta {
            video: es == 0,
            pts_ms,
            start: start + data_start,
            end: self.arenas[es].len(),
        });
        Ok(())
    }

    /// Flushes any in-progress PES packets and checks that the stream
    /// carried PAT and PMT. Call once, after the last [`TsDemuxer::push`].
    pub fn finish(&mut self) -> Result<(), ProtoError> {
        // Fixed flush order (video, then audio) — combined with the stable
        // PTS sort below this is deterministic, unlike iterating a map.
        self.close_pes(0)?;
        self.close_pes(1)?;
        if !self.pat_seen || !self.pmt_seen {
            return Err(ProtoError::Protocol("segment missing PAT/PMT".to_string()));
        }
        // PES flushes can reorder across PIDs; restore PTS order.
        self.units.sort_by_key(|u| u.pts_ms);
        Ok(())
    }

    /// Borrowed access units in PTS order. Valid after
    /// [`TsDemuxer::finish`], until the next `push`/`reset`.
    pub fn units(&self) -> impl Iterator<Item = TsUnitRef<'_>> {
        self.units.iter().map(|m| TsUnitRef {
            video: m.video,
            pts_ms: m.pts_ms,
            data: &self.arenas[if m.video { 0 } else { 1 }][m.start..m.end],
        })
    }
}

/// Demultiplexes a TS segment back into owned access units.
pub fn demux_segment(bytes: &[u8]) -> Result<Vec<TsUnit>, ProtoError> {
    let mut d = TsDemuxer::new();
    d.push(bytes)?;
    d.finish()?;
    Ok(d.units().map(|u| u.to_unit()).collect())
}

fn validate_psi(section: &[u8]) -> Result<(), ProtoError> {
    if section.len() < 4 {
        return Err(ProtoError::Truncated);
    }
    let len = (((section[1] & 0x0F) as usize) << 8) | section[2] as usize;
    let total = 3 + len;
    if section.len() < total {
        return Err(ProtoError::Truncated);
    }
    let body = &section[..total - 4];
    let crc = u32::from_be_bytes(section[total - 4..total].try_into().expect("4"));
    if crc32_mpeg2(body) != crc {
        return Err(ProtoError::Malformed("PSI CRC mismatch".to_string()));
    }
    Ok(())
}

/// Extracts the decoded video frame payloads of a segment, in PTS order.
pub fn segment_video_frames(bytes: &[u8]) -> Result<Vec<FramePayload>, ProtoError> {
    let mut d = TsDemuxer::new();
    d.push(bytes)?;
    d.finish()?;
    d.units()
        .filter_map(|u| if u.video { Some(FramePayload::decode(u.data)) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::FrameKind;

    fn video_unit(pts_ms: u32, size: usize) -> TsUnit {
        let frame = FramePayload {
            kind: FrameKind::P,
            qp: 30,
            width: 320,
            height: 568,
            pts_ms,
            ntp_s: None,
            size,
        };
        TsUnit::Video { pts_ms, data: frame.encode() }
    }

    fn audio_unit(pts_ms: u32, size: usize) -> TsUnit {
        TsUnit::Audio { pts_ms, data: vec![0xAA; size] }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32/MPEG-2 of "123456789" is 0x0376E6E7.
        assert_eq!(crc32_mpeg2(b"123456789"), 0x0376_E6E7);
    }

    #[test]
    fn segment_is_packet_aligned() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 500)]);
        assert_eq!(seg.len() % TS_PACKET, 0);
        assert!(seg.len() >= 3 * TS_PACKET); // PAT + PMT + >=1 data packet
        for pkt in seg.chunks(TS_PACKET) {
            assert_eq!(pkt[0], SYNC);
        }
    }

    #[test]
    fn roundtrip_single_video_unit() {
        let mut mux = TsMuxer::new();
        let unit = video_unit(1234, 700);
        let seg = mux.mux_segment(std::slice::from_ref(&unit));
        let units = demux_segment(&seg).unwrap();
        assert_eq!(units, vec![unit]);
    }

    #[test]
    fn roundtrip_mixed_units() {
        let mut mux = TsMuxer::new();
        let units = vec![
            video_unit(0, 2000),
            audio_unit(10, 93),
            video_unit(33, 600),
            audio_unit(33, 95),
            video_unit(66, 450),
        ];
        let seg = mux.mux_segment(&units);
        let got = demux_segment(&seg).unwrap();
        assert_eq!(got, units);
    }

    #[test]
    fn large_frame_spans_many_packets() {
        let mut mux = TsMuxer::new();
        let unit = video_unit(0, 20_000);
        let seg = mux.mux_segment(std::slice::from_ref(&unit));
        assert!(seg.len() / TS_PACKET > 100);
        let got = demux_segment(&seg).unwrap();
        assert_eq!(got.len(), 1);
        match &got[0] {
            TsUnit::Video { data, .. } => assert_eq!(data.len(), 20_000),
            _ => panic!("expected video"),
        }
    }

    #[test]
    fn continuity_preserved_across_segments() {
        // One muxer producing consecutive segments keeps counters rolling;
        // each segment is independently demuxable because counters only
        // need to be *consecutive*, and the demuxer checks per-PID deltas
        // within the segment.
        let mut mux = TsMuxer::new();
        let s1 = mux.mux_segment(&[video_unit(0, 400)]);
        let s2 = mux.mux_segment(&[video_unit(33, 400)]);
        demux_segment(&s1).unwrap();
        demux_segment(&s2).unwrap();
    }

    #[test]
    fn corrupted_sync_detected() {
        let mut mux = TsMuxer::new();
        let mut seg = mux.mux_segment(&[video_unit(0, 400)]);
        seg[TS_PACKET] = 0x48;
        assert!(demux_segment(&seg).is_err());
    }

    #[test]
    fn corrupted_crc_detected() {
        let mut mux = TsMuxer::new();
        let mut seg = mux.mux_segment(&[video_unit(0, 400)]);
        // PAT is the first packet; its section sits at the packet tail after
        // adaptation-field stuffing. Flip its last byte (part of the CRC).
        seg[TS_PACKET - 1] ^= 0xFF;
        assert!(demux_segment(&seg).is_err());
    }

    #[test]
    fn truncated_segment_detected() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 400)]);
        assert!(demux_segment(&seg[..seg.len() - 1]).is_err());
    }

    #[test]
    fn pts_survives_90khz_conversion() {
        let mut mux = TsMuxer::new();
        for pts in [0u32, 33, 1000, 3_600_000] {
            let seg = mux.mux_segment(&[video_unit(pts, 200)]);
            let units = demux_segment(&seg).unwrap();
            assert_eq!(units[0].pts_ms(), pts);
        }
    }

    #[test]
    fn segment_video_frames_extraction() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 300), audio_unit(5, 90), video_unit(33, 310)]);
        let frames = segment_video_frames(&seg).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].pts_ms, 0);
        assert_eq!(frames[1].pts_ms, 33);
        assert_eq!(frames[1].size, 310);
    }

    #[test]
    fn mux_into_matches_mux_segment() {
        let units = vec![video_unit(0, 777), audio_unit(3, 64), video_unit(33, 900)];
        let mut a = TsMuxer::new();
        let mut b = TsMuxer::new();
        let seg_a = a.mux_segment(&units);
        let mut seg_b = Vec::new();
        b.mux_into(units.iter().map(TsUnit::as_ref), &mut seg_b);
        assert_eq!(seg_a, seg_b);
    }

    #[test]
    fn demuxer_reuse_across_segments() {
        let mut mux = TsMuxer::new();
        let mut d = TsDemuxer::new();
        for i in 0..3u32 {
            let units = vec![video_unit(i * 33, 500), audio_unit(i * 33 + 1, 80)];
            let seg = mux.mux_segment(&units);
            d.reset();
            d.push(&seg).unwrap();
            d.finish().unwrap();
            let got: Vec<TsUnit> = d.units().map(|u| u.to_unit()).collect();
            assert_eq!(got, units);
        }
    }
}
