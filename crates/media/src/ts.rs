//! MPEG-TS (ISO/IEC 13818-1) mux and demux.
//!
//! §2 of the paper: after isolating an HLS HTTP response, the body "contains
//! an MPEG-TS file ready to be played". HLS segments here are genuine
//! transport streams: 188-byte packets, PAT/PMT with MPEG-2 CRC32, PES
//! packets with 33-bit 90 kHz PTS, continuity counters, and adaptation-field
//! stuffing. The demuxer validates all of it — it is the parser the capture
//! analysis runs, standing in for the paper's wireshark + libav toolchain.

use crate::bitstream::FramePayload;
use pscp_proto::ProtoError;

/// Transport packet size.
pub const TS_PACKET: usize = 188;
/// Sync byte.
pub const SYNC: u8 = 0x47;
/// PID of the Program Association Table.
pub const PID_PAT: u16 = 0x0000;
/// PID we allocate for the Program Map Table.
pub const PID_PMT: u16 = 0x1000;
/// PID of the video elementary stream.
pub const PID_VIDEO: u16 = 0x0100;
/// PID of the audio elementary stream.
pub const PID_AUDIO: u16 = 0x0101;
/// PES stream id for video.
const STREAM_ID_VIDEO: u8 = 0xE0;
/// PES stream id for audio.
const STREAM_ID_AUDIO: u8 = 0xC0;

/// MPEG-2 CRC32 (as used in PSI tables): polynomial 0x04C11DB7, init all
/// ones, no reflection, no final xor.
pub fn crc32_mpeg2(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= (byte as u32) << 24;
        for _ in 0..8 {
            crc = if crc & 0x8000_0000 != 0 { (crc << 1) ^ 0x04C1_1DB7 } else { crc << 1 };
        }
    }
    crc
}

/// One elementary-stream access unit recovered from (or destined for) a
/// transport stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TsUnit {
    /// A video access unit with PTS (ms domain of the encoder).
    Video {
        /// PTS in milliseconds.
        pts_ms: u32,
        /// Coded frame bytes (a [`FramePayload`]).
        data: Vec<u8>,
    },
    /// An audio access unit.
    Audio {
        /// PTS in milliseconds.
        pts_ms: u32,
        /// Opaque coded audio bytes.
        data: Vec<u8>,
    },
}

impl TsUnit {
    /// PTS in ms.
    pub fn pts_ms(&self) -> u32 {
        match self {
            TsUnit::Video { pts_ms, .. } | TsUnit::Audio { pts_ms, .. } => *pts_ms,
        }
    }
}

/// Multiplexes access units into a complete TS segment (PAT, PMT, then one
/// PES packet per unit).
#[derive(Debug)]
pub struct TsMuxer {
    continuity: std::collections::HashMap<u16, u8>,
}

impl Default for TsMuxer {
    fn default() -> Self {
        Self::new()
    }
}

impl TsMuxer {
    /// Creates a muxer with zeroed continuity counters.
    pub fn new() -> Self {
        TsMuxer { continuity: std::collections::HashMap::new() }
    }

    /// Builds a segment containing `units`, prefixed by PAT and PMT.
    pub fn mux_segment(&mut self, units: &[TsUnit]) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_psi(PID_PAT, &pat_section(), &mut out);
        self.write_psi(PID_PMT, &pmt_section(), &mut out);
        for unit in units {
            let (pid, stream_id, pts_ms, data) = match unit {
                TsUnit::Video { pts_ms, data } => (PID_VIDEO, STREAM_ID_VIDEO, *pts_ms, data),
                TsUnit::Audio { pts_ms, data } => (PID_AUDIO, STREAM_ID_AUDIO, *pts_ms, data),
            };
            let pes = pes_packet(stream_id, pts_ms, data);
            self.write_pes(pid, &pes, &mut out);
        }
        out
    }

    fn next_cc(&mut self, pid: u16) -> u8 {
        let cc = self.continuity.entry(pid).or_insert(0);
        let current = *cc;
        *cc = (*cc + 1) & 0x0F;
        current
    }

    /// Writes a PSI section (pointer_field prefix) into TS packets.
    fn write_psi(&mut self, pid: u16, section: &[u8], out: &mut Vec<u8>) {
        let mut payload = vec![0u8]; // pointer_field
        payload.extend_from_slice(section);
        self.write_payload(pid, &payload, true, out);
    }

    fn write_pes(&mut self, pid: u16, pes: &[u8], out: &mut Vec<u8>) {
        self.write_payload(pid, pes, true, out);
    }

    /// Splits `payload` across TS packets on `pid`; `pusi` marks the first.
    fn write_payload(&mut self, pid: u16, payload: &[u8], pusi: bool, out: &mut Vec<u8>) {
        let mut off = 0;
        let mut first = true;
        while off < payload.len() {
            let remaining = payload.len() - off;
            let mut pkt = Vec::with_capacity(TS_PACKET);
            pkt.push(SYNC);
            let pusi_bit = if first && pusi { 0x40 } else { 0x00 };
            pkt.push(pusi_bit | ((pid >> 8) as u8 & 0x1F));
            pkt.push(pid as u8);
            let cc = self.next_cc(pid);
            let body_space = TS_PACKET - 4;
            if remaining >= body_space {
                // Payload only (adaptation_field_control = 01).
                pkt.push(0x10 | cc);
                pkt.extend_from_slice(&payload[off..off + body_space]);
                off += body_space;
            } else {
                // Needs stuffing: adaptation field present (11).
                pkt.push(0x30 | cc);
                let af_len = body_space - remaining - 1; // af length byte itself
                pkt.push(af_len as u8);
                if af_len > 0 {
                    pkt.push(0x00); // flags
                    pkt.extend(std::iter::repeat_n(0xFF, af_len - 1));
                }
                pkt.extend_from_slice(&payload[off..]);
                off = payload.len();
            }
            debug_assert_eq!(pkt.len(), TS_PACKET);
            out.extend_from_slice(&pkt);
            first = false;
        }
    }
}

/// Builds the PAT: one program, PMT at [`PID_PMT`].
fn pat_section() -> Vec<u8> {
    let mut body = Vec::new();
    body.push(0x00); // table_id: PAT
                     // section_syntax_indicator=1, length filled below.
    let mut section = vec![0u8; 0];
    section.extend_from_slice(&[0x00, 0x01]); // transport_stream_id
    section.push(0xC1); // version 0, current_next=1
    section.push(0x00); // section_number
    section.push(0x00); // last_section_number
    section.extend_from_slice(&[0x00, 0x01]); // program_number 1
    section.push(0xE0 | ((PID_PMT >> 8) as u8 & 0x1F));
    section.push(PID_PMT as u8);
    let len = section.len() + 4; // + CRC
    body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
    body.push(len as u8);
    body.extend_from_slice(&section);
    let crc = crc32_mpeg2(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    body
}

/// Builds the PMT: AVC video on [`PID_VIDEO`], AAC audio on [`PID_AUDIO`].
fn pmt_section() -> Vec<u8> {
    let mut body = Vec::new();
    body.push(0x02); // table_id: PMT
    let mut section = Vec::new();
    section.extend_from_slice(&[0x00, 0x01]); // program_number
    section.push(0xC1);
    section.push(0x00);
    section.push(0x00);
    section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F)); // PCR PID = video
    section.push(PID_VIDEO as u8);
    section.extend_from_slice(&[0xF0, 0x00]); // program_info_length 0
                                              // Video: stream_type 0x1B (AVC).
    section.push(0x1B);
    section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F));
    section.push(PID_VIDEO as u8);
    section.extend_from_slice(&[0xF0, 0x00]);
    // Audio: stream_type 0x0F (AAC ADTS).
    section.push(0x0F);
    section.push(0xE0 | ((PID_AUDIO >> 8) as u8 & 0x1F));
    section.push(PID_AUDIO as u8);
    section.extend_from_slice(&[0xF0, 0x00]);
    let len = section.len() + 4;
    body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
    body.push(len as u8);
    body.extend_from_slice(&section);
    let crc = crc32_mpeg2(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    body
}

/// Builds a PES packet with a 5-byte PTS field.
fn pes_packet(stream_id: u8, pts_ms: u32, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 14);
    out.extend_from_slice(&[0x00, 0x00, 0x01, stream_id]);
    let pes_len = 3 + 5 + data.len();
    // Video PES length may be 0 (unbounded) but we always know it here.
    let pes_len_field = if pes_len > u16::MAX as usize { 0 } else { pes_len as u16 };
    out.extend_from_slice(&pes_len_field.to_be_bytes());
    out.push(0x80); // marker bits '10'
    out.push(0x80); // PTS_DTS_flags = '10' (PTS only)
    out.push(5); // PES_header_data_length
                 // PTS: 90 kHz clock, 33 bits, '0010' prefix.
    let pts = (pts_ms as u64) * 90;
    out.push(0b0010_0000 | (((pts >> 30) as u8 & 0x07) << 1) | 1);
    out.push((pts >> 22) as u8);
    out.push((((pts >> 14) as u8) & 0xFE) | 1);
    out.push((pts >> 7) as u8);
    out.push((((pts << 1) as u8) & 0xFE) | 1);
    out.extend_from_slice(data);
    out
}

/// Demultiplexes a TS segment back into access units.
///
/// Validates sync bytes, continuity counters, PSI CRCs and PES headers —
/// corruption anywhere surfaces as an error rather than silently skewed
/// statistics.
pub fn demux_segment(bytes: &[u8]) -> Result<Vec<TsUnit>, ProtoError> {
    if !bytes.len().is_multiple_of(TS_PACKET) {
        return Err(ProtoError::Malformed(format!(
            "segment length {} not a multiple of 188",
            bytes.len()
        )));
    }
    let mut units = Vec::new();
    let mut assembling: std::collections::HashMap<u16, Vec<u8>> = std::collections::HashMap::new();
    let mut last_cc: std::collections::HashMap<u16, u8> = std::collections::HashMap::new();
    let mut pat_seen = false;
    let mut pmt_seen = false;
    for pkt in bytes.chunks(TS_PACKET) {
        if pkt[0] != SYNC {
            return Err(ProtoError::Malformed("lost sync".to_string()));
        }
        let pusi = pkt[1] & 0x40 != 0;
        let pid = (((pkt[1] & 0x1F) as u16) << 8) | pkt[2] as u16;
        let afc = (pkt[3] >> 4) & 0x03;
        let cc = pkt[3] & 0x0F;
        if let Some(&prev) = last_cc.get(&pid) {
            let expected = (prev + 1) & 0x0F;
            if cc != expected {
                return Err(ProtoError::Protocol(format!(
                    "continuity error on pid {pid:#x}: got {cc}, expected {expected}"
                )));
            }
        }
        last_cc.insert(pid, cc);
        let mut off = 4;
        if afc & 0x02 != 0 {
            let af_len = pkt[4] as usize;
            off += 1 + af_len;
            if off > TS_PACKET {
                return Err(ProtoError::Malformed("adaptation field overflow".to_string()));
            }
        }
        if afc & 0x01 == 0 {
            continue; // no payload
        }
        let payload = &pkt[off..];
        match pid {
            PID_PAT | PID_PMT => {
                if !pusi {
                    continue;
                }
                let pointer = *payload.first().ok_or(ProtoError::Truncated)? as usize;
                let section = payload.get(1 + pointer..).ok_or_else(|| {
                    ProtoError::Malformed("PSI pointer_field overruns packet".to_string())
                })?;
                validate_psi(section)?;
                if pid == PID_PAT {
                    pat_seen = true;
                } else {
                    pmt_seen = true;
                }
            }
            PID_VIDEO | PID_AUDIO => {
                if pusi {
                    // Flush the previous PES on this PID.
                    if let Some(buf) = assembling.remove(&pid) {
                        units.push(parse_pes(pid, &buf)?);
                    }
                    assembling.insert(pid, payload.to_vec());
                } else if let Some(buf) = assembling.get_mut(&pid) {
                    buf.extend_from_slice(payload);
                } else {
                    return Err(ProtoError::Protocol(format!(
                        "continuation on pid {pid:#x} with no PES start"
                    )));
                }
            }
            other => {
                return Err(ProtoError::Protocol(format!("unexpected pid {other:#x}")));
            }
        }
    }
    for (pid, buf) in assembling {
        units.push(parse_pes(pid, &buf)?);
    }
    if !pat_seen || !pmt_seen {
        return Err(ProtoError::Protocol("segment missing PAT/PMT".to_string()));
    }
    // PES flushes can reorder across PIDs; restore PTS order.
    units.sort_by_key(|u| u.pts_ms());
    Ok(units)
}

fn validate_psi(section: &[u8]) -> Result<(), ProtoError> {
    if section.len() < 4 {
        return Err(ProtoError::Truncated);
    }
    let len = (((section[1] & 0x0F) as usize) << 8) | section[2] as usize;
    let total = 3 + len;
    if section.len() < total {
        return Err(ProtoError::Truncated);
    }
    let body = &section[..total - 4];
    let crc = u32::from_be_bytes(section[total - 4..total].try_into().expect("4"));
    if crc32_mpeg2(body) != crc {
        return Err(ProtoError::Malformed("PSI CRC mismatch".to_string()));
    }
    Ok(())
}

fn parse_pes(pid: u16, buf: &[u8]) -> Result<TsUnit, ProtoError> {
    if buf.len() < 14 {
        return Err(ProtoError::Truncated);
    }
    if buf[0] != 0 || buf[1] != 0 || buf[2] != 1 {
        return Err(ProtoError::Malformed("bad PES start code".to_string()));
    }
    let flags = buf[7];
    if flags & 0x80 == 0 {
        return Err(ProtoError::Protocol("PES without PTS".to_string()));
    }
    let header_len = buf[8] as usize;
    let pts = (((buf[9] >> 1) as u64 & 0x07) << 30)
        | ((buf[10] as u64) << 22)
        | (((buf[11] >> 1) as u64) << 15)
        | ((buf[12] as u64) << 7)
        | ((buf[13] >> 1) as u64);
    let pts_ms = (pts / 90) as u32;
    let data_start = 9 + header_len;
    if buf.len() < data_start {
        return Err(ProtoError::Truncated);
    }
    let data = buf[data_start..].to_vec();
    Ok(match pid {
        PID_VIDEO => TsUnit::Video { pts_ms, data },
        _ => TsUnit::Audio { pts_ms, data },
    })
}

/// Extracts the decoded video frame payloads of a segment, in PTS order.
pub fn segment_video_frames(bytes: &[u8]) -> Result<Vec<FramePayload>, ProtoError> {
    demux_segment(bytes)?
        .into_iter()
        .filter_map(|u| match u {
            TsUnit::Video { data, .. } => Some(FramePayload::decode(&data)),
            TsUnit::Audio { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::FrameKind;

    fn video_unit(pts_ms: u32, size: usize) -> TsUnit {
        let frame = FramePayload {
            kind: FrameKind::P,
            qp: 30,
            width: 320,
            height: 568,
            pts_ms,
            ntp_s: None,
            size,
        };
        TsUnit::Video { pts_ms, data: frame.encode() }
    }

    fn audio_unit(pts_ms: u32, size: usize) -> TsUnit {
        TsUnit::Audio { pts_ms, data: vec![0xAA; size] }
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32/MPEG-2 of "123456789" is 0x0376E6E7.
        assert_eq!(crc32_mpeg2(b"123456789"), 0x0376_E6E7);
    }

    #[test]
    fn segment_is_packet_aligned() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 500)]);
        assert_eq!(seg.len() % TS_PACKET, 0);
        assert!(seg.len() >= 3 * TS_PACKET); // PAT + PMT + >=1 data packet
        for pkt in seg.chunks(TS_PACKET) {
            assert_eq!(pkt[0], SYNC);
        }
    }

    #[test]
    fn roundtrip_single_video_unit() {
        let mut mux = TsMuxer::new();
        let unit = video_unit(1234, 700);
        let seg = mux.mux_segment(std::slice::from_ref(&unit));
        let units = demux_segment(&seg).unwrap();
        assert_eq!(units, vec![unit]);
    }

    #[test]
    fn roundtrip_mixed_units() {
        let mut mux = TsMuxer::new();
        let units = vec![
            video_unit(0, 2000),
            audio_unit(10, 93),
            video_unit(33, 600),
            audio_unit(33, 95),
            video_unit(66, 450),
        ];
        let seg = mux.mux_segment(&units);
        let got = demux_segment(&seg).unwrap();
        assert_eq!(got, units);
    }

    #[test]
    fn large_frame_spans_many_packets() {
        let mut mux = TsMuxer::new();
        let unit = video_unit(0, 20_000);
        let seg = mux.mux_segment(std::slice::from_ref(&unit));
        assert!(seg.len() / TS_PACKET > 100);
        let got = demux_segment(&seg).unwrap();
        assert_eq!(got.len(), 1);
        match &got[0] {
            TsUnit::Video { data, .. } => assert_eq!(data.len(), 20_000),
            _ => panic!("expected video"),
        }
    }

    #[test]
    fn continuity_preserved_across_segments() {
        // One muxer producing consecutive segments keeps counters rolling;
        // each segment is independently demuxable because counters only
        // need to be *consecutive*, and the demuxer checks per-PID deltas
        // within the segment.
        let mut mux = TsMuxer::new();
        let s1 = mux.mux_segment(&[video_unit(0, 400)]);
        let s2 = mux.mux_segment(&[video_unit(33, 400)]);
        demux_segment(&s1).unwrap();
        demux_segment(&s2).unwrap();
    }

    #[test]
    fn corrupted_sync_detected() {
        let mut mux = TsMuxer::new();
        let mut seg = mux.mux_segment(&[video_unit(0, 400)]);
        seg[TS_PACKET] = 0x48;
        assert!(demux_segment(&seg).is_err());
    }

    #[test]
    fn corrupted_crc_detected() {
        let mut mux = TsMuxer::new();
        let mut seg = mux.mux_segment(&[video_unit(0, 400)]);
        // PAT is the first packet; its section sits at the packet tail after
        // adaptation-field stuffing. Flip its last byte (part of the CRC).
        seg[TS_PACKET - 1] ^= 0xFF;
        assert!(demux_segment(&seg).is_err());
    }

    #[test]
    fn truncated_segment_detected() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 400)]);
        assert!(demux_segment(&seg[..seg.len() - 1]).is_err());
    }

    #[test]
    fn pts_survives_90khz_conversion() {
        let mut mux = TsMuxer::new();
        for pts in [0u32, 33, 1000, 3_600_000] {
            let seg = mux.mux_segment(&[video_unit(pts, 200)]);
            let units = demux_segment(&seg).unwrap();
            assert_eq!(units[0].pts_ms(), pts);
        }
    }

    #[test]
    fn segment_video_frames_extraction() {
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&[video_unit(0, 300), audio_unit(5, 90), video_unit(33, 310)]);
        let frames = segment_video_frames(&seg).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].pts_ms, 0);
        assert_eq!(frames[1].pts_ms, 33);
        assert_eq!(frames[1].size, 310);
    }
}
