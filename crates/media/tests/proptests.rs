//! Property-based tests of the media pipeline: container round-trips over
//! arbitrary access units and player-facing invariants of the encoder.
//! Ported from proptest to the in-tree `pscp-check` harness.

use pscp_check::{check, ensure_eq, Gen};
use pscp_media::bitstream::{FrameKind, FramePayload};
use pscp_media::flv::VideoTag;
use pscp_media::ts::{demux_segment, TsMuxer, TsUnit};

fn arb_kind(g: &mut Gen) -> FrameKind {
    [FrameKind::I, FrameKind::P, FrameKind::B][g.choice(3)]
}

fn arb_frame(g: &mut Gen) -> FramePayload {
    let kind = arb_kind(g);
    let qp = g.u8(0..=51);
    let pts_ms = g.u32(0..3_600_000);
    let ntp_s = g.option(|g| g.f64(0.0..1e6));
    let extra = g.usize(0..5000);
    let min = if ntp_s.is_some() {
        pscp_media::bitstream::HEADER_LEN_NTP
    } else {
        pscp_media::bitstream::HEADER_LEN
    };
    FramePayload { kind, qp, width: 320, height: 568, pts_ms, ntp_s, size: min + extra }
}

#[test]
fn bitstream_roundtrip() {
    check("bitstream_roundtrip", arb_frame, |f| {
        let enc = f.encode();
        ensure_eq!(enc.len(), f.size);
        let dec = FramePayload::decode(&enc).map_err(|e| format!("decode: {e:?}"))?;
        ensure_eq!(&dec, f);
        Ok(())
    });
}

#[test]
fn bitstream_decoder_never_panics() {
    check(
        "bitstream_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..256),
        |bytes| {
            let _ = FramePayload::decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn flv_tag_roundtrip() {
    check("flv_tag_roundtrip", arb_frame, |f| {
        let tag = VideoTag::for_frame(f.clone());
        let dec = VideoTag::decode(&tag.encode()).map_err(|e| format!("decode: {e:?}"))?;
        ensure_eq!(dec, tag);
        Ok(())
    });
}

#[test]
fn ts_roundtrip_arbitrary_units() {
    check(
        "ts_roundtrip_arbitrary_units",
        |g: &mut Gen| (g.vec(1..30, |g| g.usize(20..4000)), g.usize(1..5)),
        |(sizes, audio_every)| {
            // Build units with increasing PTS: video frames with periodic audio.
            let mut units = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                let pts = i as u32 * 33;
                let f = FramePayload {
                    kind: if i == 0 { FrameKind::I } else { FrameKind::P },
                    qp: 30,
                    width: 320,
                    height: 568,
                    pts_ms: pts,
                    ntp_s: None,
                    size: s.max(pscp_media::bitstream::HEADER_LEN),
                };
                units.push(TsUnit::Video { pts_ms: pts, data: f.encode() });
                if i % audio_every == 0 {
                    units.push(TsUnit::Audio { pts_ms: pts + 1, data: vec![0xAA; 40 + s % 100] });
                }
            }
            let mut mux = TsMuxer::new();
            let seg = mux.mux_segment(&units);
            ensure_eq!(seg.len() % 188, 0);
            let got = demux_segment(&seg).map_err(|e| format!("demux: {e:?}"))?;
            ensure_eq!(got, units);
            Ok(())
        },
    );
}

/// Demuxing a corrupted-but-valid-sized segment must error or parse, never
/// panic. Shared by the sweep and the committed regression case.
fn ts_demux_corruption_prop(flips: &[(usize, u8)]) -> Result<(), String> {
    let mut mux = TsMuxer::new();
    let f = FramePayload {
        kind: FrameKind::I,
        qp: 30,
        width: 320,
        height: 568,
        pts_ms: 0,
        ntp_s: None,
        size: 900,
    };
    let mut seg = mux.mux_segment(&[TsUnit::Video { pts_ms: 0, data: f.encode() }]);
    for (i, b) in flips {
        if *i < seg.len() {
            seg[*i] ^= b;
        }
    }
    let _ = demux_segment(&seg);
    Ok(())
}

#[test]
fn ts_demux_never_panics_on_corruption() {
    check(
        "ts_demux_never_panics_on_corruption",
        |g: &mut Gen| g.vec(1..8, |g| (g.usize(0..2000), g.u8(..))),
        |flips| ts_demux_corruption_prop(flips),
    );
}

// Shrunk counterexample from the proptest era (`.proptest-regressions`):
// a single-bit-pattern flip inside the adaptation field.
#[test]
fn ts_demux_corruption_regression_flip_4_128() {
    ts_demux_corruption_prop(&[(4, 128)]).unwrap();
}

mod player_props {
    use pscp_check::{check, ensure, ensure_eq, Gen};
    use pscp_client::player::{run_playback, MediaArrival, PlayerConfig};
    use pscp_simnet::{SimDuration, SimTime};

    #[test]
    fn playback_invariants() {
        check(
            "playback_invariants",
            |g: &mut Gen| {
                (
                    g.vec(1..60, |g| (g.f64(0.0..120.0), g.f64(0.0..120.0))),
                    g.f64(0.5..8.0),
                    g.f64(0.2..4.0),
                )
            },
            |(raw, initial, resume)| {
                // Arrivals: sort by time, make media monotone by running max.
                let mut arrivals: Vec<MediaArrival> = Vec::new();
                let mut sorted = raw.clone();
                sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let mut media = 0.0f64;
                for (at, m) in sorted {
                    media = media.max(m);
                    arrivals.push(MediaArrival {
                        at: SimTime::from_micros((at * 1e6) as u64),
                        media_end_s: media,
                        capture_wall_s: Some(media),
                    });
                }
                let session = SimDuration::from_secs(60);
                let cfg = PlayerConfig { initial_buffer_s: *initial, resume_buffer_s: *resume };
                let log = run_playback(SimTime::ZERO, session, cfg, &arrivals);
                // Invariants: accounting can never exceed the session.
                ensure!(log.played_s >= -1e-9, "negative play time");
                ensure!(log.played_s <= 60.0 + 1e-6, "played={}", log.played_s);
                let total = log.played_s + log.total_stall_s();
                ensure!(total <= 60.0 + 1e-6, "played+stall={total}");
                let ratio = log.stall_ratio();
                ensure!((0.0..=1.0).contains(&ratio), "ratio={ratio}");
                if let Some(j) = log.join_time {
                    ensure!(j.as_secs_f64() <= 60.0 + 1e-9, "join after session end");
                    // After joining, play + stall + join covers at most session.
                    ensure!(j.as_secs_f64() + total <= 60.0 + 1e-6, "join+play+stall overflow");
                } else {
                    ensure_eq!(log.played_s, 0.0);
                }
                // Stalls are disjoint and within the session.
                for w in log.stalls.windows(2) {
                    ensure!(w[0].start + w[0].duration <= w[1].start, "overlapping stalls");
                }
                Ok(())
            },
        );
    }
}

// -------------------------------------------- TS zero-copy ≡ reference
//
// The shipping muxer writes 188-byte packets straight into the output
// buffer and the demuxer reassembles PES payloads into per-pid arenas
// (ts.rs). These tests pin both to a retained copy of the original
// implementation — per-packet Vecs, HashMap continuity counters, owned
// reassembly buffers — across arbitrary unit mixes, segment sequences and
// push split points.

mod ts_reference {
    use pscp_media::ts::{
        crc32_mpeg2, TsUnit, PID_AUDIO, PID_PAT, PID_PMT, PID_VIDEO, SYNC, TS_PACKET,
    };
    use pscp_proto::ProtoError;
    use std::collections::HashMap;

    const STREAM_ID_VIDEO: u8 = 0xE0;
    const STREAM_ID_AUDIO: u8 = 0xC0;

    /// The pre-zero-copy muxer: HashMap continuity counters, one Vec per
    /// packet, one Vec per PES.
    pub struct RefMuxer {
        continuity: HashMap<u16, u8>,
    }

    impl RefMuxer {
        pub fn new() -> Self {
            RefMuxer { continuity: HashMap::new() }
        }

        pub fn mux_segment(&mut self, units: &[TsUnit]) -> Vec<u8> {
            let mut out = Vec::new();
            self.write_psi(PID_PAT, &pat_section(), &mut out);
            self.write_psi(PID_PMT, &pmt_section(), &mut out);
            for unit in units {
                let (pid, stream_id, pts_ms, data) = match unit {
                    TsUnit::Video { pts_ms, data } => (PID_VIDEO, STREAM_ID_VIDEO, *pts_ms, data),
                    TsUnit::Audio { pts_ms, data } => (PID_AUDIO, STREAM_ID_AUDIO, *pts_ms, data),
                };
                let pes = pes_packet(stream_id, pts_ms, data);
                self.write_payload(pid, &pes, true, &mut out);
            }
            out
        }

        fn next_cc(&mut self, pid: u16) -> u8 {
            let cc = self.continuity.entry(pid).or_insert(0);
            let current = *cc;
            *cc = (*cc + 1) & 0x0F;
            current
        }

        fn write_psi(&mut self, pid: u16, section: &[u8], out: &mut Vec<u8>) {
            let mut payload = vec![0u8]; // pointer_field
            payload.extend_from_slice(section);
            self.write_payload(pid, &payload, true, out);
        }

        fn write_payload(&mut self, pid: u16, payload: &[u8], pusi: bool, out: &mut Vec<u8>) {
            let mut off = 0;
            let mut first = true;
            while off < payload.len() {
                let remaining = payload.len() - off;
                let mut pkt = Vec::with_capacity(TS_PACKET);
                pkt.push(SYNC);
                let pusi_bit = if first && pusi { 0x40 } else { 0x00 };
                pkt.push(pusi_bit | ((pid >> 8) as u8 & 0x1F));
                pkt.push(pid as u8);
                let cc = self.next_cc(pid);
                let body_space = TS_PACKET - 4;
                if remaining >= body_space {
                    pkt.push(0x10 | cc);
                    pkt.extend_from_slice(&payload[off..off + body_space]);
                    off += body_space;
                } else {
                    pkt.push(0x30 | cc);
                    let af_len = body_space - remaining - 1;
                    pkt.push(af_len as u8);
                    if af_len > 0 {
                        pkt.push(0x00);
                        pkt.extend(std::iter::repeat_n(0xFF, af_len - 1));
                    }
                    pkt.extend_from_slice(&payload[off..]);
                    off = payload.len();
                }
                assert_eq!(pkt.len(), TS_PACKET);
                out.extend_from_slice(&pkt);
                first = false;
            }
        }
    }

    fn pat_section() -> Vec<u8> {
        let mut body = Vec::new();
        body.push(0x00);
        let mut section = vec![0u8; 0];
        section.extend_from_slice(&[0x00, 0x01]);
        section.push(0xC1);
        section.push(0x00);
        section.push(0x00);
        section.extend_from_slice(&[0x00, 0x01]);
        section.push(0xE0 | ((PID_PMT >> 8) as u8 & 0x1F));
        section.push(PID_PMT as u8);
        let len = section.len() + 4;
        body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
        body.push(len as u8);
        body.extend_from_slice(&section);
        let crc = crc32_mpeg2(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        body
    }

    fn pmt_section() -> Vec<u8> {
        let mut body = Vec::new();
        body.push(0x02);
        let mut section = Vec::new();
        section.extend_from_slice(&[0x00, 0x01]);
        section.push(0xC1);
        section.push(0x00);
        section.push(0x00);
        section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F));
        section.push(PID_VIDEO as u8);
        section.extend_from_slice(&[0xF0, 0x00]);
        section.push(0x1B);
        section.push(0xE0 | ((PID_VIDEO >> 8) as u8 & 0x1F));
        section.push(PID_VIDEO as u8);
        section.extend_from_slice(&[0xF0, 0x00]);
        section.push(0x0F);
        section.push(0xE0 | ((PID_AUDIO >> 8) as u8 & 0x1F));
        section.push(PID_AUDIO as u8);
        section.extend_from_slice(&[0xF0, 0x00]);
        let len = section.len() + 4;
        body.push(0xB0 | ((len >> 8) as u8 & 0x0F));
        body.push(len as u8);
        body.extend_from_slice(&section);
        let crc = crc32_mpeg2(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        body
    }

    fn pes_packet(stream_id: u8, pts_ms: u32, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() + 14);
        out.extend_from_slice(&[0x00, 0x00, 0x01, stream_id]);
        let pes_len = 3 + 5 + data.len();
        let pes_len_field = if pes_len > u16::MAX as usize { 0 } else { pes_len as u16 };
        out.extend_from_slice(&pes_len_field.to_be_bytes());
        out.push(0x80);
        out.push(0x80);
        out.push(5);
        let pts = (pts_ms as u64) * 90;
        out.push(0b0010_0000 | (((pts >> 30) as u8 & 0x07) << 1) | 1);
        out.push((pts >> 22) as u8);
        out.push((((pts >> 14) as u8) & 0xFE) | 1);
        out.push((pts >> 7) as u8);
        out.push((((pts << 1) as u8) & 0xFE) | 1);
        out.extend_from_slice(data);
        out
    }

    /// The pre-zero-copy demuxer: whole-segment, owned reassembly Vecs.
    pub fn ref_demux_segment(bytes: &[u8]) -> Result<Vec<TsUnit>, ProtoError> {
        if !bytes.len().is_multiple_of(TS_PACKET) {
            return Err(ProtoError::Malformed("bad length".to_string()));
        }
        let mut units = Vec::new();
        let mut assembling: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut last_cc: HashMap<u16, u8> = HashMap::new();
        let mut pat_seen = false;
        let mut pmt_seen = false;
        for pkt in bytes.chunks(TS_PACKET) {
            if pkt[0] != SYNC {
                return Err(ProtoError::Malformed("lost sync".to_string()));
            }
            let pusi = pkt[1] & 0x40 != 0;
            let pid = (((pkt[1] & 0x1F) as u16) << 8) | pkt[2] as u16;
            let afc = (pkt[3] >> 4) & 0x03;
            let cc = pkt[3] & 0x0F;
            if let Some(&prev) = last_cc.get(&pid) {
                let expected = (prev + 1) & 0x0F;
                if cc != expected {
                    return Err(ProtoError::Protocol("continuity error".to_string()));
                }
            }
            last_cc.insert(pid, cc);
            let mut off = 4;
            if afc & 0x02 != 0 {
                let af_len = pkt[4] as usize;
                off += 1 + af_len;
                if off > TS_PACKET {
                    return Err(ProtoError::Malformed("af overflow".to_string()));
                }
            }
            if afc & 0x01 == 0 {
                continue;
            }
            let payload = &pkt[off..];
            match pid {
                PID_PAT | PID_PMT => {
                    if pusi {
                        if pid == PID_PAT {
                            pat_seen = true;
                        } else {
                            pmt_seen = true;
                        }
                    }
                }
                PID_VIDEO | PID_AUDIO => {
                    if pusi {
                        if let Some(buf) = assembling.remove(&pid) {
                            units.push(parse_pes(pid, &buf)?);
                        }
                        assembling.insert(pid, payload.to_vec());
                    } else if let Some(buf) = assembling.get_mut(&pid) {
                        buf.extend_from_slice(payload);
                    } else {
                        return Err(ProtoError::Protocol("continuation w/o start".to_string()));
                    }
                }
                other => {
                    return Err(ProtoError::Protocol(format!("unexpected pid {other:#x}")));
                }
            }
        }
        for (pid, buf) in assembling {
            units.push(parse_pes(pid, &buf)?);
        }
        if !pat_seen || !pmt_seen {
            return Err(ProtoError::Protocol("missing PAT/PMT".to_string()));
        }
        units.sort_by_key(|u| u.pts_ms());
        Ok(units)
    }

    fn parse_pes(pid: u16, buf: &[u8]) -> Result<TsUnit, ProtoError> {
        if buf.len() < 14 {
            return Err(ProtoError::Truncated);
        }
        if buf[0] != 0 || buf[1] != 0 || buf[2] != 1 {
            return Err(ProtoError::Malformed("bad PES start code".to_string()));
        }
        if buf[7] & 0x80 == 0 {
            return Err(ProtoError::Protocol("PES without PTS".to_string()));
        }
        let header_len = buf[8] as usize;
        let pts = (((buf[9] >> 1) as u64 & 0x07) << 30)
            | ((buf[10] as u64) << 22)
            | (((buf[11] >> 1) as u64) << 15)
            | ((buf[12] as u64) << 7)
            | ((buf[13] >> 1) as u64);
        let pts_ms = (pts / 90) as u32;
        let data_start = 9 + header_len;
        if buf.len() < data_start {
            return Err(ProtoError::Truncated);
        }
        let data = buf[data_start..].to_vec();
        Ok(match pid {
            PID_VIDEO => TsUnit::Video { pts_ms, data },
            _ => TsUnit::Audio { pts_ms, data },
        })
    }
}

/// Unit lists with strictly distinct PTS values (video at even offsets,
/// audio at odd), so the PTS sort fully determines order and equivalence
/// is exact.
fn arb_unit_list(g: &mut Gen) -> Vec<TsUnit> {
    let n = g.usize(1..20);
    let mut units = Vec::new();
    for i in 0..n {
        let pts = i as u32 * 40;
        if g.bool() {
            let f = FramePayload {
                kind: if i == 0 { FrameKind::I } else { arb_kind(g) },
                qp: 30,
                width: 320,
                height: 568,
                pts_ms: pts,
                ntp_s: None,
                size: g.usize(pscp_media::bitstream::HEADER_LEN..2500),
            };
            units.push(TsUnit::Video { pts_ms: pts, data: f.encode() });
        } else {
            units.push(TsUnit::Audio { pts_ms: pts + 1, data: g.bytes(1..400) });
        }
    }
    units
}

#[test]
fn ts_muxer_matches_reference_bytes() {
    check(
        "ts_muxer_matches_reference_bytes",
        |g: &mut Gen| (arb_unit_list(g), arb_unit_list(g)),
        |(first, second)| {
            // Two segments from the same muxer: continuity counters carry
            // across segments in both implementations.
            let mut mux = TsMuxer::new();
            let mut reference = ts_reference::RefMuxer::new();
            ensure_eq!(mux.mux_segment(first), reference.mux_segment(first));
            ensure_eq!(mux.mux_segment(second), reference.mux_segment(second));
            Ok(())
        },
    );
}

#[test]
fn ts_demuxer_matches_reference_units() {
    check(
        "ts_demuxer_matches_reference_units",
        |g: &mut Gen| {
            let units = arb_unit_list(g);
            // Push granularity in whole packets: 1..=5 per push.
            let pkts_per_push = g.usize(1..=5);
            (units, pkts_per_push)
        },
        |(units, pkts_per_push)| {
            use pscp_media::ts::{TsDemuxer, TS_PACKET};
            let seg = TsMuxer::new().mux_segment(units);
            let expected =
                ts_reference::ref_demux_segment(&seg).map_err(|e| format!("ref: {e:?}"))?;
            // Incremental push through the streaming demuxer.
            let mut demux = TsDemuxer::new();
            for piece in seg.chunks(pkts_per_push * TS_PACKET) {
                demux.push(piece).map_err(|e| format!("push: {e:?}"))?;
            }
            demux.finish().map_err(|e| format!("finish: {e:?}"))?;
            let got: Vec<TsUnit> = demux.units().map(|u| u.to_unit()).collect();
            ensure_eq!(got, expected);
            // And the one-shot wrapper agrees.
            let oneshot = demux_segment(&seg).map_err(|e| format!("demux: {e:?}"))?;
            ensure_eq!(oneshot, expected);
            Ok(())
        },
    );
}
