//! Property-based tests of the media pipeline: container round-trips over
//! arbitrary access units and player-facing invariants of the encoder.
//! Ported from proptest to the in-tree `pscp-check` harness.

use pscp_check::{check, ensure_eq, Gen};
use pscp_media::bitstream::{FrameKind, FramePayload};
use pscp_media::flv::VideoTag;
use pscp_media::ts::{demux_segment, TsMuxer, TsUnit};

fn arb_kind(g: &mut Gen) -> FrameKind {
    [FrameKind::I, FrameKind::P, FrameKind::B][g.choice(3)]
}

fn arb_frame(g: &mut Gen) -> FramePayload {
    let kind = arb_kind(g);
    let qp = g.u8(0..=51);
    let pts_ms = g.u32(0..3_600_000);
    let ntp_s = g.option(|g| g.f64(0.0..1e6));
    let extra = g.usize(0..5000);
    let min = if ntp_s.is_some() {
        pscp_media::bitstream::HEADER_LEN_NTP
    } else {
        pscp_media::bitstream::HEADER_LEN
    };
    FramePayload { kind, qp, width: 320, height: 568, pts_ms, ntp_s, size: min + extra }
}

#[test]
fn bitstream_roundtrip() {
    check("bitstream_roundtrip", arb_frame, |f| {
        let enc = f.encode();
        ensure_eq!(enc.len(), f.size);
        let dec = FramePayload::decode(&enc).map_err(|e| format!("decode: {e:?}"))?;
        ensure_eq!(&dec, f);
        Ok(())
    });
}

#[test]
fn bitstream_decoder_never_panics() {
    check(
        "bitstream_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..256),
        |bytes| {
            let _ = FramePayload::decode(bytes);
            Ok(())
        },
    );
}

#[test]
fn flv_tag_roundtrip() {
    check("flv_tag_roundtrip", arb_frame, |f| {
        let tag = VideoTag::for_frame(f.clone());
        let dec = VideoTag::decode(&tag.encode()).map_err(|e| format!("decode: {e:?}"))?;
        ensure_eq!(dec, tag);
        Ok(())
    });
}

#[test]
fn ts_roundtrip_arbitrary_units() {
    check(
        "ts_roundtrip_arbitrary_units",
        |g: &mut Gen| (g.vec(1..30, |g| g.usize(20..4000)), g.usize(1..5)),
        |(sizes, audio_every)| {
            // Build units with increasing PTS: video frames with periodic audio.
            let mut units = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                let pts = i as u32 * 33;
                let f = FramePayload {
                    kind: if i == 0 { FrameKind::I } else { FrameKind::P },
                    qp: 30,
                    width: 320,
                    height: 568,
                    pts_ms: pts,
                    ntp_s: None,
                    size: s.max(pscp_media::bitstream::HEADER_LEN),
                };
                units.push(TsUnit::Video { pts_ms: pts, data: f.encode() });
                if i % audio_every == 0 {
                    units.push(TsUnit::Audio { pts_ms: pts + 1, data: vec![0xAA; 40 + s % 100] });
                }
            }
            let mut mux = TsMuxer::new();
            let seg = mux.mux_segment(&units);
            ensure_eq!(seg.len() % 188, 0);
            let got = demux_segment(&seg).map_err(|e| format!("demux: {e:?}"))?;
            ensure_eq!(got, units);
            Ok(())
        },
    );
}

/// Demuxing a corrupted-but-valid-sized segment must error or parse, never
/// panic. Shared by the sweep and the committed regression case.
fn ts_demux_corruption_prop(flips: &[(usize, u8)]) -> Result<(), String> {
    let mut mux = TsMuxer::new();
    let f = FramePayload {
        kind: FrameKind::I,
        qp: 30,
        width: 320,
        height: 568,
        pts_ms: 0,
        ntp_s: None,
        size: 900,
    };
    let mut seg = mux.mux_segment(&[TsUnit::Video { pts_ms: 0, data: f.encode() }]);
    for (i, b) in flips {
        if *i < seg.len() {
            seg[*i] ^= b;
        }
    }
    let _ = demux_segment(&seg);
    Ok(())
}

#[test]
fn ts_demux_never_panics_on_corruption() {
    check(
        "ts_demux_never_panics_on_corruption",
        |g: &mut Gen| g.vec(1..8, |g| (g.usize(0..2000), g.u8(..))),
        |flips| ts_demux_corruption_prop(flips),
    );
}

// Shrunk counterexample from the proptest era (`.proptest-regressions`):
// a single-bit-pattern flip inside the adaptation field.
#[test]
fn ts_demux_corruption_regression_flip_4_128() {
    ts_demux_corruption_prop(&[(4, 128)]).unwrap();
}

mod player_props {
    use pscp_check::{check, ensure, ensure_eq, Gen};
    use pscp_client::player::{run_playback, MediaArrival, PlayerConfig};
    use pscp_simnet::{SimDuration, SimTime};

    #[test]
    fn playback_invariants() {
        check(
            "playback_invariants",
            |g: &mut Gen| {
                (
                    g.vec(1..60, |g| (g.f64(0.0..120.0), g.f64(0.0..120.0))),
                    g.f64(0.5..8.0),
                    g.f64(0.2..4.0),
                )
            },
            |(raw, initial, resume)| {
                // Arrivals: sort by time, make media monotone by running max.
                let mut arrivals: Vec<MediaArrival> = Vec::new();
                let mut sorted = raw.clone();
                sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let mut media = 0.0f64;
                for (at, m) in sorted {
                    media = media.max(m);
                    arrivals.push(MediaArrival {
                        at: SimTime::from_micros((at * 1e6) as u64),
                        media_end_s: media,
                        capture_wall_s: Some(media),
                    });
                }
                let session = SimDuration::from_secs(60);
                let cfg = PlayerConfig { initial_buffer_s: *initial, resume_buffer_s: *resume };
                let log = run_playback(SimTime::ZERO, session, cfg, &arrivals);
                // Invariants: accounting can never exceed the session.
                ensure!(log.played_s >= -1e-9, "negative play time");
                ensure!(log.played_s <= 60.0 + 1e-6, "played={}", log.played_s);
                let total = log.played_s + log.total_stall_s();
                ensure!(total <= 60.0 + 1e-6, "played+stall={total}");
                let ratio = log.stall_ratio();
                ensure!((0.0..=1.0).contains(&ratio), "ratio={ratio}");
                if let Some(j) = log.join_time {
                    ensure!(j.as_secs_f64() <= 60.0 + 1e-9, "join after session end");
                    // After joining, play + stall + join covers at most session.
                    ensure!(j.as_secs_f64() + total <= 60.0 + 1e-6, "join+play+stall overflow");
                } else {
                    ensure_eq!(log.played_s, 0.0);
                }
                // Stalls are disjoint and within the session.
                for w in log.stalls.windows(2) {
                    ensure!(w[0].start + w[0].duration <= w[1].start, "overlapping stalls");
                }
                Ok(())
            },
        );
    }
}
