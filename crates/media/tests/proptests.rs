//! Property-based tests of the media pipeline: container round-trips over
//! arbitrary access units and player-facing invariants of the encoder.

use proptest::prelude::*;
use pscp_media::bitstream::{FrameKind, FramePayload};
use pscp_media::flv::VideoTag;
use pscp_media::ts::{demux_segment, TsMuxer, TsUnit};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![Just(FrameKind::I), Just(FrameKind::P), Just(FrameKind::B)]
}

fn arb_frame() -> impl Strategy<Value = FramePayload> {
    (arb_kind(), 0u8..=51, 0u32..3_600_000, prop::option::of(0.0f64..1e6), 0usize..5000).prop_map(
        |(kind, qp, pts_ms, ntp_s, extra)| {
            let min = if ntp_s.is_some() {
                pscp_media::bitstream::HEADER_LEN_NTP
            } else {
                pscp_media::bitstream::HEADER_LEN
            };
            FramePayload { kind, qp, width: 320, height: 568, pts_ms, ntp_s, size: min + extra }
        },
    )
}

proptest! {
    #[test]
    fn bitstream_roundtrip(f in arb_frame()) {
        let enc = f.encode();
        prop_assert_eq!(enc.len(), f.size);
        let dec = FramePayload::decode(&enc).unwrap();
        prop_assert_eq!(dec, f);
    }

    #[test]
    fn bitstream_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = FramePayload::decode(&bytes);
    }

    #[test]
    fn flv_tag_roundtrip(f in arb_frame()) {
        let tag = VideoTag::for_frame(f);
        let dec = VideoTag::decode(&tag.encode()).unwrap();
        prop_assert_eq!(dec, tag);
    }

    #[test]
    fn ts_roundtrip_arbitrary_units(
        sizes in prop::collection::vec(20usize..4000, 1..30),
        audio_every in 1usize..5,
    ) {
        // Build units with increasing PTS: video frames with periodic audio.
        let mut units = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            let pts = i as u32 * 33;
            let f = FramePayload {
                kind: if i == 0 { FrameKind::I } else { FrameKind::P },
                qp: 30,
                width: 320,
                height: 568,
                pts_ms: pts,
                ntp_s: None,
                size: s.max(pscp_media::bitstream::HEADER_LEN),
            };
            units.push(TsUnit::Video { pts_ms: pts, data: f.encode() });
            if i % audio_every == 0 {
                units.push(TsUnit::Audio { pts_ms: pts + 1, data: vec![0xAA; 40 + s % 100] });
            }
        }
        let mut mux = TsMuxer::new();
        let seg = mux.mux_segment(&units);
        prop_assert_eq!(seg.len() % 188, 0);
        let got = demux_segment(&seg).unwrap();
        prop_assert_eq!(got, units);
    }

    #[test]
    fn ts_demux_never_panics_on_corruption(
        mut flips in prop::collection::vec((0usize..2000, any::<u8>()), 1..8),
    ) {
        // A valid small segment with random byte corruptions must error or
        // parse, never panic.
        let mut mux = TsMuxer::new();
        let f = FramePayload {
            kind: FrameKind::I,
            qp: 30,
            width: 320,
            height: 568,
            pts_ms: 0,
            ntp_s: None,
            size: 900,
        };
        let mut seg = mux.mux_segment(&[TsUnit::Video { pts_ms: 0, data: f.encode() }]);
        flips.retain(|(i, _)| *i < seg.len());
        for (i, b) in flips {
            seg[i] ^= b;
        }
        let _ = demux_segment(&seg);
    }
}

mod player_props {
    use proptest::prelude::*;
    use pscp_client::player::{run_playback, MediaArrival, PlayerConfig};
    use pscp_simnet::{SimDuration, SimTime};

    proptest! {
        #[test]
        fn playback_invariants(
            raw in prop::collection::vec((0.0f64..120.0, 0.0f64..120.0), 1..60),
            initial in 0.5f64..8.0,
            resume in 0.2f64..4.0,
        ) {
            // Arrivals: sort by time, make media monotone by running max.
            let mut arrivals: Vec<MediaArrival> = Vec::new();
            let mut sorted = raw.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut media = 0.0f64;
            for (at, m) in sorted {
                media = media.max(m);
                arrivals.push(MediaArrival {
                    at: SimTime::from_micros((at * 1e6) as u64),
                    media_end_s: media,
                    capture_wall_s: Some(media),
                });
            }
            let session = SimDuration::from_secs(60);
            let cfg = PlayerConfig { initial_buffer_s: initial, resume_buffer_s: resume };
            let log = run_playback(SimTime::ZERO, session, cfg, &arrivals);
            // Invariants: accounting can never exceed the session.
            prop_assert!(log.played_s >= -1e-9);
            prop_assert!(log.played_s <= 60.0 + 1e-6, "played={}", log.played_s);
            let total = log.played_s + log.total_stall_s();
            prop_assert!(total <= 60.0 + 1e-6, "played+stall={total}");
            let ratio = log.stall_ratio();
            prop_assert!((0.0..=1.0).contains(&ratio), "ratio={ratio}");
            if let Some(j) = log.join_time {
                prop_assert!(j.as_secs_f64() <= 60.0 + 1e-9);
                // After joining, play + stall + join covers at most session.
                prop_assert!(j.as_secs_f64() + total <= 60.0 + 1e-6);
            } else {
                prop_assert_eq!(log.played_s, 0.0);
            }
            // Stalls are disjoint and within the session.
            for w in log.stalls.windows(2) {
                prop_assert!(w[0].start + w[0].duration <= w[1].start);
            }
        }
    }
}
