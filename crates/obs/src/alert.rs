//! Burn-rate SLO alerting over windowed sketch rings (DESIGN.md §14).
//!
//! The recording layer (`Trace::ring` → [`crate::MetricsRegistry`]) files
//! every observation into a fixed sim-time window of [`RING_WINDOW_US`]
//! microseconds — one minute, the same grid the fault layer's outage
//! schedules live on. A [`SketchRing`] is just a `BTreeMap` from window
//! index to [`QuantileSketch`], so it inherits the sketch's merge algebra:
//! per-window u64 bucket addition is exactly associative and commutative,
//! and rings merged in plan order are byte-identical at any thread or
//! shard count.
//!
//! The judging layer ([`AlertTimeline::evaluate`]) slides two windows over
//! each ring — a fast window of [`FAST_WINDOWS`] minutes and a slow window
//! of [`SLOW_WINDOWS`] minutes, the multi-window multi-burn-rate recipe
//! from SRE practice — and emits firing/resolved transitions. Burn rate is
//! the windowed bad-observation fraction divided by the rule's error
//! budget; a rule fires only when *both* windows burn past their
//! thresholds (the fast window gives low detection latency, the slow
//! window vetoes blips), and resolves when the fast window cools. Event
//! rules (outage symptoms) fire on any windowed count at all — the fault
//! layer records them only when an injected fault was actually observed,
//! which is what makes the timeline provably empty when faults are off.
//!
//! Everything here is a pure function of (rules, registry, span forest):
//! no wall clock, no randomness, no allocation dependence — evaluating on
//! a merged registry gives one deterministic timeline per scope.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::causal::Span;
use pscp_stats::QuantileSketch;

/// Ring window length: one sim-minute, matching the fault layer's outage
/// slot grid so a windowed symptom always lands in the slot that caused it.
pub const RING_WINDOW_US: u64 = 60_000_000;
/// Fast evaluation window, in ring windows (5 minutes per SRE practice).
pub const FAST_WINDOWS: u64 = 5;
/// Slow evaluation window, in ring windows (1 hour per SRE practice).
pub const SLOW_WINDOWS: u64 = 60;
/// Minimum observations in a window before a burn rule may judge it —
/// mirrors the SLO evaluator's `MIN_QUANTILE_SAMPLES` so a lone tail
/// sample cannot page anyone.
pub const MIN_WINDOW_SAMPLES: u64 = 4;

/// A ring of fixed sim-time windows over a quantile sketch instrument.
///
/// Windows are keyed by `t_us / RING_WINDOW_US`; only touched windows are
/// stored, so memory is proportional to *active* minutes, not the horizon.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchRing {
    windows: BTreeMap<u64, QuantileSketch>,
}

impl SketchRing {
    /// An empty ring.
    pub const fn new() -> SketchRing {
        SketchRing { windows: BTreeMap::new() }
    }

    /// Records one observation at sim-time `t_us`.
    pub fn observe(&mut self, t_us: u64, value: u64) {
        self.windows.entry(t_us / RING_WINDOW_US).or_default().observe(value);
    }

    /// Folds another ring into this one, window by window. Exactly
    /// associative and commutative (pure sketch merges), so plan-order
    /// folds match serial recording bit for bit.
    pub fn merge(&mut self, other: &SketchRing) {
        for (&idx, sketch) in &other.windows {
            self.windows.entry(idx).or_default().merge(sketch);
        }
    }

    /// The sketch of one window, if touched.
    pub fn window(&self, idx: u64) -> Option<&QuantileSketch> {
        self.windows.get(&idx)
    }

    /// Touched windows in index order.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &QuantileSketch)> + '_ {
        self.windows.iter().map(|(&idx, s)| (idx, s))
    }

    /// First and last touched window index, if any.
    pub fn span(&self) -> Option<(u64, u64)> {
        let first = self.windows.keys().next()?;
        let last = self.windows.keys().next_back()?;
        Some((*first, *last))
    }

    /// Total observations across all windows.
    pub fn count(&self) -> u64 {
        self.windows.values().map(QuantileSketch::count).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Touched-window count (the ring's memory driver).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Heap + inline footprint in bytes, a pure function of the observed
    /// (window, value-set) pairs like the sketch's own accounting.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<SketchRing>()
            + self.windows.values().map(|s| 8 + s.memory_bytes()).sum::<usize>()
    }
}

/// How a rule judges its ring.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// SLO burn-rate rule: an observation is *bad* when it exceeds
    /// `bad_above`; the windowed bad fraction divided by `budget` is the
    /// burn rate, judged against both window thresholds.
    Burn {
        /// Threshold above which one observation violates the objective.
        bad_above: u64,
        /// Error budget: the tolerated bad fraction (e.g. 0.10 for p90).
        budget: f64,
        /// Fast-window burn threshold (≥ fires).
        fast_burn: f64,
        /// Slow-window burn threshold (≥ fires).
        slow_burn: f64,
    },
    /// Symptom rule: fires while the fast window holds at least
    /// `min_count` observations. Used for fault-event rings that are only
    /// ever written when an injected fault was observed.
    Event {
        /// Fast-window observation count that constitutes an incident.
        min_count: u64,
    },
}

/// One alerting rule over a `(subsystem, name)` ring.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (lands in artifacts and gauge labels).
    pub name: String,
    /// Ring subsystem key.
    pub subsystem: String,
    /// Ring metric key.
    pub metric: String,
    /// Judgement.
    pub kind: RuleKind,
}

impl AlertRule {
    /// A burn-rate rule with the default window thresholds: the fast
    /// window must burn ≥ 6× budget (≥ 60% bad at a 10% budget) *and* the
    /// slow window must burn ≥ 1× (the budget is actually being spent).
    pub fn burn(name: &str, subsystem: &str, metric: &str, bad_above: u64, budget: f64) -> Self {
        AlertRule {
            name: name.to_string(),
            subsystem: subsystem.to_string(),
            metric: metric.to_string(),
            kind: RuleKind::Burn { bad_above, budget, fast_burn: 6.0, slow_burn: 1.0 },
        }
    }

    /// A symptom rule firing on any `min_count` fast-window observations.
    pub fn event(name: &str, subsystem: &str, metric: &str, min_count: u64) -> Self {
        AlertRule {
            name: name.to_string(),
            subsystem: subsystem.to_string(),
            metric: metric.to_string(),
            kind: RuleKind::Event { min_count },
        }
    }
}

/// One firing or resolved transition on the alert timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule that transitioned.
    pub rule: String,
    /// Sim-time of the evaluation step (a window boundary).
    pub t_us: u64,
    /// `true` = fired, `false` = resolved.
    pub firing: bool,
    /// Fast-window burn rate at the step.
    pub burn_fast: f64,
    /// Slow-window burn rate at the step.
    pub burn_slow: f64,
    /// Dominant join phase among sessions that went bad inside the fast
    /// window ("none" when no join tree overlaps it) — the span forest's
    /// answer to "which path caused this".
    pub attribution: String,
}

/// A deterministic alert timeline: every firing/resolved transition of a
/// rule set over one merged registry, in (time, rule) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertTimeline {
    /// Transitions in ascending (t_us, rule) order.
    pub transitions: Vec<AlertTransition>,
}

/// Per-root join decomposition, pre-indexed for window lookups.
struct JoinTree {
    end_us: u64,
    /// (phase name, duration) of the root's direct children.
    phases: Vec<(&'static str, u64)>,
}

fn index_join_trees(spans: &[(String, Span)]) -> Vec<JoinTree> {
    let mut by_unit: BTreeMap<&str, Vec<&Span>> = BTreeMap::new();
    for (unit, span) in spans {
        by_unit.entry(unit.as_str()).or_default().push(span);
    }
    let mut trees = Vec::new();
    for unit_spans in by_unit.values() {
        for root in unit_spans.iter().filter(|s| s.name == "session.join" && s.is_closed()) {
            let phases = unit_spans
                .iter()
                .filter(|s| s.parent == Some(root.id))
                .map(|s| (s.name, s.duration_us()))
                .collect();
            trees.push(JoinTree { end_us: root.end_us, phases });
        }
    }
    trees.sort_by_key(|t| t.end_us);
    trees
}

/// Dominant join phase (by summed duration, name as tie-break) among join
/// trees ending inside `[from_us, to_us]`.
fn dominant_phase(trees: &[JoinTree], from_us: u64, to_us: u64) -> String {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for tree in trees {
        if tree.end_us < from_us || tree.end_us > to_us {
            continue;
        }
        for &(name, dur) in &tree.phases {
            *totals.entry(name).or_insert(0) += dur;
        }
    }
    totals
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(name, _)| name.to_string())
        .unwrap_or_else(|| "none".to_string())
}

impl AlertTimeline {
    /// Evaluates `rules` over a merged registry's rings, attributing
    /// firings through the span forest. Pure and deterministic: the same
    /// (rules, registry, spans) always yield the same timeline, and a
    /// registry with no ring data yields an empty one.
    pub fn evaluate(
        rules: &[AlertRule],
        metrics: &crate::MetricsRegistry,
        spans: &[(String, Span)],
    ) -> AlertTimeline {
        let trees = index_join_trees(spans);
        let mut transitions: Vec<AlertTransition> = Vec::new();
        for rule in rules {
            let Some(ring) = metrics.ring(&rule.subsystem, &rule.metric) else {
                continue;
            };
            let Some((first, last)) = ring.span() else {
                continue;
            };
            // Per-window (total, bad) extraction, then two sliding sums.
            // Evaluation extends FAST_WINDOWS past the data so every alert
            // resolves once its fast window drains.
            let horizon = last + FAST_WINDOWS;
            let stat = |idx: u64| -> (u64, u64) {
                match ring.window(idx) {
                    Some(s) => {
                        let bad = match rule.kind {
                            RuleKind::Burn { bad_above, .. } => s.count_gt(bad_above),
                            RuleKind::Event { .. } => s.count(),
                        };
                        (s.count(), bad)
                    }
                    None => (0, 0),
                }
            };
            let window_sum = |from: u64, to: u64| -> (u64, u64) {
                let mut total = 0;
                let mut bad = 0;
                for idx in from..=to {
                    let (t, b) = stat(idx);
                    total += t;
                    bad += b;
                }
                (total, bad)
            };
            let mut firing = false;
            for idx in first..=horizon {
                let fast_from = (idx + 1).saturating_sub(FAST_WINDOWS).max(first);
                let slow_from = (idx + 1).saturating_sub(SLOW_WINDOWS).max(first);
                let (fast_total, fast_bad) = window_sum(fast_from, idx);
                let (slow_total, slow_bad) = window_sum(slow_from, idx);
                let (burn_fast, burn_slow, next) = match rule.kind {
                    RuleKind::Burn { budget, fast_burn, slow_burn, .. } => {
                        let frac = |bad: u64, total: u64| {
                            if total == 0 {
                                0.0
                            } else {
                                bad as f64 / total as f64
                            }
                        };
                        let bf = frac(fast_bad, fast_total) / budget;
                        let bs = frac(slow_bad, slow_total) / budget;
                        let hot = fast_total >= MIN_WINDOW_SAMPLES
                            && slow_total >= MIN_WINDOW_SAMPLES
                            && bf >= fast_burn
                            && bs >= slow_burn;
                        // Resolve on the fast window alone: once it cools
                        // below threshold the page clears even though the
                        // slow window still remembers the burn.
                        let next = if firing {
                            fast_total >= MIN_WINDOW_SAMPLES && bf >= fast_burn
                        } else {
                            hot
                        };
                        (bf, bs, next)
                    }
                    RuleKind::Event { min_count } => {
                        let next = fast_bad >= min_count;
                        (
                            fast_bad as f64 / min_count as f64,
                            slow_bad as f64 / min_count as f64,
                            next,
                        )
                    }
                };
                if next != firing {
                    firing = next;
                    let t_us = (idx + 1) * RING_WINDOW_US;
                    let attribution = if firing {
                        dominant_phase(&trees, fast_from * RING_WINDOW_US, t_us)
                    } else {
                        "none".to_string()
                    };
                    transitions.push(AlertTransition {
                        rule: rule.name.clone(),
                        t_us,
                        firing,
                        burn_fast,
                        burn_slow,
                        attribution,
                    });
                }
            }
        }
        transitions.sort_by(|a, b| a.t_us.cmp(&b.t_us).then_with(|| a.rule.cmp(&b.rule)));
        AlertTimeline { transitions }
    }

    /// Whether no rule ever transitioned.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Firing intervals per rule: `(rule, start_us, end_us)` in start
    /// order. An alert still firing at the end of the timeline (none, by
    /// construction — evaluation runs past the data) would close at its
    /// last transition.
    pub fn intervals(&self) -> Vec<(String, u64, u64)> {
        let mut open: BTreeMap<&str, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for tr in &self.transitions {
            if tr.firing {
                open.entry(tr.rule.as_str()).or_insert(tr.t_us);
            } else if let Some(start) = open.remove(tr.rule.as_str()) {
                out.push((tr.rule.clone(), start, tr.t_us));
            }
        }
        for (rule, start) in open {
            out.push((rule.to_string(), start, start));
        }
        out.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Rules firing after the final transition, sorted by name. Empty by
    /// construction for a fully evaluated timeline (evaluation runs
    /// [`FAST_WINDOWS`] past the data so every alert drains); use
    /// [`AlertTimeline::firing_at`] for the state at the data horizon.
    pub fn firing_at_end(&self) -> Vec<String> {
        let mut state: BTreeMap<&str, bool> = BTreeMap::new();
        for tr in &self.transitions {
            state.insert(tr.rule.as_str(), tr.firing);
        }
        state.into_iter().filter(|&(_, on)| on).map(|(r, _)| r.to_string()).collect()
    }

    /// Rules whose latest transition at or before `t_us` is a firing —
    /// the live alert state at instant `t_us`, sorted by name.
    pub fn firing_at(&self, t_us: u64) -> Vec<String> {
        let mut state: BTreeMap<&str, bool> = BTreeMap::new();
        for tr in self.transitions.iter().filter(|tr| tr.t_us <= t_us) {
            state.insert(tr.rule.as_str(), tr.firing);
        }
        state.into_iter().filter(|&(_, on)| on).map(|(r, _)| r.to_string()).collect()
    }

    /// Stable JSON rendering: one object per transition, in timeline
    /// order, with fixed key order and `{:.6}` burn rates.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, tr) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"rule\": \"{}\", \"t_us\": {}, \"state\": \"{}\", \
                 \"burn_fast\": {:.6}, \"burn_slow\": {:.6}, \"attribution\": \"{}\"}}",
                tr.rule,
                tr.t_us,
                if tr.firing { "firing" } else { "resolved" },
                tr.burn_fast,
                tr.burn_slow,
                tr.attribution,
            );
        }
        if !self.transitions.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn ring_files_observations_by_minute_and_merges_exactly() {
        let mut a = SketchRing::new();
        a.observe(0, 10);
        a.observe(RING_WINDOW_US - 1, 20);
        a.observe(RING_WINDOW_US, 30);
        assert_eq!(a.len(), 2);
        assert_eq!(a.window(0).unwrap().count(), 2);
        assert_eq!(a.window(1).unwrap().count(), 1);
        assert_eq!(a.span(), Some((0, 1)));
        let mut b = SketchRing::new();
        b.observe(3 * RING_WINDOW_US, 40);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "ring merge is order-independent");
        assert_eq!(ab.count(), 4);
        assert_eq!(ab.span(), Some((0, 3)));
    }

    #[test]
    fn empty_registry_yields_empty_timeline() {
        let rules = vec![AlertRule::event("outage", "outage", "pop", 1)];
        let tl = AlertTimeline::evaluate(&rules, &MetricsRegistry::new(), &[]);
        assert!(tl.is_empty());
        assert_eq!(tl.to_json(), "[]");
        assert!(tl.firing_at_end().is_empty());
    }

    #[test]
    fn event_rule_fires_and_resolves_on_window_boundaries() {
        let mut m = MetricsRegistry::new();
        // Two symptom observations in minute 10, silence after.
        m.ring_observe("outage", "pop", 10 * RING_WINDOW_US + 5, 1);
        m.ring_observe("outage", "pop", 10 * RING_WINDOW_US + 7, 1);
        let rules = vec![AlertRule::event("pop_outage", "outage", "pop", 1)];
        let tl = AlertTimeline::evaluate(&rules, &m, &[]);
        assert_eq!(tl.transitions.len(), 2, "{tl:?}");
        let fire = &tl.transitions[0];
        assert!(fire.firing);
        assert_eq!(fire.t_us, 11 * RING_WINDOW_US, "fires at the end of the symptom window");
        assert_eq!(fire.attribution, "none");
        let resolve = &tl.transitions[1];
        assert!(!resolve.firing);
        assert_eq!(
            resolve.t_us,
            (10 + FAST_WINDOWS + 1) * RING_WINDOW_US,
            "resolves when the fast window drains"
        );
        assert_eq!(tl.intervals(), vec![("pop_outage".to_string(), fire.t_us, resolve.t_us)]);
        assert!(tl.firing_at_end().is_empty());
    }

    #[test]
    fn burn_rule_needs_both_windows_and_min_samples() {
        let rules = vec![AlertRule::burn("join_burn", "alert", "join_us", 100, 0.10)];
        // One lone bad sample: below MIN_WINDOW_SAMPLES, must not fire.
        let mut sparse = MetricsRegistry::new();
        sparse.ring_observe("alert", "join_us", RING_WINDOW_US, 500);
        assert!(AlertTimeline::evaluate(&rules, &sparse, &[]).is_empty());
        // A dense bad window fires, then resolves once good data returns.
        let mut dense = MetricsRegistry::new();
        for i in 0..6 {
            dense.ring_observe("alert", "join_us", 5 * RING_WINDOW_US + i, 500);
        }
        for i in 0..20 {
            dense.ring_observe("alert", "join_us", (11 + i / 4) * RING_WINDOW_US, 50);
        }
        let tl = AlertTimeline::evaluate(&rules, &dense, &[]);
        assert!(!tl.is_empty(), "dense bad window must fire");
        assert!(tl.transitions[0].firing);
        assert_eq!(tl.transitions[0].t_us, 6 * RING_WINDOW_US);
        assert!(tl.transitions[0].burn_fast >= 6.0);
        assert_eq!(tl.transitions.last().map(|t| t.firing), Some(false), "must resolve: {tl:?}");
        // Healthy data only: never fires.
        let mut healthy = MetricsRegistry::new();
        for i in 0..40 {
            healthy.ring_observe("alert", "join_us", i * RING_WINDOW_US / 2, 50);
        }
        assert!(AlertTimeline::evaluate(&rules, &healthy, &[]).is_empty());
    }

    #[test]
    fn firing_transition_attributes_the_dominant_phase() {
        let mut m = MetricsRegistry::new();
        m.ring_observe("outage", "pop", 3 * RING_WINDOW_US, 1);
        let spans = vec![
            (
                "session/0".to_string(),
                Span {
                    id: 0,
                    parent: None,
                    start_us: 3 * RING_WINDOW_US,
                    end_us: 3 * RING_WINDOW_US + 9_000_000,
                    subsystem: "session",
                    name: "session.join",
                },
            ),
            (
                "session/0".to_string(),
                Span {
                    id: 1,
                    parent: Some(0),
                    start_us: 3 * RING_WINDOW_US,
                    end_us: 3 * RING_WINDOW_US + 8_000_000,
                    subsystem: "hls",
                    name: "hls.playlist",
                },
            ),
            (
                "session/0".to_string(),
                Span {
                    id: 2,
                    parent: Some(0),
                    start_us: 3 * RING_WINDOW_US + 8_000_000,
                    end_us: 3 * RING_WINDOW_US + 9_000_000,
                    subsystem: "hls",
                    name: "hls.segments",
                },
            ),
        ];
        let rules = vec![AlertRule::event("pop_outage", "outage", "pop", 1)];
        let tl = AlertTimeline::evaluate(&rules, &m, &spans);
        assert_eq!(tl.transitions[0].attribution, "hls.playlist");
    }

    #[test]
    fn timeline_json_is_stable_and_balanced() {
        let mut m = MetricsRegistry::new();
        m.ring_observe("outage", "pop", 0, 1);
        let rules = vec![AlertRule::event("pop_outage", "outage", "pop", 1)];
        let tl = AlertTimeline::evaluate(&rules, &m, &[]);
        let json = tl.to_json();
        assert_eq!(json, AlertTimeline::evaluate(&rules, &m, &[]).to_json());
        assert!(json.contains("\"state\": \"firing\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
