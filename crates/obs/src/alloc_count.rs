//! Counting allocator shim for zero-allocation assertions.
//!
//! The zero-copy hot paths (DESIGN.md §10) promise that steady-state media
//! pumping performs no per-packet heap traffic. That promise is only worth
//! having if a test can falsify it, so this module wraps the system
//! allocator with a per-thread allocation counter. It is in-tree and
//! dependency-free like the rest of the harness.
//!
//! Registration is explicit: a binary or test that wants counts declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pscp_obs::alloc_count::CountingAlloc =
//!     pscp_obs::alloc_count::CountingAlloc;
//! ```
//!
//! (`repro` does this behind the `count-allocs` feature of `pscp-bench`.)
//! Without registration the counters simply stay at zero and
//! [`installed`] reports `false`, so callers can render "not measured"
//! instead of a misleading 0.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Set the first time the counting allocator services a request — i.e. it
/// is actually registered as the global allocator in this binary.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A [`System`] pass-through that counts allocation events per thread.
///
/// `alloc`, `alloc_zeroed` and `realloc` each count as one event (a realloc
/// that moves is exactly the per-packet cost the zero-alloc discipline
/// forbids); `dealloc` is free and uncounted.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[inline]
fn bump(size: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    ALLOCS.with(|c| c.set(c.get() + 1));
    BYTES.with(|c| c.set(c.get() + size as u64));
}

/// Allocation events on the current thread since it started.
pub fn current() -> u64 {
    ALLOCS.with(Cell::get)
}

/// Bytes requested from the allocator on the current thread since it
/// started (gross, not net: a realloc counts its full new size, frees
/// subtract nothing). The right metric for "how much heap did this build
/// churn through", which allocation *events* hide behind amortized Vec
/// growth.
pub fn current_bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// Whether [`CountingAlloc`] is actually the global allocator here.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(allocation events it caused on this thread, its
/// result)`. Meaningless (always 0) unless [`installed`].
pub fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = current();
    let out = f();
    (current() - before, out)
}

/// Runs `f` and returns `(bytes it requested on this thread, its result)`.
/// Meaningless (always 0) unless [`installed`].
pub fn counted_bytes<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = current_bytes();
    let out = f();
    (current_bytes() - before, out)
}

#[cfg(test)]
mod tests {
    // The allocator is not registered in this test binary, so only the
    // pass-through arithmetic is checkable here; the end-to-end behaviour
    // is exercised by `pscp-client/tests/zero_alloc.rs` and the
    // `count-allocs` build of `repro`.
    use super::*;

    #[test]
    fn uninstalled_counts_stay_zero() {
        let (delta, v) = counted(|| vec![1u8; 4096].len());
        assert_eq!(v, 4096);
        assert_eq!(delta, 0);
        assert!(!installed());
    }
}
