//! Causal sim-time spans.
//!
//! A [`Span`] is an interval of *simulated* time attributed to one named
//! phase of one work unit, with an optional parent forming a causal tree.
//! Span IDs are allocated per-[`crate::Trace`] in recording order, so the
//! same plan always yields the same IDs — they carry no thread identity
//! and no wall-clock, which is what keeps span output byte-identical at
//! any `PSCP_THREADS`. Wall-clock profiling stays in [`crate::PhaseSpan`],
//! deliberately segregated from this deterministic channel.

/// Identifier of a span within one trace (and, after absorption, within
/// one unit of the run-wide log). Stable across runs and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The id handed out by disabled traces; all span operations on a
    /// disabled trace ignore it.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// One causal interval of sim-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Per-unit id, allocated in recording order.
    pub id: u32,
    /// Parent span id within the same unit, if any.
    pub parent: Option<u32>,
    /// Start, in sim microseconds.
    pub start_us: u64,
    /// End, in sim microseconds. [`Span::OPEN`] while unfinished.
    pub end_us: u64,
    /// Owning subsystem (e.g. `"session"`, `"hls"`).
    pub subsystem: &'static str,
    /// Phase name (e.g. `"session.join"`, `"hls.playlist"`).
    pub name: &'static str,
}

impl Span {
    /// Sentinel `end_us` of a span that was started but never ended.
    /// Such spans are dropped when the trace is drained.
    pub const OPEN: u64 = u64::MAX;

    /// Whether the span has been ended.
    pub fn is_closed(&self) -> bool {
        self.end_us != Span::OPEN
    }

    /// Sim-time duration in microseconds (0 for open spans).
    pub fn duration_us(&self) -> u64 {
        if !self.is_closed() {
            return 0;
        }
        self.end_us.saturating_sub(self.start_us)
    }

    /// Sim-time duration in seconds (0 for open spans).
    pub fn duration_s(&self) -> f64 {
        self.duration_us() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_span_has_zero_duration() {
        let s = Span {
            id: 0,
            parent: None,
            start_us: 10,
            end_us: Span::OPEN,
            subsystem: "session",
            name: "session.join",
        };
        assert!(!s.is_closed());
        assert_eq!(s.duration_us(), 0);
    }

    #[test]
    fn closed_span_duration() {
        let s = Span {
            id: 1,
            parent: Some(0),
            start_us: 1_000_000,
            end_us: 3_500_000,
            subsystem: "rtmp",
            name: "rtmp.handshake",
        };
        assert!(s.is_closed());
        assert_eq!(s.duration_us(), 2_500_000);
        assert!((s.duration_s() - 2.5).abs() < 1e-12);
    }
}
