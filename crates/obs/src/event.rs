//! Structured, sim-time-stamped event records.
//!
//! Events carry *simulation* time, never wall-clock time, so a trace is a
//! pure function of the seed: two runs (at any thread count) that simulate
//! the same world emit byte-identical logs. Wall-clock profiling lives in
//! [`crate::span`] instead, deliberately segregated from this log.

use std::fmt::Write as _;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer (counts, byte sizes, ids, durations in ms/µs).
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float — serialized with fixed `{:.6}` precision so the rendered
    /// JSONL is byte-stable across runs.
    F(f64),
    /// Short string (protocol names, user ids).
    S(String),
}

/// One sim-time-stamped, subsystem-tagged record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in microseconds.
    pub t_us: u64,
    /// Owning subsystem (`"player"`, `"hls"`, `"service"`, ...).
    pub subsystem: &'static str,
    /// Dotted event name (`"player.stall"`, `"hls.segment_fetch"`, ...).
    pub name: &'static str,
    /// Extra fields, in recording order.
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline). `unit`
    /// is the work-unit label assigned when the event was merged into the
    /// run-wide log (e.g. `"session/17"`, `"deep-crawl-14"`).
    pub fn to_json_line(&self, unit: &str) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t_us\":{},\"unit\":\"{}\",\"sub\":\"{}\",\"ev\":\"{}\"",
            self.t_us,
            escape(unit),
            self.subsystem,
            self.name
        );
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{k}\":");
                match v {
                    Field::U(x) => {
                        let _ = write!(s, "{x}");
                    }
                    Field::I(x) => {
                        let _ = write!(s, "{x}");
                    }
                    Field::F(x) => {
                        let _ = write!(s, "{x:.6}");
                    }
                    Field::S(x) => {
                        let _ = write!(s, "\"{}\"", escape(x));
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let e = Event {
            t_us: 1_500_000,
            subsystem: "player",
            name: "player.stall",
            fields: vec![("duration_ms", Field::U(420)), ("ratio", Field::F(0.25))],
        };
        assert_eq!(
            e.to_json_line("session/3"),
            "{\"t_us\":1500000,\"unit\":\"session/3\",\"sub\":\"player\",\
             \"ev\":\"player.stall\",\"fields\":{\"duration_ms\":420,\"ratio\":0.250000}}"
        );
    }

    #[test]
    fn fieldless_event_omits_fields_object() {
        let e = Event { t_us: 0, subsystem: "rtmp", name: "rtmp.handshake", fields: vec![] };
        assert!(!e.to_json_line("u").contains("fields"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event {
            t_us: 1,
            subsystem: "service",
            name: "service.rate_limited",
            fields: vec![("user", Field::S("a\"b\\c".into()))],
        };
        assert!(e.to_json_line("u").contains("a\\\"b\\\\c"));
    }
}
