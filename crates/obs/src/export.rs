//! Interchange exporters: Chrome trace-event JSON and Prometheus text.
//!
//! Both renderers are pure functions of their inputs with fixed float
//! precision and fixed iteration order, so exporting the deterministic
//! channels (causal spans, metrics) yields byte-identical files at any
//! thread count. Wall-clock [`PhaseSpan`]s can be included in the Chrome
//! export on their own process track — callers wanting a byte-stable
//! artifact simply pass an empty phase slice.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::alert::AlertTransition;
use crate::causal::Span;
use crate::event::escape;
use crate::metrics::MetricsRegistry;
use crate::span::PhaseSpan;

/// Renders causal spans (one Chrome "thread" per work unit, in first-
/// appearance order) plus optional wall-clock phases (a separate Chrome
/// "process") as a Chrome trace-event JSON document. Loadable by
/// Perfetto / `chrome://tracing`; `ts`/`dur` are sim-microseconds for
/// spans and wall-microseconds (cumulative) for phases.
pub fn chrome_trace(spans: &[(String, Span)], phases: &[PhaseSpan]) -> String {
    chrome_trace_with_alerts(spans, phases, &[])
}

/// [`chrome_trace`] plus one global instant event (`ph:"i"`, scope `"g"`)
/// per alert transition, so Perfetto draws firing/resolved markers across
/// the span tracks. With an empty transition slice the output is
/// byte-identical to [`chrome_trace`].
pub fn chrome_trace_with_alerts(
    spans: &[(String, Span)],
    phases: &[PhaseSpan],
    alerts: &[AlertTransition],
) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 128 + phases.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
        *first = false;
    };
    push(
        &mut out,
        &mut first,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"sim\"}}"
            .to_string(),
    );

    // Units become tids in first-appearance order — spans arrive in plan
    // order, so the numbering is deterministic.
    let mut tid_of: HashMap<&str, u32> = HashMap::new();
    let mut next_tid = 1u32;
    for (unit, span) in spans {
        let tid = match tid_of.get(unit.as_str()) {
            Some(&tid) => tid,
            None => {
                let tid = next_tid;
                next_tid += 1;
                tid_of.insert(unit.as_str(), tid);
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        escape(unit)
                    ),
                );
                tid
            }
        };
        let mut args = format!("{{\"id\":{}", span.id);
        if let Some(parent) = span.parent {
            let _ = write!(args, ",\"parent\":{parent}");
        }
        args.push('}');
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\",\"args\":{args}}}",
                span.start_us,
                span.duration_us(),
                escape(span.name),
                escape(span.subsystem),
            ),
        );
    }

    if !phases.is_empty() {
        push(
            &mut out,
            &mut first,
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"wall-clock\"}}"
                .to_string(),
        );
        let mut ts_us = 0u64;
        for phase in phases {
            let dur_us = (phase.wall_secs * 1e6).round().max(0.0) as u64;
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"X\",\"pid\":2,\"tid\":1,\"ts\":{ts_us},\"dur\":{dur_us},\
                     \"name\":\"{}\",\"cat\":\"phase\",\"args\":{{\"workers\":{},\
                     \"items\":{},\"busy_secs\":{:.6}}}}}",
                    escape(&phase.name),
                    phase.workers,
                    phase.items,
                    phase.busy_secs,
                ),
            );
            ts_us += dur_us;
        }
    }

    for tr in alerts {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{},\"s\":\"g\",\
                 \"name\":\"{} {}\",\"cat\":\"alert\",\"args\":{{\"rule\":\"{}\",\
                 \"burn_fast\":{:.6},\"burn_slow\":{:.6},\"attribution\":\"{}\"}}}}",
                tr.t_us,
                escape(&tr.rule),
                if tr.firing { "firing" } else { "resolved" },
                escape(&tr.rule),
                tr.burn_fast,
                tr.burn_slow,
                escape(&tr.attribution),
            ),
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders alert states as `pscp_alert_state{rule,shard}` gauges (1 =
/// firing, 0 = quiet) with HELP/TYPE metadata, in input order — callers
/// pass states in (rule, shard) sorted order for stable artifacts.
pub fn prometheus_alert_state(states: &[(String, String, bool)]) -> String {
    let mut out = String::with_capacity(128 + states.len() * 64);
    out.push_str(
        "# HELP pscp_alert_state Burn-rate alert state (1 = firing) per rule and shard.\n",
    );
    out.push_str("# TYPE pscp_alert_state gauge\n");
    for (rule, shard, firing) in states {
        let _ = writeln!(
            out,
            "pscp_alert_state{{rule=\"{}\",shard=\"{}\"}} {}",
            escape_label(rule),
            escape_label(shard),
            u64::from(*firing)
        );
    }
    out
}

/// Renders the `pscp_build_info` gauge: a constant-1 metric whose labels
/// identify the run (seed, scale tier, shard count, thread count), per
/// the Prometheus build-info convention.
pub fn prometheus_build_info(seed: u64, tier: &str, shards: u32, threads: usize) -> String {
    format!(
        "# HELP pscp_build_info Run identity: seed, scale tier, shard and thread counts.\n\
         # TYPE pscp_build_info gauge\n\
         pscp_build_info{{seed=\"{seed}\",tier=\"{}\",shards=\"{shards}\",\
         threads=\"{threads}\"}} 1\n",
        escape_label(tier)
    )
}

/// Renders the registry in Prometheus text exposition format. Metric
/// names are fixed (`pscp_counter`, `pscp_histogram_*`); the repo's
/// dotted `(subsystem, name)` keys become label values, escaped per the
/// exposition rules. Buckets are emitted cumulatively with a final
/// `+Inf` bucket, as Prometheus requires.
pub fn prometheus_text(metrics: &MetricsRegistry) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP pscp_counter Deterministic sim counters keyed by subsystem/name.\n");
    out.push_str("# TYPE pscp_counter counter\n");
    for (sub, name, v) in metrics.counters() {
        let _ = writeln!(
            out,
            "pscp_counter{{subsystem=\"{}\",name=\"{}\"}} {v}",
            escape_label(sub),
            escape_label(name)
        );
    }
    out.push_str("# HELP pscp_histogram Fixed-bucket sim histograms keyed by subsystem/name.\n");
    out.push_str("# TYPE pscp_histogram histogram\n");
    for (sub, name, h) in metrics.histograms() {
        let labels = format!("subsystem=\"{}\",name=\"{}\"", escape_label(sub), escape_label(name));
        let mut cumulative = 0u64;
        for (i, &count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = match h.edges.get(i) {
                Some(e) => e.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "pscp_histogram_bucket{{{labels},le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "pscp_histogram_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "pscp_histogram_count{{{labels}}} {}", h.total);
    }
    out.push_str(
        "# HELP pscp_sketch_quantile Quantile estimates from mergeable streaming sketches.\n",
    );
    out.push_str("# TYPE pscp_sketch_quantile gauge\n");
    // Quantile gauges first (grouped per metric name as the exposition
    // format prefers), then sum/count in a second pass under their own
    // HELP/TYPE headers.
    for (sub, name, sketch) in metrics.sketches() {
        let labels = format!("subsystem=\"{}\",name=\"{}\"", escape_label(sub), escape_label(name));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            if let Some(v) = sketch.quantile(q) {
                let _ = writeln!(out, "pscp_sketch_quantile{{{labels},quantile=\"{label}\"}} {v}");
            }
        }
    }
    out.push_str("# HELP pscp_sketch Observation totals behind the sketch quantiles.\n");
    out.push_str("# TYPE pscp_sketch summary\n");
    for (sub, name, sketch) in metrics.sketches() {
        let labels = format!("subsystem=\"{}\",name=\"{}\"", escape_label(sub), escape_label(name));
        let _ = writeln!(out, "pscp_sketch_sum{{{labels}}} {}", sketch.sum());
        let _ = writeln!(out, "pscp_sketch_count{{{labels}}} {}", sketch.count());
    }
    out
}

/// Prometheus label-value escaping: backslash, double-quote and newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MS_BUCKETS;

    fn span(id: u32, parent: Option<u32>, start_us: u64, end_us: u64) -> Span {
        Span { id, parent, start_us, end_us, subsystem: "session", name: "session.join" }
    }

    #[test]
    fn chrome_trace_units_become_threads_in_first_appearance_order() {
        let spans = vec![
            ("session/1".to_string(), span(0, None, 10, 50)),
            ("session/1".to_string(), span(1, Some(0), 10, 20)),
            ("session/0".to_string(), span(0, None, 5, 9)),
        ];
        let doc = chrome_trace(&spans, &[]);
        let s1 = doc.find("\"name\":\"session/1\"").expect("session/1 thread");
        let s0 = doc.find("\"name\":\"session/0\"").expect("session/0 thread");
        assert!(s1 < s0, "tids follow span (plan) order, not label order");
        assert!(doc.contains("\"ts\":10,\"dur\":40"));
        assert!(doc.contains("\"parent\":0"));
        assert!(!doc.contains("wall-clock"), "no phase track when phases empty");
    }

    #[test]
    fn chrome_trace_places_phases_on_their_own_process() {
        let phases = vec![PhaseSpan {
            name: "dataset.execute".to_string(),
            wall_secs: 0.25,
            workers: 8,
            items: 48,
            busy_secs: 1.5,
        }];
        let doc = chrome_trace(&[], &phases);
        assert!(doc.contains("\"name\":\"wall-clock\""));
        assert!(doc.contains("\"pid\":2,\"tid\":1,\"ts\":0,\"dur\":250000"));
        assert!(doc.contains("\"busy_secs\":1.500000"));
    }

    #[test]
    fn prometheus_text_shape_and_cumulative_buckets() {
        let mut m = MetricsRegistry::new();
        m.count("service", "api.accessVideo", 3);
        m.observe("player", "join_time_ms", &MS_BUCKETS, 1);
        m.observe("player", "join_time_ms", &MS_BUCKETS, 3);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE pscp_counter counter\n"));
        assert!(text.contains("pscp_counter{subsystem=\"service\",name=\"api.accessVideo\"} 3\n"));
        // value 1 → bucket le=1; value 3 → le=5; buckets are cumulative.
        assert!(text.contains("le=\"1\"} 1\n"));
        assert!(text.contains("le=\"2\"} 1\n"));
        assert!(text.contains("le=\"5\"} 2\n"));
        assert!(text.contains("le=\"+Inf\"} 2\n"));
        assert!(text.contains("pscp_histogram_sum{subsystem=\"player\",name=\"join_time_ms\"} 4\n"));
        assert!(
            text.contains("pscp_histogram_count{subsystem=\"player\",name=\"join_time_ms\"} 2\n")
        );
    }

    #[test]
    fn prometheus_sketch_quantiles_with_sum_count_consistency() {
        let mut m = MetricsRegistry::new();
        for v in 1..=100u64 {
            m.sketch_observe("player", "join_time_us", v * 1_000);
        }
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE pscp_sketch_quantile gauge\n"));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                text.contains(&format!(
                    "pscp_sketch_quantile{{subsystem=\"player\",name=\"join_time_us\",\
                     quantile=\"{q}\"}} "
                )),
                "missing quantile {q} gauge in:\n{text}"
            );
        }
        // _sum/_count must agree with the registry's own sketch totals.
        let sketch = m.sketch("player", "join_time_us").unwrap();
        assert!(text.contains(&format!(
            "pscp_sketch_sum{{subsystem=\"player\",name=\"join_time_us\"}} {}\n",
            sketch.sum()
        )));
        assert!(text.contains(&format!(
            "pscp_sketch_count{{subsystem=\"player\",name=\"join_time_us\"}} {}\n",
            sketch.count()
        )));
        assert_eq!(sketch.count(), 100);
        assert_eq!(sketch.sum(), (1..=100u64).map(|v| v * 1_000).sum::<u64>());
    }

    #[test]
    fn prometheus_sketch_labels_are_escaped() {
        let mut m = MetricsRegistry::new();
        m.sketch_observe("play\"er", "join\\time\nus", 7);
        let text = prometheus_text(&m);
        assert!(text.contains(
            "pscp_sketch_quantile{subsystem=\"play\\\"er\",name=\"join\\\\time\\nus\",\
             quantile=\"0.5\"} 7\n"
        ));
        assert!(text.contains(
            "pscp_sketch_count{subsystem=\"play\\\"er\",name=\"join\\\\time\\nus\"} 1\n"
        ));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn chrome_trace_with_alerts_adds_global_instants_only_when_present() {
        let spans = vec![("session/0".to_string(), span(0, None, 5, 9))];
        assert_eq!(
            chrome_trace(&spans, &[]),
            chrome_trace_with_alerts(&spans, &[], &[]),
            "empty alert slice must not perturb the byte-stable artifact"
        );
        let alerts = vec![AlertTransition {
            rule: "pop_outage/fastly-eu".to_string(),
            t_us: 120_000_000,
            firing: true,
            burn_fast: 2.0,
            burn_slow: 0.5,
            attribution: "hls.playlist".to_string(),
        }];
        let doc = chrome_trace_with_alerts(&spans, &[], &alerts);
        assert!(doc.contains("\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":120000000,\"s\":\"g\""));
        assert!(doc.contains("\"name\":\"pop_outage/fastly-eu firing\""));
        assert!(doc.contains("\"attribution\":\"hls.playlist\""));
    }

    #[test]
    fn alert_state_gauge_renders_and_escapes() {
        let states = vec![
            ("join_burn".to_string(), "02".to_string(), true),
            ("sha\"rd".to_string(), "a\\b".to_string(), false),
        ];
        let text = prometheus_alert_state(&states);
        assert!(text.starts_with("# HELP pscp_alert_state "));
        assert!(text.contains("# TYPE pscp_alert_state gauge\n"));
        assert!(text.contains("pscp_alert_state{rule=\"join_burn\",shard=\"02\"} 1\n"));
        assert!(text.contains("pscp_alert_state{rule=\"sha\\\"rd\",shard=\"a\\\\b\"} 0\n"));
    }

    #[test]
    fn build_info_gauge_is_constant_one_with_run_identity_labels() {
        let text = prometheus_build_info(2016, "10k", 4, 8);
        assert!(text.contains("# TYPE pscp_build_info gauge\n"));
        assert!(text.contains(
            "pscp_build_info{seed=\"2016\",tier=\"10k\",shards=\"4\",threads=\"8\"} 1\n"
        ));
        assert!(prometheus_build_info(1, "a\"b", 1, 1).contains("tier=\"a\\\"b\""));
    }
}
