//! Deterministic sim-time observability (DESIGN.md §7).
//!
//! Three primitives, all default-off and zero-new-dependency:
//!
//! * a **structured event log** — sim-time-stamped, subsystem-tagged
//!   records ([`Event`]) buffered per work unit in a [`Trace`] and merged
//!   in plan order by the [`Observer`], so the rendered JSONL is
//!   byte-identical at any thread count;
//! * a **metrics registry** — named u64 counters and fixed-bucket
//!   histograms ([`MetricsRegistry`]); integer-only so per-worker deltas
//!   merge order-independently into a stable-ordered snapshot;
//! * **causal sim-time spans** ([`Span`]) — parent-linked intervals
//!   recorded per unit with stable ids, merged in plan order like events,
//!   so a session's join time decomposes into a deterministic tree;
//! * **wall-clock phase spans** ([`PhaseSpan`]) with per-thread busy/idle
//!   accounting — the one intentionally non-deterministic output, kept
//!   segregated from the event log, spans and metrics.
//!
//! [`export`] renders the deterministic channels as Chrome trace-event
//! JSON and Prometheus text exposition.
//!
//! The split between [`Trace`] (per-unit, `&mut`, lock-free) and
//! [`Observer`] (run-wide, serial merge points only) is the determinism
//! argument: workers never interleave writes, and the orchestrator
//! absorbs finished traces in plan order, never completion order.

#![warn(missing_docs)]

pub mod alert;
pub mod alloc_count;
mod causal;
mod event;
pub mod export;
mod metrics;
mod observer;
mod span;
mod trace;

pub use alert::{
    AlertRule, AlertTimeline, AlertTransition, RuleKind, SketchRing, FAST_WINDOWS, RING_WINDOW_US,
    SLOW_WINDOWS,
};
pub use causal::{Span, SpanId};
pub use event::{Event, Field};
pub use export::{
    chrome_trace, chrome_trace_with_alerts, prometheus_alert_state, prometheus_build_info,
    prometheus_text,
};
pub use metrics::{
    Histogram, HistogramSpec, MetricsRegistry, BYTE_BUCKETS, KBPS_BUCKETS, MILLIWATT_BUCKETS,
    MS_BUCKETS,
};
pub use observer::Observer;
pub use span::{phases_json, phases_table, PhaseSpan};
pub use trace::Trace;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: absorbing the same unit traces in the same order gives
    /// byte-identical JSONL and snapshots — the tier-1 invariant in
    /// miniature.
    #[test]
    fn merged_outputs_are_reproducible() {
        let run = || {
            let obs = Observer::new(true);
            for unit in 0..3u64 {
                let mut t = obs.trace();
                t.event(unit * 10, "session", "session.start", vec![("idx", Field::U(unit))]);
                t.count("session", "started", 1);
                t.observe("player", "join_time_ms", &MS_BUCKETS, 100 * (unit + 1));
                obs.absorb(&format!("session/{unit}"), t);
            }
            (obs.events_jsonl(), obs.metrics().snapshot_json(), obs.metrics().snapshot_text())
        };
        assert_eq!(run(), run());
        let (jsonl, json, _) = run();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(json.contains("\"session/started\":3"));
    }
}
