//! Counters, fixed-bucket histograms and quantile sketches with
//! stable-ordered snapshots.
//!
//! Everything here is integer-valued on purpose: u64 sums are associative
//! and commutative, so merging per-worker registries in *any* order yields
//! the same totals — the registry can never leak thread-scheduling noise
//! into a snapshot. Keys are `(subsystem, name)` pairs of `&'static str`
//! in `BTreeMap`s, so iteration (and therefore every rendered report) is
//! lexicographically ordered regardless of recording order. The sketch
//! instrument ([`pscp_stats::QuantileSketch`]) extends the same guarantee
//! to streaming quantiles: its merge is pure u64 bucket addition.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::alert::SketchRing;
use pscp_stats::QuantileSketch;

/// Fixed bucket edges for a histogram family.
///
/// Edges are `&'static` and never change at runtime, so snapshots from
/// different runs (or different PRs) always line up bucket-for-bucket.
/// Values above the last edge land in an implicit overflow bucket.
#[derive(Debug)]
pub struct HistogramSpec {
    /// Upper-inclusive bucket edges, strictly increasing.
    pub edges: &'static [u64],
}

/// Millisecond-scale durations (join times, stalls, fetch times).
pub const MS_BUCKETS: HistogramSpec = HistogramSpec {
    edges: &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 60_000],
};

/// Byte counts (segment bodies, transfers, captures).
pub const BYTE_BUCKETS: HistogramSpec = HistogramSpec {
    edges: &[256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216],
};

/// Power draw in milliwatts (energy scenarios).
pub const MILLIWATT_BUCKETS: HistogramSpec =
    HistogramSpec { edges: &[500, 1_000, 1_500, 2_000, 2_500, 3_000, 3_500, 4_000, 5_000, 6_000] };

/// Kilobit-per-second rates (bandwidth limits).
pub const KBPS_BUCKETS: HistogramSpec = HistogramSpec {
    edges: &[250, 500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000, 20_000, 100_000],
};

/// One histogram: per-bucket counts plus total/sum so means are
/// recoverable without storing samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// The spec's edges, kept for rendering.
    pub edges: &'static [u64],
    /// `counts[i]` = observations `≤ edges[i]` (and `> edges[i-1]`); the
    /// final slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Number of observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Histogram {
    fn new(spec: &'static HistogramSpec) -> Self {
        Histogram { edges: spec.edges, counts: vec![0; spec.edges.len() + 1], total: 0, sum: 0 }
    }

    fn observe(&mut self, value: u64) {
        let idx = self.edges.iter().position(|&e| value <= e).unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.edges, other.edges, "histogram spec mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }
}

/// Named counters, histograms and quantile sketches keyed by
/// `(subsystem, name)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<(&'static str, &'static str), u64>,
    histograms: BTreeMap<(&'static str, &'static str), Histogram>,
    sketches: BTreeMap<(&'static str, &'static str), QuantileSketch>,
    rings: BTreeMap<(&'static str, &'static str), SketchRing>,
}

impl MetricsRegistry {
    /// An empty registry (usable in `const`/`static` contexts).
    pub const fn new() -> Self {
        MetricsRegistry {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            sketches: BTreeMap::new(),
            rings: BTreeMap::new(),
        }
    }

    /// Adds `by` to the `(subsystem, name)` counter.
    pub fn count(&mut self, subsystem: &'static str, name: &'static str, by: u64) {
        *self.counters.entry((subsystem, name)).or_insert(0) += by;
    }

    /// Records one observation into the `(subsystem, name)` histogram.
    pub fn observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        spec: &'static HistogramSpec,
        value: u64,
    ) {
        self.histograms
            .entry((subsystem, name))
            .or_insert_with(|| Histogram::new(spec))
            .observe(value);
    }

    /// Records one observation into the `(subsystem, name)` quantile
    /// sketch — the constant-memory instrument for integer-domain values
    /// (microseconds, ppm, bytes) whose quantiles matter, not just their
    /// bucketed shape.
    pub fn sketch_observe(&mut self, subsystem: &'static str, name: &'static str, value: u64) {
        self.sketches.entry((subsystem, name)).or_default().observe(value);
    }

    /// Records one observation into the `(subsystem, name)` windowed
    /// sketch ring at sim-time `t_us` — the alerting layer's instrument
    /// (DESIGN.md §14): same merge algebra as a sketch, plus a sim-minute
    /// window axis so burn rates can be computed over sliding windows.
    pub fn ring_observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        t_us: u64,
        value: u64,
    ) {
        self.rings.entry((subsystem, name)).or_default().observe(t_us, value);
    }

    /// Folds another registry into this one. Order-independent: merging
    /// `a` into `b` or `b` into `a` yields identical totals.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, h) in &other.histograms {
            match self.histograms.get_mut(&k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k, h.clone());
                }
            }
        }
        for (&k, s) in &other.sketches {
            self.sketches.entry(k).or_default().merge(s);
        }
        for (&k, r) in &other.rings {
            self.rings.entry(k).or_default().merge(r);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, subsystem: &str, name: &str) -> u64 {
        self.counters.get(&(subsystem, name)).copied().unwrap_or(0)
    }

    /// A histogram by key, if recorded.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|&(&(s, n), _)| s == subsystem && n == name).map(|(_, h)| h)
    }

    /// A sketch by key, if recorded.
    pub fn sketch(&self, subsystem: &str, name: &str) -> Option<&QuantileSketch> {
        self.sketches.iter().find(|&(&(s, n), _)| s == subsystem && n == name).map(|(_, s)| s)
    }

    /// A windowed sketch ring by key, if recorded.
    pub fn ring(&self, subsystem: &str, name: &str) -> Option<&SketchRing> {
        self.rings.iter().find(|&(&(s, n), _)| s == subsystem && n == name).map(|(_, r)| r)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
            && self.rings.is_empty()
    }

    /// Sorted, de-duplicated list of subsystems with at least one metric.
    pub fn subsystems(&self) -> Vec<&'static str> {
        let mut subs: Vec<&'static str> = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .chain(self.sketches.keys())
            .chain(self.rings.keys())
            .map(|&(sub, _)| sub)
            .collect();
        subs.sort_unstable();
        subs.dedup();
        subs
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(sub, name), &v)| (sub, name, v))
    }

    /// All histograms in key order.
    pub fn histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&(sub, name), h)| (sub, name, h))
    }

    /// All quantile sketches in key order.
    pub fn sketches(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &QuantileSketch)> + '_ {
        self.sketches.iter().map(|(&(sub, name), s)| (sub, name, s))
    }

    /// All windowed sketch rings in key order.
    pub fn rings(&self) -> impl Iterator<Item = (&'static str, &'static str, &SketchRing)> + '_ {
        self.rings.iter().map(|(&(sub, name), r)| (sub, name, r))
    }

    /// Renders a stable-ordered plain-text report.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (sub, name, v) in self.counters() {
            let _ = writeln!(out, "  {:<10} {:<28} {:>12}", sub, name, v);
        }
        out.push_str("histograms:\n");
        for (sub, name, h) in self.histograms() {
            let _ =
                writeln!(out, "  {:<10} {:<28} n={:<8} mean={:.1}", sub, name, h.total, h.mean());
            let mut buckets = String::new();
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let edge = match h.edges.get(i) {
                    Some(e) => format!("<={e}"),
                    None => format!(">{}", h.edges.last().copied().unwrap_or(0)),
                };
                let _ = write!(buckets, " {edge}:{c}");
            }
            if !buckets.is_empty() {
                let _ = writeln!(out, "  {:<10} {:<28}{}", "", "", buckets);
            }
        }
        if !self.sketches.is_empty() {
            out.push_str("sketches:\n");
            for (sub, name, s) in self.sketches() {
                let q = |p: f64| s.quantile(p).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<10} {:<28} n={:<8} p50={} p90={} p99={} max={}",
                    sub,
                    name,
                    s.count(),
                    q(0.50),
                    q(0.90),
                    q(0.99),
                    s.max().unwrap_or(0)
                );
            }
        }
        if !self.rings.is_empty() {
            out.push_str("rings:\n");
            for (sub, name, r) in self.rings() {
                let (first, last) = r.span().unwrap_or((0, 0));
                let _ = writeln!(
                    out,
                    "  {:<10} {:<28} n={:<8} windows={} first={} last={}",
                    sub,
                    name,
                    r.count(),
                    r.len(),
                    first,
                    last
                );
            }
        }
        out
    }

    /// Renders the registry as one JSON object with stable key order.
    /// Keys are `"subsystem/name"` (names themselves contain dots).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (sub, name, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{sub}/{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (sub, name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{sub}/{name}\":{{\"edges\":[");
            for (j, e) in h.edges.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{e}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"total\":{},\"sum\":{}}}", h.total, h.sum);
        }
        out.push_str("},\"sketches\":{");
        for (i, (sub, name, s)) in self.sketches().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let q = |p: f64| s.quantile(p).unwrap_or(0);
            let _ = write!(
                out,
                "\"{sub}/{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                s.count(),
                s.sum(),
                s.min().unwrap_or(0),
                s.max().unwrap_or(0),
                q(0.50),
                q(0.90),
                q(0.99)
            );
        }
        out.push('}');
        // Rings render only when present: sketch-free registries must
        // keep ending with `"sketches":{}}` byte-for-byte, and every
        // pre-alerting artifact stays unchanged.
        if !self.rings.is_empty() {
            out.push_str(",\"rings\":{");
            for (i, (sub, name, r)) in self.rings().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{sub}/{name}\":{{\"count\":{},\"windows\":[", r.count());
                for (j, (idx, s)) in r.windows().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{}]", idx, s.count());
                }
                out.push_str("]}");
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("service", "rate_limited", 1);
        m.count("service", "rate_limited", 2);
        assert_eq!(m.counter("service", "rate_limited"), 3);
        assert_eq!(m.counter("service", "missing"), 0);
    }

    #[test]
    fn histogram_buckets_value_on_upper_inclusive_edge() {
        let mut m = MetricsRegistry::new();
        for v in [1, 2, 3, 2_000_000] {
            m.observe("player", "join_time_ms", &MS_BUCKETS, v);
        }
        let h = m.histogram("player", "join_time_ms").unwrap();
        assert_eq!(h.counts[0], 1); // value 1 lands in <=1 (upper-inclusive)
        assert_eq!(h.counts[1], 1); // value 2 lands in <=2
        assert_eq!(h.counts[2], 1); // value 3 lands in <=5
        assert_eq!(*h.counts.last().unwrap(), 1); // 2e6 overflows
        assert_eq!(h.total, 4);
    }

    #[test]
    fn empty_histogram_mean_is_zero_not_nan() {
        let h = Histogram::new(&MS_BUCKETS);
        assert_eq!(h.total, 0);
        let mean = h.mean();
        assert!(!mean.is_nan(), "empty mean must never print NaN into JSON");
        assert_eq!(mean, 0.0);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |values: &[u64]| {
            let mut m = MetricsRegistry::new();
            for &v in values {
                m.count("tcp", "transfers", 1);
                m.observe("tcp", "fetch_ms", &MS_BUCKETS, v);
            }
            m
        };
        let a = build(&[5, 80]);
        let b = build(&[900]);
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("tcp", "transfers"), 3);
    }

    #[test]
    fn snapshot_order_is_stable_across_recording_order() {
        let mut a = MetricsRegistry::new();
        a.count("zz", "last", 1);
        a.count("aa", "first", 1);
        let mut b = MetricsRegistry::new();
        b.count("aa", "first", 1);
        b.count("zz", "last", 1);
        assert_eq!(a.snapshot_text(), b.snapshot_text());
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        let text = a.snapshot_text();
        assert!(text.find("aa").unwrap() < text.find("zz").unwrap());
    }

    #[test]
    fn subsystems_are_sorted_and_deduped() {
        let mut m = MetricsRegistry::new();
        m.count("player", "stalls", 1);
        m.observe("player", "stall_ms", &MS_BUCKETS, 10);
        m.count("hls", "segments_fetched", 1);
        m.sketch_observe("api", "latency_us", 1234);
        assert_eq!(m.subsystems(), vec!["api", "hls", "player"]);
    }

    #[test]
    fn sketch_instrument_records_and_merges_order_independently() {
        let build = |values: &[u64]| {
            let mut m = MetricsRegistry::new();
            for &v in values {
                m.sketch_observe("player", "join_time_us", v);
            }
            m
        };
        let a = build(&[1_000_000, 2_500_000]);
        let b = build(&[9_000_000]);
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba, "sketch merge is exactly order-independent");
        let s = ab.sketch("player", "join_time_us").unwrap();
        assert_eq!(s.count(), 3);
        assert!(!ab.is_empty());
        assert_eq!(ab.snapshot_json(), ba.snapshot_json());
        assert!(ab.snapshot_json().contains("\"player/join_time_us\":{\"count\":3"));
        assert!(ab.snapshot_text().contains("sketches:"));
    }

    #[test]
    fn ring_instrument_records_and_merges_order_independently() {
        let build = |obs: &[(u64, u64)]| {
            let mut m = MetricsRegistry::new();
            for &(t, v) in obs {
                m.ring_observe("alert", "join_time_us", t, v);
            }
            m
        };
        let a = build(&[(0, 100), (61_000_000, 900)]);
        let b = build(&[(59_000_000, 400)]);
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba, "ring merge is exactly order-independent");
        let r = ab.ring("alert", "join_time_us").unwrap();
        assert_eq!(r.count(), 3);
        assert_eq!(r.len(), 2, "minutes 0 and 1");
        assert!(!ab.is_empty());
        assert_eq!(ab.snapshot_json(), ba.snapshot_json());
        assert!(ab.snapshot_json().contains("\"rings\":{\"alert/join_time_us\":{\"count\":3"));
        assert!(ab.snapshot_text().contains("rings:"));
        assert_eq!(ab.subsystems(), vec!["alert"]);
    }

    #[test]
    fn ring_free_registry_omits_rings_section() {
        let mut m = MetricsRegistry::new();
        m.count("tcp", "transfers", 1);
        assert!(m.snapshot_json().ends_with("\"sketches\":{}}"));
        assert!(!m.snapshot_json().contains("rings"));
        assert!(!m.snapshot_text().contains("rings:"));
    }

    #[test]
    fn sketch_free_registry_renders_empty_sketch_object() {
        let mut m = MetricsRegistry::new();
        m.count("tcp", "transfers", 1);
        assert!(m.snapshot_json().ends_with("\"sketches\":{}}"));
        assert!(!m.snapshot_text().contains("sketches:"));
    }
}
