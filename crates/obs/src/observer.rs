//! The run-wide collector.
//!
//! A lab owns one [`Observer`]. Work units never write to it directly:
//! each records into its own [`Trace`], and the orchestrator absorbs the
//! finished traces *serially, in plan order* — so the merged event log
//! depends only on the plan, never on which worker finished first. The
//! internal mutex exists for the rare serial merge points, not for
//! per-event traffic.

use std::sync::Mutex;
use std::time::Instant;

use crate::causal::Span;
use crate::event::Event;
use crate::metrics::MetricsRegistry;
use crate::span::PhaseSpan;
use crate::trace::Trace;

/// Run-wide sink for traces, metrics and phase spans.
#[derive(Debug)]
pub struct Observer {
    tracing: bool,
    profiling: bool,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// `(unit label, event)` in absorb order; events within a unit are
    /// sim-time sorted at absorb time (stable, so ties keep record order).
    log: Vec<(String, Event)>,
    /// `(unit label, span)` in absorb order; spans within a unit are
    /// start-time sorted at absorb time (stable; ids stay valid because
    /// parent links are by explicit id, not position).
    spans: Vec<(String, Span)>,
    metrics: MetricsRegistry,
    phases: Vec<PhaseSpan>,
}

impl Observer {
    /// A permanently disabled observer (usable in `static` contexts).
    pub const fn off() -> Observer {
        Observer {
            tracing: false,
            profiling: false,
            inner: Mutex::new(Inner {
                log: Vec::new(),
                spans: Vec::new(),
                metrics: MetricsRegistry::new(),
                phases: Vec::new(),
            }),
        }
    }

    /// A shared disabled observer, for call paths that take `&Observer`
    /// but have nothing to observe.
    pub fn disabled_ref() -> &'static Observer {
        static OFF: Observer = Observer::off();
        &OFF
    }

    /// Tracing and profiling both follow `tracing` (a traced run wants
    /// phase spans too).
    pub fn new(tracing: bool) -> Observer {
        Observer::with_flags(tracing, tracing)
    }

    /// Phase spans only — what `repro bench` uses: wall-clock profiling
    /// without paying for event recording.
    pub fn profile_only() -> Observer {
        Observer::with_flags(false, true)
    }

    /// Explicit flag control.
    pub fn with_flags(tracing: bool, profiling: bool) -> Observer {
        Observer {
            tracing,
            profiling,
            inner: Mutex::new(Inner {
                log: Vec::new(),
                spans: Vec::new(),
                metrics: MetricsRegistry::new(),
                phases: Vec::new(),
            }),
        }
    }

    /// Whether work units should record events/metrics.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Whether orchestrators should record phase spans.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// A fresh per-unit trace matching this observer's tracing flag.
    pub fn trace(&self) -> Trace {
        Trace::new(self.tracing)
    }

    /// Merges one unit's finished trace under `unit`. Events are sim-time
    /// sorted within the unit, spans start-time sorted (both stable: ties
    /// keep recording order); open spans were already dropped by the
    /// drain.
    ///
    /// Determinism contract: callers absorb units serially in *plan*
    /// order, never in completion order.
    pub fn absorb(&self, unit: &str, trace: Trace) {
        if !self.tracing {
            return;
        }
        let (mut events, mut spans, metrics) = trace.into_parts();
        events.sort_by_key(|e| e.t_us);
        spans.sort_by_key(|s| s.start_us);
        let mut inner = self.inner.lock().expect("observer lock");
        inner.log.extend(events.into_iter().map(|e| (unit.to_string(), e)));
        inner.spans.extend(spans.into_iter().map(|s| (unit.to_string(), s)));
        inner.metrics.merge(&metrics);
    }

    /// Folds a child observer (e.g. one bandwidth-sweep point that ran
    /// with its own local observer inside a worker) into this one, with
    /// every unit label and phase name prefixed `"{prefix}/..."`.
    ///
    /// Same contract as [`Observer::absorb`]: call serially, in input
    /// order.
    pub fn merge_child(&self, prefix: &str, child: Observer) {
        let child_inner = child.inner.into_inner().expect("child observer lock");
        let mut inner = self.inner.lock().expect("observer lock");
        if self.tracing {
            inner
                .log
                .extend(child_inner.log.into_iter().map(|(u, e)| (format!("{prefix}/{u}"), e)));
            inner
                .spans
                .extend(child_inner.spans.into_iter().map(|(u, s)| (format!("{prefix}/{u}"), s)));
            inner.metrics.merge(&child_inner.metrics);
        }
        if self.profiling {
            inner.phases.extend(child_inner.phases.into_iter().map(|mut s| {
                s.name = format!("{prefix}/{}", s.name);
                s
            }));
        }
    }

    /// Records a finished phase span (no-op unless profiling).
    pub fn record_phase(&self, span: PhaseSpan) {
        if !self.profiling {
            return;
        }
        self.inner.lock().expect("observer lock").phases.push(span);
    }

    /// Runs `f` as a serial phase, recording its wall time as a
    /// one-worker span when profiling (busy = wall: serial code is never
    /// idle).
    pub fn phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.profiling {
            return f();
        }
        let started = Instant::now();
        let out = f();
        let wall = started.elapsed().as_secs_f64();
        self.record_phase(PhaseSpan {
            name: name.to_string(),
            wall_secs: wall,
            workers: 1,
            items: 0,
            busy_secs: wall,
        });
        out
    }

    /// Number of events absorbed so far.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("observer lock").log.len()
    }

    /// The merged event log as JSONL (one event per line, trailing
    /// newline). Byte-identical across runs and thread counts for the
    /// same seed.
    pub fn events_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("observer lock");
        let mut out = String::with_capacity(inner.log.len() * 96);
        for (unit, event) in &inner.log {
            out.push_str(&event.to_json_line(unit));
            out.push('\n');
        }
        out
    }

    /// Per-event-name totals, sorted by name.
    pub fn event_summary(&self) -> Vec<(&'static str, u64)> {
        let inner = self.inner.lock().expect("observer lock");
        let mut totals: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for (_, event) in &inner.log {
            *totals.entry(event.name).or_insert(0) += 1;
        }
        totals.into_iter().collect()
    }

    /// A snapshot of the merged metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.inner.lock().expect("observer lock").metrics.clone()
    }

    /// The phase spans recorded so far, in record order.
    pub fn phases(&self) -> Vec<PhaseSpan> {
        self.inner.lock().expect("observer lock").phases.clone()
    }

    /// Number of causal spans absorbed so far.
    pub fn span_count(&self) -> usize {
        self.inner.lock().expect("observer lock").spans.len()
    }

    /// The merged `(unit, span)` log, in absorb order — plan order, so
    /// identical at any thread count for the same seed.
    pub fn spans(&self) -> Vec<(String, Span)> {
        self.inner.lock().expect("observer lock").spans.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    #[test]
    fn disabled_observer_absorbs_nothing() {
        let obs = Observer::disabled_ref();
        let mut t = Trace::new(true); // unit traced, run not
        t.event(1, "player", "player.stall", vec![]);
        obs.absorb("session/0", t.take());
        assert_eq!(obs.event_count(), 0);
        assert_eq!(obs.events_jsonl(), "");
    }

    #[test]
    fn absorb_sorts_within_unit_and_keeps_unit_order() {
        let obs = Observer::new(true);
        let mut a = obs.trace();
        a.event(50, "player", "session.join", vec![]);
        a.event(10, "session", "session.start", vec![]);
        obs.absorb("session/0", a);
        let mut b = obs.trace();
        b.event(5, "session", "session.start", vec![]);
        obs.absorb("session/1", b);
        let jsonl = obs.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        // Within session/0, sim-time order; session/1 after despite t=5.
        assert!(lines[0].contains("\"t_us\":10"));
        assert!(lines[1].contains("\"t_us\":50"));
        assert!(lines[2].contains("session/1"));
    }

    #[test]
    fn merge_child_prefixes_units_and_phases() {
        let parent = Observer::with_flags(true, true);
        let child = Observer::with_flags(true, true);
        let mut t = child.trace();
        t.event(1, "shaper", "shaper.limit_applied", vec![("kbps", Field::U(500))]);
        child.absorb("session/2", t);
        child.record_phase(PhaseSpan {
            name: "dataset.plan".into(),
            wall_secs: 0.1,
            workers: 1,
            items: 6,
            busy_secs: 0.1,
        });
        parent.merge_child("limit-0.5", child);
        assert!(parent.events_jsonl().contains("\"unit\":\"limit-0.5/session/2\""));
        assert_eq!(parent.phases()[0].name, "limit-0.5/dataset.plan");
    }

    #[test]
    fn phase_helper_skips_timing_when_not_profiling() {
        let off = Observer::new(false);
        assert_eq!(off.phase("x", || 7), 7);
        assert!(off.phases().is_empty());
        let on = Observer::profile_only();
        assert_eq!(on.phase("x", || 7), 7);
        let spans = on.phases();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].workers, 1);
        assert!((spans[0].busy_secs - spans[0].wall_secs).abs() < 1e-12);
    }

    #[test]
    fn absorb_collects_closed_spans_in_plan_order() {
        let obs = Observer::new(true);
        let mut a = obs.trace();
        let root = a.span_start(100, "session", "session.join");
        a.span(100, 150, "api", "api.request", Some(root));
        a.span_end(root, 400);
        let open = a.span_start(500, "session", "session.join");
        let _ = open; // abandoned: dropped at absorb
        obs.absorb("session/0", a);
        let child = Observer::new(true);
        let mut b = child.trace();
        let r = b.span_start(7, "session", "session.join");
        b.span_end(r, 9);
        child.absorb("session/0", b);
        obs.merge_child("limit-2", child);
        let spans = obs.spans();
        assert_eq!(obs.span_count(), 3);
        assert_eq!(spans[0].0, "session/0");
        assert_eq!(spans[0].1.name, "session.join");
        assert_eq!(spans[1].1.parent, Some(spans[0].1.id));
        assert_eq!(spans[2].0, "limit-2/session/0");
    }

    #[test]
    fn event_summary_counts_by_name() {
        let obs = Observer::new(true);
        let mut t = obs.trace();
        t.event(1, "player", "player.stall", vec![]);
        t.event(2, "player", "player.stall", vec![]);
        t.event(3, "session", "session.start", vec![]);
        obs.absorb("session/0", t);
        assert_eq!(obs.event_summary(), vec![("player.stall", 2), ("session.start", 1)]);
    }
}
