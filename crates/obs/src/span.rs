//! Wall-clock phase spans with busy/idle accounting.
//!
//! Spans are the one deliberately *non-deterministic* part of the
//! observability layer: they measure real elapsed time of the plan,
//! execute, sweep, crawl and analysis phases. They are kept strictly
//! separate from the event log and metrics registry, which must stay
//! byte-identical across runs and thread counts.

use std::fmt::Write as _;

/// One profiled phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Phase name (`"dataset.plan"`, `"dataset.execute"`, `"crawl.deep"`).
    pub name: String,
    /// Wall-clock duration in seconds.
    pub wall_secs: f64,
    /// Worker threads that ran the phase (1 = serial code).
    pub workers: usize,
    /// Work items processed (0 for serial code spans without a work list).
    pub items: usize,
    /// Summed time the workers spent inside the work function, seconds.
    pub busy_secs: f64,
}

impl PhaseSpan {
    /// Summed worker idle time: capacity (`workers × wall`) minus busy.
    pub fn idle_secs(&self) -> f64 {
        (self.wall_secs * self.workers as f64 - self.busy_secs).max(0.0)
    }

    /// Busy fraction of total worker capacity, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_secs * self.workers as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.busy_secs / capacity).clamp(0.0, 1.0)
    }
}

/// Renders spans as a JSON array (for `BENCH_parallel.json`).
pub fn phases_json(spans: &[PhaseSpan]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"wall_secs\":{:.6},\"workers\":{},\"items\":{},\
             \"busy_secs\":{:.6},\"idle_secs\":{:.6}}}",
            crate::event::escape(&s.name),
            s.wall_secs,
            s.workers,
            s.items,
            s.busy_secs,
            s.idle_secs()
        );
    }
    out.push(']');
    out
}

/// Renders spans as an aligned text table.
pub fn phases_table(spans: &[PhaseSpan]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>8} {:>8} {:>10} {:>10} {:>6}",
        "phase", "wall(s)", "workers", "items", "busy(s)", "idle(s)", "util"
    );
    for s in spans {
        let _ = writeln!(
            out,
            "{:<28} {:>10.3} {:>8} {:>8} {:>10.3} {:>10.3} {:>5.0}%",
            s.name,
            s.wall_secs,
            s.workers,
            s.items,
            s.busy_secs,
            s.idle_secs(),
            s.utilization() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> PhaseSpan {
        PhaseSpan {
            name: "dataset.execute".into(),
            wall_secs: 2.0,
            workers: 4,
            items: 100,
            busy_secs: 6.0,
        }
    }

    #[test]
    fn idle_is_capacity_minus_busy() {
        let s = span();
        assert!((s.idle_secs() - 2.0).abs() < 1e-9);
        assert!((s.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idle_clamped_at_zero() {
        let s = PhaseSpan { busy_secs: 9.0, ..span() };
        assert_eq!(s.idle_secs(), 0.0);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn json_and_table_render() {
        let spans = [span()];
        let json = phases_json(&spans);
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"dataset.execute\""));
        assert!(json.contains("\"workers\":4"));
        let table = phases_table(&spans);
        assert!(table.contains("dataset.execute"));
        assert!(table.contains("75%"));
    }
}
