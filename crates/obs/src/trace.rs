//! Per-work-unit recorder.
//!
//! A [`Trace`] is owned by exactly one unit of work — a session, a crawl,
//! a service instance — so recording never takes a lock and never observes
//! another thread's interleaving. The orchestrator absorbs finished traces
//! into the run-wide [`crate::Observer`] *serially, in plan order*, which
//! is what makes the merged log byte-identical at any thread count.

use crate::event::{Event, Field};
use crate::metrics::{HistogramSpec, MetricsRegistry};

/// A per-unit event and metrics recorder. Every operation early-returns
/// when the trace is disabled, so the enabled check is the entire cost of
/// instrumentation on untraced runs.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

impl Trace {
    /// A permanently disabled trace (usable in `const` contexts).
    pub const fn disabled() -> Trace {
        Trace { enabled: false, events: Vec::new(), metrics: MetricsRegistry::new() }
    }

    /// A trace that records iff `enabled`.
    pub fn new(enabled: bool) -> Trace {
        Trace { enabled, events: Vec::new(), metrics: MetricsRegistry::new() }
    }

    /// Whether events/metrics are being recorded. Call sites that must
    /// allocate to build event fields should guard on this first.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at sim-time `t_us` (microseconds).
    pub fn event(
        &mut self,
        t_us: u64,
        subsystem: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(Event { t_us, subsystem, name, fields });
    }

    /// Adds `by` to a counter.
    pub fn count(&mut self, subsystem: &'static str, name: &'static str, by: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.count(subsystem, name, by);
    }

    /// Records one histogram observation.
    pub fn observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        spec: &'static HistogramSpec,
        value: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.metrics.observe(subsystem, name, spec, value);
    }

    /// Appends another trace's events (preserving their order) and folds
    /// in its metrics.
    pub fn absorb(&mut self, other: Trace) {
        if !self.enabled {
            return;
        }
        self.events.extend(other.events);
        self.metrics.merge(&other.metrics);
    }

    /// Drains the recorded events and metrics into a fresh trace, keeping
    /// this one enabled and empty (lets a long-lived owner like the
    /// service hand its records to each crawl that drives it).
    pub fn take(&mut self) -> Trace {
        Trace {
            enabled: self.enabled,
            events: std::mem::take(&mut self.events),
            metrics: std::mem::take(&mut self.metrics),
        }
    }

    /// Recorded events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Consumes the trace, returning its parts for merging.
    pub(crate) fn into_parts(self) -> (Vec<Event>, MetricsRegistry) {
        (self.events, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.event(1, "player", "player.stall", vec![]);
        t.count("player", "stalls", 1);
        t.observe("player", "stall_ms", &crate::MS_BUCKETS, 42);
        assert!(t.events().is_empty());
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(true);
        t.event(20, "hls", "hls.segment_fetch", vec![("bytes", Field::U(1000))]);
        t.event(10, "session", "session.start", vec![]);
        t.count("hls", "segments_fetched", 1);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].t_us, 20, "recording order preserved, not sorted here");
        assert_eq!(t.metrics().counter("hls", "segments_fetched"), 1);
    }

    #[test]
    fn take_leaves_an_enabled_empty_trace() {
        let mut t = Trace::new(true);
        t.count("service", "rate_limited", 1);
        let drained = t.take();
        assert_eq!(drained.metrics().counter("service", "rate_limited"), 1);
        assert!(t.metrics().is_empty());
        assert!(t.is_enabled());
        t.count("service", "rate_limited", 2);
        assert_eq!(t.metrics().counter("service", "rate_limited"), 2);
    }

    #[test]
    fn absorb_appends_and_merges() {
        let mut a = Trace::new(true);
        a.event(5, "crawler", "crawler.map_query", vec![]);
        a.count("crawler", "map_queries", 1);
        let mut b = Trace::new(true);
        b.event(7, "crawler", "crawler.rate_limited", vec![]);
        b.count("crawler", "map_queries", 2);
        a.absorb(b);
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.metrics().counter("crawler", "map_queries"), 3);
    }
}
