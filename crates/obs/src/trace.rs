//! Per-work-unit recorder.
//!
//! A [`Trace`] is owned by exactly one unit of work — a session, a crawl,
//! a service instance — so recording never takes a lock and never observes
//! another thread's interleaving. The orchestrator absorbs finished traces
//! into the run-wide [`crate::Observer`] *serially, in plan order*, which
//! is what makes the merged log byte-identical at any thread count.

use crate::causal::{Span, SpanId};
use crate::event::{Event, Field};
use crate::metrics::{HistogramSpec, MetricsRegistry};

/// A per-unit event, span and metrics recorder. Every operation
/// early-returns when the trace is disabled, so the enabled check is the
/// entire cost of instrumentation on untraced runs.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
    spans: Vec<Span>,
    /// Stack of currently-open span ids; the top is the parent of the
    /// next `span_start`.
    open: Vec<u32>,
    metrics: MetricsRegistry,
}

impl Trace {
    /// A permanently disabled trace (usable in `const` contexts).
    pub const fn disabled() -> Trace {
        Trace {
            enabled: false,
            events: Vec::new(),
            spans: Vec::new(),
            open: Vec::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// A trace that records iff `enabled`.
    pub fn new(enabled: bool) -> Trace {
        Trace { enabled, ..Trace::disabled() }
    }

    /// Whether events/metrics are being recorded. Call sites that must
    /// allocate to build event fields should guard on this first.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at sim-time `t_us` (microseconds).
    pub fn event(
        &mut self,
        t_us: u64,
        subsystem: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Field)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(Event { t_us, subsystem, name, fields });
    }

    /// Opens a span at sim-time `start_us`. Its parent is the innermost
    /// span still open on this trace. Returns the id to pass to
    /// [`Trace::span_end`]; spans never ended are dropped when the trace
    /// is drained.
    pub fn span_start(
        &mut self,
        start_us: u64,
        subsystem: &'static str,
        name: &'static str,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.spans.len() as u32;
        let parent = self.open.last().copied();
        self.spans.push(Span { id, parent, start_us, end_us: Span::OPEN, subsystem, name });
        self.open.push(id);
        SpanId(id)
    }

    /// Closes a span opened by [`Trace::span_start`] at sim-time `end_us`.
    /// Unknown or already-closed ids are ignored (a disabled trace hands
    /// out [`SpanId::NONE`]).
    pub fn span_end(&mut self, id: SpanId, end_us: u64) {
        if !self.enabled {
            return;
        }
        let Some(span) = self.spans.get_mut(id.0 as usize) else {
            return;
        };
        if span.is_closed() {
            return;
        }
        span.end_us = end_us;
        self.open.retain(|&open_id| open_id != id.0);
    }

    /// Records an already-finished span with an explicit parent, without
    /// touching the open-span stack. The natural fit for retrospective
    /// phases whose boundaries are only known after the fact, and for
    /// parentless side-channel spans (stalls, per-segment service work).
    pub fn span(
        &mut self,
        start_us: u64,
        end_us: u64,
        subsystem: &'static str,
        name: &'static str,
        parent: Option<SpanId>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = self.spans.len() as u32;
        let parent = parent.and_then(|p| (p != SpanId::NONE).then_some(p.0));
        self.spans.push(Span { id, parent, start_us, end_us, subsystem, name });
        SpanId(id)
    }

    /// The innermost span currently open, if any.
    pub fn current_span(&self) -> Option<SpanId> {
        self.open.last().map(|&id| SpanId(id))
    }

    /// Adds `by` to a counter.
    pub fn count(&mut self, subsystem: &'static str, name: &'static str, by: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.count(subsystem, name, by);
    }

    /// Records one histogram observation.
    pub fn observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        spec: &'static HistogramSpec,
        value: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.metrics.observe(subsystem, name, spec, value);
    }

    /// Records one observation into a quantile sketch — the constant-
    /// memory instrument for values whose quantiles matter (join times,
    /// stall ratios). Like every recorder, a no-op when disabled.
    pub fn sketch(&mut self, subsystem: &'static str, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.sketch_observe(subsystem, name, value);
    }

    /// Records one observation into a windowed sketch ring at sim-time
    /// `t_us` — the alerting layer's instrument (DESIGN.md §14). Like
    /// every recorder, a no-op when disabled.
    pub fn ring(&mut self, subsystem: &'static str, name: &'static str, t_us: u64, value: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.ring_observe(subsystem, name, t_us, value);
    }

    /// Appends another trace's events (preserving their order) and folds
    /// in its metrics. The other trace's span ids (and parent links) are
    /// offset past this trace's so ids stay unique per unit; its open
    /// spans are dropped — their handles died with it.
    pub fn absorb(&mut self, other: Trace) {
        if !self.enabled {
            return;
        }
        self.events.extend(other.events);
        // Renumber the other trace's closed spans to follow ours compactly
        // (so `id == index` keeps holding and later `span_start` calls on
        // this trace can't collide), remapping parent links through the
        // same table. Parents that were open (hence dropped) become None.
        let mut remap: Vec<Option<u32>> = vec![None; other.spans.len()];
        let first_free = self.spans.len() as u32;
        for (next, s) in (first_free..).zip(other.spans.iter().filter(|s| s.is_closed())) {
            remap[s.id as usize] = Some(next);
        }
        self.spans.extend(other.spans.into_iter().filter(Span::is_closed).map(|mut s| {
            s.id = remap[s.id as usize].expect("closed span was remapped");
            s.parent = s.parent.and_then(|p| remap[p as usize]);
            s
        }));
        self.metrics.merge(&other.metrics);
    }

    /// Drains the recorded events, spans and metrics into a fresh trace,
    /// keeping this one enabled and empty (lets a long-lived owner like
    /// the service hand its records to each crawl that drives it). Spans
    /// still open are dropped: ids don't survive a drain.
    pub fn take(&mut self) -> Trace {
        self.open.clear();
        let mut spans = std::mem::take(&mut self.spans);
        spans.retain(Span::is_closed);
        Trace {
            enabled: self.enabled,
            events: std::mem::take(&mut self.events),
            spans,
            open: Vec::new(),
            metrics: std::mem::take(&mut self.metrics),
        }
    }

    /// Recorded events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded spans, in id order. Open spans (`end_us == Span::OPEN`)
    /// are still present here; they are dropped at drain time.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Consumes the trace, returning its parts for merging. Open spans
    /// are dropped here — a span nobody ended (e.g. the join span of a
    /// session that never joined) is not data.
    pub(crate) fn into_parts(self) -> (Vec<Event>, Vec<Span>, MetricsRegistry) {
        let mut spans = self.spans;
        spans.retain(Span::is_closed);
        (self.events, spans, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.event(1, "player", "player.stall", vec![]);
        t.count("player", "stalls", 1);
        t.observe("player", "stall_ms", &crate::MS_BUCKETS, 42);
        t.sketch("player", "join_time_us", 1_000_000);
        let id = t.span_start(0, "session", "session.join");
        assert_eq!(id, SpanId::NONE);
        t.span_end(id, 10);
        t.span(0, 5, "rtmp", "rtmp.handshake", None);
        assert!(t.events().is_empty());
        assert!(t.spans().is_empty());
        assert!(t.metrics().is_empty());
        assert!(t.current_span().is_none());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new(true);
        t.event(20, "hls", "hls.segment_fetch", vec![("bytes", Field::U(1000))]);
        t.event(10, "session", "session.start", vec![]);
        t.count("hls", "segments_fetched", 1);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].t_us, 20, "recording order preserved, not sorted here");
        assert_eq!(t.metrics().counter("hls", "segments_fetched"), 1);
    }

    #[test]
    fn span_stack_assigns_parents() {
        let mut t = Trace::new(true);
        let root = t.span_start(0, "session", "session.join");
        assert_eq!(t.current_span(), Some(root));
        let child = t.span_start(5, "api", "api.request");
        t.span_end(child, 10);
        assert_eq!(t.current_span(), Some(root), "closing a child pops it off the stack");
        let sibling = t.span(10, 40, "rtmp", "rtmp.buffering", t.current_span());
        t.span_end(root, 40);
        assert!(t.current_span().is_none());
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[child.0 as usize].parent, Some(root.0));
        assert_eq!(spans[sibling.0 as usize].parent, Some(root.0));
        assert_eq!(spans[root.0 as usize].duration_us(), 40);
    }

    #[test]
    fn open_spans_are_dropped_at_drain() {
        let mut t = Trace::new(true);
        let root = t.span_start(0, "session", "session.join");
        let child = t.span_start(2, "api", "api.request");
        t.span_end(child, 7);
        let _ = root; // never ended: the session never joined
        let drained = t.take();
        assert_eq!(drained.spans().len(), 1);
        assert_eq!(drained.spans()[0].name, "api.request");
        assert!(t.spans().is_empty());
        assert!(t.current_span().is_none());
    }

    #[test]
    fn take_leaves_an_enabled_empty_trace() {
        let mut t = Trace::new(true);
        t.count("service", "rate_limited", 1);
        let drained = t.take();
        assert_eq!(drained.metrics().counter("service", "rate_limited"), 1);
        assert!(t.metrics().is_empty());
        assert!(t.is_enabled());
        t.count("service", "rate_limited", 2);
        assert_eq!(t.metrics().counter("service", "rate_limited"), 2);
    }

    #[test]
    fn absorb_appends_and_merges() {
        let mut a = Trace::new(true);
        a.event(5, "crawler", "crawler.map_query", vec![]);
        a.count("crawler", "map_queries", 1);
        let mut b = Trace::new(true);
        b.event(7, "crawler", "crawler.rate_limited", vec![]);
        b.count("crawler", "map_queries", 2);
        a.sketch("api", "latency_us", 100);
        b.sketch("api", "latency_us", 9_000);
        a.absorb(b);
        assert_eq!(a.events().len(), 2);
        assert_eq!(a.metrics().counter("crawler", "map_queries"), 3);
        assert_eq!(a.metrics().sketch("api", "latency_us").unwrap().count(), 2);
    }

    #[test]
    fn absorb_offsets_span_ids_and_parents() {
        let mut a = Trace::new(true);
        let ra = a.span_start(0, "session", "session.join");
        a.span_end(ra, 100);
        let mut b = Trace::new(true);
        let rb = b.span_start(10, "crawler", "crawler.sweep");
        b.span(20, 30, "api", "api.request", Some(rb));
        b.span_end(rb, 50);
        let open = b.span_start(60, "crawler", "crawler.sweep");
        let _ = open; // left open: must not survive the merge
        a.absorb(b);
        let spans = a.spans();
        assert_eq!(spans.len(), 3, "open span dropped");
        assert_eq!(spans[1].id, 1, "absorbed root re-identified past a's spans");
        assert_eq!(spans[2].parent, Some(1), "parent link offset with it");
    }
}
