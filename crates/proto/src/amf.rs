//! AMF0 (Action Message Format) encoding — the serialization RTMP command
//! messages use (`connect`, `createStream`, `play`, `publish`, `onStatus`).
//!
//! Only the types those commands need are implemented: Number, Boolean,
//! String, Object, Null. That matches what real RTMP servers require and
//! keeps the decoder small enough to audit.

use crate::ProtoError;
use std::collections::BTreeMap;

/// An AMF0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Amf0 {
    /// Type marker 0x00: IEEE-754 double.
    Number(f64),
    /// Type marker 0x01.
    Boolean(bool),
    /// Type marker 0x02: UTF-8, u16 length prefix.
    String(String),
    /// Type marker 0x03: key/value pairs ending with 0x000009.
    Object(BTreeMap<String, Amf0>),
    /// Type marker 0x05.
    Null,
}

const MARKER_NUMBER: u8 = 0x00;
const MARKER_BOOLEAN: u8 = 0x01;
const MARKER_STRING: u8 = 0x02;
const MARKER_OBJECT: u8 = 0x03;
const MARKER_NULL: u8 = 0x05;
const OBJECT_END: [u8; 3] = [0x00, 0x00, 0x09];

impl Amf0 {
    /// Builds an object from string keys.
    pub fn object<I: IntoIterator<Item = (&'static str, Amf0)>>(pairs: I) -> Amf0 {
        Amf0::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends the encoding of `self` to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Amf0::Number(n) => {
                out.push(MARKER_NUMBER);
                out.extend_from_slice(&n.to_be_bytes());
            }
            Amf0::Boolean(b) => {
                out.push(MARKER_BOOLEAN);
                out.push(*b as u8);
            }
            Amf0::String(s) => {
                out.push(MARKER_STRING);
                encode_utf8(s, out);
            }
            Amf0::Object(map) => {
                out.push(MARKER_OBJECT);
                for (k, v) in map {
                    encode_utf8(k, out);
                    v.encode_into(out);
                }
                out.extend_from_slice(&OBJECT_END);
            }
            Amf0::Null => out.push(MARKER_NULL),
        }
    }

    /// Encodes to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one value from the front of `bytes`; returns the value and
    /// the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Amf0, usize), ProtoError> {
        let marker = *bytes.first().ok_or(ProtoError::Truncated)?;
        let rest = &bytes[1..];
        match marker {
            MARKER_NUMBER => {
                let raw: [u8; 8] =
                    rest.get(..8).ok_or(ProtoError::Truncated)?.try_into().expect("8 bytes");
                Ok((Amf0::Number(f64::from_be_bytes(raw)), 9))
            }
            MARKER_BOOLEAN => {
                let b = *rest.first().ok_or(ProtoError::Truncated)?;
                Ok((Amf0::Boolean(b != 0), 2))
            }
            MARKER_STRING => {
                let (s, n) = decode_utf8(rest)?;
                Ok((Amf0::String(s), 1 + n))
            }
            MARKER_OBJECT => {
                let mut map = BTreeMap::new();
                let mut pos = 0;
                loop {
                    if rest[pos..].starts_with(&OBJECT_END) {
                        return Ok((Amf0::Object(map), 1 + pos + 3));
                    }
                    let (key, kn) = decode_utf8(&rest[pos..])?;
                    pos += kn;
                    let (val, vn) = Amf0::decode(&rest[pos..])?;
                    pos += vn;
                    map.insert(key, val);
                    if pos > rest.len() {
                        return Err(ProtoError::Truncated);
                    }
                }
            }
            MARKER_NULL => Ok((Amf0::Null, 1)),
            m => Err(ProtoError::Malformed(format!("unsupported AMF0 marker 0x{m:02x}"))),
        }
    }

    /// Decodes a whole buffer as a sequence of values (a command payload).
    pub fn decode_all(mut bytes: &[u8]) -> Result<Vec<Amf0>, ProtoError> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (v, n) = Amf0::decode(bytes)?;
            out.push(v);
            bytes = &bytes[n..];
        }
        Ok(out)
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Amf0::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Amf0::Number(n) => Some(*n),
            _ => None,
        }
    }
}

fn encode_utf8(s: &str, out: &mut Vec<u8>) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "AMF0 short string too long");
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn decode_utf8(bytes: &[u8]) -> Result<(String, usize), ProtoError> {
    let len_raw: [u8; 2] =
        bytes.get(..2).ok_or(ProtoError::Truncated)?.try_into().expect("2 bytes");
    let len = u16::from_be_bytes(len_raw) as usize;
    let data = bytes.get(2..2 + len).ok_or(ProtoError::Truncated)?;
    let s = std::str::from_utf8(data)
        .map_err(|_| ProtoError::Malformed("invalid UTF-8 in AMF0 string".to_string()))?;
    Ok((s.to_string(), 2 + len))
}

/// Encodes an RTMP command payload: command name, transaction id, then the
/// command object (or Null) and optional extra arguments.
pub fn encode_command(name: &str, transaction_id: f64, args: &[Amf0]) -> Vec<u8> {
    let mut out = Vec::new();
    Amf0::String(name.to_string()).encode_into(&mut out);
    Amf0::Number(transaction_id).encode_into(&mut out);
    for a in args {
        a.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Amf0) {
        let enc = v.encode();
        let (dec, n) = Amf0::decode(&enc).unwrap();
        assert_eq!(n, enc.len());
        assert_eq!(dec, v);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(Amf0::Number(3.25));
        roundtrip(Amf0::Number(-0.0));
        roundtrip(Amf0::Boolean(true));
        roundtrip(Amf0::Boolean(false));
        roundtrip(Amf0::String("hello".into()));
        roundtrip(Amf0::String(String::new()));
        roundtrip(Amf0::Null);
    }

    #[test]
    fn roundtrip_object() {
        roundtrip(Amf0::object([
            ("app", Amf0::String("live".into())),
            ("tcUrl", Amf0::String("rtmp://vidman-eu-central-1.periscope.tv/live".into())),
            ("fpad", Amf0::Boolean(false)),
            ("videoCodecs", Amf0::Number(252.0)),
        ]));
    }

    #[test]
    fn nested_object() {
        roundtrip(Amf0::object([("outer", Amf0::object([("inner", Amf0::Number(1.0))]))]));
    }

    #[test]
    fn known_number_encoding() {
        // 1.0 encodes as marker 0x00 + IEEE-754 BE.
        assert_eq!(Amf0::Number(1.0).encode(), vec![0x00, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn known_string_encoding() {
        assert_eq!(Amf0::String("ab".into()).encode(), vec![0x02, 0x00, 0x02, b'a', b'b']);
    }

    #[test]
    fn command_payload_roundtrip() {
        let payload =
            encode_command("connect", 1.0, &[Amf0::object([("app", Amf0::String("live".into()))])]);
        let vals = Amf0::decode_all(&payload).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0].as_str(), Some("connect"));
        assert_eq!(vals[1].as_number(), Some(1.0));
        assert!(matches!(vals[2], Amf0::Object(_)));
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert_eq!(Amf0::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Amf0::decode(&[0x00, 0x01]), Err(ProtoError::Truncated));
        assert_eq!(Amf0::decode(&[0x02, 0x00, 0x05, b'a']), Err(ProtoError::Truncated));
        // Object with no end marker.
        assert!(Amf0::decode(&[0x03, 0x00, 0x01, b'k', 0x05]).is_err());
    }

    #[test]
    fn unsupported_marker_rejected() {
        assert!(matches!(Amf0::decode(&[0x0a]), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn decode_all_rejects_trailing_garbage() {
        let mut bytes = Amf0::Null.encode();
        bytes.push(0xff);
        assert!(Amf0::decode_all(&bytes).is_err());
    }
}
