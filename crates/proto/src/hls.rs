//! HLS media playlists (M3U8), RFC 8216 subset.
//!
//! Periscope falls back to HLS through the Fastly CDN when a broadcast gets
//! popular (§3, §5). The paper found the most common segment duration to be
//! 3.6 s (60% of cases), ranging 3–6 s; the client re-fetches the live
//! playlist and pulls each new segment over HTTP. This module renders and
//! parses the playlists that flow over that path.

use crate::ProtoError;

/// One segment entry in a media playlist.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentEntry {
    /// EXTINF duration in seconds.
    pub duration_s: f64,
    /// Segment URI (relative).
    pub uri: String,
}

/// A live (sliding-window) media playlist.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaPlaylist {
    /// Protocol version (always 3 here: floating EXTINF needs ≥3).
    pub version: u32,
    /// EXT-X-TARGETDURATION: max segment duration, rounded up.
    pub target_duration_s: u32,
    /// EXT-X-MEDIA-SEQUENCE of the first entry.
    pub media_sequence: u64,
    /// The window of currently advertised segments.
    pub segments: Vec<SegmentEntry>,
    /// Whether EXT-X-ENDLIST is present (broadcast over).
    pub ended: bool,
}

impl MediaPlaylist {
    /// Creates an empty live playlist.
    pub fn new(target_duration_s: u32) -> Self {
        MediaPlaylist {
            version: 3,
            target_duration_s,
            media_sequence: 0,
            segments: Vec::new(),
            ended: false,
        }
    }

    /// Appends a segment, sliding the window to at most `window` entries.
    pub fn push_segment(&mut self, entry: SegmentEntry, window: usize) {
        self.segments.push(entry);
        while self.segments.len() > window {
            self.segments.remove(0);
            self.media_sequence += 1;
        }
    }

    /// Sequence number of the last advertised segment, if any.
    pub fn last_sequence(&self) -> Option<u64> {
        if self.segments.is_empty() {
            None
        } else {
            Some(self.media_sequence + self.segments.len() as u64 - 1)
        }
    }

    /// Renders M3U8 text.
    pub fn render(&self) -> String {
        let mut out = String::from("#EXTM3U\n");
        out.push_str(&format!("#EXT-X-VERSION:{}\n", self.version));
        out.push_str(&format!("#EXT-X-TARGETDURATION:{}\n", self.target_duration_s));
        out.push_str(&format!("#EXT-X-MEDIA-SEQUENCE:{}\n", self.media_sequence));
        for seg in &self.segments {
            out.push_str(&format!("#EXTINF:{:.3},\n", seg.duration_s));
            out.push_str(&seg.uri);
            out.push('\n');
        }
        if self.ended {
            out.push_str("#EXT-X-ENDLIST\n");
        }
        out
    }

    /// Parses M3U8 text.
    pub fn parse(text: &str) -> Result<MediaPlaylist, ProtoError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("#EXTM3U") {
            return Err(ProtoError::Malformed("missing #EXTM3U header".to_string()));
        }
        let mut pl = MediaPlaylist::new(0);
        let mut pending_duration: Option<f64> = None;
        for line in lines {
            if let Some(v) = line.strip_prefix("#EXT-X-VERSION:") {
                pl.version =
                    v.parse().map_err(|_| ProtoError::Malformed("bad version".to_string()))?;
            } else if let Some(v) = line.strip_prefix("#EXT-X-TARGETDURATION:") {
                pl.target_duration_s = v
                    .parse()
                    .map_err(|_| ProtoError::Malformed("bad target duration".to_string()))?;
            } else if let Some(v) = line.strip_prefix("#EXT-X-MEDIA-SEQUENCE:") {
                pl.media_sequence = v
                    .parse()
                    .map_err(|_| ProtoError::Malformed("bad media sequence".to_string()))?;
            } else if let Some(v) = line.strip_prefix("#EXTINF:") {
                let duration = v
                    .split(',')
                    .next()
                    .and_then(|d| d.parse::<f64>().ok())
                    .ok_or_else(|| ProtoError::Malformed("bad EXTINF".to_string()))?;
                pending_duration = Some(duration);
            } else if line == "#EXT-X-ENDLIST" {
                pl.ended = true;
            } else if line.starts_with('#') {
                // Unknown tags are ignored per spec.
            } else {
                let duration = pending_duration.take().ok_or_else(|| {
                    ProtoError::Malformed(format!("segment '{line}' without EXTINF"))
                })?;
                pl.segments.push(SegmentEntry { duration_s: duration, uri: line.to_string() });
            }
        }
        if pl.target_duration_s == 0 {
            return Err(ProtoError::Malformed("missing EXT-X-TARGETDURATION".to_string()));
        }
        Ok(pl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(d: f64, uri: &str) -> SegmentEntry {
        SegmentEntry { duration_s: d, uri: uri.to_string() }
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut pl = MediaPlaylist::new(4);
        pl.push_segment(seg(3.6, "seg_0.ts"), 5);
        pl.push_segment(seg(3.6, "seg_1.ts"), 5);
        pl.push_segment(seg(4.2, "seg_2.ts"), 5);
        let parsed = MediaPlaylist::parse(&pl.render()).unwrap();
        assert_eq!(parsed, pl);
    }

    #[test]
    fn window_slides_and_sequence_advances() {
        let mut pl = MediaPlaylist::new(4);
        for i in 0..8 {
            pl.push_segment(seg(3.6, &format!("seg_{i}.ts")), 3);
        }
        assert_eq!(pl.segments.len(), 3);
        assert_eq!(pl.media_sequence, 5);
        assert_eq!(pl.segments[0].uri, "seg_5.ts");
        assert_eq!(pl.last_sequence(), Some(7));
    }

    #[test]
    fn endlist_marks_ended() {
        let mut pl = MediaPlaylist::new(4);
        pl.push_segment(seg(3.0, "a.ts"), 5);
        pl.ended = true;
        let parsed = MediaPlaylist::parse(&pl.render()).unwrap();
        assert!(parsed.ended);
    }

    #[test]
    fn empty_playlist_roundtrip() {
        let pl = MediaPlaylist::new(4);
        let parsed = MediaPlaylist::parse(&pl.render()).unwrap();
        assert!(parsed.segments.is_empty());
        assert_eq!(parsed.last_sequence(), None);
    }

    #[test]
    fn parse_rejects_missing_header() {
        assert!(MediaPlaylist::parse("#EXT-X-VERSION:3\n").is_err());
    }

    #[test]
    fn parse_rejects_segment_without_extinf() {
        let text = "#EXTM3U\n#EXT-X-TARGETDURATION:4\nseg.ts\n";
        assert!(MediaPlaylist::parse(text).is_err());
    }

    #[test]
    fn parse_rejects_missing_target_duration() {
        let text = "#EXTM3U\n#EXT-X-VERSION:3\n";
        assert!(MediaPlaylist::parse(text).is_err());
    }

    #[test]
    fn unknown_tags_ignored() {
        let text = "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXT-X-SOMETHING:new\n#EXTINF:3.600,\nx.ts\n";
        let pl = MediaPlaylist::parse(text).unwrap();
        assert_eq!(pl.segments.len(), 1);
    }

    #[test]
    fn extinf_with_title_field() {
        let text = "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:3.6,some title\nx.ts\n";
        let pl = MediaPlaylist::parse(text).unwrap();
        assert!((pl.segments[0].duration_s - 3.6).abs() < 1e-9);
    }

    #[test]
    fn typical_periscope_durations() {
        // The paper's most common segment duration: 3.6 s.
        let mut pl = MediaPlaylist::new(6);
        for i in 0..3 {
            pl.push_segment(seg(3.6, &format!("chunk_{i}.ts")), 10);
        }
        let text = pl.render();
        assert!(text.contains("#EXTINF:3.600,"));
        assert!(text.contains("#EXT-X-TARGETDURATION:6"));
    }
}
