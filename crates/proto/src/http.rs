//! Minimal HTTP/1.1 request/response framing.
//!
//! Three uses in the reproduction, all from the paper: the JSON API POSTs to
//! `https://api.periscope.tv/api/v2/<apiRequest>` (§3), HLS playlist/segment
//! GETs served by the Fastly-like CDN (§3, §5), and the HTTP 429 "Too many
//! requests" responses the crawler must pace itself around (§4).

use crate::ProtoError;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, e.g. `GET` or `POST`.
    pub method: String,
    /// Request target (path + query).
    pub path: String,
    /// Header name/value pairs in order; names stored lowercase.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request with no body.
    pub fn get(path: impl Into<String>) -> Self {
        Request { method: "GET".into(), path: path.into(), headers: Vec::new(), body: Vec::new() }
    }

    /// Builds a POST request with a JSON body (sets content-type).
    pub fn post_json(path: impl Into<String>, body: impl Into<String>) -> Self {
        let body: String = body.into();
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// Adds a header (name lowercased).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Looks up the first header with this (case-insensitive) name.
    pub fn get_header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Serializes to wire bytes (adds content-length).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.path).into_bytes();
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes into a request; requires the complete message.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let (start_line, headers, body) = split_message(bytes)?;
        let mut parts = start_line.splitn(3, ' ');
        let method = parts.next().filter(|s| !s.is_empty()).ok_or_else(bad_start)?.to_string();
        let path = parts.next().ok_or_else(bad_start)?.to_string();
        let version = parts.next().ok_or_else(bad_start)?;
        if !version.starts_with("HTTP/1.") {
            return Err(ProtoError::Malformed(format!("bad version '{version}'")));
        }
        Ok(Request { method, path, headers, body })
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercase.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn ok_json(body: impl Into<String>) -> Self {
        let body: String = body.into();
        Response {
            status: 200,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// 200 with opaque bytes (e.g. an MPEG-TS segment).
    pub fn ok_bytes(content_type: &str, body: Vec<u8>) -> Self {
        Response { status: 200, headers: vec![("content-type".into(), content_type.into())], body }
    }

    /// 429 Too Many Requests — the crawler's rate-limit signal (§4).
    pub fn too_many_requests() -> Self {
        Response { status: 429, headers: Vec::new(), body: b"Too many requests".to_vec() }
    }

    /// 404 Not Found.
    pub fn not_found() -> Self {
        Response { status: 404, headers: Vec::new(), body: Vec::new() }
    }

    /// 503 Service Unavailable — what an injected backend fault looks like
    /// on the wire (DESIGN.md §8).
    pub fn server_error() -> Self {
        Response { status: 503, headers: Vec::new(), body: b"Service unavailable".to_vec() }
    }

    /// Standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Looks up the first header with this (case-insensitive) name.
    pub fn get_header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Serializes to wire bytes (adds content-length).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).into_bytes();
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses wire bytes into a response; requires the complete message.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let (start_line, headers, body) = split_message(bytes)?;
        let mut parts = start_line.splitn(3, ' ');
        let version = parts.next().ok_or_else(bad_start)?;
        if !version.starts_with("HTTP/1.") {
            return Err(ProtoError::Malformed(format!("bad version '{version}'")));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ProtoError::Malformed("bad status code".to_string()))?;
        Ok(Response { status, headers, body })
    }
}

fn bad_start() -> ProtoError {
    ProtoError::Malformed("bad start line".to_string())
}

/// Header name/value list as parsed off the wire.
type Headers = Vec<(String, String)>;

/// Splits a full HTTP message into (start line, headers, body), checking
/// content-length.
fn split_message(bytes: &[u8]) -> Result<(String, Headers, Vec<u8>), ProtoError> {
    let sep = find_subsequence(bytes, b"\r\n\r\n").ok_or(ProtoError::Truncated)?;
    let head = std::str::from_utf8(&bytes[..sep])
        .map_err(|_| ProtoError::Malformed("non-UTF-8 header block".to_string()))?;
    let mut lines = head.split("\r\n");
    let start_line = lines.next().ok_or_else(bad_start)?.to_string();
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ProtoError::Malformed(format!("bad header line '{line}'")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| ProtoError::Malformed("bad content-length".to_string()))?,
            );
        }
        headers.push((name, value));
    }
    let body = bytes[sep + 4..].to_vec();
    if let Some(cl) = content_length {
        if body.len() < cl {
            return Err(ProtoError::Truncated);
        }
        if body.len() > cl {
            return Err(ProtoError::Malformed("body longer than content-length".to_string()));
        }
    }
    Ok((start_line, headers, body))
}

/// Byte-level subsequence search.
pub fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post_json("/api/v2/mapGeoBroadcastFeed", r#"{"a":1}"#)
            .header("X-Session", "abc");
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.method, "POST");
        assert_eq!(decoded.path, "/api/v2/mapGeoBroadcastFeed");
        assert_eq!(decoded.body, br#"{"a":1}"#);
        assert_eq!(decoded.get_header("x-session"), Some("abc"));
        assert_eq!(decoded.get_header("content-type"), Some("application/json"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok_json(r#"{"broadcasts":[]}"#);
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, 200);
        assert_eq!(decoded.body, br#"{"broadcasts":[]}"#);
    }

    #[test]
    fn rate_limit_response() {
        let resp = Response::too_many_requests();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.reason(), "Too Many Requests");
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, 429);
    }

    #[test]
    fn server_error_response() {
        let resp = Response::server_error();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.reason(), "Service Unavailable");
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.status, 503);
    }

    #[test]
    fn binary_body_roundtrip() {
        let body: Vec<u8> = (0..=255).collect();
        let resp = Response::ok_bytes("video/mp2t", body.clone());
        let decoded = Response::decode(&resp.encode()).unwrap();
        assert_eq!(decoded.body, body);
        assert_eq!(decoded.get_header("content-type"), Some("video/mp2t"));
    }

    #[test]
    fn truncated_body_detected() {
        let mut bytes = Response::ok_json("{\"k\":1}").encode();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(Response::decode(&bytes), Err(ProtoError::Truncated));
    }

    #[test]
    fn missing_header_separator_is_truncated() {
        assert_eq!(Request::decode(b"GET / HTTP/1.1\r\n"), Err(ProtoError::Truncated));
    }

    #[test]
    fn oversized_body_rejected() {
        let bytes = b"HTTP/1.1 200 OK\r\ncontent-length: 1\r\n\r\nab".to_vec();
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        assert!(Request::decode(b"GET / SPDY/9\r\n\r\n").is_err());
    }

    #[test]
    fn header_names_case_insensitive() {
        let req = Request::decode(b"GET /x HTTP/1.1\r\nX-ToKen: abc\r\n\r\n").unwrap();
        assert_eq!(req.get_header("x-token"), Some("abc"));
        assert_eq!(req.get_header("X-TOKEN"), Some("abc"));
    }

    #[test]
    fn get_constructor() {
        let req = Request::get("/playlist.m3u8");
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.method, "GET");
        assert!(decoded.body.is_empty());
    }

    #[test]
    fn find_subsequence_cases() {
        assert_eq!(find_subsequence(b"abcdef", b"cd"), Some(2));
        assert_eq!(find_subsequence(b"abc", b"x"), None);
        assert_eq!(find_subsequence(b"ab", b"abc"), None);
        assert_eq!(find_subsequence(b"abc", b""), None);
    }
}
