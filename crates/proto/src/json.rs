//! JSON value type, parser and serializer.
//!
//! The Periscope API exchanges JSON-encoded requests and responses (§3,
//! Table 1). Object keys are kept in a `BTreeMap` so serialization is
//! deterministic — byte-identical API traffic across runs with the same
//! seed.

use crate::ProtoError;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Gets `self[key]` if this is an object containing the key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64 if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ProtoError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ProtoError::Malformed(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, ProtoError> {
        let b = self.peek().ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ProtoError> {
        let got = self.bump()?;
        if got != b {
            return Err(ProtoError::Malformed(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ProtoError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(ProtoError::Malformed(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        match self.peek().ok_or(ProtoError::Truncated)? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(ProtoError::Malformed(format!(
                "unexpected '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(s),
                b'\\' => match self.bump()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let cp = self.hex4()?;
                        // Handle surrogate pairs for non-BMP characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(ProtoError::Malformed("bad low surrogate".to_string()));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(cp)
                        };
                        s.push(c.ok_or_else(|| {
                            ProtoError::Malformed("invalid unicode escape".to_string())
                        })?);
                    }
                    e => {
                        return Err(ProtoError::Malformed(format!("bad escape '\\{}'", e as char)))
                    }
                },
                _ => {
                    // Re-decode UTF-8 from the source bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(ProtoError::Truncated);
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ProtoError::Malformed("invalid UTF-8".to_string()))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ProtoError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| ProtoError::Malformed("bad hex digit".to_string()))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ProtoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ProtoError::Malformed(format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, ProtoError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(ProtoError::Malformed(format!(
                        "expected ',' or ']', got '{}'",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ProtoError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(ProtoError::Malformed(format!(
                        "expected ',' or '}}', got '{}'",
                        c as char
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-1", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_json(), src);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn object_keys_sorted_on_output() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""line\nquote\"tab\tback\\""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nquote\"tab\tback\\");
        // Round-trip re-escapes.
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn raw_utf8_passthrough() {
        let v = parse("\"héllo → 😀\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo → 😀");
    }

    #[test]
    fn numbers_scientific() {
        assert_eq!(parse("1e3").unwrap().as_f64().unwrap(), 1000.0);
        assert_eq!(parse("-2.5E-2").unwrap().as_f64().unwrap(), -0.025);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 x").is_err());
        assert!(parse("{} []").is_err());
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(parse("{\"a\":"), Err(ProtoError::Truncated)));
        assert!(parse("[1,").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("nul").is_err());
        assert!(parse("{a:1}").is_err());
        assert!(parse("[1 2]").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap().to_json(), "[]");
        assert_eq!(parse("{}").unwrap().to_json(), "{}");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3u64).to_json(), "3");
        assert_eq!(Value::from("x").to_json(), "\"x\"");
        assert_eq!(Value::from(vec![1u64, 2]).to_json(), "[1,2]");
        let obj = Value::object([("k", Value::from(true))]);
        assert_eq!(obj.to_json(), "{\"k\":true}");
    }

    #[test]
    fn control_chars_escaped_on_output() {
        let v = Value::str("\u{1}");
        assert_eq!(v.to_json(), "\"\\u0001\"");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
