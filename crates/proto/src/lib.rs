#![warn(missing_docs)]

//! Wire protocols of the Periscope platform, implemented from scratch.
//!
//! §3 of the paper: the app talks JSON-over-HTTPS POSTs to
//! `api.periscope.tv/api/v2/…`; public video travels over plaintext RTMP
//! (port 80) or HLS (HTTP + MPEG-TS segments); chat uses WebSockets. This
//! crate provides each of those layers:
//!
//! * [`json`] — a self-contained JSON value type, parser and serializer
//!   (the API layer is a deliverable, so no `serde_json`);
//! * [`http`] — HTTP/1.1 request/response framing, enough for the API, HLS
//!   segment fetches, and the 429 rate-limit responses the crawler must
//!   handle;
//! * [`amf`] — the AMF0 subset RTMP command messages are encoded in;
//! * [`rtmp`] — RTMP handshake and chunk-stream (de)multiplexing;
//! * [`hls`] — M3U8 media playlist generation and parsing;
//! * [`ws`] — WebSocket frame encode/decode for the chat channel;
//! * [`srt`] — SRT-flavoured unreliable ingest: handshake with cookie
//!   exchange, wrapping sequence numbers, compressed-range NAKs, bounded
//!   retransmit queue, latency-window drop (DESIGN.md §12);
//! * [`tls`] — the record-layer model behind RTMPS/HTTPS for private
//!   broadcasts and the API (sizes, overhead, and opacity — not crypto).
//!
//! Every encoder has a matching decoder and round-trip property tests: the
//! capture-analysis pipeline (`pscp-media`) parses exactly these bytes, the
//! way the paper ran wireshark dissectors over tcpdump captures.

pub mod amf;
pub mod hls;
pub mod http;
pub mod json;
pub mod rtmp;
pub mod srt;
pub mod tls;
pub mod ws;

/// Errors shared by the protocol decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Input ended before a complete element was parsed.
    Truncated,
    /// Structurally invalid input.
    Malformed(String),
    /// A protocol-level constraint was violated.
    Protocol(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated input"),
            ProtoError::Malformed(m) => write!(f, "malformed input: {m}"),
            ProtoError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}
