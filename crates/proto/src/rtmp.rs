//! RTMP: handshake and chunk-stream layer.
//!
//! Periscope delivers non-popular live broadcasts over plaintext RTMP on
//! port 80 (§3) because it gives the lowest delivery latency (§5.1): the
//! ingest server can push each audio/video message to viewers the moment it
//! arrives. This module implements the protocol pieces the reproduction
//! exercises end-to-end:
//!
//! * the 1536-byte C0/C1/C2 – S0/S1/S2 handshake;
//! * message framing over chunk streams (basic headers fmt 0–3, default
//!   chunk size 128 bytes, `SetChunkSize`, extended timestamps);
//! * the message types the Periscope data path uses (audio, video, AMF0
//!   commands/data, control).
//!
//! The viewer-side capture analysis (`pscp-media`) de-chunks these exact
//! bytes to reconstruct the elementary streams, mirroring the paper's use of
//! the wireshark RTMP dissector.
//!
//! The chunk layer is zero-copy on both sides: [`Chunker::write_ref`]
//! serializes a borrowed payload straight into a caller-provided buffer, and
//! [`Dechunker::next_view`] yields reassembled messages as [`MessageView`]s
//! borrowing an internal arena, so the per-packet hot loop allocates
//! nothing in steady state. The owned [`Message`]/`pop` API remains for
//! callers that need to retain messages.

use crate::ProtoError;

/// RTMP protocol version byte (C0/S0).
pub const RTMP_VERSION: u8 = 3;
/// Size of the C1/S1/C2/S2 handshake blobs.
pub const HANDSHAKE_SIZE: usize = 1536;
/// Default maximum chunk payload size until a SetChunkSize message.
pub const DEFAULT_CHUNK_SIZE: usize = 128;

/// Number of addressable basic-header chunk streams (ids 0..=63; only
/// 2..=63 are valid on the wire, which lets per-stream state live in flat
/// arrays instead of hash maps).
const MAX_CHUNK_STREAMS: usize = 64;

/// RTMP message types used by the Periscope data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// 1 — changes the chunk size for the sender's subsequent chunks.
    SetChunkSize,
    /// 3 — acknowledgement.
    Acknowledgement,
    /// 4 — user control events (stream begin, ping, buffer length).
    UserControl,
    /// 5 — window acknowledgement size.
    WindowAckSize,
    /// 6 — set peer bandwidth.
    SetPeerBandwidth,
    /// 8 — audio data (AAC).
    Audio,
    /// 9 — video data (AVC).
    Video,
    /// 18 — AMF0 data message (e.g. onMetaData).
    DataAmf0,
    /// 20 — AMF0 command message (connect, play, publish, onStatus).
    CommandAmf0,
}

impl MessageType {
    /// Wire id.
    pub fn id(self) -> u8 {
        match self {
            MessageType::SetChunkSize => 1,
            MessageType::Acknowledgement => 3,
            MessageType::UserControl => 4,
            MessageType::WindowAckSize => 5,
            MessageType::SetPeerBandwidth => 6,
            MessageType::Audio => 8,
            MessageType::Video => 9,
            MessageType::DataAmf0 => 18,
            MessageType::CommandAmf0 => 20,
        }
    }

    /// Parses a wire id.
    pub fn from_id(id: u8) -> Result<Self, ProtoError> {
        Ok(match id {
            1 => MessageType::SetChunkSize,
            3 => MessageType::Acknowledgement,
            4 => MessageType::UserControl,
            5 => MessageType::WindowAckSize,
            6 => MessageType::SetPeerBandwidth,
            8 => MessageType::Audio,
            9 => MessageType::Video,
            18 => MessageType::DataAmf0,
            20 => MessageType::CommandAmf0,
            other => return Err(ProtoError::Malformed(format!("unknown message type {other}"))),
        })
    }
}

/// A complete RTMP message (before chunking / after reassembly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Chunk stream the message travels on (2..=63 supported here).
    pub chunk_stream_id: u8,
    /// Message timestamp in milliseconds.
    pub timestamp: u32,
    /// Message type.
    pub kind: MessageType,
    /// Message stream id.
    pub stream_id: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Message {
    /// Builds an audio message on the conventional audio chunk stream (4).
    pub fn audio(timestamp: u32, payload: Vec<u8>) -> Message {
        Message { chunk_stream_id: 4, timestamp, kind: MessageType::Audio, stream_id: 1, payload }
    }

    /// Builds a video message on the conventional video chunk stream (6).
    pub fn video(timestamp: u32, payload: Vec<u8>) -> Message {
        Message { chunk_stream_id: 6, timestamp, kind: MessageType::Video, stream_id: 1, payload }
    }

    /// Builds a SetChunkSize control message.
    pub fn set_chunk_size(size: u32) -> Message {
        Message {
            chunk_stream_id: 2,
            timestamp: 0,
            kind: MessageType::SetChunkSize,
            stream_id: 0,
            payload: size.to_be_bytes().to_vec(),
        }
    }

    /// Builds an AMF0 command message on chunk stream 3.
    pub fn command(payload: Vec<u8>) -> Message {
        Message {
            chunk_stream_id: 3,
            timestamp: 0,
            kind: MessageType::CommandAmf0,
            stream_id: 0,
            payload,
        }
    }

    /// Borrowed view of this message for zero-copy chunking.
    pub fn as_ref(&self) -> MessageRef<'_> {
        MessageRef {
            chunk_stream_id: self.chunk_stream_id,
            timestamp: self.timestamp,
            kind: self.kind,
            stream_id: self.stream_id,
            payload: &self.payload,
        }
    }
}

/// A borrowed RTMP message: header fields by value, payload by reference.
/// The zero-copy input to [`Chunker::write_ref`] and output of
/// [`Dechunker::next_view`] (there called [`MessageView`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageRef<'a> {
    /// Chunk stream the message travels on (2..=63 supported here).
    pub chunk_stream_id: u8,
    /// Message timestamp in milliseconds.
    pub timestamp: u32,
    /// Message type.
    pub kind: MessageType,
    /// Message stream id.
    pub stream_id: u32,
    /// Borrowed payload bytes.
    pub payload: &'a [u8],
}

impl MessageRef<'_> {
    /// Copies the view into an owned [`Message`].
    pub fn to_message(&self) -> Message {
        Message {
            chunk_stream_id: self.chunk_stream_id,
            timestamp: self.timestamp,
            kind: self.kind,
            stream_id: self.stream_id,
            payload: self.payload.to_vec(),
        }
    }
}

/// A reassembled message borrowed from the dechunker's arena; valid until
/// the next `feed`.
pub type MessageView<'a> = MessageRef<'a>;

/// Generates the client handshake bytes C0+C1.
pub fn handshake_c0c1(epoch_ms: u32, fill: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + HANDSHAKE_SIZE);
    out.push(RTMP_VERSION);
    out.extend_from_slice(&epoch_ms.to_be_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend(std::iter::repeat_n(fill, HANDSHAKE_SIZE - 8));
    out
}

/// Validates C0+C1 and produces S0+S1+S2 (S2 echoes C1).
pub fn handshake_s0s1s2(c0c1: &[u8], epoch_ms: u32) -> Result<Vec<u8>, ProtoError> {
    if c0c1.len() < 1 + HANDSHAKE_SIZE {
        return Err(ProtoError::Truncated);
    }
    if c0c1[0] != RTMP_VERSION {
        return Err(ProtoError::Protocol(format!("unsupported RTMP version {}", c0c1[0])));
    }
    let mut out = Vec::with_capacity(1 + 2 * HANDSHAKE_SIZE);
    out.push(RTMP_VERSION);
    out.extend_from_slice(&epoch_ms.to_be_bytes());
    out.extend_from_slice(&[0u8; 4]);
    out.extend(std::iter::repeat_n(0x53, HANDSHAKE_SIZE - 8));
    out.extend_from_slice(&c0c1[1..1 + HANDSHAKE_SIZE]); // S2 = echo of C1
    Ok(out)
}

/// Validates S0+S1+S2 against the C1 we sent and produces C2 (echo of S1).
pub fn handshake_c2(s0s1s2: &[u8], c1: &[u8]) -> Result<Vec<u8>, ProtoError> {
    if s0s1s2.len() < 1 + 2 * HANDSHAKE_SIZE {
        return Err(ProtoError::Truncated);
    }
    if s0s1s2[0] != RTMP_VERSION {
        return Err(ProtoError::Protocol(format!("unsupported RTMP version {}", s0s1s2[0])));
    }
    let s2 = &s0s1s2[1 + HANDSHAKE_SIZE..1 + 2 * HANDSHAKE_SIZE];
    if s2 != c1 {
        return Err(ProtoError::Protocol("S2 does not echo C1".to_string()));
    }
    Ok(s0s1s2[1..1 + HANDSHAKE_SIZE].to_vec())
}

/// Per-chunk-stream state remembered between chunks.
#[derive(Debug, Clone, Copy, Default)]
struct CsState {
    timestamp: u32,
    length: usize,
    kind: Option<MessageType>,
    stream_id: u32,
}

/// Serializes messages into an RTMP chunk byte stream.
#[derive(Debug)]
pub struct Chunker {
    chunk_size: usize,
    state: [CsState; MAX_CHUNK_STREAMS],
}

impl Default for Chunker {
    fn default() -> Self {
        Self::new()
    }
}

impl Chunker {
    /// Creates a chunker with the default 128-byte chunk size.
    pub fn new() -> Self {
        Chunker { chunk_size: DEFAULT_CHUNK_SIZE, state: [CsState::default(); MAX_CHUNK_STREAMS] }
    }

    /// Current outgoing chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Encodes `msg` into chunks, appending to `out`. A `SetChunkSize`
    /// message also updates the chunker's own size for subsequent messages,
    /// as the spec requires.
    pub fn write(&mut self, msg: &Message, out: &mut Vec<u8>) {
        self.write_ref(msg.as_ref(), out);
    }

    /// Zero-copy variant of [`Chunker::write`]: chunks a borrowed payload
    /// into the caller-provided buffer without owning the message.
    pub fn write_ref(&mut self, msg: MessageRef<'_>, out: &mut Vec<u8>) {
        assert!(
            (2..=63).contains(&msg.chunk_stream_id),
            "only basic-header chunk stream ids 2..=63 are supported"
        );
        let cs = &mut self.state[msg.chunk_stream_id as usize];
        // Decide header format: fmt1 when only type/len/timestamp-delta
        // change on the same stream id, fmt0 otherwise. (fmt2/fmt3 encoding
        // is a compression nicety; fmt0/fmt1 keep the encoder simple and any
        // compliant decoder — including ours — handles them.)
        let use_fmt1 =
            cs.kind.is_some() && cs.stream_id == msg.stream_id && msg.timestamp >= cs.timestamp;
        let ext_ts = msg.timestamp >= 0xFF_FFFF;
        out.reserve(12 + msg.payload.len() + msg.payload.len() / self.chunk_size);
        if use_fmt1 {
            let delta = msg.timestamp - cs.timestamp;
            let ext = delta >= 0xFF_FFFF;
            out.push((1 << 6) | msg.chunk_stream_id);
            push_u24(out, if ext { 0xFF_FFFF } else { delta });
            push_u24(out, msg.payload.len() as u32);
            out.push(msg.kind.id());
            if ext {
                out.extend_from_slice(&delta.to_be_bytes());
            }
        } else {
            out.push(msg.chunk_stream_id); // fmt 0
            push_u24(out, if ext_ts { 0xFF_FFFF } else { msg.timestamp });
            push_u24(out, msg.payload.len() as u32);
            out.push(msg.kind.id());
            out.extend_from_slice(&msg.stream_id.to_le_bytes());
            if ext_ts {
                out.extend_from_slice(&msg.timestamp.to_be_bytes());
            }
        }
        *cs = CsState {
            timestamp: msg.timestamp,
            length: msg.payload.len(),
            kind: Some(msg.kind),
            stream_id: msg.stream_id,
        };
        // Payload, split at chunk_size with fmt3 continuation headers.
        let mut off = 0;
        let mut first = true;
        while off < msg.payload.len() || (first && msg.payload.is_empty()) {
            if !first {
                out.push((3 << 6) | msg.chunk_stream_id);
            }
            let take = (msg.payload.len() - off).min(self.chunk_size);
            out.extend_from_slice(&msg.payload[off..off + take]);
            off += take;
            first = false;
        }
        if msg.kind == MessageType::SetChunkSize && msg.payload.len() >= 4 {
            let size = u32::from_be_bytes(msg.payload[..4].try_into().expect("4 bytes")) as usize;
            self.chunk_size = size.max(1);
        }
    }

    /// Encodes a batch of messages to a fresh buffer.
    pub fn encode_all(&mut self, msgs: &[Message]) -> Vec<u8> {
        let mut out = Vec::new();
        for m in msgs {
            self.write(m, &mut out);
        }
        out
    }
}

/// Location of a reassembled message inside the dechunker's ready arena.
#[derive(Debug, Clone, Copy)]
struct ReadyMeta {
    chunk_stream_id: u8,
    timestamp: u32,
    kind: MessageType,
    stream_id: u32,
    start: usize,
    end: usize,
}

/// Reassembles an RTMP chunk byte stream into messages. Incremental: feed
/// bytes as they arrive, pop complete messages (owned) or iterate
/// [`Dechunker::next_view`] for zero-copy borrowed views.
///
/// Internally all per-chunk-stream state lives in flat arrays indexed by
/// chunk stream id, reassembly buffers are reused across messages, and
/// completed payloads land in one append-only arena that is recycled once
/// drained — steady-state feeding allocates nothing.
#[derive(Debug)]
pub struct Dechunker {
    chunk_size: usize,
    /// Bytes held over from a previous feed that did not end on a chunk
    /// boundary. Usually empty: the common path parses the caller's slice
    /// directly.
    buf: Vec<u8>,
    state: [CsState; MAX_CHUNK_STREAMS],
    /// Per-chunk-stream reassembly buffers for messages spanning chunks;
    /// cleared (capacity kept) when their message completes.
    partial: Vec<Vec<u8>>,
    /// Arena of completed payloads, recycled when all messages are drained.
    ready_data: Vec<u8>,
    ready: std::collections::VecDeque<ReadyMeta>,
}

impl Default for Dechunker {
    fn default() -> Self {
        Self::new()
    }
}

impl Dechunker {
    /// Creates a dechunker expecting the default 128-byte chunk size.
    pub fn new() -> Self {
        Dechunker {
            chunk_size: DEFAULT_CHUNK_SIZE,
            buf: Vec::new(),
            state: [CsState::default(); MAX_CHUNK_STREAMS],
            partial: (0..MAX_CHUNK_STREAMS).map(|_| Vec::new()).collect(),
            ready_data: Vec::new(),
            ready: std::collections::VecDeque::new(),
        }
    }

    /// Feeds incoming bytes; complete messages become poppable.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), ProtoError> {
        if self.ready.is_empty() {
            // All previously completed messages were drained; recycle the
            // arena so it never grows beyond one feed's worth of payload.
            self.ready_data.clear();
        }
        if self.buf.is_empty() {
            // Fast path: parse straight out of the caller's slice; only the
            // unconsumed tail (if any) is copied into the holdover buffer.
            let mut pos = 0;
            while pos < bytes.len() {
                match self.parse_one(&bytes[pos..])? {
                    Some(n) => pos += n,
                    None => break,
                }
            }
            if pos < bytes.len() {
                self.buf.extend_from_slice(&bytes[pos..]);
            }
            return Ok(());
        }
        // Holdover path: append, parse, then compact the remainder to the
        // front with one memmove (instead of draining per chunk).
        self.buf.extend_from_slice(bytes);
        let held = std::mem::take(&mut self.buf);
        let mut pos = 0;
        let res = loop {
            match self.parse_one(&held[pos..]) {
                Ok(Some(n)) => pos += n,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.buf = held;
        if pos > 0 {
            self.buf.copy_within(pos.., 0);
            let rest = self.buf.len() - pos;
            self.buf.truncate(rest);
        }
        res
    }

    /// Pops the next fully reassembled message as an owned [`Message`].
    pub fn pop(&mut self) -> Option<Message> {
        self.next_view().map(|v| v.to_message())
    }

    /// Drains all ready messages.
    pub fn pop_all(&mut self) -> Vec<Message> {
        let mut out = Vec::with_capacity(self.ready.len());
        while let Some(m) = self.pop() {
            out.push(m);
        }
        out
    }

    /// Pops the next fully reassembled message as a borrowed view into the
    /// dechunker's arena — the zero-copy counterpart of [`Dechunker::pop`].
    /// The view is valid until the next call to [`Dechunker::feed`].
    pub fn next_view(&mut self) -> Option<MessageView<'_>> {
        let m = self.ready.pop_front()?;
        Some(MessageView {
            chunk_stream_id: m.chunk_stream_id,
            timestamp: m.timestamp,
            kind: m.kind,
            stream_id: m.stream_id,
            payload: &self.ready_data[m.start..m.end],
        })
    }

    /// Attempts to parse one chunk from the front of `buf`. Returns bytes
    /// consumed, or None if more data is needed.
    fn parse_one(&mut self, buf: &[u8]) -> Result<Option<usize>, ProtoError> {
        if buf.is_empty() {
            return Ok(None);
        }
        let fmt = buf[0] >> 6;
        let csid = buf[0] & 0x3F;
        if csid < 2 {
            return Err(ProtoError::Malformed(
                "extended chunk stream ids are not supported".to_string(),
            ));
        }
        let mut pos = 1;
        let need = |n: usize, pos: usize, buf: &[u8]| buf.len() >= pos + n;
        let prev = self.state[csid as usize];
        let (ts, length, kind, stream_id, header_len) = match fmt {
            0 => {
                if !need(11, pos, buf) {
                    return Ok(None);
                }
                let ts = read_u24(&buf[pos..]);
                let length = read_u24(&buf[pos + 3..]) as usize;
                let kind = MessageType::from_id(buf[pos + 6])?;
                let stream_id =
                    u32::from_le_bytes(buf[pos + 7..pos + 11].try_into().expect("4 bytes"));
                pos += 11;
                let ts = if ts == 0xFF_FFFF {
                    if !need(4, pos, buf) {
                        return Ok(None);
                    }
                    let t = u32::from_be_bytes(buf[pos..pos + 4].try_into().expect("4"));
                    pos += 4;
                    t
                } else {
                    ts
                };
                (ts, length, kind, stream_id, pos)
            }
            1 => {
                if !need(7, pos, buf) {
                    return Ok(None);
                }
                let delta = read_u24(&buf[pos..]);
                let length = read_u24(&buf[pos + 3..]) as usize;
                let kind = MessageType::from_id(buf[pos + 6])?;
                pos += 7;
                let delta = if delta == 0xFF_FFFF {
                    if !need(4, pos, buf) {
                        return Ok(None);
                    }
                    let d = u32::from_be_bytes(buf[pos..pos + 4].try_into().expect("4"));
                    pos += 4;
                    d
                } else {
                    delta
                };
                (prev.timestamp.wrapping_add(delta), length, kind, prev.stream_id, pos)
            }
            2 => {
                if !need(3, pos, buf) {
                    return Ok(None);
                }
                let delta = read_u24(&buf[pos..]);
                pos += 3;
                let kind = prev.kind.ok_or_else(|| {
                    ProtoError::Protocol("fmt2 chunk with no prior state".to_string())
                })?;
                (prev.timestamp.wrapping_add(delta), prev.length, kind, prev.stream_id, pos)
            }
            3 => {
                let kind = prev.kind.ok_or_else(|| {
                    ProtoError::Protocol("fmt3 chunk with no prior state".to_string())
                })?;
                (prev.timestamp, prev.length, kind, prev.stream_id, pos)
            }
            _ => unreachable!("2-bit fmt"),
        };
        // How many payload bytes belong to this chunk?
        let already = self.partial[csid as usize].len();
        let remaining = length.saturating_sub(already);
        let take = remaining.min(self.chunk_size);
        if buf.len() < header_len + take {
            return Ok(None);
        }
        let chunk = &buf[header_len..header_len + take];
        // Update per-stream state.
        self.state[csid as usize] = CsState { timestamp: ts, length, kind: Some(kind), stream_id };
        if already + take >= length {
            // Message complete: payload lands in the ready arena. A message
            // contained in a single chunk is copied wire→arena directly;
            // a spanning one drains its reassembly buffer first.
            let start = self.ready_data.len();
            let part = &mut self.partial[csid as usize];
            if !part.is_empty() {
                self.ready_data.extend_from_slice(part);
                part.clear();
            }
            self.ready_data.extend_from_slice(chunk);
            let end = self.ready_data.len();
            if kind == MessageType::SetChunkSize && end - start >= 4 {
                let size =
                    u32::from_be_bytes(self.ready_data[start..start + 4].try_into().expect("4"))
                        as usize;
                self.chunk_size = size.max(1);
            }
            self.ready.push_back(ReadyMeta {
                chunk_stream_id: csid,
                timestamp: ts,
                kind,
                stream_id,
                start,
                end,
            });
        } else {
            self.partial[csid as usize].extend_from_slice(chunk);
        }
        Ok(Some(header_len + take))
    }
}

fn push_u24(out: &mut Vec<u8>, v: u32) {
    debug_assert!(v <= 0xFF_FFFF);
    out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]);
}

fn read_u24(bytes: &[u8]) -> u32 {
    ((bytes[0] as u32) << 16) | ((bytes[1] as u32) << 8) | bytes[2] as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrip() {
        let c0c1 = handshake_c0c1(1000, 0xAB);
        assert_eq!(c0c1.len(), 1 + HANDSHAKE_SIZE);
        let s = handshake_s0s1s2(&c0c1, 2000).unwrap();
        assert_eq!(s.len(), 1 + 2 * HANDSHAKE_SIZE);
        let c2 = handshake_c2(&s, &c0c1[1..]).unwrap();
        assert_eq!(c2.len(), HANDSHAKE_SIZE);
        // C2 echoes S1.
        assert_eq!(c2, &s[1..1 + HANDSHAKE_SIZE]);
    }

    #[test]
    fn handshake_rejects_bad_version() {
        let mut c0c1 = handshake_c0c1(0, 0);
        c0c1[0] = 6;
        assert!(matches!(handshake_s0s1s2(&c0c1, 0), Err(ProtoError::Protocol(_))));
    }

    #[test]
    fn handshake_rejects_bad_echo() {
        let c0c1 = handshake_c0c1(0, 1);
        let mut s = handshake_s0s1s2(&c0c1, 0).unwrap();
        s[1 + HANDSHAKE_SIZE] ^= 0xFF; // corrupt S2
        assert!(handshake_c2(&s, &c0c1[1..]).is_err());
    }

    #[test]
    fn single_small_message_roundtrip() {
        let msg = Message::video(40, vec![1, 2, 3]);
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(std::slice::from_ref(&msg));
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        assert_eq!(d.pop().unwrap(), msg);
        assert!(d.pop().is_none());
    }

    #[test]
    fn large_message_spans_chunks() {
        let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let msg = Message::video(0, payload.clone());
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(std::slice::from_ref(&msg));
        // 1000 bytes at 128/chunk -> 8 chunks -> 7 continuation headers.
        assert!(bytes.len() > payload.len() + 11);
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        assert_eq!(d.pop().unwrap().payload, payload);
    }

    #[test]
    fn set_chunk_size_applies_to_both_sides() {
        let mut chunker = Chunker::new();
        let mut d = Dechunker::new();
        let msgs = vec![Message::set_chunk_size(4096), Message::video(10, vec![7; 3000])];
        let bytes = chunker.encode_all(&msgs);
        assert_eq!(chunker.chunk_size(), 4096);
        d.feed(&bytes).unwrap();
        let got = d.pop_all();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].payload.len(), 3000);
    }

    #[test]
    fn interleaved_audio_video() {
        // Audio and video on different chunk streams interleave correctly.
        let mut chunker = Chunker::new();
        let msgs = vec![
            Message::video(0, vec![1; 300]),
            Message::audio(5, vec![2; 50]),
            Message::video(33, vec![3; 300]),
            Message::audio(26, vec![4; 50]),
        ];
        let bytes = chunker.encode_all(&msgs);
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        let got = d.pop_all();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].kind, MessageType::Video);
        assert_eq!(got[1].kind, MessageType::Audio);
        assert_eq!(got[3].timestamp, 26);
    }

    #[test]
    fn incremental_feed_byte_by_byte() {
        let msg = Message::video(77, (0..500).map(|i| i as u8).collect());
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(std::slice::from_ref(&msg));
        let mut d = Dechunker::new();
        for b in &bytes {
            d.feed(std::slice::from_ref(b)).unwrap();
        }
        assert_eq!(d.pop().unwrap(), msg);
    }

    #[test]
    fn fmt1_header_used_for_repeat_messages() {
        let mut chunker = Chunker::new();
        let m1 = Message::video(0, vec![1; 10]);
        let m2 = Message::video(33, vec![2; 12]);
        let bytes = chunker.encode_all(&[m1.clone(), m2.clone()]);
        // Second message header starts after first: fmt1 header is 8 bytes
        // (1 basic + 7), vs 12 for fmt0.
        let second_header_at = 12 + 10;
        assert_eq!(bytes[second_header_at] >> 6, 1, "expected fmt1");
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        let got = d.pop_all();
        assert_eq!(got, vec![m1, m2]);
    }

    #[test]
    fn extended_timestamp_roundtrip() {
        let msg = Message::video(0x0100_0000, vec![9; 5]);
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(std::slice::from_ref(&msg));
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        assert_eq!(d.pop().unwrap().timestamp, 0x0100_0000);
    }

    #[test]
    fn empty_payload_message() {
        let msg = Message {
            chunk_stream_id: 3,
            timestamp: 0,
            kind: MessageType::CommandAmf0,
            stream_id: 0,
            payload: Vec::new(),
        };
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(std::slice::from_ref(&msg));
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        assert_eq!(d.pop().unwrap(), msg);
    }

    #[test]
    fn fmt3_without_state_is_error() {
        let mut d = Dechunker::new();
        assert!(d.feed(&[(3 << 6) | 5]).is_err());
    }

    #[test]
    fn unknown_message_type_is_error() {
        let mut d = Dechunker::new();
        // fmt0, csid 3, ts 0, len 0, type 99, stream 0.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.extend_from_slice(&[0, 0, 0]);
        bytes.push(99);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(d.feed(&bytes).is_err());
    }

    #[test]
    fn message_type_ids_roundtrip() {
        for kind in [
            MessageType::SetChunkSize,
            MessageType::Acknowledgement,
            MessageType::UserControl,
            MessageType::WindowAckSize,
            MessageType::SetPeerBandwidth,
            MessageType::Audio,
            MessageType::Video,
            MessageType::DataAmf0,
            MessageType::CommandAmf0,
        ] {
            assert_eq!(MessageType::from_id(kind.id()).unwrap(), kind);
        }
        assert!(MessageType::from_id(7).is_err());
    }

    #[test]
    fn many_messages_stress_roundtrip() {
        let mut chunker = Chunker::new();
        let msgs: Vec<Message> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    Message::audio(i * 23, vec![(i % 256) as u8; (i as usize * 7) % 400 + 1])
                } else {
                    Message::video(i * 33, vec![(i % 256) as u8; (i as usize * 13) % 900 + 1])
                }
            })
            .collect();
        let bytes = chunker.encode_all(&msgs);
        let mut d = Dechunker::new();
        // Feed in awkward 17-byte slices.
        for chunk in bytes.chunks(17) {
            d.feed(chunk).unwrap();
        }
        assert_eq!(d.pop_all(), msgs);
    }

    #[test]
    fn write_ref_matches_write() {
        let msgs = vec![
            Message::video(0, vec![1; 300]),
            Message::audio(5, vec![2; 50]),
            Message::video(33, vec![3; 300]),
        ];
        let mut a = Chunker::new();
        let mut b = Chunker::new();
        let mut wire_a = Vec::new();
        let mut wire_b = Vec::new();
        for m in &msgs {
            a.write(m, &mut wire_a);
            b.write_ref(m.as_ref(), &mut wire_b);
        }
        assert_eq!(wire_a, wire_b);
    }

    #[test]
    fn next_view_yields_borrowed_payloads() {
        let msgs = vec![Message::video(0, vec![7; 500]), Message::audio(5, vec![8; 40])];
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(&msgs);
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        let mut got = Vec::new();
        while let Some(v) = d.next_view() {
            got.push(v.to_message());
        }
        assert_eq!(got, msgs);
        // Arena is recycled on the next feed once drained.
        d.feed(&[]).unwrap();
        assert!(d.next_view().is_none());
    }

    #[test]
    fn mixed_pop_and_view_interleave() {
        let msgs: Vec<Message> =
            (0..6).map(|i| Message::video(i * 33, vec![i as u8; 200])).collect();
        let mut chunker = Chunker::new();
        let bytes = chunker.encode_all(&msgs);
        let mut d = Dechunker::new();
        d.feed(&bytes).unwrap();
        for (i, m) in msgs.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(&d.pop().unwrap(), m);
            } else {
                assert_eq!(&d.next_view().unwrap().to_message(), m);
            }
        }
    }
}
