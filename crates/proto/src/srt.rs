//! SRT-flavoured ingest protocol: unreliable datagrams with NAK/ARQ
//! selective retransmission under a latency budget.
//!
//! The paper's two transports hide loss inside TCP: RTMP surfaces it as
//! retransmission *delay* (stalls), HLS as segment re-fetches (latency).
//! This module implements the third point in that design space — the one
//! AutoRec-style measurement studies found dominant on lossy uplinks: an
//! UDP-like transport that recovers losses it can afford to wait for and
//! *drops* the rest, so playback degrades by concealment instead of
//! stalling. The shape follows SRT (Haivision's Secure Reliable Transport):
//!
//! * caller/listener **handshake** with a stateless cookie exchange
//!   (induction → cookie → conclusion → agreement);
//! * **32-bit wrapping sequence numbers** compared with serial arithmetic
//!   ([`seq_cmp`]/[`seq_distance`], RFC 1982 style);
//! * receiver-side **loss detection** ([`RecvTracker`]) emitting
//!   compressed-range **NAKs** ([`compress_ranges`]);
//! * a sender-side **retransmit queue** with bounded occupancy and
//!   ACK-driven drain ([`RetxQueue`]);
//! * a configurable **latency window**: a packet that cannot be recovered
//!   before `origin + window` is deliberately too late and is dropped
//!   ([`too_late`]), never stalling the player.
//!
//! Everything here is a pure state machine over explicit inputs — no
//! clocks, no randomness — so the simulation layers above can drive it
//! deterministically (DESIGN.md §12).

use crate::ProtoError;

/// Protocol version advertised in the handshake (SRT v1.x wire version 5).
pub const SRT_VERSION: u32 = 5;

/// Bytes of header on each data packet (type + seq + origin timestamp +
/// message number + length).
pub const DATA_HEADER_BYTES: usize = 15;

/// Default receiver latency window, microseconds (SRT's default is 120 ms;
/// the ingest sessions run a broadcast-friendlier budget).
pub const DEFAULT_LATENCY_US: u64 = 800_000;

/// Upper bound on one NAK range's span, packets. Decoding rejects wider
/// ranges: with a bounded latency window the receiver can never legitimately
/// track more outstanding loss than this.
pub const MAX_NAK_RANGE: u32 = 1 << 16;

// --- serial sequence arithmetic -----------------------------------------

/// Wraparound-safe comparison of 32-bit sequence numbers: `a` precedes `b`
/// when the forward distance from `a` to `b` is smaller than the backward
/// one (RFC 1982 serial arithmetic; the two half-spaces meet at 2^31, which
/// a bounded latency window keeps unreachable).
pub fn seq_cmp(a: u32, b: u32) -> std::cmp::Ordering {
    (a.wrapping_sub(b) as i32).cmp(&0)
}

/// Forward distance from `a` to `b` (how many increments take `a` to `b`),
/// wrapping through zero.
pub fn seq_distance(a: u32, b: u32) -> u32 {
    b.wrapping_sub(a)
}

/// `a + n` in sequence space.
pub fn seq_add(a: u32, n: u32) -> u32 {
    a.wrapping_add(n)
}

// --- NAK range compression ----------------------------------------------

/// Compresses a run of lost sequence numbers (in wrap-forward order) into
/// inclusive `(first, last)` ranges, merging consecutive numbers — the
/// compressed-range loss lists SRT NAK packets carry.
pub fn compress_ranges(seqs: &[u32]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &s in seqs {
        match out.last_mut() {
            Some((_, last)) if seq_add(*last, 1) == s => *last = s,
            _ => out.push((s, s)),
        }
    }
    out
}

/// Expands inclusive `(first, last)` ranges back into the sequence run.
/// Rejects a range wider than [`MAX_NAK_RANGE`] (a corrupt or hostile NAK
/// would otherwise expand to billions of entries).
pub fn expand_ranges(ranges: &[(u32, u32)]) -> Result<Vec<u32>, ProtoError> {
    let mut out = Vec::new();
    for &(first, last) in ranges {
        let n = seq_distance(first, last);
        if n >= MAX_NAK_RANGE {
            return Err(ProtoError::Protocol(format!("NAK range {first}..{last} too wide")));
        }
        for i in 0..=n {
            out.push(seq_add(first, i));
        }
    }
    Ok(out)
}

// --- wire format ---------------------------------------------------------

/// A data packet: one MTU-bounded slice of the media stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Packet sequence number (increments per packet, wraps at 2^32).
    pub seq: u32,
    /// Origin timestamp, microseconds since the stream epoch — what the
    /// receiver's latency window is measured against.
    pub origin_ts_us: u32,
    /// Message (frame) number this packet belongs to.
    pub msg: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Control packets of the handshake and ARQ loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlPacket {
    /// Caller → listener: first contact.
    Induction {
        /// Advertised protocol version.
        version: u32,
        /// Caller-chosen connection id.
        caller_id: u32,
    },
    /// Listener → caller: the stateless cookie challenge.
    Cookie {
        /// Cookie the conclusion must echo.
        cookie: u32,
    },
    /// Caller → listener: echoes the cookie, proposes stream parameters.
    Conclusion {
        /// Echoed cookie.
        cookie: u32,
        /// Caller connection id (must match the induction).
        caller_id: u32,
        /// First data sequence number the caller will send.
        initial_seq: u32,
        /// Receiver latency window, milliseconds.
        latency_ms: u32,
    },
    /// Listener → caller: connection established.
    Agreement {
        /// Agreed first sequence number.
        initial_seq: u32,
        /// Agreed latency window, milliseconds.
        latency_ms: u32,
    },
    /// Receiver → sender: cumulative acknowledgement (everything strictly
    /// before `ack_seq` is delivered or given up on).
    Ack {
        /// Next sequence number the receiver expects.
        ack_seq: u32,
    },
    /// Receiver → sender: compressed-range loss report.
    Nak {
        /// Inclusive `(first, last)` lost ranges, wrap-forward order.
        ranges: Vec<(u32, u32)>,
    },
    /// Either side: orderly teardown.
    Shutdown,
}

/// Any SRT packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Media payload.
    Data(DataPacket),
    /// Handshake/ARQ control.
    Control(ControlPacket),
}

const TYPE_DATA: u8 = 0;
const TYPE_INDUCTION: u8 = 1;
const TYPE_COOKIE: u8 = 2;
const TYPE_CONCLUSION: u8 = 3;
const TYPE_AGREEMENT: u8 = 4;
const TYPE_ACK: u8 = 5;
const TYPE_NAK: u8 = 6;
const TYPE_SHUTDOWN: u8 = 7;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> Result<u32, ProtoError> {
    let b = buf.get(at..at + 4).ok_or(ProtoError::Truncated)?;
    Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Encodes a packet into `out` (appending; the caller owns framing).
pub fn encode_packet(p: &Packet, out: &mut Vec<u8>) {
    match p {
        Packet::Data(d) => {
            out.push(TYPE_DATA);
            put_u32(out, d.seq);
            put_u32(out, d.origin_ts_us);
            put_u32(out, d.msg);
            out.extend_from_slice(&(d.payload.len() as u16).to_be_bytes());
            out.extend_from_slice(&d.payload);
        }
        Packet::Control(c) => match c {
            ControlPacket::Induction { version, caller_id } => {
                out.push(TYPE_INDUCTION);
                put_u32(out, *version);
                put_u32(out, *caller_id);
            }
            ControlPacket::Cookie { cookie } => {
                out.push(TYPE_COOKIE);
                put_u32(out, *cookie);
            }
            ControlPacket::Conclusion { cookie, caller_id, initial_seq, latency_ms } => {
                out.push(TYPE_CONCLUSION);
                put_u32(out, *cookie);
                put_u32(out, *caller_id);
                put_u32(out, *initial_seq);
                put_u32(out, *latency_ms);
            }
            ControlPacket::Agreement { initial_seq, latency_ms } => {
                out.push(TYPE_AGREEMENT);
                put_u32(out, *initial_seq);
                put_u32(out, *latency_ms);
            }
            ControlPacket::Ack { ack_seq } => {
                out.push(TYPE_ACK);
                put_u32(out, *ack_seq);
            }
            ControlPacket::Nak { ranges } => {
                out.push(TYPE_NAK);
                out.extend_from_slice(&(ranges.len() as u16).to_be_bytes());
                for &(first, last) in ranges {
                    put_u32(out, first);
                    put_u32(out, last);
                }
            }
            ControlPacket::Shutdown => out.push(TYPE_SHUTDOWN),
        },
    }
}

/// Decodes one packet from the front of `buf`; returns it plus the bytes
/// consumed.
pub fn decode_packet(buf: &[u8]) -> Result<(Packet, usize), ProtoError> {
    let &ty = buf.first().ok_or(ProtoError::Truncated)?;
    match ty {
        TYPE_DATA => {
            let seq = get_u32(buf, 1)?;
            let origin_ts_us = get_u32(buf, 5)?;
            let msg = get_u32(buf, 9)?;
            let len_b = buf.get(13..15).ok_or(ProtoError::Truncated)?;
            let len = u16::from_be_bytes([len_b[0], len_b[1]]) as usize;
            let payload = buf.get(15..15 + len).ok_or(ProtoError::Truncated)?.to_vec();
            Ok((Packet::Data(DataPacket { seq, origin_ts_us, msg, payload }), 15 + len))
        }
        TYPE_INDUCTION => {
            let version = get_u32(buf, 1)?;
            let caller_id = get_u32(buf, 5)?;
            Ok((Packet::Control(ControlPacket::Induction { version, caller_id }), 9))
        }
        TYPE_COOKIE => Ok((Packet::Control(ControlPacket::Cookie { cookie: get_u32(buf, 1)? }), 5)),
        TYPE_CONCLUSION => {
            let cookie = get_u32(buf, 1)?;
            let caller_id = get_u32(buf, 5)?;
            let initial_seq = get_u32(buf, 9)?;
            let latency_ms = get_u32(buf, 13)?;
            Ok((
                Packet::Control(ControlPacket::Conclusion {
                    cookie,
                    caller_id,
                    initial_seq,
                    latency_ms,
                }),
                17,
            ))
        }
        TYPE_AGREEMENT => {
            let initial_seq = get_u32(buf, 1)?;
            let latency_ms = get_u32(buf, 5)?;
            Ok((Packet::Control(ControlPacket::Agreement { initial_seq, latency_ms }), 9))
        }
        TYPE_ACK => Ok((Packet::Control(ControlPacket::Ack { ack_seq: get_u32(buf, 1)? }), 5)),
        TYPE_NAK => {
            let n_b = buf.get(1..3).ok_or(ProtoError::Truncated)?;
            let n = u16::from_be_bytes([n_b[0], n_b[1]]) as usize;
            let mut ranges = Vec::with_capacity(n);
            for i in 0..n {
                let first = get_u32(buf, 3 + 8 * i)?;
                let last = get_u32(buf, 7 + 8 * i)?;
                if seq_distance(first, last) >= MAX_NAK_RANGE {
                    return Err(ProtoError::Protocol(format!(
                        "NAK range {first}..{last} too wide"
                    )));
                }
                ranges.push((first, last));
            }
            Ok((Packet::Control(ControlPacket::Nak { ranges }), 3 + 8 * n))
        }
        TYPE_SHUTDOWN => Ok((Packet::Control(ControlPacket::Shutdown), 1)),
        other => Err(ProtoError::Malformed(format!("unknown SRT packet type {other}"))),
    }
}

// --- handshake -----------------------------------------------------------

/// Deterministic listener cookie: a pure function of the listener's secret
/// and the caller id, so the listener holds no per-connection state until a
/// valid conclusion arrives (SYN-cookie discipline).
pub fn cookie_for(listener_secret: u64, caller_id: u32) -> u32 {
    let mut z = listener_secret ^ (caller_id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u32
}

/// Caller handshake states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallerState {
    /// Induction sent, waiting for the cookie.
    Inducing,
    /// Conclusion sent, waiting for the agreement.
    Concluding,
    /// Connected: data may flow.
    Connected,
}

/// The caller (broadcaster) side of the handshake.
#[derive(Debug, Clone)]
pub struct Caller {
    state: CallerState,
    caller_id: u32,
    initial_seq: u32,
    latency_ms: u32,
}

impl Caller {
    /// Creates a caller about to send its induction.
    pub fn new(caller_id: u32, initial_seq: u32, latency_ms: u32) -> Self {
        Caller { state: CallerState::Inducing, caller_id, initial_seq, latency_ms }
    }

    /// Current state.
    pub fn state(&self) -> CallerState {
        self.state
    }

    /// Whether the handshake completed.
    pub fn connected(&self) -> bool {
        self.state == CallerState::Connected
    }

    /// The packet to (re)send in the current state, `None` once connected.
    pub fn next_packet(&self) -> Option<ControlPacket> {
        match self.state {
            CallerState::Inducing => {
                Some(ControlPacket::Induction { version: SRT_VERSION, caller_id: self.caller_id })
            }
            CallerState::Concluding => None, // conclusion is built in on_packet
            CallerState::Connected => None,
        }
    }

    /// Feeds a listener packet; returns the caller's response, if any.
    pub fn on_packet(&mut self, p: &ControlPacket) -> Result<Option<ControlPacket>, ProtoError> {
        match (self.state, p) {
            (CallerState::Inducing, ControlPacket::Cookie { cookie }) => {
                self.state = CallerState::Concluding;
                Ok(Some(ControlPacket::Conclusion {
                    cookie: *cookie,
                    caller_id: self.caller_id,
                    initial_seq: self.initial_seq,
                    latency_ms: self.latency_ms,
                }))
            }
            (CallerState::Concluding, ControlPacket::Agreement { initial_seq, latency_ms }) => {
                if *initial_seq != self.initial_seq {
                    return Err(ProtoError::Protocol("agreement seq mismatch".into()));
                }
                self.latency_ms = *latency_ms;
                self.state = CallerState::Connected;
                Ok(None)
            }
            _ => Ok(None), // stray or duplicate packet: ignore
        }
    }
}

/// The listener (ingest gateway) side: stateless until a valid conclusion.
#[derive(Debug, Clone, Copy)]
pub struct Listener {
    secret: u64,
}

impl Listener {
    /// Creates a listener with a cookie secret.
    pub fn new(secret: u64) -> Self {
        Listener { secret }
    }

    /// Handles a caller packet. Returns the response to send, plus the
    /// accepted `(initial_seq, latency_ms)` once a valid conclusion lands.
    #[allow(clippy::type_complexity)]
    pub fn on_packet(
        &self,
        p: &ControlPacket,
    ) -> Result<(Option<ControlPacket>, Option<(u32, u32)>), ProtoError> {
        match p {
            ControlPacket::Induction { version, caller_id } => {
                if *version != SRT_VERSION {
                    return Err(ProtoError::Protocol(format!("unsupported version {version}")));
                }
                Ok((
                    Some(ControlPacket::Cookie { cookie: cookie_for(self.secret, *caller_id) }),
                    None,
                ))
            }
            ControlPacket::Conclusion { cookie, caller_id, initial_seq, latency_ms } => {
                if *cookie != cookie_for(self.secret, *caller_id) {
                    return Err(ProtoError::Protocol("bad cookie".into()));
                }
                Ok((
                    Some(ControlPacket::Agreement {
                        initial_seq: *initial_seq,
                        latency_ms: *latency_ms,
                    }),
                    Some((*initial_seq, *latency_ms)),
                ))
            }
            _ => Ok((None, None)),
        }
    }
}

// --- receiver loss detection ---------------------------------------------

/// What the receiver did with one arriving data packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvEvent {
    /// In-order (or duplicate) arrival; no loss signal.
    InOrder,
    /// The arrival exposed a gap: these ranges are newly lost and should go
    /// out in a NAK.
    Gap(Vec<(u32, u32)>),
    /// A retransmission filled a tracked hole.
    Recovered,
}

/// Receiver-side sequence tracker: detects gaps, keeps the outstanding loss
/// list, and retires entries that are recovered or given up on.
#[derive(Debug, Clone)]
pub struct RecvTracker {
    /// Next sequence number expected in order.
    next: u32,
    /// Outstanding lost sequences, wrap-forward order.
    lost: Vec<u32>,
}

impl RecvTracker {
    /// Creates a tracker expecting `initial_seq` first.
    pub fn new(initial_seq: u32) -> Self {
        RecvTracker { next: initial_seq, lost: Vec::new() }
    }

    /// Next in-order sequence number expected.
    pub fn next_expected(&self) -> u32 {
        self.next
    }

    /// Outstanding lost sequences.
    pub fn outstanding(&self) -> &[u32] {
        &self.lost
    }

    /// Cumulative ACK value: everything strictly before it is accounted for
    /// (delivered, recovered, or abandoned) — the earliest outstanding loss,
    /// or `next` when none.
    pub fn ack_seq(&self) -> u32 {
        self.lost.first().copied().unwrap_or(self.next)
    }

    /// Processes an arriving data sequence number.
    pub fn on_data(&mut self, seq: u32) -> RecvEvent {
        match seq_cmp(seq, self.next) {
            std::cmp::Ordering::Equal => {
                self.next = seq_add(self.next, 1);
                RecvEvent::InOrder
            }
            std::cmp::Ordering::Greater => {
                // Gap: everything from `next` to `seq - 1` is missing.
                let n = seq_distance(self.next, seq);
                let mut fresh = Vec::with_capacity(n as usize);
                for i in 0..n {
                    fresh.push(seq_add(self.next, i));
                }
                self.lost.extend_from_slice(&fresh);
                self.next = seq_add(seq, 1);
                RecvEvent::Gap(compress_ranges(&fresh))
            }
            std::cmp::Ordering::Less => {
                // Behind the horizon: a retransmission (or duplicate).
                match self.lost.iter().position(|&s| s == seq) {
                    Some(i) => {
                        self.lost.remove(i);
                        RecvEvent::Recovered
                    }
                    None => RecvEvent::InOrder,
                }
            }
        }
    }

    /// Gives up on `seq` (its latency window expired): retires it from the
    /// loss list so later ACKs advance past it.
    pub fn abandon(&mut self, seq: u32) {
        if let Some(i) = self.lost.iter().position(|&s| s == seq) {
            self.lost.remove(i);
        }
    }
}

// --- sender retransmit queue ---------------------------------------------

/// One packet held for possible retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxEntry {
    /// Packet sequence number.
    pub seq: u32,
    /// Payload length, bytes.
    pub bytes: usize,
    /// Origin timestamp, microseconds since the stream epoch.
    pub origin_ts_us: u64,
}

/// Sender-side retransmit queue: bounded occupancy, ACK-driven drain.
///
/// Every sent packet is pushed; a cumulative ACK drains everything before
/// it; a NAK looks entries up by sequence number. When pushing would exceed
/// the byte bound, the *oldest* entries are evicted (they are the nearest
/// to their latency deadline, hence the least worth keeping).
#[derive(Debug, Clone)]
pub struct RetxQueue {
    cap_bytes: usize,
    q: std::collections::VecDeque<RetxEntry>,
    bytes: usize,
    /// Entries evicted by the occupancy bound (no longer retransmittable).
    pub evicted: u64,
}

impl RetxQueue {
    /// Creates a queue bounded at `cap_bytes` of payload.
    pub fn new(cap_bytes: usize) -> Self {
        RetxQueue { cap_bytes, q: std::collections::VecDeque::new(), bytes: 0, evicted: 0 }
    }

    /// Packets currently held.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Payload bytes currently held.
    pub fn occupancy_bytes(&self) -> usize {
        self.bytes
    }

    /// Records a sent packet; evicts from the front if over the bound.
    pub fn push(&mut self, e: RetxEntry) {
        self.bytes += e.bytes;
        self.q.push_back(e);
        while self.bytes > self.cap_bytes && self.q.len() > 1 {
            let old = self.q.pop_front().expect("len > 1");
            self.bytes -= old.bytes;
            self.evicted += 1;
        }
    }

    /// Drains everything strictly before `ack_seq`.
    pub fn ack_through(&mut self, ack_seq: u32) {
        while let Some(front) = self.q.front() {
            if seq_cmp(front.seq, ack_seq) == std::cmp::Ordering::Less {
                self.bytes -= front.bytes;
                self.q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Looks up a NAKed packet, if still held.
    pub fn get(&self, seq: u32) -> Option<RetxEntry> {
        self.q.iter().find(|e| e.seq == seq).copied()
    }
}

// --- latency window ------------------------------------------------------

/// Whether a recovery arriving at `candidate_us` for a packet originated at
/// `origin_us` blows the latency window: if so the packet is dropped and
/// concealed instead of delivered late.
pub fn too_late(origin_us: u64, candidate_us: u64, window_us: u64) -> bool {
    candidate_us > origin_us + window_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn seq_arithmetic_handles_wrap() {
        assert_eq!(seq_cmp(5, 5), Ordering::Equal);
        assert_eq!(seq_cmp(5, 6), Ordering::Less);
        assert_eq!(seq_cmp(u32::MAX, 0), Ordering::Less);
        assert_eq!(seq_cmp(0, u32::MAX), Ordering::Greater);
        assert_eq!(seq_distance(u32::MAX, 1), 2);
        assert_eq!(seq_add(u32::MAX, 2), 1);
    }

    #[test]
    fn ranges_compress_and_expand() {
        let seqs = [7u32, 8, 9, 11, 20, 21];
        let ranges = compress_ranges(&seqs);
        assert_eq!(ranges, vec![(7, 9), (11, 11), (20, 21)]);
        assert_eq!(expand_ranges(&ranges).unwrap(), seqs);
    }

    #[test]
    fn ranges_compress_across_wrap() {
        let seqs = [u32::MAX - 1, u32::MAX, 0, 1];
        let ranges = compress_ranges(&seqs);
        assert_eq!(ranges, vec![(u32::MAX - 1, 1)]);
        assert_eq!(expand_ranges(&ranges).unwrap(), seqs);
    }

    #[test]
    fn absurd_range_rejected() {
        assert!(expand_ranges(&[(0, 1 << 20)]).is_err());
    }

    #[test]
    fn packets_round_trip() {
        let pkts = vec![
            Packet::Data(DataPacket {
                seq: u32::MAX,
                origin_ts_us: 123_456,
                msg: 42,
                payload: vec![9; 100],
            }),
            Packet::Control(ControlPacket::Induction { version: SRT_VERSION, caller_id: 7 }),
            Packet::Control(ControlPacket::Cookie { cookie: 0xdead_beef }),
            Packet::Control(ControlPacket::Conclusion {
                cookie: 1,
                caller_id: 7,
                initial_seq: u32::MAX - 3,
                latency_ms: 800,
            }),
            Packet::Control(ControlPacket::Agreement { initial_seq: 5, latency_ms: 800 }),
            Packet::Control(ControlPacket::Ack { ack_seq: 0 }),
            Packet::Control(ControlPacket::Nak { ranges: vec![(u32::MAX, 2), (9, 9)] }),
            Packet::Control(ControlPacket::Shutdown),
        ];
        let mut buf = Vec::new();
        for p in &pkts {
            encode_packet(p, &mut buf);
        }
        let mut at = 0;
        for p in &pkts {
            let (got, used) = decode_packet(&buf[at..]).unwrap();
            assert_eq!(&got, p);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn truncated_and_unknown_rejected() {
        assert_eq!(decode_packet(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_packet(&[TYPE_ACK, 0, 0]), Err(ProtoError::Truncated));
        assert!(matches!(decode_packet(&[99]), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn handshake_completes_in_two_round_trips() {
        let listener = Listener::new(0x5eed);
        let mut caller = Caller::new(7, u32::MAX - 10, 800);
        let induction = caller.next_packet().unwrap();
        let (cookie, accepted) = listener.on_packet(&induction).unwrap();
        assert!(accepted.is_none(), "listener stays stateless after induction");
        let conclusion = caller.on_packet(&cookie.unwrap()).unwrap().unwrap();
        let (agreement, accepted) = listener.on_packet(&conclusion).unwrap();
        assert_eq!(accepted, Some((u32::MAX - 10, 800)));
        assert!(caller.on_packet(&agreement.unwrap()).unwrap().is_none());
        assert!(caller.connected());
    }

    #[test]
    fn forged_cookie_rejected() {
        let listener = Listener::new(0x5eed);
        let bad = ControlPacket::Conclusion {
            cookie: 0x1234_5678,
            caller_id: 7,
            initial_seq: 0,
            latency_ms: 800,
        };
        assert!(matches!(listener.on_packet(&bad), Err(ProtoError::Protocol(_))));
    }

    #[test]
    fn cookie_is_per_caller() {
        assert_ne!(cookie_for(1, 7), cookie_for(1, 8));
        assert_ne!(cookie_for(1, 7), cookie_for(2, 7));
        assert_eq!(cookie_for(1, 7), cookie_for(1, 7));
    }

    #[test]
    fn version_mismatch_rejected() {
        let listener = Listener::new(1);
        let p = ControlPacket::Induction { version: 99, caller_id: 1 };
        assert!(matches!(listener.on_packet(&p), Err(ProtoError::Protocol(_))));
    }

    #[test]
    fn recv_tracker_detects_gaps_and_recovers() {
        let mut t = RecvTracker::new(10);
        assert_eq!(t.on_data(10), RecvEvent::InOrder);
        assert_eq!(t.on_data(11), RecvEvent::InOrder);
        // 12 and 13 go missing.
        assert_eq!(t.on_data(14), RecvEvent::Gap(vec![(12, 13)]));
        assert_eq!(t.ack_seq(), 12, "ACK stops at the first hole");
        assert_eq!(t.on_data(12), RecvEvent::Recovered);
        assert_eq!(t.ack_seq(), 13);
        t.abandon(13);
        assert_eq!(t.ack_seq(), 15, "abandoning the last hole advances the ACK");
        assert!(t.outstanding().is_empty());
    }

    #[test]
    fn recv_tracker_across_wrap() {
        let mut t = RecvTracker::new(u32::MAX - 1);
        assert_eq!(t.on_data(u32::MAX - 1), RecvEvent::InOrder);
        // Lose MAX and 0; 1 arrives.
        assert_eq!(t.on_data(1), RecvEvent::Gap(vec![(u32::MAX, 0)]));
        assert_eq!(t.on_data(u32::MAX), RecvEvent::Recovered);
        assert_eq!(t.on_data(0), RecvEvent::Recovered);
        assert_eq!(t.next_expected(), 2);
        assert_eq!(t.ack_seq(), 2);
    }

    #[test]
    fn duplicate_arrival_is_inorder_noop() {
        let mut t = RecvTracker::new(0);
        t.on_data(0);
        assert_eq!(t.on_data(0), RecvEvent::InOrder);
        assert_eq!(t.next_expected(), 1);
    }

    #[test]
    fn retx_queue_drains_on_ack_and_bounds_occupancy() {
        let mut q = RetxQueue::new(2500);
        for i in 0..3u32 {
            q.push(RetxEntry { seq: i, bytes: 1000, origin_ts_us: i as u64 * 10 });
        }
        // Third push exceeded 2500: oldest evicted.
        assert_eq!(q.evicted, 1);
        assert_eq!(q.len(), 2);
        assert!(q.get(0).is_none());
        assert!(q.get(1).is_some());
        q.ack_through(2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.occupancy_bytes(), 1000);
        q.ack_through(3);
        assert!(q.is_empty());
    }

    #[test]
    fn retx_queue_ack_respects_wrap() {
        let mut q = RetxQueue::new(usize::MAX);
        q.push(RetxEntry { seq: u32::MAX, bytes: 10, origin_ts_us: 0 });
        q.push(RetxEntry { seq: 0, bytes: 10, origin_ts_us: 1 });
        q.ack_through(0);
        assert_eq!(q.len(), 1, "MAX precedes 0 in serial order");
        assert_eq!(q.get(0).unwrap().seq, 0);
    }

    #[test]
    fn latency_window_gate() {
        assert!(!too_late(1000, 1500, 800));
        assert!(too_late(1000, 2000, 800));
        assert!(!too_late(1000, 1800, 800), "boundary arrival is in time");
    }
}
