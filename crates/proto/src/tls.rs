//! TLS record layer model.
//!
//! §3: "Public streams are delivered using plaintext RTMP and HTTP, whereas
//! the private broadcast streams are encrypted using RTMPS and HTTPS for
//! HLS" — and the API itself rides HTTPS, which is why the paper needed an
//! SSL-capable mitmproxy (§2). This module models the parts of TLS that
//! matter to a traffic measurement: record framing (5-byte header + 16 KiB
//! max fragments), per-record overhead (IV/MAC/padding), the extra
//! handshake round trips, and the opacity of the payload — the model
//! "encrypts" with a keyed stream so captures of private sessions cannot be
//! parsed without the key, exactly the wall the paper hit.

use crate::ProtoError;

/// TLS record content type for application data.
const CONTENT_APPLICATION_DATA: u8 = 23;
/// TLS 1.2 version bytes.
const VERSION: [u8; 2] = [0x03, 0x03];
/// Maximum plaintext fragment per record.
pub const MAX_FRAGMENT: usize = 16_384;
/// Per-record cryptographic overhead (explicit nonce + AEAD tag, GCM-style).
pub const RECORD_OVERHEAD: usize = 8 + 16;
/// Extra round trips a full TLS 1.2 handshake adds before data flows.
pub const HANDSHAKE_RTTS: u32 = 2;

/// A TLS session keyed by a shared secret (both ends derive the same
/// keystream; an observer without the key sees only sizes and timing).
#[derive(Debug, Clone)]
pub struct TlsChannel {
    key: u64,
    seq: u64,
}

impl TlsChannel {
    /// Creates a channel from a shared key.
    pub fn new(key: u64) -> Self {
        TlsChannel { key, seq: 0 }
    }

    /// Encrypts and frames `plaintext` into one or more records.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + 64);
        for fragment in plaintext.chunks(MAX_FRAGMENT).chain(
            // An empty message still produces one (empty) record.
            std::iter::once(&[][..]).take(usize::from(plaintext.is_empty())),
        ) {
            let body_len = fragment.len() + RECORD_OVERHEAD;
            out.push(CONTENT_APPLICATION_DATA);
            out.extend_from_slice(&VERSION);
            out.extend_from_slice(&(body_len as u16).to_be_bytes());
            // Explicit nonce: the record sequence number.
            out.extend_from_slice(&self.seq.to_be_bytes());
            let mut keystream = KeyStream::new(self.key, self.seq);
            out.extend(fragment.iter().map(|&b| b ^ keystream.next_byte()));
            // "AEAD tag": a keyed checksum of the ciphertext fragment.
            let tag = tag(self.key, self.seq, fragment);
            out.extend_from_slice(&tag.to_be_bytes());
            out.extend_from_slice(&tag.to_be_bytes()); // 16-byte tag total
            self.seq += 1;
        }
        out
    }

    /// Parses and decrypts one record from the front of `bytes`; returns
    /// the plaintext and bytes consumed. Fails on bad framing or tag.
    pub fn open(&mut self, bytes: &[u8]) -> Result<(Vec<u8>, usize), ProtoError> {
        if bytes.len() < 5 {
            return Err(ProtoError::Truncated);
        }
        if bytes[0] != CONTENT_APPLICATION_DATA || bytes[1..3] != VERSION {
            return Err(ProtoError::Malformed("bad TLS record header".to_string()));
        }
        let body_len = u16::from_be_bytes(bytes[3..5].try_into().expect("2")) as usize;
        let total = 5 + body_len;
        if bytes.len() < total {
            return Err(ProtoError::Truncated);
        }
        if body_len < RECORD_OVERHEAD {
            return Err(ProtoError::Malformed("record shorter than overhead".to_string()));
        }
        let nonce = u64::from_be_bytes(bytes[5..13].try_into().expect("8"));
        let frag_len = body_len - RECORD_OVERHEAD;
        let ct = &bytes[13..13 + frag_len];
        let mut keystream = KeyStream::new(self.key, nonce);
        let plaintext: Vec<u8> = ct.iter().map(|&b| b ^ keystream.next_byte()).collect();
        let want = tag(self.key, nonce, &plaintext);
        let got =
            u64::from_be_bytes(bytes[13 + frag_len..13 + frag_len + 8].try_into().expect("8"));
        if want != got {
            return Err(ProtoError::Protocol("TLS tag mismatch (wrong key?)".to_string()));
        }
        self.seq = nonce + 1;
        Ok((plaintext, total))
    }

    /// Decrypts a whole stream of records.
    pub fn open_all(&mut self, mut bytes: &[u8]) -> Result<Vec<u8>, ProtoError> {
        let mut out = Vec::with_capacity(bytes.len());
        while !bytes.is_empty() {
            let (pt, used) = self.open(bytes)?;
            out.extend_from_slice(&pt);
            bytes = &bytes[used..];
        }
        Ok(out)
    }
}

/// Wire size of `plaintext_len` bytes after record framing.
pub fn sealed_len(plaintext_len: usize) -> usize {
    if plaintext_len == 0 {
        return 5 + RECORD_OVERHEAD;
    }
    let records = plaintext_len.div_ceil(MAX_FRAGMENT);
    plaintext_len + records * (5 + RECORD_OVERHEAD)
}

/// SplitMix-based keystream (a *model* of a stream cipher: deterministic,
/// key-dependent, and useless to an observer — not actual cryptography).
struct KeyStream {
    state: u64,
    buf: [u8; 8],
    used: usize,
}

impl KeyStream {
    fn new(key: u64, nonce: u64) -> Self {
        KeyStream { state: key ^ nonce.wrapping_mul(0x9e37_79b9_7f4a_7c15), buf: [0; 8], used: 8 }
    }

    fn next_byte(&mut self) -> u8 {
        if self.used == 8 {
            self.state = splitmix(self.state);
            self.buf = self.state.to_le_bytes();
            self.used = 0;
        }
        let b = self.buf[self.used];
        self.used += 1;
        b
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn tag(key: u64, nonce: u64, data: &[u8]) -> u64 {
    let mut h = key ^ nonce.rotate_left(17);
    for chunk in data.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix(h ^ u64::from_le_bytes(word));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let mut tx = TlsChannel::new(0xdead_beef);
        let mut rx = TlsChannel::new(0xdead_beef);
        let wire = tx.seal(b"hello private broadcast");
        let (pt, used) = rx.open(&wire).unwrap();
        assert_eq!(pt, b"hello private broadcast");
        assert_eq!(used, wire.len());
    }

    #[test]
    fn roundtrip_multi_record() {
        let mut tx = TlsChannel::new(7);
        let mut rx = TlsChannel::new(7);
        let plaintext: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let wire = tx.seal(&plaintext);
        assert_eq!(wire.len(), sealed_len(plaintext.len()));
        assert_eq!(rx.open_all(&wire).unwrap(), plaintext);
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let mut tx = TlsChannel::new(1);
        let plaintext = b"RTMP handshake C0C1 would be visible here".repeat(10);
        let wire = tx.seal(&plaintext);
        // No 16-byte window of the plaintext appears in the wire bytes.
        assert!(!wire.windows(16).any(|w| plaintext.windows(16).any(|p| p == w)));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = TlsChannel::new(1);
        let mut rx = TlsChannel::new(2);
        let wire = tx.seal(b"secret");
        assert!(matches!(rx.open(&wire), Err(ProtoError::Protocol(_))));
    }

    #[test]
    fn tampering_detected() {
        let mut tx = TlsChannel::new(3);
        let mut rx = TlsChannel::new(3);
        let mut wire = tx.seal(b"payload-payload-payload");
        let n = wire.len();
        wire[n / 2] ^= 0x01;
        assert!(rx.open(&wire).is_err());
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let mut rx = TlsChannel::new(3);
        assert_eq!(rx.open(&[23, 3]).unwrap_err(), ProtoError::Truncated);
        assert!(rx.open(&[0xFF; 40]).is_err());
        let mut tx = TlsChannel::new(3);
        let wire = tx.seal(b"x");
        assert_eq!(rx.open(&wire[..wire.len() - 1]).unwrap_err(), ProtoError::Truncated);
    }

    #[test]
    fn empty_message_one_record() {
        let mut tx = TlsChannel::new(9);
        let mut rx = TlsChannel::new(9);
        let wire = tx.seal(b"");
        assert_eq!(wire.len(), sealed_len(0));
        let (pt, _) = rx.open(&wire).unwrap();
        assert!(pt.is_empty());
    }

    #[test]
    fn sealed_len_matches() {
        for len in [0usize, 1, 100, MAX_FRAGMENT, MAX_FRAGMENT + 1, 3 * MAX_FRAGMENT + 7] {
            let mut tx = TlsChannel::new(11);
            let wire = tx.seal(&vec![0xAB; len]);
            assert_eq!(wire.len(), sealed_len(len), "len={len}");
        }
    }

    #[test]
    fn out_of_order_records_still_open() {
        // Each record carries its own nonce, so a capture analyzer can
        // decrypt records independently (if it had the key).
        let mut tx = TlsChannel::new(13);
        let w1 = tx.seal(b"first");
        let w2 = tx.seal(b"second");
        let mut rx = TlsChannel::new(13);
        let (p2, _) = rx.open(&w2).unwrap();
        assert_eq!(p2, b"second");
        let (p1, _) = rx.open(&w1).unwrap();
        assert_eq!(p1, b"first");
    }
}
