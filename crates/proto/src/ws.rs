//! WebSocket framing (RFC 6455 subset) for the chat channel.
//!
//! "The chat uses Websockets to deliver messages" (§3). Chat traffic matters
//! to the reproduction because enabling chat nearly doubles power draw
//! (Fig 7) via JSON messages plus uncached profile-picture downloads
//! (§5.1). Frames here support text/binary/ping/pong/close, client-side
//! masking, and 7/16/64-bit payload lengths.

use crate::ProtoError;

/// WebSocket frame opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// 0x1 — UTF-8 text (chat JSON).
    Text,
    /// 0x2 — binary.
    Binary,
    /// 0x8 — close.
    Close,
    /// 0x9 — ping.
    Ping,
    /// 0xA — pong.
    Pong,
}

impl Opcode {
    fn id(self) -> u8 {
        match self {
            Opcode::Text => 0x1,
            Opcode::Binary => 0x2,
            Opcode::Close => 0x8,
            Opcode::Ping => 0x9,
            Opcode::Pong => 0xA,
        }
    }

    fn from_id(id: u8) -> Result<Self, ProtoError> {
        Ok(match id {
            0x1 => Opcode::Text,
            0x2 => Opcode::Binary,
            0x8 => Opcode::Close,
            0x9 => Opcode::Ping,
            0xA => Opcode::Pong,
            other => return Err(ProtoError::Malformed(format!("unknown opcode 0x{other:x}"))),
        })
    }
}

/// A single (FIN=1, no fragmentation) WebSocket frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame opcode.
    pub opcode: Opcode,
    /// Unmasked payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A text frame.
    pub fn text(s: impl Into<String>) -> Frame {
        Frame { opcode: Opcode::Text, payload: s.into().into_bytes() }
    }

    /// Payload as UTF-8, if valid.
    pub fn as_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }

    /// Encodes the frame. `mask` is the client masking key (clients MUST
    /// mask; servers MUST NOT — pass `None`).
    pub fn encode(&self, mask: Option<[u8; 4]>) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 14);
        out.push(0x80 | self.opcode.id()); // FIN set
        let mask_bit = if mask.is_some() { 0x80 } else { 0x00 };
        let len = self.payload.len();
        if len < 126 {
            out.push(mask_bit | len as u8);
        } else if len <= u16::MAX as usize {
            out.push(mask_bit | 126);
            out.extend_from_slice(&(len as u16).to_be_bytes());
        } else {
            out.push(mask_bit | 127);
            out.extend_from_slice(&(len as u64).to_be_bytes());
        }
        match mask {
            Some(key) => {
                out.extend_from_slice(&key);
                out.extend(self.payload.iter().enumerate().map(|(i, &b)| b ^ key[i % 4]));
            }
            None => out.extend_from_slice(&self.payload),
        }
        out
    }

    /// Decodes one frame from the front of `bytes`; returns the frame and
    /// bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), ProtoError> {
        if bytes.len() < 2 {
            return Err(ProtoError::Truncated);
        }
        let b0 = bytes[0];
        if b0 & 0x80 == 0 {
            return Err(ProtoError::Protocol("fragmented frames not supported".to_string()));
        }
        let opcode = Opcode::from_id(b0 & 0x0F)?;
        let b1 = bytes[1];
        let masked = b1 & 0x80 != 0;
        let mut pos = 2;
        let len = match b1 & 0x7F {
            126 => {
                let raw: [u8; 2] =
                    bytes.get(pos..pos + 2).ok_or(ProtoError::Truncated)?.try_into().expect("2");
                pos += 2;
                u16::from_be_bytes(raw) as usize
            }
            127 => {
                let raw: [u8; 8] =
                    bytes.get(pos..pos + 8).ok_or(ProtoError::Truncated)?.try_into().expect("8");
                pos += 8;
                u64::from_be_bytes(raw) as usize
            }
            n => n as usize,
        };
        let key = if masked {
            let raw: [u8; 4] =
                bytes.get(pos..pos + 4).ok_or(ProtoError::Truncated)?.try_into().expect("4");
            pos += 4;
            Some(raw)
        } else {
            None
        };
        let raw = bytes.get(pos..pos + len).ok_or(ProtoError::Truncated)?;
        let payload = match key {
            Some(k) => raw.iter().enumerate().map(|(i, &b)| b ^ k[i % 4]).collect(),
            None => raw.to_vec(),
        };
        Ok((Frame { opcode, payload }, pos + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmasked_roundtrip() {
        let f = Frame::text("hello chat");
        let (g, n) = Frame::decode(&f.encode(None)).unwrap();
        assert_eq!(g, f);
        assert_eq!(n, f.encode(None).len());
    }

    #[test]
    fn masked_roundtrip() {
        let f = Frame::text("masked message");
        let enc = f.encode(Some([1, 2, 3, 4]));
        // Masked bytes differ from the plaintext.
        assert!(!enc.windows(6).any(|w| w == b"masked"));
        let (g, _) = Frame::decode(&enc).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn medium_length_16bit() {
        let f = Frame { opcode: Opcode::Binary, payload: vec![7; 300] };
        let enc = f.encode(None);
        assert_eq!(enc[1] & 0x7F, 126);
        let (g, _) = Frame::decode(&enc).unwrap();
        assert_eq!(g.payload.len(), 300);
    }

    #[test]
    fn large_length_64bit() {
        let f = Frame { opcode: Opcode::Binary, payload: vec![9; 70_000] };
        let enc = f.encode(None);
        assert_eq!(enc[1] & 0x7F, 127);
        let (g, _) = Frame::decode(&enc).unwrap();
        assert_eq!(g.payload.len(), 70_000);
    }

    #[test]
    fn control_frames() {
        for op in [Opcode::Close, Opcode::Ping, Opcode::Pong] {
            let f = Frame { opcode: op, payload: vec![] };
            let (g, _) = Frame::decode(&f.encode(None)).unwrap();
            assert_eq!(g.opcode, op);
        }
    }

    #[test]
    fn truncated_rejected() {
        let f = Frame::text("abcdef");
        let enc = f.encode(Some([9, 9, 9, 9]));
        for cut in [0, 1, 3, enc.len() - 1] {
            assert_eq!(Frame::decode(&enc[..cut]).unwrap_err(), ProtoError::Truncated);
        }
    }

    #[test]
    fn fragmented_rejected() {
        let mut enc = Frame::text("x").encode(None);
        enc[0] &= 0x7F; // clear FIN
        assert!(matches!(Frame::decode(&enc), Err(ProtoError::Protocol(_))));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let enc = vec![0x80 | 0x5, 0x00];
        assert!(matches!(Frame::decode(&enc), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn as_text() {
        assert_eq!(Frame::text("héllo").as_text(), Some("héllo"));
        let bin = Frame { opcode: Opcode::Binary, payload: vec![0xFF, 0xFE] };
        assert_eq!(bin.as_text(), None);
    }

    #[test]
    fn chat_json_frame() {
        // A chat message as the service sends it: JSON in a text frame.
        let body = r#"{"kind":"chat","user":"u123","text":"hi","pic":"https://s3/img/u123.jpg"}"#;
        let f = Frame::text(body);
        let (g, _) = Frame::decode(&f.encode(None)).unwrap();
        assert_eq!(g.as_text(), Some(body));
    }
}
