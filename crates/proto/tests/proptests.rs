//! Property-based tests for the wire protocols: every encoder/decoder pair
//! must round-trip arbitrary valid inputs, and decoders must never panic on
//! arbitrary bytes. Ported from proptest to the in-tree `pscp-check`
//! harness: generators are plain `Fn(&mut Gen) -> T` closures.

use pscp_check::{check, check_with, ensure_eq, Config, Gen};
use pscp_proto::amf::Amf0;
use pscp_proto::hls::{MediaPlaylist, SegmentEntry};
use pscp_proto::http::{Request, Response};
use pscp_proto::json::{parse, Value};
use pscp_proto::rtmp::{Chunker, Dechunker, Message, MessageType};
use pscp_proto::ws::{Frame, Opcode};
use std::collections::BTreeMap;

/// Characters exercised in JSON/HTTP string fields: identifiers, spacing,
/// punctuation that needs escaping, and multi-byte UTF-8.
const TEXT_CHARS: &[char] = &[
    'a',
    'b',
    'z',
    'A',
    'Z',
    '0',
    '9',
    ' ',
    '_',
    '-',
    '.',
    '"',
    '\\',
    '/',
    ':',
    ',',
    '{',
    '}',
    '[',
    ']',
    '<',
    '>',
    '\'',
    '\t',
    '\u{00e9}',
    '\u{4e2d}',
    '\u{1d11e}',
];

const KEY_CHARS: &[char] = &['a', 'b', 'c', 'k', 'q', 'x', 'y', 'z'];

// ------------------------------------------------------------------- JSON

/// Generates arbitrary JSON values up to a modest depth.
fn arb_json(g: &mut Gen, depth: u32) -> Value {
    let alts = if depth == 0 { 4 } else { 6 };
    match g.choice(alts) {
        0 => Value::Null,
        1 => Value::Bool(g.bool()),
        // Finite doubles; NaN/inf are not JSON.
        2 => Value::Number(g.f64(-1e12..1e12)),
        3 => Value::String(g.string(TEXT_CHARS, 0..=20)),
        4 => Value::Array(g.vec(0..6, |g| arb_json(g, depth - 1))),
        _ => {
            let entries: BTreeMap<String, Value> = g
                .vec(0..6, |g| (g.string(KEY_CHARS, 1..=8), arb_json(g, depth - 1)))
                .into_iter()
                .collect();
            Value::Object(entries)
        }
    }
}

#[test]
fn json_roundtrip() {
    check(
        "json_roundtrip",
        |g: &mut Gen| arb_json(g, 3),
        |v| {
            let text = v.to_json();
            let back = parse(&text).map_err(|e| format!("parse failed: {e:?}"))?;
            // Numbers may lose the integer/float distinction but not value.
            ensure_eq!(back.to_json(), text);
            Ok(())
        },
    );
}

#[test]
fn json_parser_never_panics() {
    check(
        "json_parser_never_panics",
        |g: &mut Gen| g.string(TEXT_CHARS, 0..=200),
        |s| {
            let _ = parse(s);
            Ok(())
        },
    );
}

#[test]
fn json_string_escaping_total() {
    check(
        "json_string_escaping_total",
        |g: &mut Gen| g.string(TEXT_CHARS, 0..=64),
        |s| {
            let v = Value::String(s.clone());
            let back = parse(&v.to_json()).map_err(|e| format!("parse failed: {e:?}"))?;
            ensure_eq!(back.as_str().unwrap_or("<not a string>"), s.as_str());
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- AMF0

const AMF_CHARS: &[char] = &['a', 'z', 'A', 'Z', '0', '9', ' '];

fn arb_amf(g: &mut Gen, depth: u32) -> Amf0 {
    let alts = if depth == 0 { 4 } else { 5 };
    match g.choice(alts) {
        0 => Amf0::Null,
        1 => Amf0::Boolean(g.bool()),
        2 => Amf0::Number(g.f64(-1e9..1e9)),
        3 => Amf0::String(g.string(AMF_CHARS, 0..=32)),
        _ => {
            let entries: BTreeMap<String, Amf0> = g
                .vec(0..5, |g| (g.string(KEY_CHARS, 1..=6), arb_amf(g, depth - 1)))
                .into_iter()
                .collect();
            Amf0::Object(entries)
        }
    }
}

#[test]
fn amf_roundtrip() {
    check(
        "amf_roundtrip",
        |g: &mut Gen| arb_amf(g, 2),
        |v| {
            let enc = v.encode();
            let (dec, used) = Amf0::decode(&enc).map_err(|e| format!("decode failed: {e:?}"))?;
            ensure_eq!(used, enc.len());
            ensure_eq!(&dec, v);
            Ok(())
        },
    );
}

#[test]
fn amf_decoder_never_panics() {
    check(
        "amf_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..128),
        |bytes| {
            let _ = Amf0::decode(bytes);
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- RTMP

fn arb_message(g: &mut Gen) -> Message {
    let kind = match g.choice(4) {
        0 => MessageType::Audio,
        1 => MessageType::Video,
        2 => MessageType::DataAmf0,
        _ => MessageType::CommandAmf0,
    };
    Message {
        chunk_stream_id: g.u8(2..=63),
        timestamp: g.u32(0..0x0200_0000),
        kind,
        stream_id: g.u32(0..4),
        payload: g.bytes(0..600),
    }
}

#[test]
fn rtmp_messages_roundtrip_any_order() {
    check_with(
        Config::with_cases(64),
        "rtmp_messages_roundtrip_any_order",
        |g: &mut Gen| g.vec(1..20, arb_message),
        |msgs| {
            // fmt1 headers require non-decreasing timestamps per chunk
            // stream; the encoder handles regressions by falling back to
            // fmt0, so no sorting is needed — any sequence must survive.
            let mut chunker = Chunker::new();
            let wire = chunker.encode_all(msgs);
            let mut d = Dechunker::new();
            // Feed in ragged 7-byte pieces.
            for part in wire.chunks(7) {
                d.feed(part).map_err(|e| format!("feed failed: {e:?}"))?;
            }
            ensure_eq!(&d.pop_all(), msgs);
            Ok(())
        },
    );
}

#[test]
fn rtmp_dechunker_never_panics() {
    check(
        "rtmp_dechunker_never_panics",
        |g: &mut Gen| g.bytes(0..600),
        |bytes| {
            let mut d = Dechunker::new();
            let _ = d.feed(bytes);
            Ok(())
        },
    );
}

// --------------------------------------------------------------------- WS

#[test]
fn ws_roundtrip() {
    check(
        "ws_roundtrip",
        |g: &mut Gen| {
            // Deliberate length buckets so the 16-bit and 64-bit extended
            // payload-length encodings both get exercised every run.
            let len = match g.choice(3) {
                0 => g.usize(0..=200),
                1 => g.usize(200..=2_000),
                _ => g.usize(60_000..70_000),
            };
            let payload = g.bytes(len..=len);
            let masked = g.bool();
            let key = [g.u8(..), g.u8(..), g.u8(..), g.u8(..)];
            (payload, masked, key)
        },
        |(payload, masked, key)| {
            let f = Frame { opcode: Opcode::Binary, payload: payload.clone() };
            let enc = f.encode(masked.then_some(*key));
            let (dec, used) = Frame::decode(&enc).map_err(|e| format!("decode failed: {e:?}"))?;
            ensure_eq!(used, enc.len());
            ensure_eq!(dec, f);
            Ok(())
        },
    );
}

#[test]
fn ws_decoder_never_panics() {
    check(
        "ws_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..256),
        |bytes| {
            let _ = Frame::decode(bytes);
            Ok(())
        },
    );
}

// -------------------------------------------------------------------- HLS

#[test]
fn hls_playlist_roundtrip() {
    check(
        "hls_playlist_roundtrip",
        |g: &mut Gen| (g.u32(1..10), g.u64(0..1000), g.bool(), g.vec(0..12, |g| g.f64(0.5..9.5))),
        |(target, seq, ended, durations)| {
            let mut pl = MediaPlaylist::new(*target);
            pl.media_sequence = *seq;
            pl.ended = *ended;
            for (i, d) in durations.iter().enumerate() {
                // Round to the 3-decimal EXTINF precision the renderer emits.
                let d = (d * 1000.0).round() / 1000.0;
                pl.segments.push(SegmentEntry { duration_s: d, uri: format!("seg_{i}.ts") });
            }
            let parsed =
                MediaPlaylist::parse(&pl.render()).map_err(|e| format!("parse failed: {e:?}"))?;
            ensure_eq!(parsed, pl);
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- HTTP

const PATH_CHARS: &[char] = &['a', 'k', 'z', '0', '9', '/'];
const HEADER_CHARS: &[char] = &['a', 'z', 'A', 'Z', '0', '9'];

#[test]
fn http_request_roundtrip() {
    check(
        "http_request_roundtrip",
        |g: &mut Gen| {
            (
                format!("/{}", g.string(PATH_CHARS, 0..=30)),
                g.bytes(0..500),
                g.string(HEADER_CHARS, 0..=16),
            )
        },
        |(path, body, header_val)| {
            let mut req = Request::get(path.clone());
            req.body = body.clone();
            let req = req.header("x-test", header_val);
            let dec = Request::decode(&req.encode()).map_err(|e| format!("decode: {e:?}"))?;
            ensure_eq!(dec.get_header("x-test").unwrap_or(""), header_val.as_str());
            ensure_eq!(&dec.path, &req.path);
            ensure_eq!(dec.body, req.body);
            Ok(())
        },
    );
}

#[test]
fn http_response_roundtrip() {
    check(
        "http_response_roundtrip",
        |g: &mut Gen| {
            let status = [200u16, 404, 429, 500][g.choice(4)];
            (status, g.bytes(0..500))
        },
        |(status, body)| {
            let resp = Response { status: *status, headers: vec![], body: body.clone() };
            let dec = Response::decode(&resp.encode()).map_err(|e| format!("decode: {e:?}"))?;
            ensure_eq!(dec.status, *status);
            ensure_eq!(dec.body, resp.body);
            Ok(())
        },
    );
}

#[test]
fn http_decoder_never_panics() {
    check(
        "http_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..300),
        |bytes| {
            let _ = Request::decode(bytes);
            let _ = Response::decode(bytes);
            Ok(())
        },
    );
}
