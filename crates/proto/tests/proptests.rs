//! Property-based tests for the wire protocols: every encoder/decoder pair
//! must round-trip arbitrary valid inputs, and decoders must never panic on
//! arbitrary bytes. Ported from proptest to the in-tree `pscp-check`
//! harness: generators are plain `Fn(&mut Gen) -> T` closures.

use pscp_check::{check, check_with, ensure, ensure_eq, Config, Gen};
use pscp_proto::amf::Amf0;
use pscp_proto::hls::{MediaPlaylist, SegmentEntry};
use pscp_proto::http::{Request, Response};
use pscp_proto::json::{parse, Value};
use pscp_proto::rtmp::{Chunker, Dechunker, Message, MessageType};
use pscp_proto::ws::{Frame, Opcode};
use std::collections::BTreeMap;

/// Characters exercised in JSON/HTTP string fields: identifiers, spacing,
/// punctuation that needs escaping, and multi-byte UTF-8.
const TEXT_CHARS: &[char] = &[
    'a',
    'b',
    'z',
    'A',
    'Z',
    '0',
    '9',
    ' ',
    '_',
    '-',
    '.',
    '"',
    '\\',
    '/',
    ':',
    ',',
    '{',
    '}',
    '[',
    ']',
    '<',
    '>',
    '\'',
    '\t',
    '\u{00e9}',
    '\u{4e2d}',
    '\u{1d11e}',
];

const KEY_CHARS: &[char] = &['a', 'b', 'c', 'k', 'q', 'x', 'y', 'z'];

// ------------------------------------------------------------------- JSON

/// Generates arbitrary JSON values up to a modest depth.
fn arb_json(g: &mut Gen, depth: u32) -> Value {
    let alts = if depth == 0 { 4 } else { 6 };
    match g.choice(alts) {
        0 => Value::Null,
        1 => Value::Bool(g.bool()),
        // Finite doubles; NaN/inf are not JSON.
        2 => Value::Number(g.f64(-1e12..1e12)),
        3 => Value::String(g.string(TEXT_CHARS, 0..=20)),
        4 => Value::Array(g.vec(0..6, |g| arb_json(g, depth - 1))),
        _ => {
            let entries: BTreeMap<String, Value> = g
                .vec(0..6, |g| (g.string(KEY_CHARS, 1..=8), arb_json(g, depth - 1)))
                .into_iter()
                .collect();
            Value::Object(entries)
        }
    }
}

#[test]
fn json_roundtrip() {
    check(
        "json_roundtrip",
        |g: &mut Gen| arb_json(g, 3),
        |v| {
            let text = v.to_json();
            let back = parse(&text).map_err(|e| format!("parse failed: {e:?}"))?;
            // Numbers may lose the integer/float distinction but not value.
            ensure_eq!(back.to_json(), text);
            Ok(())
        },
    );
}

#[test]
fn json_parser_never_panics() {
    check(
        "json_parser_never_panics",
        |g: &mut Gen| g.string(TEXT_CHARS, 0..=200),
        |s| {
            let _ = parse(s);
            Ok(())
        },
    );
}

#[test]
fn json_string_escaping_total() {
    check(
        "json_string_escaping_total",
        |g: &mut Gen| g.string(TEXT_CHARS, 0..=64),
        |s| {
            let v = Value::String(s.clone());
            let back = parse(&v.to_json()).map_err(|e| format!("parse failed: {e:?}"))?;
            ensure_eq!(back.as_str().unwrap_or("<not a string>"), s.as_str());
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- AMF0

const AMF_CHARS: &[char] = &['a', 'z', 'A', 'Z', '0', '9', ' '];

fn arb_amf(g: &mut Gen, depth: u32) -> Amf0 {
    let alts = if depth == 0 { 4 } else { 5 };
    match g.choice(alts) {
        0 => Amf0::Null,
        1 => Amf0::Boolean(g.bool()),
        2 => Amf0::Number(g.f64(-1e9..1e9)),
        3 => Amf0::String(g.string(AMF_CHARS, 0..=32)),
        _ => {
            let entries: BTreeMap<String, Amf0> = g
                .vec(0..5, |g| (g.string(KEY_CHARS, 1..=6), arb_amf(g, depth - 1)))
                .into_iter()
                .collect();
            Amf0::Object(entries)
        }
    }
}

#[test]
fn amf_roundtrip() {
    check(
        "amf_roundtrip",
        |g: &mut Gen| arb_amf(g, 2),
        |v| {
            let enc = v.encode();
            let (dec, used) = Amf0::decode(&enc).map_err(|e| format!("decode failed: {e:?}"))?;
            ensure_eq!(used, enc.len());
            ensure_eq!(&dec, v);
            Ok(())
        },
    );
}

#[test]
fn amf_decoder_never_panics() {
    check(
        "amf_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..128),
        |bytes| {
            let _ = Amf0::decode(bytes);
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- RTMP

fn arb_message(g: &mut Gen) -> Message {
    let kind = match g.choice(4) {
        0 => MessageType::Audio,
        1 => MessageType::Video,
        2 => MessageType::DataAmf0,
        _ => MessageType::CommandAmf0,
    };
    Message {
        chunk_stream_id: g.u8(2..=63),
        timestamp: g.u32(0..0x0200_0000),
        kind,
        stream_id: g.u32(0..4),
        payload: g.bytes(0..600),
    }
}

#[test]
fn rtmp_messages_roundtrip_any_order() {
    check_with(
        Config::with_cases(64),
        "rtmp_messages_roundtrip_any_order",
        |g: &mut Gen| g.vec(1..20, arb_message),
        |msgs| {
            // fmt1 headers require non-decreasing timestamps per chunk
            // stream; the encoder handles regressions by falling back to
            // fmt0, so no sorting is needed — any sequence must survive.
            let mut chunker = Chunker::new();
            let wire = chunker.encode_all(msgs);
            let mut d = Dechunker::new();
            // Feed in ragged 7-byte pieces.
            for part in wire.chunks(7) {
                d.feed(part).map_err(|e| format!("feed failed: {e:?}"))?;
            }
            ensure_eq!(&d.pop_all(), msgs);
            Ok(())
        },
    );
}

#[test]
fn rtmp_dechunker_never_panics() {
    check(
        "rtmp_dechunker_never_panics",
        |g: &mut Gen| g.bytes(0..600),
        |bytes| {
            let mut d = Dechunker::new();
            let _ = d.feed(bytes);
            Ok(())
        },
    );
}

// --------------------------------------------------------------------- WS

#[test]
fn ws_roundtrip() {
    check(
        "ws_roundtrip",
        |g: &mut Gen| {
            // Deliberate length buckets so the 16-bit and 64-bit extended
            // payload-length encodings both get exercised every run.
            let len = match g.choice(3) {
                0 => g.usize(0..=200),
                1 => g.usize(200..=2_000),
                _ => g.usize(60_000..70_000),
            };
            let payload = g.bytes(len..=len);
            let masked = g.bool();
            let key = [g.u8(..), g.u8(..), g.u8(..), g.u8(..)];
            (payload, masked, key)
        },
        |(payload, masked, key)| {
            let f = Frame { opcode: Opcode::Binary, payload: payload.clone() };
            let enc = f.encode(masked.then_some(*key));
            let (dec, used) = Frame::decode(&enc).map_err(|e| format!("decode failed: {e:?}"))?;
            ensure_eq!(used, enc.len());
            ensure_eq!(dec, f);
            Ok(())
        },
    );
}

#[test]
fn ws_decoder_never_panics() {
    check(
        "ws_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..256),
        |bytes| {
            let _ = Frame::decode(bytes);
            Ok(())
        },
    );
}

// -------------------------------------------------------------------- HLS

#[test]
fn hls_playlist_roundtrip() {
    check(
        "hls_playlist_roundtrip",
        |g: &mut Gen| (g.u32(1..10), g.u64(0..1000), g.bool(), g.vec(0..12, |g| g.f64(0.5..9.5))),
        |(target, seq, ended, durations)| {
            let mut pl = MediaPlaylist::new(*target);
            pl.media_sequence = *seq;
            pl.ended = *ended;
            for (i, d) in durations.iter().enumerate() {
                // Round to the 3-decimal EXTINF precision the renderer emits.
                let d = (d * 1000.0).round() / 1000.0;
                pl.segments.push(SegmentEntry { duration_s: d, uri: format!("seg_{i}.ts") });
            }
            let parsed =
                MediaPlaylist::parse(&pl.render()).map_err(|e| format!("parse failed: {e:?}"))?;
            ensure_eq!(parsed, pl);
            Ok(())
        },
    );
}

// ------------------------------------------------------------------- HTTP

const PATH_CHARS: &[char] = &['a', 'k', 'z', '0', '9', '/'];
const HEADER_CHARS: &[char] = &['a', 'z', 'A', 'Z', '0', '9'];

#[test]
fn http_request_roundtrip() {
    check(
        "http_request_roundtrip",
        |g: &mut Gen| {
            (
                format!("/{}", g.string(PATH_CHARS, 0..=30)),
                g.bytes(0..500),
                g.string(HEADER_CHARS, 0..=16),
            )
        },
        |(path, body, header_val)| {
            let mut req = Request::get(path.clone());
            req.body = body.clone();
            let req = req.header("x-test", header_val);
            let dec = Request::decode(&req.encode()).map_err(|e| format!("decode: {e:?}"))?;
            ensure_eq!(dec.get_header("x-test").unwrap_or(""), header_val.as_str());
            ensure_eq!(&dec.path, &req.path);
            ensure_eq!(dec.body, req.body);
            Ok(())
        },
    );
}

#[test]
fn http_response_roundtrip() {
    check(
        "http_response_roundtrip",
        |g: &mut Gen| {
            let status = [200u16, 404, 429, 500][g.choice(4)];
            (status, g.bytes(0..500))
        },
        |(status, body)| {
            let resp = Response { status: *status, headers: vec![], body: body.clone() };
            let dec = Response::decode(&resp.encode()).map_err(|e| format!("decode: {e:?}"))?;
            ensure_eq!(dec.status, *status);
            ensure_eq!(dec.body, resp.body);
            Ok(())
        },
    );
}

#[test]
fn http_decoder_never_panics() {
    check(
        "http_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..300),
        |bytes| {
            let _ = Request::decode(bytes);
            let _ = Response::decode(bytes);
            Ok(())
        },
    );
}

// ------------------------------------------- RTMP zero-copy ≡ reference
//
// The shipping chunker/dechunker (rtmp.rs) write into caller buffers and
// reassemble into a recycled arena. These tests pin them, byte for byte and
// message for message, to a retained copy of the original owned-Vec
// implementation — the straightforward one whose correctness is obvious —
// across arbitrary message mixes, chunk-size renegotiations and feed split
// points.

mod rtmp_reference {
    use pscp_proto::rtmp::{Message, MessageType, DEFAULT_CHUNK_SIZE};
    use pscp_proto::ProtoError;
    use std::collections::{HashMap, VecDeque};

    fn push_u24(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]);
    }

    fn read_u24(b: &[u8]) -> u32 {
        ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32
    }

    #[derive(Debug, Clone, Default)]
    struct CsState {
        timestamp: u32,
        length: usize,
        kind: Option<MessageType>,
        stream_id: u32,
    }

    /// The pre-zero-copy chunker: HashMap state, per-message emission.
    pub struct RefChunker {
        chunk_size: usize,
        state: HashMap<u8, CsState>,
    }

    impl RefChunker {
        pub fn new() -> Self {
            RefChunker { chunk_size: DEFAULT_CHUNK_SIZE, state: HashMap::new() }
        }

        pub fn write(&mut self, msg: &Message, out: &mut Vec<u8>) {
            assert!((2..=63).contains(&msg.chunk_stream_id));
            let cs = self.state.entry(msg.chunk_stream_id).or_default();
            let use_fmt1 =
                cs.kind.is_some() && cs.stream_id == msg.stream_id && msg.timestamp >= cs.timestamp;
            let ext_ts = msg.timestamp >= 0xFF_FFFF;
            if use_fmt1 {
                let delta = msg.timestamp - cs.timestamp;
                let ext = delta >= 0xFF_FFFF;
                out.push((1 << 6) | msg.chunk_stream_id);
                push_u24(out, if ext { 0xFF_FFFF } else { delta });
                push_u24(out, msg.payload.len() as u32);
                out.push(msg.kind.id());
                if ext {
                    out.extend_from_slice(&delta.to_be_bytes());
                }
            } else {
                out.push(msg.chunk_stream_id);
                push_u24(out, if ext_ts { 0xFF_FFFF } else { msg.timestamp });
                push_u24(out, msg.payload.len() as u32);
                out.push(msg.kind.id());
                out.extend_from_slice(&msg.stream_id.to_le_bytes());
                if ext_ts {
                    out.extend_from_slice(&msg.timestamp.to_be_bytes());
                }
            }
            cs.timestamp = msg.timestamp;
            cs.length = msg.payload.len();
            cs.kind = Some(msg.kind);
            cs.stream_id = msg.stream_id;
            let mut off = 0;
            let mut first = true;
            while off < msg.payload.len() || (first && msg.payload.is_empty()) {
                if !first {
                    out.push((3 << 6) | msg.chunk_stream_id);
                }
                let take = (msg.payload.len() - off).min(self.chunk_size);
                out.extend_from_slice(&msg.payload[off..off + take]);
                off += take;
                first = false;
            }
            if msg.kind == MessageType::SetChunkSize && msg.payload.len() >= 4 {
                let size =
                    u32::from_be_bytes(msg.payload[..4].try_into().expect("4 bytes")) as usize;
                self.chunk_size = size.max(1);
            }
        }
    }

    /// The pre-zero-copy dechunker: per-csid HashMaps, owned payload Vecs,
    /// front-drain consume.
    pub struct RefDechunker {
        chunk_size: usize,
        buf: Vec<u8>,
        state: HashMap<u8, CsState>,
        partial: HashMap<u8, Vec<u8>>,
        ready: VecDeque<Message>,
    }

    impl RefDechunker {
        pub fn new() -> Self {
            RefDechunker {
                chunk_size: DEFAULT_CHUNK_SIZE,
                buf: Vec::new(),
                state: HashMap::new(),
                partial: HashMap::new(),
                ready: VecDeque::new(),
            }
        }

        pub fn feed(&mut self, bytes: &[u8]) -> Result<(), ProtoError> {
            self.buf.extend_from_slice(bytes);
            while let Some(consumed) = self.try_parse_chunk()? {
                self.buf.drain(..consumed);
            }
            Ok(())
        }

        pub fn pop_all(&mut self) -> Vec<Message> {
            self.ready.drain(..).collect()
        }

        fn try_parse_chunk(&mut self) -> Result<Option<usize>, ProtoError> {
            let buf = &self.buf;
            if buf.is_empty() {
                return Ok(None);
            }
            let fmt = buf[0] >> 6;
            let csid = buf[0] & 0x3F;
            if csid < 2 {
                return Err(ProtoError::Malformed(
                    "extended chunk stream ids are not supported".to_string(),
                ));
            }
            let mut pos = 1;
            let need = |n: usize, pos: usize, buf: &[u8]| buf.len() >= pos + n;
            let prev = self.state.get(&csid).cloned().unwrap_or_default();
            let (ts, length, kind, stream_id, header_len) = match fmt {
                0 => {
                    if !need(11, pos, buf) {
                        return Ok(None);
                    }
                    let ts = read_u24(&buf[pos..]);
                    let length = read_u24(&buf[pos + 3..]) as usize;
                    let kind = MessageType::from_id(buf[pos + 6])?;
                    let stream_id =
                        u32::from_le_bytes(buf[pos + 7..pos + 11].try_into().expect("4 bytes"));
                    pos += 11;
                    let ts = if ts == 0xFF_FFFF {
                        if !need(4, pos, buf) {
                            return Ok(None);
                        }
                        let t = u32::from_be_bytes(buf[pos..pos + 4].try_into().expect("4"));
                        pos += 4;
                        t
                    } else {
                        ts
                    };
                    (ts, length, kind, stream_id, pos)
                }
                1 => {
                    if !need(7, pos, buf) {
                        return Ok(None);
                    }
                    let delta = read_u24(&buf[pos..]);
                    let length = read_u24(&buf[pos + 3..]) as usize;
                    let kind = MessageType::from_id(buf[pos + 6])?;
                    pos += 7;
                    let delta = if delta == 0xFF_FFFF {
                        if !need(4, pos, buf) {
                            return Ok(None);
                        }
                        let d = u32::from_be_bytes(buf[pos..pos + 4].try_into().expect("4"));
                        pos += 4;
                        d
                    } else {
                        delta
                    };
                    (prev.timestamp.wrapping_add(delta), length, kind, prev.stream_id, pos)
                }
                2 => {
                    if !need(3, pos, buf) {
                        return Ok(None);
                    }
                    let delta = read_u24(&buf[pos..]);
                    pos += 3;
                    let kind = prev.kind.ok_or_else(|| {
                        ProtoError::Protocol("fmt2 chunk with no prior state".to_string())
                    })?;
                    (prev.timestamp.wrapping_add(delta), prev.length, kind, prev.stream_id, pos)
                }
                3 => {
                    let kind = prev.kind.ok_or_else(|| {
                        ProtoError::Protocol("fmt3 chunk with no prior state".to_string())
                    })?;
                    (prev.timestamp, prev.length, kind, prev.stream_id, pos)
                }
                _ => unreachable!("2-bit fmt"),
            };
            let already = self.partial.get(&csid).map(|p| p.len()).unwrap_or(0);
            let remaining = length.saturating_sub(already);
            let take = remaining.min(self.chunk_size);
            if buf.len() < header_len + take {
                return Ok(None);
            }
            let payload_part = buf[header_len..header_len + take].to_vec();
            let part = self.partial.entry(csid).or_default();
            part.extend_from_slice(&payload_part);
            self.state.insert(csid, CsState { timestamp: ts, length, kind: Some(kind), stream_id });
            if part.len() >= length {
                let payload = std::mem::take(part);
                if kind == MessageType::SetChunkSize && payload.len() >= 4 {
                    let size =
                        u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
                    self.chunk_size = size.max(1);
                }
                self.ready.push_back(Message {
                    chunk_stream_id: csid,
                    timestamp: ts,
                    kind,
                    stream_id,
                    payload,
                });
            }
            Ok(Some(header_len + take))
        }
    }
}

/// A message mix that also renegotiates the chunk size mid-stream, so the
/// equivalence covers every chunk-size regime, message-spanning chunks and
/// fmt3 continuations.
fn arb_message_with_resize(g: &mut Gen) -> Message {
    if g.choice(8) == 0 {
        Message::set_chunk_size(g.u32(1..512))
    } else {
        arb_message(g)
    }
}

#[test]
fn rtmp_chunker_matches_reference_bytes() {
    check_with(
        Config::with_cases(64),
        "rtmp_chunker_matches_reference_bytes",
        |g: &mut Gen| g.vec(1..24, arb_message_with_resize),
        |msgs| {
            let mut zero_copy = Chunker::new();
            let mut wire = Vec::new();
            for m in msgs {
                zero_copy.write_ref(m.as_ref(), &mut wire);
            }
            let mut reference = rtmp_reference::RefChunker::new();
            let mut ref_wire = Vec::new();
            for m in msgs {
                reference.write(m, &mut ref_wire);
            }
            ensure_eq!(wire, ref_wire);
            Ok(())
        },
    );
}

// -------------------------------------------------------------------- SRT
//
// Serial sequence arithmetic and the compressed-range NAK lists are the
// parts of the SRT layer where an off-by-one at the 2^32 wrap corrupts loss
// recovery silently, so they get property coverage across the boundary:
// starts are biased to land within a few packets of `u32::MAX`.

use pscp_proto::srt::{
    compress_ranges, decode_packet, encode_packet, expand_ranges, seq_add, seq_cmp, seq_distance,
    ControlPacket, DataPacket, Packet, MAX_NAK_RANGE,
};

/// A sequence-space start point, biased to straddle the wrap boundary half
/// of the time so every property is exercised across `u32::MAX → 0`.
fn arb_seq_start(g: &mut Gen) -> u32 {
    if g.bool() {
        g.u32(u32::MAX - 64..=u32::MAX)
    } else {
        g.u32(..)
    }
}

#[test]
fn srt_seq_arithmetic_is_serial() {
    check(
        "srt_seq_arithmetic_is_serial",
        |g: &mut Gen| {
            // Forward offsets stay inside one half-space (2^31), where the
            // serial order is defined; the latency window keeps real traffic
            // far inside it.
            (arb_seq_start(g), g.u32(0..0x8000_0000))
        },
        |&(a, n)| {
            let b = seq_add(a, n);
            // add/distance are inverses through the wrap.
            ensure_eq!(seq_distance(a, b), n);
            ensure_eq!(seq_add(a, 0), a);
            // seq_cmp agrees with the forward distance.
            let expect = 0u32.cmp(&n);
            ensure_eq!(seq_cmp(a, b), expect);
            // Antisymmetry: b compares back the opposite way (strict offsets
            // only; n == 0 is equality).
            ensure_eq!(seq_cmp(b, a), expect.reverse());
            Ok(())
        },
    );
}

/// Generates a strictly increasing (wrap-forward) run of lost sequence
/// numbers: consecutive stretches with occasional gaps, as a real receiver's
/// loss tracker would report them.
fn arb_loss_run(g: &mut Gen) -> Vec<u32> {
    let mut seq = arb_seq_start(g);
    let steps = g.vec(0..40, |g| if g.choice(3) == 0 { g.u32(2..200) } else { 1 });
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        out.push(seq);
        seq = seq_add(seq, step);
    }
    out
}

#[test]
fn srt_nak_ranges_roundtrip_across_wrap() {
    check("srt_nak_ranges_roundtrip_across_wrap", arb_loss_run, |seqs| {
        let ranges = compress_ranges(seqs);
        // Compression is canonical: no two adjacent ranges are mergeable.
        for w in ranges.windows(2) {
            ensure!(
                seq_add(w[0].1, 1) != w[1].0,
                "adjacent ranges {:?} and {:?} should have merged",
                w[0],
                w[1]
            );
        }
        // Every range is wrap-forward and within the decoder's bound.
        for &(first, last) in &ranges {
            ensure!(seq_distance(first, last) < MAX_NAK_RANGE);
        }
        // Round-trip through expansion is the identity.
        let back = expand_ranges(&ranges).map_err(|e| format!("expand failed: {e:?}"))?;
        ensure_eq!(&back, seqs);
        Ok(())
    });
}

#[test]
fn srt_expand_rejects_hostile_ranges() {
    check(
        "srt_expand_rejects_hostile_ranges",
        |g: &mut Gen| (arb_seq_start(g), g.u32(MAX_NAK_RANGE..0x8000_0000)),
        |&(first, width)| {
            let hostile = [(first, seq_add(first, width))];
            ensure!(
                expand_ranges(&hostile).is_err(),
                "range of width {width} must be rejected, not expanded"
            );
            Ok(())
        },
    );
}

fn arb_srt_packet(g: &mut Gen) -> Packet {
    match g.choice(8) {
        0 => Packet::Data(DataPacket {
            seq: arb_seq_start(g),
            origin_ts_us: g.u32(..),
            msg: g.u32(..),
            payload: g.bytes(0..1400),
        }),
        1 => Packet::Control(ControlPacket::Induction {
            version: g.u32(0..10),
            caller_id: g.u32(..),
        }),
        2 => Packet::Control(ControlPacket::Cookie { cookie: g.u32(..) }),
        3 => Packet::Control(ControlPacket::Conclusion {
            cookie: g.u32(..),
            caller_id: g.u32(..),
            initial_seq: arb_seq_start(g),
            latency_ms: g.u32(0..10_000),
        }),
        4 => Packet::Control(ControlPacket::Agreement {
            initial_seq: arb_seq_start(g),
            latency_ms: g.u32(0..10_000),
        }),
        5 => Packet::Control(ControlPacket::Ack { ack_seq: arb_seq_start(g) }),
        6 => Packet::Control(ControlPacket::Nak {
            ranges: {
                let mut seq = arb_seq_start(g);
                g.vec(0..8, |g| {
                    let first = seq;
                    let last = seq_add(first, g.u32(0..MAX_NAK_RANGE));
                    seq = seq_add(last, g.u32(2..100));
                    (first, last)
                })
            },
        }),
        _ => Packet::Control(ControlPacket::Shutdown),
    }
}

#[test]
fn srt_packet_roundtrip() {
    check("srt_packet_roundtrip", arb_srt_packet, |p| {
        let mut wire = Vec::new();
        encode_packet(p, &mut wire);
        let (back, used) = decode_packet(&wire).map_err(|e| format!("decode failed: {e:?}"))?;
        ensure_eq!(used, wire.len());
        ensure_eq!(&back, p);
        Ok(())
    });
}

#[test]
fn srt_decoder_never_panics() {
    check(
        "srt_decoder_never_panics",
        |g: &mut Gen| g.bytes(0..256),
        |bytes| {
            let _ = decode_packet(bytes);
            Ok(())
        },
    );
}

#[test]
fn rtmp_dechunker_matches_reference_messages() {
    check_with(
        Config::with_cases(64),
        "rtmp_dechunker_matches_reference_messages",
        |g: &mut Gen| {
            let msgs = g.vec(1..24, arb_message_with_resize);
            // Arbitrary feed split size forces partial-read resume at every
            // possible point in headers, extended timestamps and payloads.
            let piece = g.usize(1..=33);
            (msgs, piece)
        },
        |(msgs, piece)| {
            let mut chunker = Chunker::new();
            let wire = chunker.encode_all(msgs);
            let mut zero_copy = Dechunker::new();
            let mut reference = rtmp_reference::RefDechunker::new();
            let mut popped = Vec::new();
            for part in wire.chunks(*piece) {
                zero_copy.feed(part).map_err(|e| format!("feed: {e:?}"))?;
                reference.feed(part).map_err(|e| format!("ref feed: {e:?}"))?;
                // Drain mid-stream too: views must already match while
                // later messages are still partial.
                while let Some(view) = zero_copy.next_view() {
                    popped.push(view.to_message());
                }
            }
            ensure_eq!(popped, reference.pop_all());
            Ok(())
        },
    );
}
