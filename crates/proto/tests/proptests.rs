//! Property-based tests for the wire protocols: every encoder/decoder pair
//! must round-trip arbitrary valid inputs, and decoders must never panic on
//! arbitrary bytes.

use proptest::prelude::*;
use pscp_proto::amf::Amf0;
use pscp_proto::hls::{MediaPlaylist, SegmentEntry};
use pscp_proto::http::{Request, Response};
use pscp_proto::json::{parse, Value};
use pscp_proto::rtmp::{Chunker, Dechunker, Message, MessageType};
use pscp_proto::ws::{Frame, Opcode};

// ------------------------------------------------------------------- JSON

/// Generates arbitrary JSON values up to a modest depth.
fn arb_json() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        // Finite doubles; NaN/inf are not JSON.
        (-1e12f64..1e12).prop_map(Value::Number),
        "[a-zA-Z0-9 _\\-\\.\u{00e9}\u{4e2d}]{0,20}".prop_map(Value::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #[test]
    fn json_roundtrip(v in arb_json()) {
        let text = v.to_json();
        let back = parse(&text).unwrap();
        // Numbers may lose the integer/float distinction but not value.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn json_string_escaping_total(s in "\\PC{0,64}") {
        let v = Value::String(s.clone());
        let back = parse(&v.to_json()).unwrap();
        prop_assert_eq!(back.as_str().unwrap(), s);
    }
}

// ------------------------------------------------------------------- AMF0

fn arb_amf() -> impl Strategy<Value = Amf0> {
    let leaf = prop_oneof![
        Just(Amf0::Null),
        any::<bool>().prop_map(Amf0::Boolean),
        (-1e9f64..1e9).prop_map(Amf0::Number),
        "[a-zA-Z0-9 ]{0,32}".prop_map(Amf0::String),
    ];
    leaf.prop_recursive(2, 16, 5, |inner| {
        prop::collection::btree_map("[a-z]{1,6}", inner, 0..5).prop_map(Amf0::Object)
    })
}

proptest! {
    #[test]
    fn amf_roundtrip(v in arb_amf()) {
        let enc = v.encode();
        let (dec, used) = Amf0::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, v);
    }

    #[test]
    fn amf_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Amf0::decode(&bytes);
    }
}

// ------------------------------------------------------------------- RTMP

fn arb_message() -> impl Strategy<Value = Message> {
    (
        2u8..=63,
        0u32..0x0200_0000,
        prop_oneof![
            Just(MessageType::Audio),
            Just(MessageType::Video),
            Just(MessageType::DataAmf0),
            Just(MessageType::CommandAmf0),
        ],
        0u32..4,
        prop::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(csid, timestamp, kind, stream_id, payload)| Message {
            chunk_stream_id: csid,
            timestamp,
            kind,
            stream_id,
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtmp_messages_roundtrip_any_order(mut msgs in prop::collection::vec(arb_message(), 1..20)) {
        // fmt1 headers require non-decreasing timestamps per chunk stream;
        // the encoder handles regressions by falling back to fmt0, so no
        // sorting is needed — any sequence must survive.
        let mut chunker = Chunker::new();
        let wire = chunker.encode_all(&msgs);
        let mut d = Dechunker::new();
        // Feed in ragged 7-byte pieces.
        for part in wire.chunks(7) {
            d.feed(part).unwrap();
        }
        let got = d.pop_all();
        msgs.retain(|_| true);
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn rtmp_dechunker_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut d = Dechunker::new();
        let _ = d.feed(&bytes);
    }
}

// --------------------------------------------------------------------- WS

proptest! {
    #[test]
    fn ws_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..70_000),
                    masked in any::<bool>(),
                    key in any::<[u8; 4]>()) {
        let f = Frame { opcode: Opcode::Binary, payload };
        let enc = f.encode(masked.then_some(key));
        let (dec, used) = Frame::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, f);
    }

    #[test]
    fn ws_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes);
    }
}

// -------------------------------------------------------------------- HLS

proptest! {
    #[test]
    fn hls_playlist_roundtrip(
        target in 1u32..10,
        seq in 0u64..1000,
        ended in any::<bool>(),
        durations in prop::collection::vec(0.5f64..9.5, 0..12),
    ) {
        let mut pl = MediaPlaylist::new(target);
        pl.media_sequence = seq;
        pl.ended = ended;
        for (i, d) in durations.iter().enumerate() {
            // Round to the 3-decimal EXTINF precision the renderer emits.
            let d = (d * 1000.0).round() / 1000.0;
            pl.segments.push(SegmentEntry { duration_s: d, uri: format!("seg_{i}.ts") });
        }
        let parsed = MediaPlaylist::parse(&pl.render()).unwrap();
        prop_assert_eq!(parsed, pl);
    }
}

// ------------------------------------------------------------------- HTTP

proptest! {
    #[test]
    fn http_request_roundtrip(
        path in "/[a-z0-9/]{0,30}",
        body in prop::collection::vec(any::<u8>(), 0..500),
        header_val in "[a-zA-Z0-9]{0,16}",
    ) {
        let mut req = Request::get(path);
        req.body = body;
        let req = req.header("x-test", &header_val);
        let dec = Request::decode(&req.encode()).unwrap();
        prop_assert_eq!(dec.get_header("x-test").unwrap_or(""), header_val);
        prop_assert_eq!(&dec.path, &req.path);
        prop_assert_eq!(dec.body, req.body);
    }

    #[test]
    fn http_response_roundtrip(
        status in prop_oneof![Just(200u16), Just(404), Just(429), Just(500)],
        body in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let resp = Response { status, headers: vec![], body };
        let dec = Response::decode(&resp.encode()).unwrap();
        prop_assert_eq!(dec.status, status);
        prop_assert_eq!(dec.body, resp.body);
    }

    #[test]
    fn http_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}
