//! Device comparison — the paper's Welch t-tests (§5).
//!
//! "Since we had data from two different devices, we performed a number of
//! Welch's t-tests in order to understand whether the data sets differ
//! significantly. Only the frame rate differs statistically significantly
//! between the two datasets. Hence, we combine the data in the following
//! analysis of video stalling and latency."

use crate::dataset::SessionDataset;
use pscp_client::ViewerDevice;
use pscp_stats::{welch_t_test, WelchResult};

/// One metric's comparison between the two phones.
#[derive(Debug, Clone)]
pub struct MetricComparison {
    /// Metric name.
    pub metric: &'static str,
    /// Welch test result, if both groups had enough samples.
    pub result: Option<WelchResult>,
}

impl MetricComparison {
    /// Whether the metric differs significantly at α = 0.05.
    pub fn significant(&self) -> bool {
        self.result.map(|r| r.significant_at(0.05)).unwrap_or(false)
    }
}

/// Runs the §5 device comparison across the QoE metrics.
pub fn device_comparison(dataset: &SessionDataset) -> Vec<MetricComparison> {
    let s3 = dataset.by_device(ViewerDevice::GalaxyS3);
    let s4 = dataset.by_device(ViewerDevice::GalaxyS4);
    let mut out = Vec::new();
    let mut push = |metric: &'static str, a: Vec<f64>, b: Vec<f64>| {
        let result = welch_t_test(&a, &b).ok();
        out.push(MetricComparison { metric, result });
    };
    push("stall ratio", SessionDataset::stall_ratios(&s3), SessionDataset::stall_ratios(&s4));
    push("join time", SessionDataset::join_times_s(&s3), SessionDataset::join_times_s(&s4));
    push(
        "playback latency",
        SessionDataset::playback_latencies_s(&s3),
        SessionDataset::playback_latencies_s(&s4),
    );
    push("frame rate", SessionDataset::fps(&s3), SessionDataset::fps(&s4));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::player::PlayerLog;
    use pscp_client::session::PlaybackMetaReport;
    use pscp_client::SessionOutcome;
    use pscp_media::capture::Capture;
    use pscp_service::select::Protocol;
    use pscp_simnet::SimDuration;
    use pscp_workload::broadcast::BroadcastId;

    fn outcome(device: ViewerDevice, fps: f64, join_s: f64) -> SessionOutcome {
        SessionOutcome {
            broadcast_id: BroadcastId(1),
            protocol: Protocol::Rtmp,
            device,
            bandwidth_limit_bps: None,
            player: PlayerLog {
                join_time: Some(SimDuration::from_secs_f64(join_s)),
                stalls: Vec::new(),
                played_s: 55.0,
                latency_samples: vec![2.0],
                session_s: 60.0,
            },
            capture: Capture::new(),
            meta: PlaybackMetaReport {
                n_stalls: 0,
                avg_stall_time_s: None,
                playback_latency_s: Some(2.0 + join_s * 0.01),
            },
            viewers_at_join: 5,
            rendered_fps: fps,
            server: "vidman".to_string(),
        }
    }

    #[test]
    fn only_fps_differs_when_constructed_so() {
        // S3 at ~26 fps, S4 at ~30; identical-distribution joins.
        let mut sessions = Vec::new();
        for i in 0..40 {
            let join = 1.0 + (i % 7) as f64 * 0.3;
            sessions.push(outcome(ViewerDevice::GalaxyS3, 25.5 + (i % 5) as f64 * 0.2, join));
            sessions.push(outcome(ViewerDevice::GalaxyS4, 29.4 + (i % 5) as f64 * 0.2, join));
        }
        let d = SessionDataset::new(sessions);
        let cmp = device_comparison(&d);
        let by_name = |n: &str| cmp.iter().find(|c| c.metric == n).unwrap();
        assert!(by_name("frame rate").significant());
        assert!(!by_name("join time").significant());
        assert!(!by_name("playback latency").significant());
    }

    #[test]
    fn degenerate_groups_yield_none() {
        let d = SessionDataset::new(vec![outcome(ViewerDevice::GalaxyS4, 30.0, 1.0)]);
        let cmp = device_comparison(&d);
        assert!(cmp.iter().all(|c| c.result.is_none()));
        assert!(!cmp[0].significant());
    }

    #[test]
    fn four_metrics_compared() {
        let d = SessionDataset::new(Vec::new());
        assert_eq!(device_comparison(&d).len(), 4);
    }
}
