//! Device comparison — the paper's Welch t-tests (§5).
//!
//! "Since we had data from two different devices, we performed a number of
//! Welch's t-tests in order to understand whether the data sets differ
//! significantly. Only the frame rate differs statistically significantly
//! between the two datasets. Hence, we combine the data in the following
//! analysis of video stalling and latency."

use crate::dataset::SessionDataset;
use crate::slo::SKETCH_SESSION_THRESHOLD;
use pscp_client::ViewerDevice;
use pscp_stats::{welch_t_test, welch_t_test_moments, Moments, WelchResult};

/// One metric's comparison between the two phones.
#[derive(Debug, Clone)]
pub struct MetricComparison {
    /// Metric name.
    pub metric: &'static str,
    /// Welch test result, if both groups had enough samples.
    pub result: Option<WelchResult>,
}

impl MetricComparison {
    /// Whether the metric differs significantly at α = 0.05.
    pub fn significant(&self) -> bool {
        self.result.map(|r| r.significant_at(0.05)).unwrap_or(false)
    }
}

/// Runs the §5 device comparison across the QoE metrics. Below
/// [`SKETCH_SESSION_THRESHOLD`] sessions this materialises the sample
/// vectors (byte-stable legacy path); at or above it, a single streaming
/// pass folds Welford moments per device and runs the test from the
/// sufficient statistics — same t/df, no sample vectors.
pub fn device_comparison(dataset: &SessionDataset) -> Vec<MetricComparison> {
    if dataset.len() >= SKETCH_SESSION_THRESHOLD {
        device_comparison_streaming(dataset)
    } else {
        device_comparison_exact(dataset)
    }
}

/// The full-sample comparison path.
pub fn device_comparison_exact(dataset: &SessionDataset) -> Vec<MetricComparison> {
    let s3 = dataset.by_device(ViewerDevice::GalaxyS3);
    let s4 = dataset.by_device(ViewerDevice::GalaxyS4);
    let mut out = Vec::new();
    let mut push = |metric: &'static str, a: Vec<f64>, b: Vec<f64>| {
        let result = welch_t_test(&a, &b).ok();
        out.push(MetricComparison { metric, result });
    };
    push("stall ratio", SessionDataset::stall_ratios(&s3), SessionDataset::stall_ratios(&s4));
    push("join time", SessionDataset::join_times_s(&s3), SessionDataset::join_times_s(&s4));
    push(
        "playback latency",
        SessionDataset::playback_latencies_s(&s3),
        SessionDataset::playback_latencies_s(&s4),
    );
    push("frame rate", SessionDataset::fps(&s3), SessionDataset::fps(&s4));
    out
}

/// The constant-memory comparison path: one pass over the sessions,
/// four Welford accumulators per device.
pub fn device_comparison_streaming(dataset: &SessionDataset) -> Vec<MetricComparison> {
    // Indexed [S3, S4] × [stall, join, latency, fps].
    let mut m = [[Moments::new(); 4]; 2];
    for s in &dataset.sessions {
        let d = usize::from(s.device == ViewerDevice::GalaxyS4);
        m[d][0].observe(s.stall_ratio());
        m[d][1].observe(s.join_time_s().unwrap_or(s.player.session_s));
        if let Some(lat) = s.meta.playback_latency_s {
            m[d][2].observe(lat);
        }
        m[d][3].observe(s.rendered_fps);
    }
    ["stall ratio", "join time", "playback latency", "frame rate"]
        .into_iter()
        .enumerate()
        .map(|(i, metric)| MetricComparison {
            metric,
            result: welch_t_test_moments(&m[0][i], &m[1][i]).ok(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscp_client::player::PlayerLog;
    use pscp_client::session::PlaybackMetaReport;
    use pscp_client::SessionOutcome;
    use pscp_media::capture::Capture;
    use pscp_service::select::Protocol;
    use pscp_simnet::SimDuration;
    use pscp_workload::broadcast::BroadcastId;

    fn outcome(device: ViewerDevice, fps: f64, join_s: f64) -> SessionOutcome {
        SessionOutcome {
            broadcast_id: BroadcastId(1),
            protocol: Protocol::Rtmp,
            device,
            bandwidth_limit_bps: None,
            player: PlayerLog {
                join_time: Some(SimDuration::from_secs_f64(join_s)),
                stalls: Vec::new(),
                played_s: 55.0,
                latency_samples: vec![2.0],
                session_s: 60.0,
            },
            capture: Capture::new(),
            meta: PlaybackMetaReport {
                n_stalls: 0,
                avg_stall_time_s: None,
                playback_latency_s: Some(2.0 + join_s * 0.01),
            },
            viewers_at_join: 5,
            rendered_fps: fps,
            server: "vidman".to_string(),
        }
    }

    #[test]
    fn only_fps_differs_when_constructed_so() {
        // S3 at ~26 fps, S4 at ~30; identical-distribution joins.
        let mut sessions = Vec::new();
        for i in 0..40 {
            let join = 1.0 + (i % 7) as f64 * 0.3;
            sessions.push(outcome(ViewerDevice::GalaxyS3, 25.5 + (i % 5) as f64 * 0.2, join));
            sessions.push(outcome(ViewerDevice::GalaxyS4, 29.4 + (i % 5) as f64 * 0.2, join));
        }
        let d = SessionDataset::new(sessions);
        let cmp = device_comparison(&d);
        let by_name = |n: &str| cmp.iter().find(|c| c.metric == n).unwrap();
        assert!(by_name("frame rate").significant());
        assert!(!by_name("join time").significant());
        assert!(!by_name("playback latency").significant());
    }

    #[test]
    fn streaming_path_matches_exact() {
        let mut sessions = Vec::new();
        for i in 0..40 {
            let join = 1.0 + (i % 7) as f64 * 0.3;
            sessions.push(outcome(ViewerDevice::GalaxyS3, 25.5 + (i % 5) as f64 * 0.2, join));
            sessions.push(outcome(ViewerDevice::GalaxyS4, 29.4 + (i % 5) as f64 * 0.2, join));
        }
        let d = SessionDataset::new(sessions);
        let exact = device_comparison_exact(&d);
        let streaming = device_comparison_streaming(&d);
        assert_eq!(exact.len(), streaming.len());
        for (a, b) in exact.iter().zip(streaming.iter()) {
            assert_eq!(a.metric, b.metric);
            match (a.result, b.result) {
                (Some(x), Some(y)) => {
                    assert!((x.t - y.t).abs() < 1e-9, "{}: t {} vs {}", a.metric, x.t, y.t);
                    assert!((x.df - y.df).abs() < 1e-6);
                    assert_eq!(a.significant(), b.significant());
                }
                (None, None) => {}
                _ => panic!("presence mismatch for {}", a.metric),
            }
        }
    }

    #[test]
    fn degenerate_groups_yield_none() {
        let d = SessionDataset::new(vec![outcome(ViewerDevice::GalaxyS4, 30.0, 1.0)]);
        let cmp = device_comparison(&d);
        assert!(cmp.iter().all(|c| c.result.is_none()));
        assert!(!cmp[0].significant());
    }

    #[test]
    fn four_metrics_compared() {
        let d = SessionDataset::new(Vec::new());
        assert_eq!(device_comparison(&d).len(), 4);
    }
}
